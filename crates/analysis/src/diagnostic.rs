//! The shared diagnostic framework: stable codes, severities, messages, and
//! source context. Every static-analysis pass in the workspace reports
//! findings as [`Diagnostic`]s so tooling (the CLI `analyze` command, the
//! planner, the harness) can render them uniformly.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Structural information (classifications, recognized patterns).
    Info,
    /// Probably a mistake or a performance hazard; execution still sound.
    Warning,
    /// The input is rejected (unsafe rules, unsatisfiable constraints).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes. `A…` = ASP program analysis, `G…` = grounding,
/// `C…` = constraint-set lints, `Q…` = query lints, `L…` = workspace audit
/// lints (the `cqa-audit` static pass over this repository's own sources).
/// Codes never change meaning once shipped; new checks get new codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// A001: a head/negated/comparison variable not bound by a positive
    /// body atom.
    UnsafeVariable,
    /// A002: recursion through default negation (the program is not
    /// stratified; stable-model search is required).
    RecursionThroughNegation,
    /// A003: two head disjuncts of one rule depend on each other through
    /// positive recursion (the program is not head-cycle-free).
    HeadCycle,
    /// A004: a rule is repeated verbatim.
    DuplicateRule,
    /// A005: a positive body predicate with no defining rule or fact — the
    /// rule can never fire.
    UndefinedPredicate,
    /// A006: the conflict hyper-graph splits into independent connected
    /// components — repair search and CQA factorize per component instead of
    /// exploring the cross-product.
    ConflictComponents,
    /// A007: how the planner revalidated cached conflict state against the
    /// instance's mutation epoch — applied the logged delta incrementally,
    /// found the cache current, or fell back to a full recompute (and why).
    IncrementalMaintenance,
    /// A008: how the subplan cache behaved during a repair-family fold —
    /// hits/misses accrued while quantifying the query over repairs, or a
    /// note that sharing was disabled for the run.
    PlanCache,
    /// G001: the estimated grounding size exceeds the blow-up threshold.
    GroundingBlowup,
    /// C001: a constraint is repeated verbatim.
    DuplicateConstraint,
    /// C002: a denial constraint no (or only an empty) instance satisfies.
    UnsatisfiableConstraint,
    /// C003: a denial constraint implied by another via a body homomorphism.
    SubsumedConstraint,
    /// C004: a functional dependency whose attributes cover the whole
    /// schema — it is a key in disguise.
    FdIsKey,
    /// C005: inclusion dependencies form a cycle; insertion-based repairs
    /// may cascade.
    IndCycle,
    /// C006: a constraint whose comparisons are contradictory — it can
    /// never be violated.
    VacuousConstraint,
    /// Q001: an unsafe query variable.
    UnsafeQueryVariable,
    /// Q002: the query body is disconnected — a Cartesian product.
    CartesianProduct,
    /// Q003: the query's attack graph under the given keys is acyclic —
    /// certain answers are FO-rewritable and CQA runs in polynomial time.
    FoRewritable,
    /// Q004: the attack graph has a cycle (a pair of mutually attacking
    /// atoms witnesses it) — CQA for this query is coNP-complete and the
    /// planner must fall back to repair enumeration or a certificate
    /// backend.
    AttackCycle,
    /// L001: iteration over a hash container flows into collected/emitted
    /// order without an intervening sort or BTree rebuild, inside a
    /// determinism-contract crate.
    NondeterministicIteration,
    /// L002: a recursive or worklist function in a module marked
    /// `audit:exponential` does not thread a `Budget` (or the module never
    /// consults one) — the path cannot be cancelled or truncated.
    UnbudgetedExponentialPath,
    /// L003: `unwrap`/`expect`/`panic!`-family macros or slice indexing in
    /// non-test code of an input-surface crate, where untrusted input must
    /// never panic the process.
    PanicSurface,
    /// L004: raw `std::thread::spawn` or an ad-hoc `Mutex` outside
    /// `cqa-exec` — all parallelism must go through the pool so the
    /// cancellation and determinism contracts hold.
    AdHocParallelism,
    /// L005: `Instant::now`/`SystemTime::now`/environment reads outside the
    /// sanctioned modules (`cqa-exec` budget/config, the bench harness).
    AmbientAuthority,
    /// L006: `unsafe` code anywhere in the workspace (comment/string-aware;
    /// subsumes the old CI grep).
    UnsafeCode,
    /// E001: user-supplied input (a database/Σ file, query string, or
    /// command-line flag) failed to parse or validate. Always an error:
    /// execution cannot proceed, but the process reports and exits instead
    /// of panicking.
    InvalidInput,
}

impl DiagCode {
    /// Every defined code (documentation + CLI catalog order).
    pub const ALL: [DiagCode; 26] = [
        DiagCode::UnsafeVariable,
        DiagCode::RecursionThroughNegation,
        DiagCode::HeadCycle,
        DiagCode::DuplicateRule,
        DiagCode::UndefinedPredicate,
        DiagCode::ConflictComponents,
        DiagCode::IncrementalMaintenance,
        DiagCode::PlanCache,
        DiagCode::GroundingBlowup,
        DiagCode::DuplicateConstraint,
        DiagCode::UnsatisfiableConstraint,
        DiagCode::SubsumedConstraint,
        DiagCode::FdIsKey,
        DiagCode::IndCycle,
        DiagCode::VacuousConstraint,
        DiagCode::UnsafeQueryVariable,
        DiagCode::CartesianProduct,
        DiagCode::FoRewritable,
        DiagCode::AttackCycle,
        DiagCode::NondeterministicIteration,
        DiagCode::UnbudgetedExponentialPath,
        DiagCode::PanicSurface,
        DiagCode::AdHocParallelism,
        DiagCode::AmbientAuthority,
        DiagCode::UnsafeCode,
        DiagCode::InvalidInput,
    ];

    /// The stable code string, e.g. `"A001"`.
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::UnsafeVariable => "A001",
            DiagCode::RecursionThroughNegation => "A002",
            DiagCode::HeadCycle => "A003",
            DiagCode::DuplicateRule => "A004",
            DiagCode::UndefinedPredicate => "A005",
            DiagCode::ConflictComponents => "A006",
            DiagCode::IncrementalMaintenance => "A007",
            DiagCode::PlanCache => "A008",
            DiagCode::GroundingBlowup => "G001",
            DiagCode::DuplicateConstraint => "C001",
            DiagCode::UnsatisfiableConstraint => "C002",
            DiagCode::SubsumedConstraint => "C003",
            DiagCode::FdIsKey => "C004",
            DiagCode::IndCycle => "C005",
            DiagCode::VacuousConstraint => "C006",
            DiagCode::UnsafeQueryVariable => "Q001",
            DiagCode::CartesianProduct => "Q002",
            DiagCode::FoRewritable => "Q003",
            DiagCode::AttackCycle => "Q004",
            DiagCode::NondeterministicIteration => "L001",
            DiagCode::UnbudgetedExponentialPath => "L002",
            DiagCode::PanicSurface => "L003",
            DiagCode::AdHocParallelism => "L004",
            DiagCode::AmbientAuthority => "L005",
            DiagCode::UnsafeCode => "L006",
            DiagCode::InvalidInput => "E001",
        }
    }

    /// Short kebab-case name, e.g. `"unsafe-variable"`.
    pub fn name(self) -> &'static str {
        match self {
            DiagCode::UnsafeVariable => "unsafe-variable",
            DiagCode::RecursionThroughNegation => "recursion-through-negation",
            DiagCode::HeadCycle => "head-cycle",
            DiagCode::DuplicateRule => "duplicate-rule",
            DiagCode::UndefinedPredicate => "undefined-predicate",
            DiagCode::ConflictComponents => "conflict-components",
            DiagCode::IncrementalMaintenance => "incremental-maintenance",
            DiagCode::PlanCache => "plan-cache",
            DiagCode::GroundingBlowup => "grounding-blowup",
            DiagCode::DuplicateConstraint => "duplicate-constraint",
            DiagCode::UnsatisfiableConstraint => "unsatisfiable-constraint",
            DiagCode::SubsumedConstraint => "subsumed-constraint",
            DiagCode::FdIsKey => "fd-is-key",
            DiagCode::IndCycle => "ind-cycle",
            DiagCode::VacuousConstraint => "vacuous-constraint",
            DiagCode::UnsafeQueryVariable => "unsafe-query-variable",
            DiagCode::CartesianProduct => "cartesian-product",
            DiagCode::FoRewritable => "fo-rewritable",
            DiagCode::AttackCycle => "attack-cycle",
            DiagCode::NondeterministicIteration => "nondeterministic-iteration",
            DiagCode::UnbudgetedExponentialPath => "unbudgeted-exponential-path",
            DiagCode::PanicSurface => "panic-surface",
            DiagCode::AdHocParallelism => "ad-hoc-parallelism",
            DiagCode::AmbientAuthority => "ambient-authority",
            DiagCode::UnsafeCode => "unsafe-code",
            DiagCode::InvalidInput => "invalid-input",
        }
    }

    /// The severity this code carries unless overridden.
    pub fn default_severity(self) -> Severity {
        match self {
            DiagCode::UnsafeVariable
            | DiagCode::UnsatisfiableConstraint
            | DiagCode::UnsafeQueryVariable
            | DiagCode::UnsafeCode
            | DiagCode::InvalidInput => Severity::Error,
            DiagCode::DuplicateRule
            | DiagCode::UndefinedPredicate
            | DiagCode::GroundingBlowup
            | DiagCode::DuplicateConstraint
            | DiagCode::SubsumedConstraint
            | DiagCode::IndCycle
            | DiagCode::VacuousConstraint
            | DiagCode::CartesianProduct
            | DiagCode::NondeterministicIteration
            | DiagCode::UnbudgetedExponentialPath
            | DiagCode::PanicSurface
            | DiagCode::AdHocParallelism
            | DiagCode::AmbientAuthority => Severity::Warning,
            DiagCode::RecursionThroughNegation
            | DiagCode::HeadCycle
            | DiagCode::FdIsKey
            | DiagCode::FoRewritable
            | DiagCode::AttackCycle
            | DiagCode::ConflictComponents
            | DiagCode::IncrementalMaintenance
            | DiagCode::PlanCache => Severity::Info,
        }
    }

    /// One-line description for the code catalog.
    pub fn summary(self) -> &'static str {
        match self {
            DiagCode::UnsafeVariable => {
                "a head/negated/comparison variable is not bound by a positive body atom"
            }
            DiagCode::RecursionThroughNegation => {
                "recursion through default negation: the program is not stratified"
            }
            DiagCode::HeadCycle => {
                "head disjuncts depend on each other through positive recursion (not head-cycle-free)"
            }
            DiagCode::DuplicateRule => "a rule is repeated verbatim",
            DiagCode::UndefinedPredicate => {
                "a positive body predicate has no defining rule or fact: the rule can never fire"
            }
            DiagCode::ConflictComponents => {
                "the conflict hyper-graph has independent components: repairs and CQA factorize"
            }
            DiagCode::IncrementalMaintenance => {
                "how cached conflict state was revalidated: incremental delta, current, or full recompute"
            }
            DiagCode::PlanCache => {
                "subplan-cache behaviour during the repair-family fold: hits, misses, or sharing disabled"
            }
            DiagCode::GroundingBlowup => {
                "the estimated grounding size exceeds the blow-up threshold"
            }
            DiagCode::DuplicateConstraint => "a constraint is repeated verbatim",
            DiagCode::UnsatisfiableConstraint => {
                "no (or only an empty) instance satisfies this denial constraint"
            }
            DiagCode::SubsumedConstraint => {
                "a denial constraint is implied by another (body homomorphism): it is redundant"
            }
            DiagCode::FdIsKey => {
                "a functional dependency covering every attribute of its relation is a key"
            }
            DiagCode::IndCycle => {
                "inclusion dependencies form a cycle: insertion-based repairs may cascade"
            }
            DiagCode::VacuousConstraint => {
                "the constraint's comparisons are contradictory: it can never be violated"
            }
            DiagCode::UnsafeQueryVariable => "an unsafe query variable",
            DiagCode::CartesianProduct => {
                "the query body is disconnected and evaluates a Cartesian product"
            }
            DiagCode::FoRewritable => {
                "the attack graph is acyclic: certain answers are FO-rewritable (PTIME route)"
            }
            DiagCode::AttackCycle => {
                "the attack graph is cyclic: CQA is coNP-complete (witness pair reported)"
            }
            DiagCode::NondeterministicIteration => {
                "hash-container iteration flows into output order without a sort or BTree rebuild"
            }
            DiagCode::UnbudgetedExponentialPath => {
                "a recursive/worklist function on an exponential path does not thread a Budget"
            }
            DiagCode::PanicSurface => {
                "unwrap/expect/panic!/indexing in non-test code of an input-surface crate"
            }
            DiagCode::AdHocParallelism => {
                "thread spawning or ad-hoc locking outside the cqa-exec pool"
            }
            DiagCode::AmbientAuthority => {
                "clock or environment access outside the sanctioned modules"
            }
            DiagCode::UnsafeCode => "unsafe code is banned workspace-wide",
            DiagCode::InvalidInput => {
                "user-supplied input failed to parse; the process reports and exits, never panics"
            }
        }
    }
}

/// One analysis finding: a stable code, a severity, a human message, and
/// optional source context (the offending rule/constraint text and index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagCode,
    /// Severity (defaults to [`DiagCode::default_severity`]).
    pub severity: Severity,
    /// Human-readable explanation of this specific finding.
    pub message: String,
    /// Source context: the offending rule / constraint, pretty-printed.
    pub context: Option<String>,
    /// Index of the offending rule or constraint in its program/set.
    pub index: Option<usize>,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity and no context.
    pub fn new(code: DiagCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            context: None,
            index: None,
        }
    }

    /// Attach pretty-printed source context.
    pub fn with_context(mut self, context: impl Into<String>) -> Diagnostic {
        self.context = Some(context.into());
        self
    }

    /// Attach the rule/constraint index.
    pub fn with_index(mut self, index: usize) -> Diagnostic {
        self.index = Some(index);
        self
    }

    /// Override the default severity.
    pub fn with_severity(mut self, severity: Severity) -> Diagnostic {
        self.severity = severity;
        self
    }

    /// Is this an error?
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity,
            self.code.code(),
            self.code.name(),
            self.message
        )?;
        if let Some(ctx) = &self.context {
            let loc = match self.index {
                Some(i) => format!("{i}: "),
                None => String::new(),
            };
            write!(f, "\n  --> {loc}{ctx}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for c in DiagCode::ALL {
            assert!(seen.insert(c.code()), "duplicate code {}", c.code());
            assert!(!c.name().is_empty());
            assert!(!c.summary().is_empty());
        }
        assert_eq!(DiagCode::UnsafeVariable.code(), "A001");
        assert_eq!(DiagCode::SubsumedConstraint.code(), "C003");
    }

    #[test]
    fn display_includes_code_severity_and_context() {
        let d = Diagnostic::new(DiagCode::UnsafeVariable, "variable `x` is unbound")
            .with_context("p(x) :- not q(x).")
            .with_index(2);
        let s = d.to_string();
        assert!(s.contains("error[A001] unsafe-variable"), "{s}");
        assert!(s.contains("--> 2: p(x) :- not q(x)."), "{s}");
    }
}
