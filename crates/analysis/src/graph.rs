//! Dependency graphs with positive/negative edges, Tarjan SCCs, and
//! stratification. Generic over `usize` node ids so it serves both the
//! predicate-level graph (non-ground programs) and the atom-level graph
//! (ground programs).

/// How one node depends on another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Through a positive body literal.
    Positive,
    /// Through a default-negated body literal.
    Negative,
}

/// A directed dependency graph: edge `u → v` means "u depends on v"
/// (v occurs in the body of a rule with u in the head).
#[derive(Debug, Clone)]
pub struct DepGraph {
    adj: Vec<Vec<(usize, EdgeKind)>>,
}

impl DepGraph {
    /// An edgeless graph on `n` nodes.
    pub fn new(n: usize) -> DepGraph {
        DepGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// No nodes?
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Add `from → to` (duplicates are kept; they are harmless).
    pub fn add_edge(&mut self, from: usize, to: usize, kind: EdgeKind) {
        self.adj[from].push((to, kind));
    }

    /// Outgoing edges of `v`.
    pub fn edges(&self, v: usize) -> &[(usize, EdgeKind)] {
        &self.adj[v]
    }

    /// Strongly connected components (iterative Tarjan). Components are
    /// emitted in *dependency-first* order: every component appears after
    /// all components it has edges into. Node lists are sorted.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.adj.len();
        const UNSEEN: usize = usize::MAX;
        let mut index = vec![UNSEEN; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next = 0usize;
        let mut out: Vec<Vec<usize>> = Vec::new();

        for start in 0..n {
            if index[start] != UNSEEN {
                continue;
            }
            // Explicit DFS stack of (node, next-edge-position).
            let mut call: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&(v, ei)) = call.last() {
                if ei == 0 {
                    index[v] = next;
                    low[v] = next;
                    next += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if ei < self.adj[v].len() {
                    call.last_mut().expect("nonempty").1 += 1;
                    let (w, _) = self.adj[v][ei];
                    if index[w] == UNSEEN {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(p, _)) = call.last() {
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        out.push(comp);
                    }
                }
            }
        }
        out
    }

    /// Map node → index of its SCC in `sccs`.
    pub fn scc_index(&self, sccs: &[Vec<usize>]) -> Vec<usize> {
        let mut of = vec![0usize; self.adj.len()];
        for (ci, comp) in sccs.iter().enumerate() {
            for &v in comp {
                of[v] = ci;
            }
        }
        of
    }

    /// Stratification of the graph.
    ///
    /// Returns `(stratum_per_node, stratified, witness)`:
    /// * `stratum_per_node[v]` — the topological layer of `v`'s component;
    ///   positive edges may stay within a layer, negative edges must step
    ///   down, so a stratified program can be evaluated layer by layer;
    /// * `stratified` — false iff some negative edge stays *inside* an SCC
    ///   (recursion through negation);
    /// * `witness` — such an edge `(u, v)`, when one exists.
    pub fn strata(&self) -> (Vec<usize>, bool, Option<(usize, usize)>) {
        let sccs = self.sccs();
        let of = self.scc_index(&sccs);
        let mut scc_stratum = vec![0usize; sccs.len()];
        let mut stratified = true;
        let mut witness = None;
        // Dependency-first order: strata of everything a component points to
        // are final before the component itself is assigned.
        for (ci, comp) in sccs.iter().enumerate() {
            let mut s = 0usize;
            for &v in comp {
                for &(w, kind) in &self.adj[v] {
                    if of[w] == ci {
                        if kind == EdgeKind::Negative {
                            stratified = false;
                            witness.get_or_insert((v, w));
                        }
                    } else {
                        let need = scc_stratum[of[w]] + usize::from(kind == EdgeKind::Negative);
                        s = s.max(need);
                    }
                }
            }
            scc_stratum[ci] = s;
        }
        let strata = (0..self.adj.len()).map(|v| scc_stratum[of[v]]).collect();
        (strata, stratified, witness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sccs_of_a_cycle_and_a_tail() {
        // 0 → 1 → 2 → 0 (cycle), 3 → 0 (tail).
        let mut g = DepGraph::new(4);
        g.add_edge(0, 1, EdgeKind::Positive);
        g.add_edge(1, 2, EdgeKind::Positive);
        g.add_edge(2, 0, EdgeKind::Positive);
        g.add_edge(3, 0, EdgeKind::Positive);
        let sccs = g.sccs();
        assert!(sccs.contains(&vec![0, 1, 2]));
        assert!(sccs.contains(&vec![3]));
        // Dependency-first: the cycle is emitted before its dependant.
        assert_eq!(sccs.iter().position(|c| c.len() == 3).unwrap(), 0);
    }

    #[test]
    fn strata_step_down_on_negation() {
        // 2 -neg-> 1 -pos-> 0: strata 0, 0, 1 (positive edges free).
        let mut g = DepGraph::new(3);
        g.add_edge(1, 0, EdgeKind::Positive);
        g.add_edge(2, 1, EdgeKind::Negative);
        let (strata, stratified, witness) = g.strata();
        assert!(stratified);
        assert_eq!(witness, None);
        assert_eq!(strata, vec![0, 0, 1]);
    }

    #[test]
    fn negative_edge_in_scc_is_unstratified() {
        // a :- not b. b :- not a.  (2-cycle of negative edges)
        let mut g = DepGraph::new(2);
        g.add_edge(0, 1, EdgeKind::Negative);
        g.add_edge(1, 0, EdgeKind::Negative);
        let (_, stratified, witness) = g.strata();
        assert!(!stratified);
        assert!(witness.is_some());
    }

    #[test]
    fn positive_recursion_stays_in_one_stratum() {
        // Transitive closure: t → e (pos), t → t (pos).
        let mut g = DepGraph::new(2);
        g.add_edge(1, 0, EdgeKind::Positive);
        g.add_edge(1, 1, EdgeKind::Positive);
        let (strata, stratified, _) = g.strata();
        assert!(stratified);
        assert_eq!(strata, vec![0, 0]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 10_000-node negative chain: recursion-free iterative Tarjan.
        let n = 10_000;
        let mut g = DepGraph::new(n);
        for v in 1..n {
            g.add_edge(v, v - 1, EdgeKind::Negative);
        }
        let (strata, stratified, _) = g.strata();
        assert!(stratified);
        assert_eq!(strata[n - 1], n - 1);
    }
}
