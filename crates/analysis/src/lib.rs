//! Static program analysis for the CQA workspace.
//!
//! This crate looks at ASP programs, denial-constraint sets, and conjunctive
//! queries *before* anything is grounded or solved, and reports what it finds
//! as [`Diagnostic`]s with stable codes (`A001`, `C003`, …):
//!
//! * [`analyze_shape`] classifies a program ([`ProgramClass`]: stratified /
//!   head-cycle-free / full) from its predicate dependency graph, computes
//!   strata, and estimates the grounding size. A stratified classification
//!   lets the ASP solver evaluate bottom-up per stratum instead of guessing
//!   stable models; the estimate warns before exponential blowups (`G001`).
//! * [`lint_constraints`] finds duplicate (`C001`), unsatisfiable (`C002`),
//!   subsumed (`C003`), and vacuous (`C006`) denial constraints, FDs that
//!   are keys in disguise (`C004`), and inclusion-dependency cycles
//!   (`C005`).
//! * [`lint_query`] checks query safety (`Q001`) and connectivity (`Q002`).
//!
//! The crate deliberately depends only on `cqa-relation`, `cqa-query`, and
//! `cqa-constraints`; ASP programs reach it through the neutral
//! [`ProgramShape`] IR so both `cqa-asp` (predicate level) and the grounder
//! (atom level) can share one analysis, and `cqa-core`'s planner can consume
//! the results without a dependency cycle.

#![forbid(unsafe_code)]

mod diagnostic;
mod graph;
mod lints;
mod program;

pub use diagnostic::{DiagCode, Diagnostic, Severity};
pub use graph::{DepGraph, EdgeKind};
pub use lints::{lint_constraints, lint_query};
pub use program::{
    analyze_shape, classify_shape, Classification, ProgramAnalysis, ProgramClass, ProgramShape,
    ShapeRule, GROUNDING_WARN_THRESHOLD,
};
