//! Constraint-set and query lints.
//!
//! These recognize structure *before* solving — the theme of the survey's
//! §3: FDs that are really keys unlock the attack-graph rewriting, IND
//! cycles predict cascading insertion repairs, and redundant/vacuous denial
//! constraints inflate conflict hypergraphs for no semantic gain.

use crate::diagnostic::{DiagCode, Diagnostic, Severity};
use cqa_constraints::{Constraint, ConstraintSet, DenialConstraint};
use cqa_query::{CmpOp, Comparison, ConjunctiveQuery, Term, Var};
use cqa_relation::Database;
use std::collections::{BTreeMap, BTreeSet};

/// A name-independent identity key for a constraint (constraint *names* are
/// often auto-generated per source line, so two textually identical `dc`
/// lines must still compare equal).
fn constraint_key(c: &Constraint) -> String {
    match c {
        Constraint::Denial(d) => format!("dc {}", d.body()),
        Constraint::Tgd(t) => format!("tgd {:?} :- {}", t.head(), t.body()),
        other => other.to_string(),
    }
}

/// Lint a constraint set. `db` (when available) supplies schemas for the
/// FD-is-key check; all other lints are purely syntactic.
pub fn lint_constraints(sigma: &ConstraintSet, db: Option<&Database>) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // C001: verbatim duplicates (by name-independent pretty-printed form).
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for (i, c) in sigma.constraints.iter().enumerate() {
        let text = constraint_key(c);
        match seen.get(&text) {
            Some(&first) => out.push(
                Diagnostic::new(
                    DiagCode::DuplicateConstraint,
                    format!("constraint {i} repeats constraint {first}"),
                )
                .with_index(i)
                .with_context(c.to_string()),
            ),
            None => {
                seen.insert(text, i);
            }
        }
    }

    for (i, c) in sigma.constraints.iter().enumerate() {
        match c {
            Constraint::Denial(dc) => {
                out.extend(lint_denial(i, dc));
            }
            Constraint::Fd(fd) => {
                // C004: lhs ∪ rhs covers the whole schema → the FD is a key.
                if let Some(schema) = db.and_then(|d| d.relation(&fd.relation)) {
                    let all: BTreeSet<&str> = schema
                        .schema()
                        .attributes()
                        .iter()
                        .map(|a| a.name.as_str())
                        .collect();
                    let covered: BTreeSet<&str> = fd
                        .lhs
                        .iter()
                        .chain(fd.rhs.iter())
                        .map(String::as_str)
                        .collect();
                    if covered.is_superset(&all) {
                        out.push(
                            Diagnostic::new(
                                DiagCode::FdIsKey,
                                format!(
                                    "functional dependency covers every attribute of \
                                     `{}`: {} is a key (key-based CQA rewriting applies)",
                                    fd.relation,
                                    fd.lhs.join(", ")
                                ),
                            )
                            .with_index(i)
                            .with_context(c.to_string()),
                        );
                    }
                }
            }
            _ => {}
        }
    }

    // C003: pairwise subsumption among denial constraints.
    let denials: Vec<(usize, &DenialConstraint)> = sigma
        .constraints
        .iter()
        .enumerate()
        .filter_map(|(i, c)| match c {
            Constraint::Denial(d) => Some((i, d)),
            _ => None,
        })
        .collect();
    let mut subsumed_reported: BTreeSet<usize> = BTreeSet::new();
    for &(ai, a) in &denials {
        if subsumed_reported.contains(&ai) {
            continue;
        }
        for &(bi, b) in &denials {
            if ai == bi || a.body().to_string() == b.body().to_string() {
                continue; // identical pairs are C001's business
            }
            if body_homomorphism(b, a) {
                // body(B) maps into body(A): every violation of A violates B,
                // so B alone already enforces A — A is redundant.
                if body_homomorphism(a, b) && ai < bi {
                    continue; // equivalent pair: report only the later one
                }
                subsumed_reported.insert(ai);
                out.push(
                    Diagnostic::new(
                        DiagCode::SubsumedConstraint,
                        format!("`{}` is implied by `{}` and can be dropped", a.name, b.name),
                    )
                    .with_index(ai)
                    .with_context(a.to_string()),
                );
                break;
            }
        }
    }

    // C005: cycle in the relation-level inclusion-dependency graph.
    if let Some(cycle) = ind_cycle(sigma) {
        out.push(Diagnostic::new(
            DiagCode::IndCycle,
            format!(
                "inclusion dependencies form a cycle {}: insertion-based repairs \
                 may cascade (the chase may not terminate)",
                cycle.join(" -> ")
            ),
        ));
    }

    out.sort_by_key(|d| (d.index, d.code));
    out
}

/// C002 + C006 for one denial constraint.
fn lint_denial(i: usize, dc: &DenialConstraint) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let contradiction = comparisons_contradictory(dc.comparisons());
    if dc.atoms().is_empty() {
        // No relational atoms: the body holds in every instance unless the
        // comparisons are self-contradictory.
        if !contradiction {
            out.push(
                Diagnostic::new(
                    DiagCode::UnsatisfiableConstraint,
                    "denial constraint has no relational atoms: no instance satisfies it",
                )
                .with_index(i)
                .with_context(dc.to_string()),
            );
        }
    } else if dc.atoms().len() == 1
        && dc.comparisons().is_empty()
        && dc.atoms()[0]
            .terms
            .iter()
            .all(|t| matches!(t, Term::Var(_)))
        && distinct_vars(&dc.atoms()[0].terms)
    {
        out.push(
            Diagnostic::new(
                DiagCode::UnsatisfiableConstraint,
                format!(
                    "denial constraint forbids every `{}` tuple: only an empty \
                     relation satisfies it",
                    dc.atoms()[0].relation
                ),
            )
            .with_severity(Severity::Warning)
            .with_index(i)
            .with_context(dc.to_string()),
        );
    }
    if contradiction {
        out.push(
            Diagnostic::new(
                DiagCode::VacuousConstraint,
                "the comparisons are contradictory: the body never matches, so the \
                 constraint can never be violated",
            )
            .with_index(i)
            .with_context(dc.to_string()),
        );
    }
    out
}

fn distinct_vars(terms: &[Term]) -> bool {
    let vars: BTreeSet<Var> = terms
        .iter()
        .filter_map(|t| match t {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        })
        .collect();
    vars.len() == terms.len()
}

// Possible comparison outcomes, as a bitmask over {<, =, >}.
const LT: u8 = 1;
const EQ: u8 = 2;
const GT: u8 = 4;

fn op_mask(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => EQ,
        CmpOp::Ne => LT | GT,
        CmpOp::Lt => LT,
        CmpOp::Le => LT | EQ,
        CmpOp::Gt => GT,
        CmpOp::Ge => GT | EQ,
    }
}

/// Syntactic unsatisfiability of a comparison conjunction: per operand pair,
/// intersect the admissible {<, =, >} outcomes; refute constant/identical
/// operands directly. (Sound, not complete — no transitive closure.)
fn comparisons_contradictory(comps: &[Comparison]) -> bool {
    let mut groups: BTreeMap<(String, String), u8> = BTreeMap::new();
    for c in comps {
        // Identical operands compare equal.
        if c.left == c.right {
            if op_mask(c.op) & EQ == 0 {
                return true;
            }
            continue;
        }
        // Two constants have a known outcome.
        if let (Term::Const(a), Term::Const(b)) = (&c.left, &c.right) {
            let outcome = match a.cmp(b) {
                std::cmp::Ordering::Less => LT,
                std::cmp::Ordering::Equal => EQ,
                std::cmp::Ordering::Greater => GT,
            };
            if outcome & op_mask(c.op) == 0 {
                return true;
            }
            continue;
        }
        // Canonical orientation so `x < y` and `y > x` share a group.
        let (lk, rk) = (format!("{:?}", c.left), format!("{:?}", c.right));
        let (key, op) = if lk <= rk {
            ((lk, rk), c.op)
        } else {
            ((rk, lk), c.op.flipped())
        };
        let entry = groups.entry(key).or_insert(LT | EQ | GT);
        *entry &= op_mask(op);
        if *entry == 0 {
            return true;
        }
    }
    false
}

/// Is there a homomorphism mapping `from`'s body into `to`'s body?
/// Variables of `from` map to terms of `to`; constants must match exactly;
/// each comparison of `from` must appear (possibly flipped) in `to`.
fn body_homomorphism(from: &DenialConstraint, to: &DenialConstraint) -> bool {
    let fa = from.atoms();
    let ta = to.atoms();
    if fa.is_empty() {
        return from.comparisons().is_empty();
    }

    fn unify(pattern: &[Term], target: &[Term], map: &mut BTreeMap<Var, Term>) -> Option<Vec<Var>> {
        let mut bound_here = Vec::new();
        for (p, t) in pattern.iter().zip(target) {
            match p {
                Term::Const(c) => match t {
                    Term::Const(d) if c == d => {}
                    _ => {
                        for v in bound_here {
                            map.remove(&v);
                        }
                        return None;
                    }
                },
                Term::Var(v) => match map.get(v) {
                    Some(existing) if existing == t => {}
                    Some(_) => {
                        for v in bound_here {
                            map.remove(&v);
                        }
                        return None;
                    }
                    None => {
                        map.insert(*v, t.clone());
                        bound_here.push(*v);
                    }
                },
            }
        }
        Some(bound_here)
    }

    fn assign(
        i: usize,
        fa: &[cqa_query::Atom],
        ta: &[cqa_query::Atom],
        map: &mut BTreeMap<Var, Term>,
        from: &DenialConstraint,
        to: &DenialConstraint,
    ) -> bool {
        if i == fa.len() {
            return comparisons_map(from, to, map);
        }
        for cand in ta {
            if cand.relation != fa[i].relation || cand.terms.len() != fa[i].terms.len() {
                continue;
            }
            if let Some(bound) = unify(&fa[i].terms, &cand.terms, map) {
                if assign(i + 1, fa, ta, map, from, to) {
                    return true;
                }
                for v in bound {
                    map.remove(&v);
                }
            }
        }
        false
    }

    let mut map = BTreeMap::new();
    assign(0, fa, ta, &mut map, from, to)
}

/// Every comparison of `from`, pushed through `map`, must occur in `to`
/// verbatim or flipped.
fn comparisons_map(
    from: &DenialConstraint,
    to: &DenialConstraint,
    map: &BTreeMap<Var, Term>,
) -> bool {
    let subst = |t: &Term| -> Option<Term> {
        match t {
            Term::Const(_) => Some(t.clone()),
            Term::Var(v) => map.get(v).cloned(),
        }
    };
    from.comparisons().iter().all(|c| {
        let (Some(l), Some(r)) = (subst(&c.left), subst(&c.right)) else {
            return false;
        };
        to.comparisons().iter().any(|d| {
            (d.left == l && d.op == c.op && d.right == r)
                || (d.left == r && d.op == c.op.flipped() && d.right == l)
        })
    })
}

/// Find a cycle in the relation-level IND graph (body relation → head
/// relation per tgd), as a path of relation names ending where it started.
fn ind_cycle(sigma: &ConstraintSet) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for tgd in sigma.tgds() {
        for atom in &tgd.body().atoms {
            adj.entry(atom.relation.as_str())
                .or_default()
                .insert(tgd.head().relation.as_str());
        }
    }
    // DFS with an explicit path for cycle reconstruction.
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for &start in adj.keys() {
        if done.contains(start) {
            continue;
        }
        let mut path: Vec<&str> = Vec::new();
        let mut on_path: BTreeSet<&str> = BTreeSet::new();
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(
            start,
            adj.get(start)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default(),
        )];
        path.push(start);
        on_path.insert(start);
        while let Some((node, succs)) = stack.last_mut() {
            match succs.pop() {
                Some(next) => {
                    if on_path.contains(next) {
                        let from = path.iter().position(|&r| r == next).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            path[from..].iter().map(|r| r.to_string()).collect();
                        cycle.push(next.to_string());
                        return Some(cycle);
                    }
                    if done.contains(next) {
                        continue;
                    }
                    path.push(next);
                    on_path.insert(next);
                    let nsuccs = adj
                        .get(next)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    stack.push((next, nsuccs));
                }
                None => {
                    let node = *node;
                    done.insert(node);
                    on_path.remove(node);
                    path.pop();
                    stack.pop();
                }
            }
        }
    }
    None
}

/// Lint one conjunctive query: safety (Q001) and disconnected bodies (Q002).
pub fn lint_query(q: &ConjunctiveQuery) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if let Err(msg) = q.check_safety() {
        out.push(Diagnostic::new(DiagCode::UnsafeQueryVariable, msg));
    }
    if q.atoms.len() >= 2 {
        // Union-find over positive atoms joined by shared variables.
        let n = q.atoms.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        let mut by_var: BTreeMap<Var, usize> = BTreeMap::new();
        for (i, atom) in q.atoms.iter().enumerate() {
            for v in atom.vars() {
                match by_var.get(&v) {
                    Some(&j) => {
                        let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                        parent[a] = b;
                    }
                    None => {
                        by_var.insert(v, i);
                    }
                }
            }
        }
        let roots: BTreeSet<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
        if roots.len() > 1 {
            out.push(Diagnostic::new(
                DiagCode::CartesianProduct,
                format!(
                    "the query body falls into {} unconnected components: \
                     evaluation is a Cartesian product",
                    roots.len()
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{FunctionalDependency, KeyConstraint, Tgd};
    use cqa_query::parse_query;
    use cqa_relation::RelationSchema;

    fn dc(name: &str, body: &str) -> DenialConstraint {
        DenialConstraint::parse(name, body).unwrap()
    }

    #[test]
    fn duplicate_constraints_flagged() {
        let sigma = ConstraintSet::from_iter([
            dc("k1", "S(x), S(y), x != y"),
            dc("k1", "S(x), S(y), x != y"),
        ]);
        let diags = lint_constraints(&sigma, None);
        assert!(diags
            .iter()
            .any(|d| d.code == DiagCode::DuplicateConstraint && d.index == Some(1)));
    }

    #[test]
    fn single_atom_dc_warns_unsatisfiable() {
        let sigma = ConstraintSet::from_iter([dc("empty_r", "R(x, y)")]);
        let diags = lint_constraints(&sigma, None);
        let d = diags
            .iter()
            .find(|d| d.code == DiagCode::UnsatisfiableConstraint)
            .expect("C002 expected");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("empty"));
    }

    #[test]
    fn contradictory_comparisons_are_vacuous() {
        for body in [
            "R(x, y), x < y, x > y",
            "R(x, y), x < y, y < x",
            "R(x, y), x = y, x != y",
            "R(x, y), x != x",
        ] {
            let sigma = ConstraintSet::from_iter([dc("v", body)]);
            let diags = lint_constraints(&sigma, None);
            assert!(
                diags.iter().any(|d| d.code == DiagCode::VacuousConstraint),
                "expected C006 for {body}"
            );
        }
        // Satisfiable combinations must NOT fire.
        let sigma = ConstraintSet::from_iter([dc("ok", "R(x, y), x <= y, y <= x")]);
        let diags = lint_constraints(&sigma, None);
        assert!(!diags.iter().any(|d| d.code == DiagCode::VacuousConstraint));
    }

    #[test]
    fn subsumption_via_homomorphism() {
        // Violating `wide` requires S(x), R(x, y), S(y); `narrow` forbids
        // any S(x), R(x, y) — narrow is stronger, wide is redundant.
        let sigma = ConstraintSet::from_iter([
            dc("wide", "S(x), R(x, y), S(y)"),
            dc("narrow", "S(x), R(x, y)"),
        ]);
        let diags = lint_constraints(&sigma, None);
        let d = diags
            .iter()
            .find(|d| d.code == DiagCode::SubsumedConstraint)
            .expect("C003 expected");
        assert_eq!(d.index, Some(0));
        assert!(d.message.contains("narrow"), "{}", d.message);
        // No subsumption between genuinely incomparable constraints.
        let sigma = ConstraintSet::from_iter([dc("a", "S(x), R(x, y)"), dc("b", "S(x), T(x, y)")]);
        assert!(!lint_constraints(&sigma, None)
            .iter()
            .any(|d| d.code == DiagCode::SubsumedConstraint));
    }

    #[test]
    fn equivalent_pair_reports_only_the_later() {
        let sigma =
            ConstraintSet::from_iter([dc("first", "S(x), R(x, y)"), dc("second", "S(u), R(u, w)")]);
        let diags = lint_constraints(&sigma, None);
        let subsumed: Vec<_> = diags
            .iter()
            .filter(|d| d.code == DiagCode::SubsumedConstraint)
            .collect();
        assert_eq!(subsumed.len(), 1);
        assert_eq!(subsumed[0].index, Some(1));
    }

    #[test]
    fn fd_is_key_needs_schema() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        let fd = FunctionalDependency::new("Employee", ["Name"], ["Salary"]);
        let sigma = ConstraintSet::from_iter([fd]);
        assert!(!lint_constraints(&sigma, None)
            .iter()
            .any(|d| d.code == DiagCode::FdIsKey));
        let diags = lint_constraints(&sigma, Some(&db));
        assert!(diags.iter().any(|d| d.code == DiagCode::FdIsKey));
        // A genuine partial FD must not fire.
        let mut db2 = Database::new();
        db2.create_relation(RelationSchema::new("E", ["A", "B", "C"]))
            .unwrap();
        let fd2 = FunctionalDependency::new("E", ["A"], ["B"]);
        let sigma2 = ConstraintSet::from_iter([fd2]);
        assert!(!lint_constraints(&sigma2, Some(&db2))
            .iter()
            .any(|d| d.code == DiagCode::FdIsKey));
        // Keys are already keys; no diagnostic.
        let sigma3 = ConstraintSet::from_iter([KeyConstraint::new("Employee", ["Name"])]);
        assert!(lint_constraints(&sigma3, Some(&db)).is_empty());
    }

    #[test]
    fn ind_cycles_detected() {
        let t1 = Tgd::parse("t1", "S(x) :- R(x, y)").unwrap();
        let t2 = Tgd::parse("t2", "R(x, x) :- S(x)").unwrap();
        let sigma = ConstraintSet::from_iter([Constraint::Tgd(t1.clone()), Constraint::Tgd(t2)]);
        let diags = lint_constraints(&sigma, None);
        let d = diags
            .iter()
            .find(|d| d.code == DiagCode::IndCycle)
            .expect("C005 expected");
        assert!(d.message.contains("R") && d.message.contains("S"));
        // Acyclic INDs stay silent.
        let sigma = ConstraintSet::from_iter([Constraint::Tgd(t1)]);
        assert!(!lint_constraints(&sigma, None)
            .iter()
            .any(|d| d.code == DiagCode::IndCycle));
    }

    #[test]
    fn query_lints() {
        let q = parse_query("Q(x, y) :- R(x, z), S(y)").unwrap();
        let diags = lint_query(&q);
        assert!(diags.iter().any(|d| d.code == DiagCode::CartesianProduct));
        let q = parse_query("Q(x) :- R(x, y), S(y)").unwrap();
        assert!(lint_query(&q).is_empty());
    }
}
