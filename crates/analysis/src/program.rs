//! Program-shape analysis: classify a (possibly disjunctive) logic program
//! as **stratified**, **head-cycle-free**, or **full**, assign strata, and
//! estimate the grounding size. The input is a [`ProgramShape`] — a
//! representation-independent view of a program as rules over interned
//! symbol ids — so the same pass serves predicate-level analysis of
//! non-ground programs and atom-level analysis of ground programs without
//! this crate depending on the ASP engine.

use crate::diagnostic::{DiagCode, Diagnostic};
use crate::graph::{DepGraph, EdgeKind};
use std::collections::BTreeMap;

/// One rule, reduced to head/positive/negative symbol ids plus the data the
/// grounding estimator needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeRule {
    /// Head symbols (empty = hard constraint; >1 = disjunctive).
    pub heads: Vec<usize>,
    /// Positive body symbols.
    pub pos: Vec<usize>,
    /// Default-negated body symbols.
    pub neg: Vec<usize>,
    /// Number of distinct variables (0 for ground rules).
    pub distinct_vars: u32,
    /// Pretty-printed source text (used as diagnostic context; may be
    /// empty for synthesized rules).
    pub text: String,
}

/// A representation-independent program: interned symbols plus rules.
#[derive(Debug, Clone, Default)]
pub struct ProgramShape {
    /// Symbol names; index = id. Predicates for non-ground programs, ground
    /// atoms for ground programs.
    pub symbols: Vec<String>,
    /// The rules.
    pub rules: Vec<ShapeRule>,
    /// Size of the active constant domain (drives the grounding estimate;
    /// 0 or 1 for ground programs).
    pub domain_size: usize,
    interned: BTreeMap<String, usize>,
}

impl ProgramShape {
    /// An empty shape.
    pub fn new() -> ProgramShape {
        ProgramShape::default()
    }

    /// A shape with `count` unnamed symbols (ids `0..count`). Symbol names
    /// only appear in diagnostic messages, which the cheap classification
    /// path ([`classify_shape`]) never produces — so hot callers (solver
    /// dispatch) can skip interning entirely.
    pub fn anonymous(count: usize) -> ProgramShape {
        ProgramShape {
            symbols: vec![String::new(); count],
            ..ProgramShape::default()
        }
    }

    /// Intern a symbol name, returning its id.
    pub fn symbol(&mut self, name: &str) -> usize {
        if let Some(&id) = self.interned.get(name) {
            return id;
        }
        let id = self.symbols.len();
        self.symbols.push(name.to_string());
        self.interned.insert(name.to_string(), id);
        id
    }

    /// Add a rule.
    pub fn push_rule(&mut self, rule: ShapeRule) {
        self.rules.push(rule);
    }
}

/// The coarse solver-relevant program class, ordered easy → hard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProgramClass {
    /// Normal (non-disjunctive) and stratified: a unique stable model,
    /// computable bottom-up per stratum with no search.
    Stratified,
    /// No head cycle: possibly disjunctive or unstratified, but no two head
    /// disjuncts feed each other through positive recursion.
    HeadCycleFree,
    /// Full disjunctive with head cycles: the ΣP2-hard case.
    Full,
}

impl std::fmt::Display for ProgramClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ProgramClass::Stratified => "stratified",
            ProgramClass::HeadCycleFree => "head-cycle-free",
            ProgramClass::Full => "full",
        })
    }
}

/// Estimated grounding size above which [`DiagCode::GroundingBlowup`] fires.
pub const GROUNDING_WARN_THRESHOLD: u128 = 10_000_000;

/// Everything the analysis pass learned about a program.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// The solver-relevant class.
    pub class: ProgramClass,
    /// Strongly connected components of the dependency graph
    /// (dependency-first order).
    pub sccs: Vec<Vec<usize>>,
    /// Stratum (topological layer) per symbol.
    pub strata: Vec<usize>,
    /// Number of distinct strata.
    pub strata_count: usize,
    /// Is the program stratified (no recursion through negation)? Note a
    /// disjunctive program is never [`ProgramClass::Stratified`], but may
    /// still have stratified negation.
    pub stratified_negation: bool,
    /// Estimated number of ground rule instantiations.
    pub estimated_ground_size: u128,
    /// Findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl ProgramAnalysis {
    /// One-line human summary for harness/CLI output.
    pub fn classification_line(&self) -> String {
        format!(
            "class={} strata={} est_ground_instantiations={}",
            self.class, self.strata_count, self.estimated_ground_size
        )
    }
}

// The grounding estimator and the join planner must agree on saturating
// size arithmetic; both use the planner's helper.
use cqa_query::plan::saturating_pow;

/// The solver-relevant facts alone: what [`classify_shape`] returns.
#[derive(Debug, Clone)]
pub struct Classification {
    /// The solver-relevant class.
    pub class: ProgramClass,
    /// Stratum (topological layer) per symbol.
    pub strata: Vec<usize>,
    /// Number of distinct strata.
    pub strata_count: usize,
    /// No recursion through negation?
    pub stratified_negation: bool,
}

/// Classify a shape without producing diagnostics or estimates — the cheap
/// path for solver dispatch, linear in program size. The positive-graph
/// SCC pass (head-cycle-freeness) only runs for disjunctive programs,
/// since normal programs cannot have head cycles.
pub fn classify_shape(shape: &ProgramShape) -> Classification {
    let n = shape.symbols.len();
    let mut graph = DepGraph::new(n);
    for rule in &shape.rules {
        for &h in &rule.heads {
            for &p in &rule.pos {
                graph.add_edge(h, p, EdgeKind::Positive);
            }
            for &m in &rule.neg {
                graph.add_edge(h, m, EdgeKind::Negative);
            }
        }
    }
    let (strata, stratified_negation, _) = graph.strata();
    let strata_count = strata.iter().copied().max().map_or(0, |m| m + 1);
    let disjunctive = shape.rules.iter().any(|r| r.heads.len() > 1);
    let class = if !disjunctive {
        if stratified_negation {
            ProgramClass::Stratified
        } else {
            ProgramClass::HeadCycleFree
        }
    } else {
        let mut positive = DepGraph::new(n);
        for rule in &shape.rules {
            for &h in &rule.heads {
                for &p in &rule.pos {
                    positive.add_edge(h, p, EdgeKind::Positive);
                }
            }
        }
        let pos_of = positive.scc_index(&positive.sccs());
        let head_cycle = shape.rules.iter().any(|rule| {
            rule.heads.iter().enumerate().any(|(a, &h1)| {
                rule.heads
                    .iter()
                    .skip(a + 1)
                    .any(|&h2| h1 != h2 && pos_of[h1] == pos_of[h2])
            })
        });
        if head_cycle {
            ProgramClass::Full
        } else {
            ProgramClass::HeadCycleFree
        }
    };
    Classification {
        class,
        strata,
        strata_count,
        stratified_negation,
    }
}

/// Run the full analysis pass over a program shape.
pub fn analyze_shape(shape: &ProgramShape) -> ProgramAnalysis {
    let n = shape.symbols.len();
    let mut diagnostics = Vec::new();

    // Dependency graph (head → body) and its positive-edge restriction
    // (the latter decides head-cycle-freeness).
    let mut graph = DepGraph::new(n);
    let mut positive = DepGraph::new(n);
    for rule in &shape.rules {
        for &h in &rule.heads {
            for &p in &rule.pos {
                graph.add_edge(h, p, EdgeKind::Positive);
                positive.add_edge(h, p, EdgeKind::Positive);
            }
            for &m in &rule.neg {
                graph.add_edge(h, m, EdgeKind::Negative);
            }
        }
    }

    let sccs = graph.sccs();
    let (strata, stratified_negation, neg_witness) = graph.strata();
    let strata_count = strata.iter().copied().max().map_or(0, |m| m + 1);

    if let Some((u, v)) = neg_witness {
        diagnostics.push(Diagnostic::new(
            DiagCode::RecursionThroughNegation,
            format!(
                "`{}` depends negatively on `{}` inside a recursive component; \
                     stable-model search is required",
                shape.symbols[u], shape.symbols[v]
            ),
        ));
    }

    // Head cycles: two distinct head disjuncts of one rule in one SCC of
    // the positive graph (Ben-Eliyahu & Dechter head-cycle-freeness).
    let disjunctive = shape.rules.iter().any(|r| r.heads.len() > 1);
    let pos_sccs = positive.sccs();
    let pos_of = positive.scc_index(&pos_sccs);
    let mut head_cycle = false;
    for (i, rule) in shape.rules.iter().enumerate() {
        for (a, &h1) in rule.heads.iter().enumerate() {
            for &h2 in rule.heads.iter().skip(a + 1) {
                if h1 != h2 && pos_of[h1] == pos_of[h2] {
                    head_cycle = true;
                    let mut d = Diagnostic::new(
                        DiagCode::HeadCycle,
                        format!(
                            "head disjuncts `{}` and `{}` share a positive recursive \
                             component: the program is not head-cycle-free",
                            shape.symbols[h1], shape.symbols[h2]
                        ),
                    )
                    .with_index(i);
                    if !rule.text.is_empty() {
                        d = d.with_context(rule.text.clone());
                    }
                    diagnostics.push(d);
                }
            }
        }
    }

    let class = if !disjunctive && stratified_negation {
        ProgramClass::Stratified
    } else if head_cycle {
        ProgramClass::Full
    } else {
        ProgramClass::HeadCycleFree
    };

    // Duplicate rules (verbatim: same text when available, same shape
    // otherwise — predicate-level shapes erase arguments, so the shape
    // alone would over-report).
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for (i, rule) in shape.rules.iter().enumerate() {
        let key = if rule.text.is_empty() {
            format!("{:?}|{:?}|{:?}", rule.heads, rule.pos, rule.neg)
        } else {
            rule.text.clone()
        };
        match seen.get(&key) {
            Some(&first) => {
                let mut d = Diagnostic::new(
                    DiagCode::DuplicateRule,
                    format!("rule {i} repeats rule {first}"),
                )
                .with_index(i);
                if !rule.text.is_empty() {
                    d = d.with_context(rule.text.clone());
                }
                diagnostics.push(d);
            }
            None => {
                seen.insert(key, i);
            }
        }
    }

    // Positive body symbols never defined: the rule can never fire.
    let mut defined = vec![false; n];
    for rule in &shape.rules {
        for &h in &rule.heads {
            defined[h] = true;
        }
    }
    let mut reported = vec![false; n];
    for (i, rule) in shape.rules.iter().enumerate() {
        for &p in &rule.pos {
            if !defined[p] && !reported[p] {
                reported[p] = true;
                let mut d = Diagnostic::new(
                    DiagCode::UndefinedPredicate,
                    format!(
                        "`{}` occurs positively in a body but has no defining rule \
                         or fact: the rule can never fire",
                        shape.symbols[p]
                    ),
                )
                .with_index(i);
                if !rule.text.is_empty() {
                    d = d.with_context(rule.text.clone());
                }
                diagnostics.push(d);
            }
        }
    }

    // Grounding estimate: Σ_rules |domain|^{distinct vars}. An
    // over-approximation of the naive instantiation count — exactly the
    // quantity that blows up (the paper's §4 repair programs are the
    // motivating case: k-variable denial constraints ground as |adom|^k).
    let domain = shape.domain_size.max(1) as u128;
    let mut estimated: u128 = 0;
    for rule in &shape.rules {
        estimated = estimated.saturating_add(saturating_pow(domain, rule.distinct_vars));
    }
    if estimated > GROUNDING_WARN_THRESHOLD {
        let worst = shape
            .rules
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| r.distinct_vars)
            .map(|(i, r)| (i, r.distinct_vars, r.text.clone()));
        let mut d = Diagnostic::new(
            DiagCode::GroundingBlowup,
            format!(
                "estimated grounding size {estimated} exceeds {GROUNDING_WARN_THRESHOLD} \
                 (domain {} constants)",
                shape.domain_size
            ),
        );
        if let Some((i, vars, text)) = worst {
            d = d.with_index(i);
            if !text.is_empty() {
                d = d.with_context(format!("{text}  ({vars} variables)"));
            }
        }
        diagnostics.push(d);
    }

    ProgramAnalysis {
        class,
        sccs,
        strata,
        strata_count,
        stratified_negation,
        estimated_ground_size: estimated,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(heads: &[usize], pos: &[usize], neg: &[usize], vars: u32) -> ShapeRule {
        ShapeRule {
            heads: heads.to_vec(),
            pos: pos.to_vec(),
            neg: neg.to_vec(),
            distinct_vars: vars,
            text: String::new(),
        }
    }

    #[test]
    fn transitive_closure_is_stratified_single_stratum() {
        let mut s = ProgramShape::new();
        let e = s.symbol("e");
        let t = s.symbol("t");
        s.push_rule(rule(&[t], &[e], &[], 2));
        s.push_rule(rule(&[t], &[e, t], &[], 3));
        s.domain_size = 10;
        let a = analyze_shape(&s);
        assert_eq!(a.class, ProgramClass::Stratified);
        assert_eq!(a.strata[e], 0);
        assert_eq!(a.strata[t], 0);
        assert_eq!(a.strata_count, 1);
        assert_eq!(a.estimated_ground_size, 100 + 1000);
    }

    #[test]
    fn negation_layers_strata() {
        // reach :- edge. unreach :- node, not reach.
        let mut s = ProgramShape::new();
        let edge = s.symbol("edge");
        let node = s.symbol("node");
        let reach = s.symbol("reach");
        let unreach = s.symbol("unreach");
        s.push_rule(rule(&[reach], &[edge], &[], 1));
        s.push_rule(rule(&[unreach], &[node], &[reach], 1));
        let a = analyze_shape(&s);
        assert_eq!(a.class, ProgramClass::Stratified);
        assert_eq!(a.strata[reach], 0);
        assert_eq!(a.strata[unreach], 1);
        assert_eq!(a.strata_count, 2);
    }

    #[test]
    fn even_loop_is_not_stratified() {
        let mut s = ProgramShape::new();
        let a_ = s.symbol("a");
        let b = s.symbol("b");
        s.push_rule(rule(&[a_], &[], &[b], 0));
        s.push_rule(rule(&[b], &[], &[a_], 0));
        let a = analyze_shape(&s);
        assert_eq!(a.class, ProgramClass::HeadCycleFree);
        assert!(!a.stratified_negation);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::RecursionThroughNegation));
    }

    #[test]
    fn head_cycle_makes_full_class() {
        // a | b.  a :- b.  b :- a.  (a, b in one positive SCC, co-headed)
        let mut s = ProgramShape::new();
        let a_ = s.symbol("a");
        let b = s.symbol("b");
        s.push_rule(rule(&[a_, b], &[], &[], 0));
        s.push_rule(rule(&[a_], &[b], &[], 0));
        s.push_rule(rule(&[b], &[a_], &[], 0));
        let a = analyze_shape(&s);
        assert_eq!(a.class, ProgramClass::Full);
        assert!(a.diagnostics.iter().any(|d| d.code == DiagCode::HeadCycle));
    }

    #[test]
    fn disjunction_without_cycle_is_hcf() {
        let mut s = ProgramShape::new();
        let a_ = s.symbol("a");
        let b = s.symbol("b");
        s.push_rule(rule(&[a_, b], &[], &[], 0));
        let a = analyze_shape(&s);
        assert_eq!(a.class, ProgramClass::HeadCycleFree);
    }

    #[test]
    fn undefined_and_duplicate_rules_flagged() {
        let mut s = ProgramShape::new();
        let p = s.symbol("p");
        let q = s.symbol("q");
        let mut r1 = rule(&[p], &[q], &[], 1);
        r1.text = "p(x) :- q(x).".into();
        s.push_rule(r1.clone());
        s.push_rule(r1);
        let a = analyze_shape(&s);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::UndefinedPredicate));
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::DuplicateRule && d.index == Some(1)));
    }

    #[test]
    fn grounding_blowup_warns() {
        let mut s = ProgramShape::new();
        let p = s.symbol("p");
        let q = s.symbol("q");
        s.push_rule(rule(&[p], &[q], &[], 9));
        s.push_rule(rule(&[q], &[], &[], 0));
        s.domain_size = 100; // 100^9 = 10^18 ≫ threshold
        let a = analyze_shape(&s);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::GroundingBlowup));
        assert!(a.estimated_ground_size > GROUNDING_WARN_THRESHOLD);
    }
}
