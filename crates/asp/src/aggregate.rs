//! Aggregate-stratified `#count` rules.
//!
//! The DLV-Complex extensions the paper uses for responsibilities
//! (`preresp(t, n) :- #count{t' : CauCon(t, t')} = n`, Example 7.2) are
//! *stratified on top of* the stable models: the counted predicate is fully
//! decided by the model, so the aggregate head atoms can be derived by a
//! post-pass per model. [`apply_count_rules`] implements that pass.

use crate::ast::{AspProgram, CountRule};
use crate::ground::{GroundAtom, GroundProgram};
use crate::solve::Model;
use cqa_relation::{Tuple, Value};
use std::collections::BTreeMap;

/// Derive the count-rule heads for one stable model.
///
/// For each [`CountRule`], source atoms of the model are grouped by the rule's
/// `group_positions`; one head atom `head(ḡ, n)` is derived per non-empty
/// group, with `n` the number of *distinct* source atoms in the group.
/// Groups with no source atoms derive nothing (matching `#count{…} = n`
/// with `n ≥ 1` joins; a zero count has no witnessing group key).
pub fn apply_count_rules(
    program: &AspProgram,
    ground: &GroundProgram,
    model: &Model,
) -> Vec<GroundAtom> {
    let mut out = Vec::new();
    for rule in &program.counts {
        out.extend(apply_one(rule, ground, model));
    }
    out.sort();
    out.dedup();
    out
}

fn apply_one(rule: &CountRule, ground: &GroundProgram, model: &Model) -> Vec<GroundAtom> {
    let mut groups: BTreeMap<Tuple, std::collections::BTreeSet<Tuple>> = BTreeMap::new();
    for &id in model {
        let atom = ground.atom(id);
        if atom.predicate != rule.source_predicate {
            continue;
        }
        if rule.group_positions.iter().any(|&p| p >= atom.args.arity()) {
            continue;
        }
        let key = atom.args.project(&rule.group_positions);
        let rest_positions: Vec<usize> = (0..atom.args.arity())
            .filter(|p| !rule.group_positions.contains(p))
            .collect();
        groups
            .entry(key)
            .or_default()
            .insert(atom.args.project(&rest_positions));
    }
    groups
        .into_iter()
        .map(|(key, counted)| {
            let mut args: Vec<Value> = key.values().to_vec();
            args.push(Value::Int(counted.len() as i64));
            GroundAtom {
                predicate: rule.head_predicate.clone(),
                args: Tuple::new(args),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::ground;
    use crate::parser::parse_asp;
    use crate::solve::stable_models;
    use cqa_relation::tuple;

    #[test]
    fn counts_group_by_first_position() {
        let mut p = parse_asp(
            "caucon(T1, T3).\n\
             caucon(T1, T4).\n\
             caucon(T2, T3).",
        )
        .unwrap();
        p.counts.push(CountRule {
            head_predicate: "preresp".into(),
            source_predicate: "caucon".into(),
            group_positions: vec![0],
        });
        let g = ground(&p).unwrap();
        let models = stable_models(&g);
        assert_eq!(models.len(), 1);
        let derived = apply_count_rules(&p, &g, &models[0]);
        assert_eq!(derived.len(), 2);
        assert!(derived.contains(&GroundAtom {
            predicate: "preresp".into(),
            args: tuple!["T1", 2],
        }));
        assert!(derived.contains(&GroundAtom {
            predicate: "preresp".into(),
            args: tuple!["T2", 1],
        }));
    }

    #[test]
    fn distinct_counting() {
        let mut p = parse_asp(
            "s(A, 1).\n\
             s(A, 1).\n\
             s(A, 2).",
        )
        .unwrap();
        p.counts.push(CountRule {
            head_predicate: "n".into(),
            source_predicate: "s".into(),
            group_positions: vec![0],
        });
        let g = ground(&p).unwrap();
        let models = stable_models(&g);
        let derived = apply_count_rules(&p, &g, &models[0]);
        // Duplicate facts collapse (set semantics): count = 2.
        assert_eq!(derived[0].args, tuple!["A", 2]);
    }

    #[test]
    fn per_model_counts_differ() {
        let mut p = parse_asp(
            "pick(A) | pick(B).\n\
             chosen(x, 1) :- pick(x).",
        )
        .unwrap();
        p.counts.push(CountRule {
            head_predicate: "n".into(),
            source_predicate: "chosen".into(),
            group_positions: vec![0],
        });
        let g = ground(&p).unwrap();
        let models = stable_models(&g);
        assert_eq!(models.len(), 2);
        for m in &models {
            let derived = apply_count_rules(&p, &g, m);
            assert_eq!(derived.len(), 1); // only the chosen branch counts
            assert_eq!(derived[0].args.at(1), &cqa_relation::Value::int(1));
        }
    }

    #[test]
    fn empty_source_derives_nothing() {
        let mut p = parse_asp("other(A).").unwrap();
        p.counts.push(CountRule {
            head_predicate: "n".into(),
            source_predicate: "missing".into(),
            group_positions: vec![0],
        });
        let g = ground(&p).unwrap();
        let models = stable_models(&g);
        assert!(apply_count_rules(&p, &g, &models[0]).is_empty());
    }
}
