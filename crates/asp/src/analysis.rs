//! Adapters from ASP programs to `cqa-analysis`'s neutral [`ProgramShape`]
//! IR, at two granularities:
//!
//! * [`predicate_shape`] — one symbol per *predicate* of a non-ground
//!   program. Cheap, and the right level for the `analyze` CLI and the
//!   grounding-size estimate (it still sees variable counts).
//! * [`atom_shape`] — one symbol per *ground atom* of a [`GroundProgram`].
//!   Exact, and the level at which [`crate::solve`] decides whether the
//!   stratified bottom-up fast path applies: grounding can remove
//!   recursion-through-negation that exists at the predicate level (negated
//!   atoms outside the universe are dropped), so a predicate-level
//!   "unstratified" program may still ground to a stratified one.

use crate::ast::AspProgram;
use crate::ground::GroundProgram;
use cqa_analysis::{
    analyze_shape, classify_shape, Classification, ProgramAnalysis, ProgramShape, ShapeRule,
};
use cqa_query::{Term, Var};
use std::collections::BTreeSet;

/// Predicate-level shape of a non-ground program. The domain size is the
/// number of distinct constants appearing in the program.
pub fn predicate_shape(program: &AspProgram) -> ProgramShape {
    let mut shape = ProgramShape::new();
    let mut constants: BTreeSet<String> = BTreeSet::new();
    let mut collect_consts = |terms: &[Term]| {
        for t in terms {
            if let Term::Const(c) = t {
                constants.insert(c.to_string());
            }
        }
    };
    for rule in &program.rules {
        for atom in rule.head.iter().chain(&rule.pos).chain(&rule.neg) {
            collect_consts(&atom.terms);
        }
        for c in &rule.comparisons {
            collect_consts(std::slice::from_ref(&c.left));
            collect_consts(std::slice::from_ref(&c.right));
        }
    }
    for (i, rule) in program.rules.iter().enumerate() {
        let heads = rule
            .head
            .iter()
            .map(|a| shape.symbol(&a.relation))
            .collect();
        let pos = rule.pos.iter().map(|a| shape.symbol(&a.relation)).collect();
        let neg = rule.neg.iter().map(|a| shape.symbol(&a.relation)).collect();
        let vars: BTreeSet<Var> = rule
            .head
            .iter()
            .chain(&rule.pos)
            .chain(&rule.neg)
            .flat_map(|a| a.vars())
            .chain(rule.comparisons.iter().flat_map(|c| c.vars()))
            .collect();
        shape.push_rule(ShapeRule {
            heads,
            pos,
            neg,
            distinct_vars: vars.len() as u32,
            text: program.rule_text(i),
        });
    }
    shape.domain_size = constants.len();
    shape
}

/// Atom-level shape of a ground program. Symbol ids coincide with
/// [`crate::ground::AtomId`] values, so strata returned by
/// [`analyze_ground`] can be indexed by atom id directly.
pub fn atom_shape(g: &GroundProgram) -> ProgramShape {
    let mut shape = ProgramShape::new();
    for (id, atom) in g.atom_table.iter().enumerate() {
        // Keep symbol ids aligned with atom ids even if two atoms happen to
        // print identically (e.g. an integer and a string with equal text).
        let base = atom.to_string();
        let mut name = base.clone();
        let mut k = 0usize;
        while shape.symbol(&name) != id {
            k += 1;
            name = format!("{base}#{k}");
        }
    }
    for rule in &g.rules {
        shape.push_rule(ShapeRule {
            heads: rule.head.iter().map(|a| a.0 as usize).collect(),
            pos: rule.pos.iter().map(|a| a.0 as usize).collect(),
            neg: rule.neg.iter().map(|a| a.0 as usize).collect(),
            distinct_vars: 0,
            text: String::new(),
        });
    }
    shape.domain_size = 1;
    shape
}

/// Analyze a non-ground program at the predicate level.
pub fn analyze_program(program: &AspProgram) -> ProgramAnalysis {
    analyze_shape(&predicate_shape(program))
}

/// Analyze a ground program at the atom level.
pub fn analyze_ground(g: &GroundProgram) -> ProgramAnalysis {
    analyze_shape(&atom_shape(g))
}

/// Cheap atom-level classification: no atom names, no diagnostics, no
/// estimates — just the class and the strata, linear in program size.
/// ([`crate::solve::stable_models_stratified`] inlines an equivalent check
/// to skip even the shape allocations; this is the reusable entry point.)
pub fn classify_ground(g: &GroundProgram) -> Classification {
    let mut shape = ProgramShape::anonymous(g.atom_count());
    for rule in &g.rules {
        shape.push_rule(ShapeRule {
            heads: rule.head.iter().map(|a| a.0 as usize).collect(),
            pos: rule.pos.iter().map(|a| a.0 as usize).collect(),
            neg: rule.neg.iter().map(|a| a.0 as usize).collect(),
            distinct_vars: 0,
            text: String::new(),
        });
    }
    shape.domain_size = 1;
    classify_shape(&shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_asp;
    use cqa_analysis::{DiagCode, ProgramClass};

    #[test]
    fn transitive_closure_classified_stratified() {
        let p = parse_asp(
            "e(1, 2).\ne(2, 3).\n\
             t(x, y) :- e(x, y).\n\
             t(x, z) :- e(x, y), t(y, z).",
        )
        .unwrap();
        let a = analyze_program(&p);
        assert_eq!(a.class, ProgramClass::Stratified);
        assert_eq!(a.strata_count, 1);
        // 3 constants; facts are free, the two rules ground as 3² + 3³.
        assert_eq!(a.estimated_ground_size, 2 + 9 + 27);
    }

    #[test]
    fn negation_layers_and_diagnostic_context() {
        let p = parse_asp(
            "node(A).\nnode(B).\nedge(A, B).\n\
             reach(x) :- edge(x, y).\n\
             isolated(x) :- node(x), not reach(x).",
        )
        .unwrap();
        let a = analyze_program(&p);
        assert_eq!(a.class, ProgramClass::Stratified);
        assert_eq!(a.strata_count, 2);
    }

    #[test]
    fn classify_ground_agrees_with_full_analysis() {
        for src in [
            "p(A).\nq(x) :- p(x), not r(x).\nr(B).",
            "a :- not b().\nb :- not a().",
            "e(1, 2).\ne(2, 3).\nt(x, y) :- e(x, y).\nt(x, z) :- e(x, y), t(y, z).",
        ] {
            let p = parse_asp(src).unwrap();
            let g = crate::ground::ground(&p).unwrap();
            let full = analyze_ground(&g);
            let cheap = classify_ground(&g);
            assert_eq!(cheap.class, full.class, "{src}");
            assert_eq!(cheap.strata, full.strata, "{src}");
            assert_eq!(cheap.strata_count, full.strata_count, "{src}");
            assert_eq!(cheap.stratified_negation, full.stratified_negation, "{src}");
        }
    }

    #[test]
    fn even_loop_unstratified_at_predicate_level() {
        let p = parse_asp("a :- not b().\nb :- not a().").unwrap();
        let a = analyze_program(&p);
        assert_ne!(a.class, ProgramClass::Stratified);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::RecursionThroughNegation));
        // And it stays unstratified after grounding.
        let g = crate::ground::ground(&p).unwrap();
        assert_ne!(analyze_ground(&g).class, ProgramClass::Stratified);
    }

    #[test]
    fn grounding_can_make_a_program_stratified() {
        // At the predicate level p depends negatively on itself (through q),
        // but q(B) is underivable, so the ground program is definite.
        let p = parse_asp(
            "p(A).\n\
             q(x) :- p(x), not r(x).\n\
             r(B).",
        )
        .unwrap();
        let g = crate::ground::ground(&p).unwrap();
        let a = analyze_ground(&g);
        assert_eq!(a.class, ProgramClass::Stratified);
    }

    #[test]
    fn repair_program_shape_is_hcf_disjunctive() {
        let p = parse_asp(
            "s(4, A4).\n\
             sp(t1, x, D) | sp(t3, y, D) :- s(t1, x), s(t3, y).\n\
             sp(t, x, S) :- s(t, x), not sp(t, x, D).",
        )
        .unwrap();
        let a = analyze_program(&p);
        // Disjunctive, so never Stratified; sp/sp disjuncts share the trivial
        // SCC {sp} → head cycle at the predicate level.
        assert_ne!(a.class, ProgramClass::Stratified);
    }
}
