//! Abstract syntax for disjunctive answer-set programs.
//!
//! Reuses the term/atom/variable machinery of `cqa-query`; an ASP rule adds
//! a *disjunctive head* and default negation in the body, plus DLV-style
//! weak constraints (`:~ body. [w@l]`) used for C-repairs (§4.1, Ex. 4.2).

use cqa_analysis::{DiagCode, Diagnostic};
use cqa_query::{Atom, Comparison, Term, Var, VarTable};
use std::collections::BTreeSet;
use std::fmt;

/// A disjunctive rule `h₁ | … | hₘ :- b₁, …, not c₁, …, cmp…`.
///
/// `head.is_empty()` makes it a *hard constraint* (`:- body`): no stable
/// model may satisfy the body.
#[derive(Debug, Clone, PartialEq)]
pub struct AspRule {
    /// Head disjuncts (empty = hard constraint).
    pub head: Vec<Atom>,
    /// Positive body atoms.
    pub pos: Vec<Atom>,
    /// Default-negated body atoms.
    pub neg: Vec<Atom>,
    /// Built-in comparisons.
    pub comparisons: Vec<Comparison>,
}

impl AspRule {
    /// A ground fact.
    pub fn fact(atom: Atom) -> AspRule {
        AspRule {
            head: vec![atom],
            pos: Vec::new(),
            neg: Vec::new(),
            comparisons: Vec::new(),
        }
    }

    /// Is this a fact (single ground head, empty body)?
    pub fn is_fact(&self) -> bool {
        self.head.len() == 1
            && self.pos.is_empty()
            && self.neg.is_empty()
            && self.comparisons.is_empty()
            && self.head[0].vars().next().is_none()
    }

    /// Check safety: every head/neg/comparison variable occurs in `pos`.
    ///
    /// On failure, returns an [`DiagCode::UnsafeVariable`] (`A001`)
    /// diagnostic naming the offending variable, with the rule's pretty
    /// print as source context.
    pub fn check_safety(&self, vars: &VarTable) -> Result<(), Diagnostic> {
        let bound: BTreeSet<Var> = self.pos.iter().flat_map(|a| a.vars()).collect();
        let mut need: Vec<Var> = Vec::new();
        need.extend(self.head.iter().flat_map(|a| a.vars()));
        need.extend(self.neg.iter().flat_map(|a| a.vars()));
        need.extend(self.comparisons.iter().flat_map(|c| c.vars()));
        for v in need {
            if !bound.contains(&v) {
                return Err(Diagnostic::new(
                    DiagCode::UnsafeVariable,
                    format!(
                        "unsafe variable `{}`: not bound by any positive body atom",
                        vars.name(v)
                    ),
                )
                .with_context(rule_to_string(self, vars)));
            }
        }
        Ok(())
    }
}

/// A weak constraint `:~ body. [weight@level]` (DLV semantics: minimize
/// total weight of violated instances, lexicographically by level, higher
/// levels first).
#[derive(Debug, Clone, PartialEq)]
pub struct WeakConstraint {
    /// Positive body atoms.
    pub pos: Vec<Atom>,
    /// Default-negated body atoms.
    pub neg: Vec<Atom>,
    /// Built-in comparisons.
    pub comparisons: Vec<Comparison>,
    /// Violation weight.
    pub weight: i64,
    /// Priority level (higher = more important).
    pub level: u32,
}

/// A stratified counting rule `head(ḡ, n) :- #count{ source(ḡ, x) } = n`,
/// evaluated *after* stable models are computed (aggregate stratification).
///
/// `group_positions` are the positions of `source` that form the group key;
/// the remaining positions are counted (as distinct tuples). The head must
/// have arity `group_positions.len() + 1`, the last position receiving the
/// count. This is exactly what the responsibility computation of Example 7.2
/// needs (`preresp(t, n) :- #count{t' : CauCon(t, t')} = n`).
#[derive(Debug, Clone, PartialEq)]
pub struct CountRule {
    /// Head predicate name.
    pub head_predicate: String,
    /// Source predicate whose atoms are counted.
    pub source_predicate: String,
    /// Positions of the source atom forming the group key.
    pub group_positions: Vec<usize>,
}

/// A disjunctive ASP program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AspProgram {
    /// The rules (facts included).
    pub rules: Vec<AspRule>,
    /// Weak constraints.
    pub weak: Vec<WeakConstraint>,
    /// Aggregate-stratified counting rules.
    pub counts: Vec<CountRule>,
    /// Shared variable names.
    pub vars: VarTable,
}

impl AspProgram {
    /// Empty program.
    pub fn new() -> AspProgram {
        AspProgram::default()
    }

    /// Add a rule.
    pub fn push(&mut self, rule: AspRule) {
        self.rules.push(rule);
    }

    /// Add a ground fact.
    pub fn push_fact(&mut self, atom: Atom) {
        self.rules.push(AspRule::fact(atom));
    }

    /// Check safety of every rule and weak constraint. The returned
    /// diagnostic carries the offending rule's index and pretty print.
    pub fn check_safety(&self) -> Result<(), Diagnostic> {
        for (i, r) in self.rules.iter().enumerate() {
            r.check_safety(&self.vars).map_err(|d| d.with_index(i))?;
        }
        for (i, w) in self.weak.iter().enumerate() {
            let shim = AspRule {
                head: Vec::new(),
                pos: w.pos.clone(),
                neg: w.neg.clone(),
                comparisons: w.comparisons.clone(),
            };
            shim.check_safety(&self.vars).map_err(|d| {
                let mut d = d.with_index(i);
                d.message = format!("in weak constraint: {}", d.message);
                d
            })?;
        }
        Ok(())
    }

    /// Pretty print of rule `i` (for diagnostics).
    pub fn rule_text(&self, i: usize) -> String {
        rule_to_string(&self.rules[i], &self.vars)
    }
}

fn atom_to_string(atom: &Atom, vars: &VarTable) -> String {
    let mut s = atom.relation.clone();
    if !atom.terms.is_empty() {
        s.push('(');
        for (i, t) in atom.terms.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            match t {
                Term::Var(v) => s.push_str(vars.name(*v)),
                Term::Const(c) => s.push_str(&c.to_string()),
            }
        }
        s.push(')');
    }
    s
}

/// Pretty print one rule exactly as [`AspProgram`]'s `Display` does.
pub fn rule_to_string(rule: &AspRule, vars: &VarTable) -> String {
    let mut s = String::new();
    for (i, h) in rule.head.iter().enumerate() {
        if i > 0 {
            s.push_str(" | ");
        }
        s.push_str(&atom_to_string(h, vars));
    }
    let has_body = !rule.pos.is_empty() || !rule.neg.is_empty() || !rule.comparisons.is_empty();
    if has_body {
        s.push_str(" :- ");
        let mut first = true;
        for a in &rule.pos {
            if !std::mem::take(&mut first) {
                s.push_str(", ");
            }
            s.push_str(&atom_to_string(a, vars));
        }
        for a in &rule.neg {
            if !std::mem::take(&mut first) {
                s.push_str(", ");
            }
            s.push_str("not ");
            s.push_str(&atom_to_string(a, vars));
        }
        for c in &rule.comparisons {
            if !std::mem::take(&mut first) {
                s.push_str(", ");
            }
            let t = |t: &Term| match t {
                Term::Var(v) => vars.name(*v).to_string(),
                Term::Const(c) => c.to_string(),
            };
            s.push_str(&format!("{} {} {}", t(&c.left), c.op, t(&c.right)));
        }
    }
    s.push('.');
    s
}

fn write_atom(f: &mut fmt::Formatter<'_>, atom: &Atom, vars: &VarTable) -> fmt::Result {
    write!(f, "{}", atom.relation)?;
    if atom.terms.is_empty() {
        return Ok(());
    }
    write!(f, "(")?;
    for (i, t) in atom.terms.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        match t {
            Term::Var(v) => write!(f, "{}", vars.name(*v))?,
            Term::Const(c) => write!(f, "{c}")?,
        }
    }
    write!(f, ")")
}

impl fmt::Display for AspProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            for (i, h) in r.head.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write_atom(f, h, &self.vars)?;
            }
            let has_body = !r.pos.is_empty() || !r.neg.is_empty() || !r.comparisons.is_empty();
            if has_body {
                write!(f, " :- ")?;
                let mut first = true;
                for a in &r.pos {
                    if !std::mem::take(&mut first) {
                        write!(f, ", ")?;
                    }
                    write_atom(f, a, &self.vars)?;
                }
                for a in &r.neg {
                    if !std::mem::take(&mut first) {
                        write!(f, ", ")?;
                    }
                    write!(f, "not ")?;
                    write_atom(f, a, &self.vars)?;
                }
                for c in &r.comparisons {
                    if !std::mem::take(&mut first) {
                        write!(f, ", ")?;
                    }
                    let t = |t: &Term| match t {
                        Term::Var(v) => self.vars.name(*v).to_string(),
                        Term::Const(c) => c.to_string(),
                    };
                    write!(f, "{} {} {}", t(&c.left), c.op, t(&c.right))?;
                }
            }
            writeln!(f, ".")?;
        }
        for w in &self.weak {
            write!(f, ":~ ")?;
            let mut first = true;
            for a in &w.pos {
                if !std::mem::take(&mut first) {
                    write!(f, ", ")?;
                }
                write_atom(f, a, &self.vars)?;
            }
            for a in &w.neg {
                if !std::mem::take(&mut first) {
                    write!(f, ", ")?;
                }
                write!(f, "not ")?;
                write_atom(f, a, &self.vars)?;
            }
            writeln!(f, ". [{}@{}]", w.weight, w.level)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relation::Value;

    #[test]
    fn fact_detection() {
        let f = AspRule::fact(Atom::new("p", vec![Term::Const(Value::int(1))]));
        assert!(f.is_fact());
        let mut vars = VarTable::new();
        let x = vars.var("x");
        let r = AspRule {
            head: vec![Atom::new("p", vec![Term::Var(x)])],
            pos: vec![Atom::new("q", vec![Term::Var(x)])],
            neg: vec![],
            comparisons: vec![],
        };
        assert!(!r.is_fact());
        assert!(r.check_safety(&vars).is_ok());
    }

    #[test]
    fn safety_rejects_unbound_head_var() {
        let mut vars = VarTable::new();
        let x = vars.var("x");
        let r = AspRule {
            head: vec![Atom::new("p", vec![Term::Var(x)])],
            pos: vec![],
            neg: vec![],
            comparisons: vec![],
        };
        assert!(r.check_safety(&vars).is_err());
    }

    #[test]
    fn program_display_roundtrips_shape() {
        let mut p = AspProgram::new();
        let x = p.vars.var("x");
        p.push(AspRule {
            head: vec![
                Atom::new("a", vec![Term::Var(x)]),
                Atom::new("b", vec![Term::Var(x)]),
            ],
            pos: vec![Atom::new("c", vec![Term::Var(x)])],
            neg: vec![Atom::new("d", vec![Term::Var(x)])],
            comparisons: vec![],
        });
        p.weak.push(WeakConstraint {
            pos: vec![Atom::new("a", vec![Term::Var(x)])],
            neg: vec![],
            comparisons: vec![],
            weight: 1,
            level: 1,
        });
        let s = p.to_string();
        assert!(s.contains("a(x) | b(x) :- c(x), not d(x)."));
        assert!(s.contains(":~ a(x). [1@1]"));
    }
}
