//! Grounding: from a safe, variable-carrying program to a propositional one.
//!
//! The grounder computes a bottom-up **over-approximation** of the derivable
//! atoms (treating every head disjunct as derivable and ignoring default
//! negation — a standard sound over-estimate), then instantiates each rule
//! once per satisfying assignment of its positive body over that universe.
//! Comparisons are evaluated away during instantiation; negative literals on
//! atoms outside the universe are dropped (they can never hold).
//!
//! Both phases run on the `cqa-exec` pool without giving up determinism:
//!
//! * The universe fix-point proceeds stratum by stratum (predicate strata
//!   from `cqa-analysis`, so a rule never runs before the strata feeding it
//!   have converged) and, within a stratum, in *Jacobi rounds*: every rule
//!   of the round matches against the same immutable snapshot in parallel,
//!   and the additions are merged in rule order afterwards. The merge
//!   schedule — and hence the universe, including its per-predicate tuple
//!   order — is a function of the program alone, not of the thread count.
//! * Instantiation grounds each rule independently in parallel, producing
//!   *proto* rules over `(predicate, args)` pairs; atom-id interning then
//!   happens sequentially in rule order, so `atom_table` numbering is
//!   byte-identical at every thread count.

// audit:exponential — grounding can blow up on join-heavy rules; every search loop must thread a Budget.
use crate::ast::AspProgram;
use cqa_exec::{Budget, Outcome};
use cqa_query::{match_atom, Atom, Bindings, NullSemantics};
use cqa_relation::{fxhash::FxHashMap, Tuple, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A ground atom id (index into [`GroundProgram::atom_table`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomId(pub u32);

/// A ground atom: predicate plus constant tuple.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroundAtom {
    /// Predicate name.
    pub predicate: String,
    /// Constant arguments.
    pub args: Tuple,
}

impl fmt::Display for GroundAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.args.arity() == 0 {
            write!(f, "{}", self.predicate)
        } else {
            write!(f, "{}{}", self.predicate, self.args)
        }
    }
}

/// A ground rule over atom ids.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct GroundRule {
    /// Head disjuncts (empty = hard constraint).
    pub head: Vec<AtomId>,
    /// Positive body.
    pub pos: Vec<AtomId>,
    /// Negative body.
    pub neg: Vec<AtomId>,
}

/// A ground weak constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundWeak {
    /// Positive body.
    pub pos: Vec<AtomId>,
    /// Negative body.
    pub neg: Vec<AtomId>,
    /// Violation weight.
    pub weight: i64,
    /// Priority level.
    pub level: u32,
}

/// The result of grounding.
#[derive(Debug, Clone, Default)]
pub struct GroundProgram {
    /// Ground rules (deduplicated, deterministic order).
    pub rules: Vec<GroundRule>,
    /// Ground weak constraints.
    pub weak: Vec<GroundWeak>,
    /// Id → ground atom.
    pub atom_table: Vec<GroundAtom>,
}

impl GroundProgram {
    /// Number of distinct ground atoms.
    pub fn atom_count(&self) -> usize {
        self.atom_table.len()
    }

    /// The ground atom for an id.
    pub fn atom(&self, id: AtomId) -> &GroundAtom {
        &self.atom_table[id.0 as usize]
    }

    /// Find the id of a ground atom, if present.
    pub fn lookup(&self, predicate: &str, args: &Tuple) -> Option<AtomId> {
        self.atom_table
            .iter()
            .position(|a| a.predicate == predicate && &a.args == args)
            .map(|i| AtomId(i as u32))
    }
}

struct Interner {
    map: FxHashMap<(String, Tuple), AtomId>,
    table: Vec<GroundAtom>,
}

impl Interner {
    fn intern(&mut self, predicate: &str, args: Tuple) -> AtomId {
        if let Some(&id) = self.map.get(&(predicate.to_string(), args.clone())) {
            return id;
        }
        let id = AtomId(self.table.len() as u32);
        self.table.push(GroundAtom {
            predicate: predicate.to_string(),
            args: args.clone(),
        });
        self.map.insert((predicate.to_string(), args), id);
        id
    }
}

/// The universe of potentially-derivable atoms, stored per predicate for
/// body matching.
#[derive(Default)]
struct Universe {
    by_predicate: BTreeMap<String, Vec<Tuple>>,
    seen: FxHashMap<(String, Tuple), ()>,
}

impl Universe {
    fn insert(&mut self, predicate: &str, args: Tuple) -> bool {
        if self
            .seen
            .insert((predicate.to_string(), args.clone()), ())
            .is_some()
        {
            return false;
        }
        self.by_predicate
            .entry(predicate.to_string())
            .or_default()
            .push(args);
        true
    }

    fn tuples(&self, predicate: &str) -> &[Tuple] {
        self.by_predicate
            .get(predicate)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn contains(&self, predicate: &str, args: &Tuple) -> bool {
        self.seen
            .contains_key(&(predicate.to_string(), args.clone()))
    }
}

/// Enumerate all assignments of `rule`'s positive body over `universe`,
/// calling `sink` with the complete binding. Comparisons are checked as soon
/// as both sides are bound.
fn for_each_body_match(
    rule_pos: &[Atom],
    comparisons: &[cqa_query::Comparison],
    n_vars: usize,
    universe: &Universe,
    budget: &Budget,
    sink: &mut dyn FnMut(&Bindings),
) {
    fn recurse(
        pos: &[Atom],
        comparisons: &[cqa_query::Comparison],
        depth: usize,
        universe: &Universe,
        budget: &Budget,
        binding: &mut Bindings,
        sink: &mut dyn FnMut(&Bindings),
    ) {
        // A latched budget prunes the whole assignment tree: `exhausted` is
        // a single relaxed load, cheap enough per node.
        if budget.exhausted() {
            return;
        }
        if depth == pos.len() {
            // One logical step per candidate assignment keeps deadline
            // checks responsive inside large cross products.
            if !budget.tick() {
                return;
            }
            for c in comparisons {
                let (Some(a), Some(b)) = (binding.resolve(&c.left), binding.resolve(&c.right))
                else {
                    return;
                };
                if !c.op.eval(&a, &b) {
                    return;
                }
            }
            sink(binding);
            return;
        }
        let atom = &pos[depth];
        for t in universe.tuples(&atom.relation) {
            if t.arity() != atom.terms.len() {
                continue;
            }
            if let Some(newly) = match_atom(atom, t, binding, NullSemantics::Structural) {
                // Early comparison pruning.
                let pruned = comparisons.iter().any(|c| {
                    match (binding.resolve(&c.left), binding.resolve(&c.right)) {
                        (Some(a), Some(b)) => !c.op.eval(&a, &b),
                        _ => false,
                    }
                });
                if !pruned {
                    recurse(pos, comparisons, depth + 1, universe, budget, binding, sink);
                }
                for v in newly {
                    binding.unset(v);
                }
            }
        }
    }
    let mut binding = Bindings::new(n_vars);
    recurse(
        rule_pos,
        comparisons,
        0,
        universe,
        budget,
        &mut binding,
        sink,
    );
}

fn instantiate(atom: &Atom, binding: &Bindings) -> Option<(String, Tuple)> {
    let args: Option<Vec<Value>> = atom.terms.iter().map(|t| binding.resolve(t)).collect();
    args.map(|a| (atom.relation.clone(), Tuple::new(a)))
}

/// Proto ground literal lists: `(predicate, args)` pairs collected by a
/// parallel worker, interned sequentially afterwards.
type ProtoRule = (
    Vec<(String, Tuple)>, // head
    Vec<(String, Tuple)>, // pos
    Vec<(String, Tuple)>, // neg (already filtered to universe members)
);

/// Same, for weak constraints (no head).
type ProtoWeak = (Vec<(String, Tuple)>, Vec<(String, Tuple)>);

/// Build the universe over-approximation, stratum by stratum, with each
/// stratum's fix-point computed in parallel Jacobi rounds (see module docs
/// for the determinism argument).
fn build_universe(program: &AspProgram, n_vars: usize, budget: &Budget) -> Universe {
    // Predicate strata from cqa-analysis: along every dependency edge the
    // stratum is non-decreasing, so a rule placed at the max stratum of its
    // positive body predicates can never derive atoms that would re-awaken
    // an earlier stratum (its heads sit at its own stratum or later).
    let shape = crate::analysis::predicate_shape(program);
    let analysis = cqa_analysis::analyze_shape(&shape);
    let stratum_of: FxHashMap<&str, usize> = shape
        .symbols
        .iter()
        .enumerate()
        .map(|(i, s)| (s.as_str(), analysis.strata[i]))
        .collect();
    let rule_stratum: Vec<usize> = program
        .rules
        .iter()
        .map(|r| {
            r.pos
                .iter()
                .filter_map(|a| stratum_of.get(a.relation.as_str()).copied())
                .max()
                .unwrap_or(0)
        })
        .collect();
    let max_stratum = rule_stratum.iter().copied().max().unwrap_or(0);

    let mut universe = Universe::default();
    for s in 0..=max_stratum {
        let layer: Vec<&crate::ast::AspRule> = program
            .rules
            .iter()
            .zip(&rule_stratum)
            .filter(|&(_, &rs)| rs == s)
            .map(|(r, _)| r)
            .collect();
        if layer.is_empty() {
            continue;
        }
        loop {
            // Jacobi round: all rules read the same snapshot in parallel…
            let additions = cqa_exec::par_map(&layer, |rule| {
                let mut adds: Vec<(String, Tuple)> = Vec::new();
                if !budget.tick() {
                    return adds;
                }
                for_each_body_match(
                    &rule.pos,
                    &rule.comparisons,
                    n_vars,
                    &universe,
                    budget,
                    &mut |b| {
                        for h in &rule.head {
                            if let Some(ga) = instantiate(h, b) {
                                adds.push(ga);
                            }
                        }
                    },
                );
                adds
            });
            // …and the merge happens in rule order, independent of which
            // worker finished first.
            let mut grew = false;
            for rule_adds in additions {
                for (p, t) in rule_adds {
                    grew |= universe.insert(&p, t);
                }
            }
            // A cut round produced an incomplete frontier: the caller
            // discards the whole universe, so stop growing it.
            if !grew || budget.exhausted() {
                break;
            }
        }
    }
    universe
}

/// Ground `program`.
pub fn ground(program: &AspProgram) -> Result<GroundProgram, String> {
    Ok(ground_budgeted(program, &Budget::unlimited())?.into_value())
}

/// Budget-aware grounding.
///
/// Grounding is **not anytime**: a partially-grounded program has no sound
/// relationship to the stable models of the full one (a missing rule can
/// both add and remove models). So when the budget runs out mid-grounding
/// the result is `Truncated` with an **empty program** — callers must treat
/// it as "no answer", never as an approximation. Safety errors are still
/// reported as `Err` regardless of the budget.
pub fn ground_budgeted(
    program: &AspProgram,
    budget: &Budget,
) -> Result<Outcome<GroundProgram>, String> {
    program.check_safety().map_err(|d| d.to_string())?;
    let n_vars = program.vars.len();

    // 1. Over-approximate the universe: fix-point treating all head
    //    disjuncts as derivable, negation ignored.
    let universe = build_universe(program, n_vars, budget);
    if budget.exhausted() {
        return Ok(budget.outcome_with(GroundProgram::default(), 0));
    }

    // 2. Instantiate rules over the (now immutable) universe: proto rules
    //    in parallel, atom interning sequentially in rule order.
    let protos: Vec<Vec<ProtoRule>> = cqa_exec::par_map(&program.rules, |rule| {
        let mut out: Vec<ProtoRule> = Vec::new();
        for_each_body_match(
            &rule.pos,
            &rule.comparisons,
            n_vars,
            &universe,
            budget,
            &mut |b| {
                let head = rule
                    .head
                    .iter()
                    .map(|h| instantiate(h, b).expect("safe rule: head fully bound"))
                    .collect();
                let pos = rule
                    .pos
                    .iter()
                    .map(|a| instantiate(a, b).expect("positive body bound"))
                    .collect();
                let neg = rule
                    .neg
                    .iter()
                    .filter_map(|a| {
                        let (p, t) = instantiate(a, b).expect("safe rule: neg fully bound");
                        // Atoms outside the universe can never be derived:
                        // the literal `not a` is true and is dropped.
                        universe.contains(&p, &t).then_some((p, t))
                    })
                    .collect();
                out.push((head, pos, neg));
            },
        );
        out
    });
    if budget.exhausted() {
        return Ok(budget.outcome_with(GroundProgram::default(), 0));
    }
    let mut interner = Interner {
        map: FxHashMap::default(),
        table: Vec::new(),
    };
    let mut rules: Vec<GroundRule> = Vec::new();
    for per_rule in protos {
        for (proto_head, proto_pos, proto_neg) in per_rule {
            let intern_all = |interner: &mut Interner, lits: Vec<(String, Tuple)>| {
                let mut ids: Vec<AtomId> = lits
                    .into_iter()
                    .map(|(p, t)| interner.intern(&p, t))
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            };
            let head = intern_all(&mut interner, proto_head);
            let pos = intern_all(&mut interner, proto_pos);
            let neg = intern_all(&mut interner, proto_neg);
            rules.push(GroundRule { head, pos, neg });
        }
    }
    rules.sort();
    rules.dedup();

    // 3. Ground weak constraints the same way.
    let proto_weak: Vec<Vec<ProtoWeak>> = cqa_exec::par_map(&program.weak, |wc| {
        let mut out = Vec::new();
        for_each_body_match(
            &wc.pos,
            &wc.comparisons,
            n_vars,
            &universe,
            budget,
            &mut |b| {
                let pos: Vec<(String, Tuple)> = wc
                    .pos
                    .iter()
                    .map(|a| instantiate(a, b).expect("positive body bound"))
                    .collect();
                let neg: Vec<(String, Tuple)> = wc
                    .neg
                    .iter()
                    .filter_map(|a| {
                        let (p, t) = instantiate(a, b).expect("safe weak constraint");
                        universe.contains(&p, &t).then_some((p, t))
                    })
                    .collect();
                out.push((pos, neg));
            },
        );
        out
    });
    if budget.exhausted() {
        return Ok(budget.outcome_with(GroundProgram::default(), 0));
    }
    let mut weak: Vec<GroundWeak> = Vec::new();
    for (wc, per_wc) in program.weak.iter().zip(proto_weak) {
        for (proto_pos, proto_neg) in per_wc {
            let intern_all = |interner: &mut Interner, lits: Vec<(String, Tuple)>| {
                let mut ids: Vec<AtomId> = lits
                    .into_iter()
                    .map(|(p, t)| interner.intern(&p, t))
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            };
            let pos = intern_all(&mut interner, proto_pos);
            let neg = intern_all(&mut interner, proto_neg);
            weak.push(GroundWeak {
                pos,
                neg,
                weight: wc.weight,
                level: wc.level,
            });
        }
    }

    Ok(Outcome::Exact(GroundProgram {
        rules,
        weak,
        atom_table: interner.table,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_asp;

    #[test]
    fn grounds_facts_and_rules() {
        let p = parse_asp(
            "p(A).\n\
             p(B).\n\
             q(x) :- p(x).",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        // Universe: p(A), p(B), q(A), q(B); rules: 2 facts + 2 instances.
        assert_eq!(g.atom_count(), 4);
        assert_eq!(g.rules.len(), 4);
    }

    #[test]
    fn negation_outside_universe_is_dropped() {
        let p = parse_asp(
            "p(A).\n\
             q(x) :- p(x), not r(x).",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        // r(A) is underivable: the ground rule has empty neg.
        let rule = g.rules.iter().find(|r| !r.pos.is_empty()).unwrap();
        assert!(rule.neg.is_empty());
    }

    #[test]
    fn negation_inside_universe_is_kept() {
        let p = parse_asp(
            "p(A).\n\
             r(A).\n\
             q(x) :- p(x), not r(x).",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        let rule = g.rules.iter().find(|r| !r.pos.is_empty()).unwrap();
        assert_eq!(rule.neg.len(), 1);
    }

    #[test]
    fn comparisons_are_evaluated_away() {
        let p = parse_asp(
            "p(1).\np(2).\np(3).\n\
             big(x) :- p(x), x >= 2.",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        let big: Vec<&GroundAtom> = g
            .atom_table
            .iter()
            .filter(|a| a.predicate == "big")
            .collect();
        assert_eq!(big.len(), 2);
    }

    #[test]
    fn disjunctive_heads_expand_universe() {
        let p = parse_asp(
            "base(A).\n\
             left(x) | right(x) :- base(x).\n\
             l2(x) :- left(x).",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        // left(A) is only *possibly* derivable, but the universe includes it
        // so the dependent rule is grounded.
        assert!(g.lookup("l2", &cqa_relation::tuple!["A"]).is_some());
    }

    #[test]
    fn recursive_rules_terminate() {
        let p = parse_asp(
            "e(1, 2).\ne(2, 3).\n\
             t(x, y) :- e(x, y).\n\
             t(x, z) :- e(x, y), t(y, z).",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        assert!(g.lookup("t", &cqa_relation::tuple![1, 3]).is_some());
    }

    #[test]
    fn hard_constraints_ground_with_empty_head() {
        let p = parse_asp(
            "p(A).\n\
             :- p(x).",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        assert!(g
            .rules
            .iter()
            .any(|r| r.head.is_empty() && !r.pos.is_empty()));
    }

    #[test]
    fn weak_constraints_ground() {
        let p = parse_asp(
            "p(A).\np(B).\n\
             :~ p(x). [2@1]",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        assert_eq!(g.weak.len(), 2);
        assert!(g.weak.iter().all(|w| w.weight == 2 && w.level == 1));
    }

    #[test]
    fn budgeted_grounding_truncates_to_empty_program() {
        // A cross product big enough to exceed a two-step budget.
        let src: String = (1..=6).map(|i| format!("p({i}).\n")).collect::<String>()
            + "q(x, y, z) :- p(x), p(y), p(z).";
        let p = parse_asp(&src).unwrap();
        let outcome = ground_budgeted(&p, &cqa_exec::Budget::steps(2)).unwrap();
        assert!(outcome.is_truncated());
        assert_eq!(outcome.value().rules.len(), 0);
        assert_eq!(outcome.value().atom_count(), 0);
    }

    #[test]
    fn budgeted_grounding_exact_with_ample_budget() {
        let p = parse_asp("p(A).\np(B).\nq(x) :- p(x).").unwrap();
        let outcome = ground_budgeted(&p, &cqa_exec::Budget::steps(1_000_000)).unwrap();
        assert!(outcome.is_exact());
        let exact = ground(&p).unwrap();
        assert_eq!(outcome.value().rules, exact.rules);
        assert_eq!(outcome.value().atom_table, exact.atom_table);
    }

    #[test]
    fn unsafe_program_rejected() {
        let p = parse_asp("p(x) :- q(y).");
        // Parsed fine, grounding rejects.
        let p = p.unwrap();
        assert!(ground(&p).is_err());
    }
}
