//! Grounding: from a safe, variable-carrying program to a propositional one.
//!
//! The grounder computes a bottom-up **over-approximation** of the derivable
//! atoms (treating every head disjunct as derivable and ignoring default
//! negation — a standard sound over-estimate), then instantiates each rule
//! once per satisfying assignment of its positive body over that universe.
//! Comparisons are evaluated away during instantiation; negative literals on
//! atoms outside the universe are dropped (they can never hold).

use crate::ast::{AspProgram, WeakConstraint};
use cqa_query::{match_atom, Atom, Bindings, NullSemantics};
use cqa_relation::{fxhash::FxHashMap, Tuple, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A ground atom id (index into [`GroundProgram::atom_table`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomId(pub u32);

/// A ground atom: predicate plus constant tuple.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroundAtom {
    /// Predicate name.
    pub predicate: String,
    /// Constant arguments.
    pub args: Tuple,
}

impl fmt::Display for GroundAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.args.arity() == 0 {
            write!(f, "{}", self.predicate)
        } else {
            write!(f, "{}{}", self.predicate, self.args)
        }
    }
}

/// A ground rule over atom ids.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct GroundRule {
    /// Head disjuncts (empty = hard constraint).
    pub head: Vec<AtomId>,
    /// Positive body.
    pub pos: Vec<AtomId>,
    /// Negative body.
    pub neg: Vec<AtomId>,
}

/// A ground weak constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundWeak {
    /// Positive body.
    pub pos: Vec<AtomId>,
    /// Negative body.
    pub neg: Vec<AtomId>,
    /// Violation weight.
    pub weight: i64,
    /// Priority level.
    pub level: u32,
}

/// The result of grounding.
#[derive(Debug, Clone, Default)]
pub struct GroundProgram {
    /// Ground rules (deduplicated, deterministic order).
    pub rules: Vec<GroundRule>,
    /// Ground weak constraints.
    pub weak: Vec<GroundWeak>,
    /// Id → ground atom.
    pub atom_table: Vec<GroundAtom>,
}

impl GroundProgram {
    /// Number of distinct ground atoms.
    pub fn atom_count(&self) -> usize {
        self.atom_table.len()
    }

    /// The ground atom for an id.
    pub fn atom(&self, id: AtomId) -> &GroundAtom {
        &self.atom_table[id.0 as usize]
    }

    /// Find the id of a ground atom, if present.
    pub fn lookup(&self, predicate: &str, args: &Tuple) -> Option<AtomId> {
        self.atom_table
            .iter()
            .position(|a| a.predicate == predicate && &a.args == args)
            .map(|i| AtomId(i as u32))
    }
}

struct Interner {
    map: FxHashMap<(String, Tuple), AtomId>,
    table: Vec<GroundAtom>,
}

impl Interner {
    fn intern(&mut self, predicate: &str, args: Tuple) -> AtomId {
        if let Some(&id) = self.map.get(&(predicate.to_string(), args.clone())) {
            return id;
        }
        let id = AtomId(self.table.len() as u32);
        self.table.push(GroundAtom {
            predicate: predicate.to_string(),
            args: args.clone(),
        });
        self.map.insert((predicate.to_string(), args), id);
        id
    }
}

/// The universe of potentially-derivable atoms, stored per predicate for
/// body matching.
#[derive(Default)]
struct Universe {
    by_predicate: BTreeMap<String, Vec<Tuple>>,
    seen: FxHashMap<(String, Tuple), ()>,
}

impl Universe {
    fn insert(&mut self, predicate: &str, args: Tuple) -> bool {
        if self
            .seen
            .insert((predicate.to_string(), args.clone()), ())
            .is_some()
        {
            return false;
        }
        self.by_predicate
            .entry(predicate.to_string())
            .or_default()
            .push(args);
        true
    }

    fn tuples(&self, predicate: &str) -> &[Tuple] {
        self.by_predicate
            .get(predicate)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn contains(&self, predicate: &str, args: &Tuple) -> bool {
        self.seen
            .contains_key(&(predicate.to_string(), args.clone()))
    }
}

/// Enumerate all assignments of `rule`'s positive body over `universe`,
/// calling `sink` with the complete binding. Comparisons are checked as soon
/// as both sides are bound.
fn for_each_body_match(
    rule_pos: &[Atom],
    comparisons: &[cqa_query::Comparison],
    n_vars: usize,
    universe: &Universe,
    sink: &mut dyn FnMut(&Bindings),
) {
    fn recurse(
        pos: &[Atom],
        comparisons: &[cqa_query::Comparison],
        depth: usize,
        universe: &Universe,
        binding: &mut Bindings,
        sink: &mut dyn FnMut(&Bindings),
    ) {
        if depth == pos.len() {
            for c in comparisons {
                let (Some(a), Some(b)) = (binding.resolve(&c.left), binding.resolve(&c.right))
                else {
                    return;
                };
                if !c.op.eval(&a, &b) {
                    return;
                }
            }
            sink(binding);
            return;
        }
        let atom = &pos[depth];
        for t in universe.tuples(&atom.relation) {
            if t.arity() != atom.terms.len() {
                continue;
            }
            if let Some(newly) = match_atom(atom, t, binding, NullSemantics::Structural) {
                // Early comparison pruning.
                let pruned = comparisons.iter().any(|c| {
                    match (binding.resolve(&c.left), binding.resolve(&c.right)) {
                        (Some(a), Some(b)) => !c.op.eval(&a, &b),
                        _ => false,
                    }
                });
                if !pruned {
                    recurse(pos, comparisons, depth + 1, universe, binding, sink);
                }
                for v in newly {
                    binding.unset(v);
                }
            }
        }
    }
    let mut binding = Bindings::new(n_vars);
    recurse(rule_pos, comparisons, 0, universe, &mut binding, sink);
}

fn instantiate(atom: &Atom, binding: &Bindings) -> Option<(String, Tuple)> {
    let args: Option<Vec<Value>> = atom.terms.iter().map(|t| binding.resolve(t)).collect();
    args.map(|a| (atom.relation.clone(), Tuple::new(a)))
}

/// Ground `program`.
pub fn ground(program: &AspProgram) -> Result<GroundProgram, String> {
    program.check_safety().map_err(|d| d.to_string())?;
    let n_vars = program.vars.len();

    // 1. Over-approximate the universe: fix-point treating all head
    //    disjuncts as derivable, negation ignored.
    let mut universe = Universe::default();
    loop {
        let mut grew = false;
        for rule in &program.rules {
            let mut additions: Vec<(String, Tuple)> = Vec::new();
            for_each_body_match(&rule.pos, &rule.comparisons, n_vars, &universe, &mut |b| {
                for h in &rule.head {
                    if let Some(ga) = instantiate(h, b) {
                        additions.push(ga);
                    }
                }
            });
            for (p, t) in additions {
                grew |= universe.insert(&p, t);
            }
        }
        if !grew {
            break;
        }
    }

    // 2. Instantiate rules over the universe.
    let mut interner = Interner {
        map: FxHashMap::default(),
        table: Vec::new(),
    };
    let mut rules: Vec<GroundRule> = Vec::new();
    for rule in &program.rules {
        for_each_body_match(&rule.pos, &rule.comparisons, n_vars, &universe, &mut |b| {
            let mut head = Vec::with_capacity(rule.head.len());
            for h in &rule.head {
                let (p, t) = instantiate(h, b).expect("safe rule: head fully bound");
                head.push(interner.intern(&p, t));
            }
            let mut pos = Vec::with_capacity(rule.pos.len());
            for a in &rule.pos {
                let (p, t) = instantiate(a, b).expect("positive body bound");
                pos.push(interner.intern(&p, t));
            }
            let mut neg = Vec::new();
            for a in &rule.neg {
                let (p, t) = instantiate(a, b).expect("safe rule: neg fully bound");
                if universe.contains(&p, &t) {
                    neg.push(interner.intern(&p, t));
                }
                // Atoms outside the universe can never be derived: the
                // literal `not a` is true and is dropped.
            }
            head.sort_unstable();
            head.dedup();
            pos.sort_unstable();
            pos.dedup();
            neg.sort_unstable();
            neg.dedup();
            rules.push(GroundRule { head, pos, neg });
        });
    }
    rules.sort();
    rules.dedup();

    // 3. Ground weak constraints the same way.
    let mut weak: Vec<GroundWeak> = Vec::new();
    for wc in &program.weak {
        ground_weak(wc, n_vars, &universe, &mut interner, &mut weak);
    }

    Ok(GroundProgram {
        rules,
        weak,
        atom_table: interner.table,
    })
}

fn ground_weak(
    wc: &WeakConstraint,
    n_vars: usize,
    universe: &Universe,
    interner: &mut Interner,
    out: &mut Vec<GroundWeak>,
) {
    for_each_body_match(&wc.pos, &wc.comparisons, n_vars, universe, &mut |b| {
        let mut pos = Vec::with_capacity(wc.pos.len());
        for a in &wc.pos {
            let (p, t) = instantiate(a, b).expect("positive body bound");
            pos.push(interner.intern(&p, t));
        }
        let mut neg = Vec::new();
        let mut dead = false;
        for a in &wc.neg {
            let (p, t) = instantiate(a, b).expect("safe weak constraint");
            if universe.contains(&p, &t) {
                neg.push(interner.intern(&p, t));
            }
            let _ = &mut dead;
        }
        pos.sort_unstable();
        pos.dedup();
        neg.sort_unstable();
        neg.dedup();
        out.push(GroundWeak {
            pos,
            neg,
            weight: wc.weight,
            level: wc.level,
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_asp;

    #[test]
    fn grounds_facts_and_rules() {
        let p = parse_asp(
            "p(A).\n\
             p(B).\n\
             q(x) :- p(x).",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        // Universe: p(A), p(B), q(A), q(B); rules: 2 facts + 2 instances.
        assert_eq!(g.atom_count(), 4);
        assert_eq!(g.rules.len(), 4);
    }

    #[test]
    fn negation_outside_universe_is_dropped() {
        let p = parse_asp(
            "p(A).\n\
             q(x) :- p(x), not r(x).",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        // r(A) is underivable: the ground rule has empty neg.
        let rule = g.rules.iter().find(|r| !r.pos.is_empty()).unwrap();
        assert!(rule.neg.is_empty());
    }

    #[test]
    fn negation_inside_universe_is_kept() {
        let p = parse_asp(
            "p(A).\n\
             r(A).\n\
             q(x) :- p(x), not r(x).",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        let rule = g.rules.iter().find(|r| !r.pos.is_empty()).unwrap();
        assert_eq!(rule.neg.len(), 1);
    }

    #[test]
    fn comparisons_are_evaluated_away() {
        let p = parse_asp(
            "p(1).\np(2).\np(3).\n\
             big(x) :- p(x), x >= 2.",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        let big: Vec<&GroundAtom> = g
            .atom_table
            .iter()
            .filter(|a| a.predicate == "big")
            .collect();
        assert_eq!(big.len(), 2);
    }

    #[test]
    fn disjunctive_heads_expand_universe() {
        let p = parse_asp(
            "base(A).\n\
             left(x) | right(x) :- base(x).\n\
             l2(x) :- left(x).",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        // left(A) is only *possibly* derivable, but the universe includes it
        // so the dependent rule is grounded.
        assert!(g.lookup("l2", &cqa_relation::tuple!["A"]).is_some());
    }

    #[test]
    fn recursive_rules_terminate() {
        let p = parse_asp(
            "e(1, 2).\ne(2, 3).\n\
             t(x, y) :- e(x, y).\n\
             t(x, z) :- e(x, y), t(y, z).",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        assert!(g.lookup("t", &cqa_relation::tuple![1, 3]).is_some());
    }

    #[test]
    fn hard_constraints_ground_with_empty_head() {
        let p = parse_asp(
            "p(A).\n\
             :- p(x).",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        assert!(g
            .rules
            .iter()
            .any(|r| r.head.is_empty() && !r.pos.is_empty()));
    }

    #[test]
    fn weak_constraints_ground() {
        let p = parse_asp(
            "p(A).\np(B).\n\
             :~ p(x). [2@1]",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        assert_eq!(g.weak.len(), 2);
        assert!(g.weak.iter().all(|w| w.weight == 2 && w.level == 1));
    }

    #[test]
    fn unsafe_program_rejected() {
        let p = parse_asp("p(x) :- q(y).");
        // Parsed fine, grounding rejects.
        let p = p.unwrap();
        assert!(ground(&p).is_err());
    }
}
