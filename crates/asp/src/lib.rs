#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqa-asp
//!
//! An answer-set programming engine and the *repair programs* of §3.3 of the
//! paper — the workspace's replacement for DLV \[82\] at survey scale.
//!
//! * [`ast`]/[`parser`] — disjunctive rules with default negation, hard
//!   constraints, DLV-style weak constraints, aggregate-stratified `#count`.
//! * [`mod@ground`] — safe grounding via a bottom-up over-approximation.
//! * [`analysis`] — adapters into `cqa-analysis`: classify programs
//!   (stratified / head-cycle-free / full) at the predicate or ground-atom
//!   level, with diagnostics and grounding estimates.
//! * [`solve`] — stable models; stratified ground programs are evaluated
//!   bottom-up per stratum (no search), everything else by
//!   branch-and-propagate with a GL-reduct minimality check (exact for
//!   disjunctive programs).
//! * [`weak`] — level-lexicographic weak-constraint optimization (Ex. 4.2).
//! * [`aggregate`] — post-pass `#count` rules (Ex. 7.2's responsibilities).
//! * [`repair_program`] — compile a database + constraints into a repair
//!   program whose stable models *are* the repairs (Ex. 3.5), with weak
//!   constraints selecting C-repairs.
//!
//! ```
//! use cqa_asp::{ground, parse_asp, stable_models};
//!
//! // The classic even-negation choice: two stable models, {a} and {b}.
//! let program = parse_asp("a :- not b().\nb :- not a().")?;
//! let g = ground(&program).map_err(cqa_relation::RelationError::Parse)?;
//! assert_eq!(stable_models(&g).len(), 2);
//! # Ok::<(), cqa_relation::RelationError>(())
//! ```

pub mod aggregate;
pub mod analysis;
pub mod ast;
pub mod ground;
pub mod parser;
pub mod repair_program;
pub mod solve;
pub mod weak;

pub use aggregate::apply_count_rules;
pub use analysis::{analyze_ground, analyze_program, atom_shape, classify_ground, predicate_shape};
pub use ast::{rule_to_string, AspProgram, AspRule, CountRule, WeakConstraint};
pub use ground::{
    ground, ground_budgeted, AtomId, GroundAtom, GroundProgram, GroundRule, GroundWeak,
};
pub use parser::parse_asp;
pub use repair_program::{ins_pred, primed, RepairModel, RepairProgram};
pub use solve::{
    brave, cautious, stable_models, stable_models_budgeted, stable_models_search,
    stable_models_search_budgeted, stable_models_search_with_limit, stable_models_stratified,
    stable_models_with_limit, Model,
};
pub use weak::{compare_costs, cost_of, optimal_among, optimal_models, Cost};
