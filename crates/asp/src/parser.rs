//! Text syntax for ASP programs (a DLV/clingo-flavoured subset).
//!
//! * Rules: `a(x) | b(x) :- c(x), not d(x), x != y.`
//! * Facts: `p(A, 1).`
//! * Hard constraints: `:- a(x), b(x).`
//! * Weak constraints: `:~ a(x). [2@1]` (weight 2, level 1; both default 1).
//!
//! Term conventions match `cqa-query`: lowercase identifiers are variables,
//! uppercase identifiers / quoted strings / numbers are constants.

use crate::ast::{AspProgram, AspRule, WeakConstraint};
use cqa_query::{parse_query, Atom, Comparison};
use cqa_relation::RelationError;

/// Parse an ASP program; one statement per line (terminating `.` required,
/// except the `[w@l]` annotation follows a weak constraint's `.`).
pub fn parse_asp(input: &str) -> Result<AspProgram, RelationError> {
    let mut program = AspProgram::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        parse_statement(line, &mut program)
            .map_err(|e| RelationError::Parse(format!("line {}: {e}", lineno + 1)))?;
    }
    Ok(program)
}

fn parse_statement(line: &str, program: &mut AspProgram) -> Result<(), String> {
    if let Some(rest) = line.strip_prefix(":~") {
        return parse_weak(rest, program);
    }
    // Split "head :- body." / "head." / ":- body."
    let line = line.trim_end();
    let (head_txt, body_txt) = match line.split_once(":-") {
        Some((h, b)) => (h.trim(), Some(b.trim().trim_end_matches('.').trim())),
        None => (line.trim_end_matches('.').trim(), None),
    };
    let head = if head_txt.is_empty() {
        Vec::new()
    } else {
        head_txt
            .split('|')
            .map(|h| parse_atom(h.trim()))
            .collect::<Result<Vec<_>, _>>()?
    };
    let (pos, neg, comparisons) = match body_txt {
        Some(b) if !b.is_empty() => parse_body(b, program)?,
        _ => (Vec::new(), Vec::new(), Vec::new()),
    };
    // Re-intern head variables through the shared var table by re-parsing
    // heads in the same namespace.
    let head = head
        .into_iter()
        .map(|h| reintern_atom(&h, program))
        .collect();
    program.push(AspRule {
        head,
        pos,
        neg,
        comparisons,
    });
    Ok(())
}

fn parse_weak(rest: &str, program: &mut AspProgram) -> Result<(), String> {
    // ":~ body. [w@l]" — annotation optional.
    let (body_txt, annotation) = match rest.split_once('[') {
        Some((b, a)) => (b.trim().trim_end_matches('.').trim(), Some(a.trim())),
        None => (rest.trim().trim_end_matches('.').trim(), None),
    };
    let (weight, level) = match annotation {
        None => (1, 1),
        Some(a) => {
            let a = a.trim_end_matches(']').trim();
            match a.split_once('@') {
                Some((w, l)) => (
                    w.trim().parse::<i64>().map_err(|e| e.to_string())?,
                    l.trim().parse::<u32>().map_err(|e| e.to_string())?,
                ),
                None => (a.parse::<i64>().map_err(|e| e.to_string())?, 1),
            }
        }
    };
    let (pos, neg, comparisons) = parse_body(body_txt, program)?;
    program.weak.push(WeakConstraint {
        pos,
        neg,
        comparisons,
        weight,
        level,
    });
    Ok(())
}

/// Parse a rule body by delegating to the query parser (shared conventions),
/// then re-intern variables into the program's shared table.
#[allow(clippy::type_complexity)]
fn parse_body(
    body: &str,
    program: &mut AspProgram,
) -> Result<(Vec<Atom>, Vec<Atom>, Vec<Comparison>), String> {
    let q = parse_query(&format!("ZZhead() :- {body}")).map_err(|e| e.to_string())?;
    let remap = |a: &Atom, program: &mut AspProgram| remap_atom(a, &q.vars, program);
    let pos = q.atoms.iter().map(|a| remap(a, program)).collect();
    let neg = q.negated.iter().map(|a| remap(a, program)).collect();
    let comparisons = q
        .comparisons
        .iter()
        .map(|c| Comparison {
            left: remap_term(&c.left, &q.vars, program),
            op: c.op,
            right: remap_term(&c.right, &q.vars, program),
        })
        .collect();
    Ok((pos, neg, comparisons))
}

fn remap_term(
    t: &cqa_query::Term,
    from: &cqa_query::VarTable,
    program: &mut AspProgram,
) -> cqa_query::Term {
    match t {
        cqa_query::Term::Var(v) => cqa_query::Term::Var(program.vars.var(from.name(*v))),
        c => c.clone(),
    }
}

fn remap_atom(a: &Atom, from: &cqa_query::VarTable, program: &mut AspProgram) -> Atom {
    Atom::new(
        a.relation.clone(),
        a.terms
            .iter()
            .map(|t| remap_term(t, from, program))
            .collect(),
    )
}

/// Parse a single head atom (own namespace, re-interned by caller).
fn parse_atom(text: &str) -> Result<Atom, String> {
    if !text.contains('(') {
        // Propositional atom.
        return Ok(Atom::new(text.trim(), Vec::new()));
    }
    let q = parse_query(&format!("ZZhead() :- {text}")).map_err(|e| e.to_string())?;
    if q.atoms.len() != 1 {
        return Err(format!("expected one atom, found `{text}`"));
    }
    // Tag along the var table via a marker: the caller re-interns by name, so
    // embed names through a private convention — simplest is to return the
    // atom with terms naming vars through the parsed table; reintern happens
    // in `reintern_atom` using display names.
    let vars = q.vars.clone();
    let a = &q.atoms[0];
    Ok(Atom::new(
        a.relation.clone(),
        a.terms
            .iter()
            .map(|t| match t {
                cqa_query::Term::Var(v) => {
                    // Encode the name as a temporary string constant marker;
                    // decoded by `reintern_atom`.
                    cqa_query::Term::Const(cqa_relation::Value::str(format!(
                        "\u{1}var:{}",
                        vars.name(*v)
                    )))
                }
                c => c.clone(),
            })
            .collect(),
    ))
}

fn reintern_atom(a: &Atom, program: &mut AspProgram) -> Atom {
    Atom::new(
        a.relation.clone(),
        a.terms
            .iter()
            .map(|t| match t {
                cqa_query::Term::Const(cqa_relation::Value::Str(s))
                    if s.starts_with("\u{1}var:") =>
                {
                    let name = &s["\u{1}var:".len()..];
                    cqa_query::Term::Var(program.vars.var(name))
                }
                other => other.clone(),
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::Term;
    use cqa_relation::Value;

    #[test]
    fn parses_facts_rules_constraints() {
        let p = parse_asp(
            "p(A).\n\
             q(x) :- p(x), not r(x).\n\
             :- q(x), r(x).\n\
             % a comment\n\
             \n\
             a | b :- p(A).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 4);
        assert!(p.rules[0].is_fact());
        assert_eq!(p.rules[1].neg.len(), 1);
        assert!(p.rules[2].head.is_empty());
        assert_eq!(p.rules[3].head.len(), 2);
    }

    #[test]
    fn head_and_body_share_variables() {
        let p = parse_asp("q(x, y) :- p(x), r(y).").unwrap();
        let r = &p.rules[0];
        let head_vars: Vec<_> = r.head[0].vars().collect();
        let body_vars: Vec<_> = r.pos.iter().flat_map(|a| a.vars()).collect();
        assert_eq!(head_vars.len(), 2);
        assert!(head_vars.iter().all(|v| body_vars.contains(v)));
        assert!(r.check_safety(&p.vars).is_ok());
    }

    #[test]
    fn disjunction_shares_variables_too() {
        let p = parse_asp("a(x) | b(x) :- c(x).").unwrap();
        let r = &p.rules[0];
        let a = r.head[0].vars().next().unwrap();
        let b = r.head[1].vars().next().unwrap();
        let c = r.pos[0].vars().next().unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn weak_constraint_annotations() {
        let p = parse_asp(
            ":~ p(x). [2@3]\n\
             :~ q(x). [5]\n\
             :~ r(x).",
        )
        .unwrap();
        assert_eq!(p.weak[0].weight, 2);
        assert_eq!(p.weak[0].level, 3);
        assert_eq!(p.weak[1].weight, 5);
        assert_eq!(p.weak[1].level, 1);
        assert_eq!(p.weak[2].weight, 1);
    }

    #[test]
    fn constants_and_numbers() {
        let p = parse_asp("p(A, 1, 'text', x) :- q(x).").unwrap();
        let h = &p.rules[0].head[0];
        assert_eq!(h.terms[0], Term::Const(Value::str("A")));
        assert_eq!(h.terms[1], Term::Const(Value::int(1)));
        assert_eq!(h.terms[2], Term::Const(Value::str("text")));
        assert!(matches!(h.terms[3], Term::Var(_)));
    }

    #[test]
    fn propositional_atoms() {
        // Zero-arity atoms: bare names in heads, `name()` in bodies.
        let p = parse_asp("a | b.\n:- a(), b().").unwrap();
        assert_eq!(p.rules[0].head.len(), 2);
        assert!(p.rules[0].head[0].terms.is_empty());
        assert_eq!(p.rules[1].pos.len(), 2);
    }

    #[test]
    fn bad_syntax_is_an_error_with_line_number() {
        let err = parse_asp("p(A).\nq(x :- r(x).").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }
}
