//! Repair programs (§3.3 of the paper): answer-set programs whose stable
//! models are exactly the repairs of an inconsistent database.
//!
//! For a denial constraint `κ: ¬∃x̄ (P₁(x̄₁) ∧ … ∧ Pₖ(x̄ₖ) ∧ φ)` over a
//! database with tids, the generated program contains (Example 3.5):
//!
//! ```text
//! P₁'(t₁; x̄₁, d) | … | Pₖ'(tₖ; x̄ₖ, d) :- P₁(t₁; x̄₁), …, Pₖ(tₖ; x̄ₖ), φ.
//! P'(t; x̄, s) :- P(t; x̄), not P'(t; x̄, d).        (inertia, per relation)
//! ```
//!
//! plus the database tuples as facts. A stable model's `s`-annotated atoms
//! are one S-repair; adding the weak constraints of Example 4.2
//! (`:~ P'(t; x̄, d)`) keeps only C-repairs.
//!
//! Full and existential tgds with non-interacting head relations are also
//! supported (deletion of the body tuple vs. insertion of the — possibly
//! null-padded — head tuple, §4.2); genuinely *interacting* ICs would need
//! the extra transition annotations the paper mentions and are rejected.

use crate::ast::{AspProgram, AspRule, WeakConstraint};
use crate::ground::{ground, ground_budgeted, GroundProgram};
use crate::solve::{stable_models, stable_models_budgeted, Model};
use crate::weak::optimal_among;
use cqa_constraints::ConstraintSet;
use cqa_exec::{Budget, Outcome};
use cqa_query::{Atom, Comparison, Term};
use cqa_relation::{Database, RelationError, Tid, Tuple, Value};
use std::collections::BTreeSet;

/// Annotation constants.
fn ann_d() -> Value {
    Value::str("d")
}
fn ann_s() -> Value {
    Value::str("s")
}

/// The primed predicate of relation `r`.
pub fn primed(r: &str) -> String {
    format!("{r}_p")
}

/// The insertion predicate of relation `r`.
pub fn ins_pred(r: &str) -> String {
    format!("{r}_ins")
}

/// A compiled repair program together with the original instance.
#[derive(Debug, Clone)]
pub struct RepairProgram {
    /// The generated ASP program (facts included).
    pub program: AspProgram,
    /// Relations of the original database mentioned anywhere.
    pub relations: Vec<String>,
    original: Database,
}

/// One repair read off a stable model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairModel {
    /// Tids annotated `s` (kept).
    pub kept: BTreeSet<Tid>,
    /// Tids annotated `d` (deleted).
    pub deleted: BTreeSet<Tid>,
    /// Inserted tuples `(relation, tuple)` from tgd head insertions.
    pub inserted: Vec<(String, Tuple)>,
}

impl RepairProgram {
    /// Build the repair program of `db` w.r.t. `sigma`.
    ///
    /// `sigma` may contain denial-class constraints and tgds whose head
    /// relations are not mentioned by any denial constraint or other tgd
    /// body (the non-interacting condition).
    pub fn build(db: &Database, sigma: &ConstraintSet) -> Result<RepairProgram, RelationError> {
        let mut program = AspProgram::new();
        let mut relations: BTreeSet<String> = BTreeSet::new();

        // Facts with tids.
        for (rel, tid, tuple) in db.facts() {
            relations.insert(rel.to_string());
            let mut terms: Vec<Term> = vec![Term::Const(Value::Int(tid.0 as i64))];
            terms.extend(tuple.iter().cloned().map(Term::Const));
            program.push_fact(Atom::new(rel, terms));
        }

        // Denial constraints → disjunctive deletion rules.
        let denials = sigma.all_denials(db)?;
        for dc in &denials {
            let body = dc.body();
            // Remap the DC's variables into the program's shared table and
            // mint one tid variable per atom.
            let mut pos: Vec<Atom> = Vec::with_capacity(body.atoms.len());
            let mut head: Vec<Atom> = Vec::with_capacity(body.atoms.len());
            for (i, atom) in body.atoms.iter().enumerate() {
                let tid_var = program
                    .vars
                    .var(format!("t_{}_{}", dc.name.replace(' ', "_"), i));
                let mut fact_terms: Vec<Term> = vec![Term::Var(tid_var)];
                fact_terms.extend(
                    atom.terms
                        .iter()
                        .map(|t| remap(t, &body.vars, &mut program)),
                );
                let mut del_terms = fact_terms.clone();
                del_terms.push(Term::Const(ann_d()));
                pos.push(Atom::new(atom.relation.clone(), fact_terms));
                head.push(Atom::new(primed(&atom.relation), del_terms));
                relations.insert(atom.relation.clone());
            }
            let comparisons: Vec<Comparison> = body
                .comparisons
                .iter()
                .map(|c| Comparison {
                    left: remap(&c.left, &body.vars, &mut program),
                    op: c.op,
                    right: remap(&c.right, &body.vars, &mut program),
                })
                .collect();
            program.push(AspRule {
                head,
                pos,
                neg: Vec::new(),
                comparisons,
            });
        }

        // Tgds: check non-interaction, then add exists-projection and
        // delete-or-insert rules.
        let dc_relations: BTreeSet<&str> = denials
            .iter()
            .flat_map(|d| d.atoms().iter().map(|a| a.relation.as_str()))
            .collect();
        for tgd in sigma.tgds() {
            let head_rel = &tgd.head().relation;
            if dc_relations.contains(head_rel.as_str()) {
                return Err(RelationError::Parse(format!(
                    "tgd `{}` interacts with a denial constraint on `{head_rel}`; \
                     interacting ICs need transition annotations (not supported)",
                    tgd.name
                )));
            }
            if sigma
                .tgds()
                .any(|other| other.body().atoms.iter().any(|a| &a.relation == head_rel))
            {
                return Err(RelationError::Parse(format!(
                    "tgd `{}` feeds relation `{head_rel}` consumed by another tgd body; \
                     cascading tgds are not supported by the ASP encoding",
                    tgd.name
                )));
            }
            relations.insert(head_rel.clone());

            let body = tgd.body();
            let bound: BTreeSet<cqa_query::Var> = body.positive_vars();
            let exists_pred = format!("ex_{}", tgd.name.replace(' ', "_"));

            // Projection rule: ex_T(bound head args) :- Head(t, all args).
            let head_arity = tgd.head().terms.len();
            let proj_tid = program
                .vars
                .var(format!("tex_{}", tgd.name.replace(' ', "_")));
            let mut proj_body_terms: Vec<Term> = vec![Term::Var(proj_tid)];
            let mut proj_head_terms: Vec<Term> = Vec::new();
            for (i, t) in tgd.head().terms.iter().enumerate() {
                let pv = program
                    .vars
                    .var(format!("hex_{}_{}", tgd.name.replace(' ', "_"), i));
                proj_body_terms.push(Term::Var(pv));
                let keep = match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                };
                if keep {
                    proj_head_terms.push(Term::Var(pv));
                }
            }
            debug_assert_eq!(proj_body_terms.len(), head_arity + 1);
            program.push(AspRule {
                head: vec![Atom::new(exists_pred.clone(), proj_head_terms)],
                pos: vec![Atom::new(head_rel.clone(), proj_body_terms)],
                neg: Vec::new(),
                comparisons: Vec::new(),
            });

            // Delete-or-insert rule.
            let mut pos: Vec<Atom> = Vec::new();
            let mut head: Vec<Atom> = Vec::new();
            for (i, atom) in body.atoms.iter().enumerate() {
                let tid_var = program
                    .vars
                    .var(format!("tt_{}_{}", tgd.name.replace(' ', "_"), i));
                let mut fact_terms: Vec<Term> = vec![Term::Var(tid_var)];
                fact_terms.extend(
                    atom.terms
                        .iter()
                        .map(|t| remap(t, &body.vars, &mut program)),
                );
                let mut del_terms = fact_terms.clone();
                del_terms.push(Term::Const(ann_d()));
                pos.push(Atom::new(atom.relation.clone(), fact_terms));
                head.push(Atom::new(primed(&atom.relation), del_terms));
                relations.insert(atom.relation.clone());
            }
            // Insertion head: bound head vars remapped; existentials → NULL.
            let mut ins_terms: Vec<Term> = Vec::new();
            let mut guard_terms: Vec<Term> = Vec::new();
            for t in &tgd.head().terms {
                let keep = match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                };
                if keep {
                    let rt = remap(t, &body.vars, &mut program);
                    ins_terms.push(rt.clone());
                    guard_terms.push(rt);
                } else {
                    ins_terms.push(Term::Const(Value::NULL));
                }
            }
            head.push(Atom::new(ins_pred(head_rel), ins_terms));
            let comparisons: Vec<Comparison> = body
                .comparisons
                .iter()
                .map(|c| Comparison {
                    left: remap(&c.left, &body.vars, &mut program),
                    op: c.op,
                    right: remap(&c.right, &body.vars, &mut program),
                })
                .collect();
            program.push(AspRule {
                head,
                pos,
                neg: vec![Atom::new(exists_pred, guard_terms)],
                comparisons,
            });
        }

        // Inertia rules for every relation that can lose tuples.
        let deletable: BTreeSet<String> = program
            .rules
            .iter()
            .flat_map(|r| r.head.iter())
            .filter_map(|h| h.relation.strip_suffix("_p").map(str::to_string))
            .collect();
        for rel in &deletable {
            let Some(relation) = db.relation(rel) else {
                continue;
            };
            let arity = relation.schema().arity();
            let t = program.vars.var(format!("ti_{rel}"));
            let mut fact_terms: Vec<Term> = vec![Term::Var(t)];
            for i in 0..arity {
                fact_terms.push(Term::Var(program.vars.var(format!("xi_{rel}_{i}"))));
            }
            let mut keep_terms = fact_terms.clone();
            keep_terms.push(Term::Const(ann_s()));
            let mut del_terms = fact_terms.clone();
            del_terms.push(Term::Const(ann_d()));
            program.push(AspRule {
                head: vec![Atom::new(primed(rel), keep_terms)],
                pos: vec![Atom::new(rel.clone(), fact_terms)],
                neg: vec![Atom::new(primed(rel), del_terms)],
                comparisons: Vec::new(),
            });
        }

        Ok(RepairProgram {
            program,
            relations: relations.into_iter().collect(),
            original: db.clone(),
        })
    }

    /// Add the weak constraints of Example 4.2, turning stable models into
    /// C-repair models when filtered by [`RepairProgram::c_repair_models`].
    pub fn add_c_repair_weak_constraints(&mut self) {
        let deletable: Vec<(String, usize)> = self
            .relations
            .iter()
            .filter_map(|r| {
                self.original
                    .relation(r)
                    .map(|rel| (r.clone(), rel.schema().arity()))
            })
            .collect();
        for (rel, arity) in deletable {
            let t = self.program.vars.var(format!("tw_{rel}"));
            let mut terms: Vec<Term> = vec![Term::Var(t)];
            for i in 0..arity {
                terms.push(Term::Var(self.program.vars.var(format!("xw_{rel}_{i}"))));
            }
            let mut del_terms = terms.clone();
            del_terms.push(Term::Const(ann_d()));
            self.program.weak.push(WeakConstraint {
                pos: vec![
                    Atom::new(rel.clone(), terms),
                    Atom::new(primed(&rel), del_terms),
                ],
                neg: Vec::new(),
                comparisons: Vec::new(),
                weight: 1,
                level: 1,
            });
            // Insertions cost too.
            let ins = ins_pred(&rel);
            let mut ins_terms: Vec<Term> = Vec::new();
            for i in 0..arity {
                ins_terms.push(Term::Var(self.program.vars.var(format!("yw_{rel}_{i}"))));
            }
            self.program.weak.push(WeakConstraint {
                pos: vec![Atom::new(ins, ins_terms)],
                neg: Vec::new(),
                comparisons: Vec::new(),
                weight: 1,
                level: 1,
            });
        }
    }

    /// Ground the program.
    pub fn ground(&self) -> Result<GroundProgram, RelationError> {
        ground(&self.program).map_err(RelationError::Parse)
    }

    /// Read one stable model as a [`RepairModel`].
    pub fn read_model(&self, g: &GroundProgram, model: &Model) -> RepairModel {
        let mut kept = BTreeSet::new();
        let mut deleted = BTreeSet::new();
        let mut inserted = Vec::new();
        for &id in model {
            let atom = g.atom(id);
            if let Some(rel) = atom.predicate.strip_suffix("_p") {
                let _ = rel;
                let n = atom.args.arity();
                let tid = atom.args.at(0).as_i64().expect("tid is int") as u64;
                let ann = atom.args.at(n - 1);
                if ann == &ann_s() {
                    kept.insert(Tid(tid));
                } else if ann == &ann_d() {
                    deleted.insert(Tid(tid));
                }
            } else if let Some(rel) = atom.predicate.strip_suffix("_ins") {
                inserted.push((rel.to_string(), Tuple::new(atom.args.iter().cloned())));
            }
        }
        inserted.sort();
        inserted.dedup();
        RepairModel {
            kept,
            deleted,
            inserted,
        }
    }

    /// Enumerate all S-repair models.
    pub fn s_repair_models(&self) -> Result<Vec<RepairModel>, RelationError> {
        let g = self.ground()?;
        let models = stable_models(&g);
        let mut out: Vec<RepairModel> = models.iter().map(|m| self.read_model(&g, m)).collect();
        out.sort_by(|a, b| (&a.deleted, &a.inserted).cmp(&(&b.deleted, &b.inserted)));
        out.dedup();
        Ok(out)
    }

    /// Budget-aware [`RepairProgram::s_repair_models`].
    ///
    /// Grounding is all-or-nothing (see [`ground_budgeted`]): if the budget
    /// fires during grounding, the result is `Truncated` with **no** models.
    /// Once grounded, a truncated model search yields a sound subset of the
    /// S-repair models.
    pub fn s_repair_models_budgeted(
        &self,
        budget: &Budget,
    ) -> Result<Outcome<Vec<RepairModel>>, RelationError> {
        let g = ground_budgeted(&self.program, budget).map_err(RelationError::Parse)?;
        if g.is_truncated() {
            return Ok(g.map(|_| Vec::new()));
        }
        let g = g.into_value();
        let models = stable_models_budgeted(&g, None, budget);
        Ok(models.map(|models| {
            let mut out: Vec<RepairModel> = models.iter().map(|m| self.read_model(&g, m)).collect();
            out.sort_by(|a, b| (&a.deleted, &a.inserted).cmp(&(&b.deleted, &b.inserted)));
            out.dedup();
            out
        }))
    }

    /// Enumerate the cost-optimal (C-repair) models; requires
    /// [`RepairProgram::add_c_repair_weak_constraints`] to have been called.
    pub fn c_repair_models(&self) -> Result<Vec<RepairModel>, RelationError> {
        let g = self.ground()?;
        let models = stable_models(&g);
        let (opt, _) = optimal_among(&g, models);
        let mut out: Vec<RepairModel> = opt.iter().map(|m| self.read_model(&g, m)).collect();
        out.sort_by(|a, b| (&a.deleted, &a.inserted).cmp(&(&b.deleted, &b.inserted)));
        out.dedup();
        Ok(out)
    }

    /// Budget-aware [`RepairProgram::c_repair_models`].
    ///
    /// On truncation the "optimal among explored" filter still applies, but
    /// an unexplored model could in principle have a lower cost, so treat a
    /// truncated result as "best found so far" rather than a sound subset
    /// of the true optima.
    pub fn c_repair_models_budgeted(
        &self,
        budget: &Budget,
    ) -> Result<Outcome<Vec<RepairModel>>, RelationError> {
        let g = ground_budgeted(&self.program, budget).map_err(RelationError::Parse)?;
        if g.is_truncated() {
            return Ok(g.map(|_| Vec::new()));
        }
        let g = g.into_value();
        let models = stable_models_budgeted(&g, None, budget);
        Ok(models.map(|models| {
            let (opt, _) = optimal_among(&g, models);
            let mut out: Vec<RepairModel> = opt.iter().map(|m| self.read_model(&g, m)).collect();
            out.sort_by(|a, b| (&a.deleted, &a.inserted).cmp(&(&b.deleted, &b.inserted)));
            out.dedup();
            out
        }))
    }

    /// Materialize a repair model as a database instance.
    pub fn materialize(&self, model: &RepairModel) -> Result<Database, RelationError> {
        let (db, _) = self
            .original
            .with_changes(&model.deleted, &model.inserted)?;
        Ok(db)
    }
}

fn remap(t: &Term, from: &cqa_query::VarTable, program: &mut AspProgram) -> Term {
    match t {
        Term::Var(v) => Term::Var(program.vars.var(format!("q_{}", from.name(*v)))),
        c => c.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{DenialConstraint, KeyConstraint, Tgd};
    use cqa_relation::{tuple, RelationSchema};

    fn example_3_5_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        db.insert("R", tuple!["a4", "a3"]).unwrap(); // ι1
        db.insert("R", tuple!["a2", "a1"]).unwrap(); // ι2
        db.insert("R", tuple!["a3", "a3"]).unwrap(); // ι3
        db.insert("S", tuple!["a4"]).unwrap(); // ι4
        db.insert("S", tuple!["a2"]).unwrap(); // ι5
        db.insert("S", tuple!["a3"]).unwrap(); // ι6
        db
    }

    fn kappa() -> ConstraintSet {
        ConstraintSet::from_iter([DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap()])
    }

    #[test]
    fn example_3_5_stable_models_are_the_three_s_repairs() {
        let db = example_3_5_db();
        let rp = RepairProgram::build(&db, &kappa()).unwrap();
        let models = rp.s_repair_models().unwrap();
        assert_eq!(models.len(), 3);
        let deletions: BTreeSet<BTreeSet<Tid>> = models.iter().map(|m| m.deleted.clone()).collect();
        assert!(deletions.contains(&[Tid(6)].into()));
        assert!(deletions.contains(&[Tid(1), Tid(3)].into()));
        assert!(deletions.contains(&[Tid(3), Tid(4)].into()));
        // Each model partitions the tuples into kept + deleted.
        for m in &models {
            assert_eq!(m.kept.len() + m.deleted.len(), 6);
            assert!(m.inserted.is_empty());
        }
    }

    #[test]
    fn asp_repairs_match_direct_engine() {
        let db = example_3_5_db();
        let sigma = kappa();
        let rp = RepairProgram::build(&db, &sigma).unwrap();
        let asp: BTreeSet<BTreeSet<Tid>> = rp
            .s_repair_models()
            .unwrap()
            .into_iter()
            .map(|m| m.deleted)
            .collect();
        let direct: BTreeSet<BTreeSet<Tid>> = cqa_core::s_repairs(&db, &sigma)
            .unwrap()
            .into_iter()
            .map(|r| r.deleted)
            .collect();
        assert_eq!(asp, direct);
    }

    #[test]
    fn example_4_2_weak_constraints_give_c_repairs() {
        let db = example_3_5_db();
        let mut rp = RepairProgram::build(&db, &kappa()).unwrap();
        rp.add_c_repair_weak_constraints();
        let models = rp.c_repair_models().unwrap();
        // The unique C-repair deletes only ι6.
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].deleted, [Tid(6)].into());
    }

    #[test]
    fn key_constraint_repair_program() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        db.insert("Employee", tuple!["page", 5000]).unwrap();
        db.insert("Employee", tuple!["page", 8000]).unwrap();
        db.insert("Employee", tuple!["smith", 3000]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("Employee", ["Name"])]);
        let rp = RepairProgram::build(&db, &sigma).unwrap();
        let models = rp.s_repair_models().unwrap();
        assert_eq!(models.len(), 2);
        for m in &models {
            assert_eq!(m.deleted.len(), 1);
            let inst = rp.materialize(m).unwrap();
            assert!(sigma.is_satisfied(&inst).unwrap());
        }
    }

    #[test]
    fn example_2_1_tgd_repair_program() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "Supply",
            ["Company", "Receiver", "Item"],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new("Articles", ["Item"]))
            .unwrap();
        db.insert("Supply", tuple!["C1", "R1", "I1"]).unwrap();
        db.insert("Supply", tuple!["C2", "R2", "I2"]).unwrap();
        db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
        db.insert("Articles", tuple!["I1"]).unwrap();
        db.insert("Articles", tuple!["I2"]).unwrap();
        let sigma =
            ConstraintSet::from_iter([Tgd::parse("ID", "Articles(z) :- Supply(x, y, z)").unwrap()]);
        let rp = RepairProgram::build(&db, &sigma).unwrap();
        let models = rp.s_repair_models().unwrap();
        assert_eq!(models.len(), 2);
        let del = models.iter().find(|m| !m.deleted.is_empty()).unwrap();
        assert_eq!(del.deleted, [Tid(3)].into());
        let ins = models.iter().find(|m| !m.inserted.is_empty()).unwrap();
        assert_eq!(ins.inserted, vec![("Articles".to_string(), tuple!["I3"])]);
    }

    #[test]
    fn existential_tgd_inserts_null_via_asp() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Supply", ["C", "R", "I"]))
            .unwrap();
        db.create_relation(RelationSchema::new("Articles", ["I", "Cost"]))
            .unwrap();
        db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
        let sigma =
            ConstraintSet::from_iter([
                Tgd::parse("IDp", "Articles(z, v) :- Supply(x, y, z)").unwrap()
            ]);
        let rp = RepairProgram::build(&db, &sigma).unwrap();
        let models = rp.s_repair_models().unwrap();
        assert_eq!(models.len(), 2);
        let ins = models.iter().find(|m| !m.inserted.is_empty()).unwrap();
        let t = &ins.inserted[0].1;
        assert_eq!(t.at(0), &Value::str("I3"));
        assert!(t.at(1).is_null());
    }

    #[test]
    fn interacting_ics_are_rejected() {
        let db = example_3_5_db();
        let mut sigma = kappa();
        sigma.push(Tgd::parse("bad", "S(x) :- R(x, y)").unwrap());
        assert!(RepairProgram::build(&db, &sigma).is_err());
    }

    #[test]
    fn consistent_db_has_single_model_keeping_everything() {
        let mut db = example_3_5_db();
        db.delete(Tid(6)).unwrap();
        let rp = RepairProgram::build(&db, &kappa()).unwrap();
        let models = rp.s_repair_models().unwrap();
        assert_eq!(models.len(), 1);
        assert!(models[0].deleted.is_empty());
        assert_eq!(models[0].kept.len(), 5);
    }
}
