//! Stable-model computation for ground disjunctive programs.
//!
//! [`stable_models`] first runs the atom-level static analysis (the cheap
//! classification of `cqa-analysis`, cf. [`crate::analysis::classify_ground`]):
//! a program classified *stratified* (normal, no recursion through
//! negation) has exactly one candidate stable model — its perfect model —
//! computed bottom-up per stratum with **no search at all**
//! ([`stable_models_stratified`]). All
//! other programs fall back to the reference DPLL search
//! ([`stable_models_search`]), a branch-and-propagate over atom truth
//! values with a stability check at the leaves:
//!
//! * **Propagation.** (a) A rule whose positive body is all-true and whose
//!   negative body is all-false must have a true head disjunct: if all but
//!   one are false, the last is forced true; if all are false, conflict.
//!   (b) An atom with no *potentially applicable* rule containing it in the
//!   head must be false (minimality would drop it).
//! * **Stability check.** A total model `M` is stable iff it is a minimal
//!   model of the GL-reduct `P^M`. For normal rules we would compare with the
//!   least model; the general (disjunctive) check used here searches for a
//!   proper submodel of the reduct with a tiny clause-level DPLL — exactly
//!   the co-NP flavour the paper attributes to disjunctive programs, bounded
//!   in practice by `|M|`.
//!
//! Weak-constraint optimization (C-repairs, Ex. 4.2) lives in
//! [`crate::weak`].

// audit:exponential — DPLL branch-and-propagate stable-model search; every search loop must thread a Budget.
use crate::ground::{AtomId, GroundProgram, GroundRule};
use cqa_analysis::{DepGraph, EdgeKind};
use cqa_exec::{Budget, Outcome};
use std::collections::BTreeSet;

/// A stable model: the set of true atoms.
pub type Model = BTreeSet<AtomId>;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Truth {
    True,
    False,
    Open,
}

struct Solver<'a> {
    program: &'a GroundProgram,
    assign: Vec<Truth>,
    models: Vec<Model>,
    limit: Option<usize>,
    budget: &'a Budget,
}

impl<'a> Solver<'a> {
    fn new(program: &'a GroundProgram, limit: Option<usize>, budget: &'a Budget) -> Solver<'a> {
        Solver {
            program,
            assign: vec![Truth::Open; program.atom_count()],
            models: Vec::new(),
            limit,
            budget,
        }
    }

    fn value(&self, a: AtomId) -> Truth {
        self.assign[a.0 as usize]
    }

    /// Could this rule's body still become satisfied?
    fn body_possible(&self, r: &GroundRule) -> bool {
        r.pos.iter().all(|&a| self.value(a) != Truth::False)
            && r.neg.iter().all(|&a| self.value(a) != Truth::True)
    }

    /// Is this rule's body definitely satisfied?
    fn body_satisfied(&self, r: &GroundRule) -> bool {
        r.pos.iter().all(|&a| self.value(a) == Truth::True)
            && r.neg.iter().all(|&a| self.value(a) == Truth::False)
    }

    /// Run propagation; `Ok(changes)` lists atoms assigned (for undo),
    /// `Err(changes)` signals a conflict (caller must undo).
    fn propagate(&mut self) -> Result<Vec<AtomId>, Vec<AtomId>> {
        let mut trail: Vec<AtomId> = Vec::new();
        loop {
            let mut changed = false;
            // (a) head propagation on satisfied bodies.
            for r in &self.program.rules {
                if !self.body_satisfied(r) {
                    continue;
                }
                if r.head.iter().any(|&h| self.value(h) == Truth::True) {
                    continue;
                }
                let open: Vec<AtomId> = r
                    .head
                    .iter()
                    .copied()
                    .filter(|&h| self.value(h) == Truth::Open)
                    .collect();
                match open.len() {
                    0 => return Err(trail), // body satisfied, head all false
                    1 => {
                        self.assign[open[0].0 as usize] = Truth::True;
                        trail.push(open[0]);
                        changed = true;
                    }
                    _ => {}
                }
            }
            // (b) unsupported atoms must be false.
            for id in 0..self.program.atom_count() as u32 {
                let a = AtomId(id);
                if self.value(a) != Truth::Open {
                    continue;
                }
                let supported = self
                    .program
                    .rules
                    .iter()
                    .any(|r| r.head.contains(&a) && self.body_possible(r));
                if !supported {
                    self.assign[id as usize] = Truth::False;
                    trail.push(a);
                    changed = true;
                }
            }
            if !changed {
                return Ok(trail);
            }
        }
    }

    fn undo(&mut self, trail: &[AtomId]) {
        for &a in trail {
            self.assign[a.0 as usize] = Truth::Open;
        }
    }

    fn search(&mut self) {
        if self.limit.is_some_and(|l| self.models.len() >= l) {
            return;
        }
        // Cooperative cancellation: one logical step per search node. Once
        // the budget latches, the whole recursion unwinds without branching
        // further; every model already in `self.models` passed the stability
        // check, so the truncated result is a sound subset.
        if !self.budget.tick() {
            return;
        }
        let trail = match self.propagate() {
            Ok(t) => t,
            Err(t) => {
                self.undo(&t);
                return;
            }
        };
        // Choose a branching atom: first open atom (deterministic).
        let open = (0..self.program.atom_count() as u32)
            .map(AtomId)
            .find(|&a| self.value(a) == Truth::Open);
        match open {
            None => {
                let model: Model = (0..self.program.atom_count() as u32)
                    .map(AtomId)
                    .filter(|&a| self.value(a) == Truth::True)
                    .collect();
                if self.is_model(&model) && self.is_stable(&model) {
                    self.models.push(model);
                    let _ = self.budget.charge_item();
                }
            }
            Some(a) => {
                // False first (bias toward minimal models).
                for v in [Truth::False, Truth::True] {
                    self.assign[a.0 as usize] = v;
                    self.search();
                    self.assign[a.0 as usize] = Truth::Open;
                    if self.limit.is_some_and(|l| self.models.len() >= l) {
                        break;
                    }
                }
            }
        }
        self.undo(&trail);
    }

    /// Classical model check.
    fn is_model(&self, m: &Model) -> bool {
        self.program.rules.iter().all(|r| {
            let body = r.pos.iter().all(|a| m.contains(a)) && r.neg.iter().all(|a| !m.contains(a));
            !body || r.head.iter().any(|h| m.contains(h))
        })
    }

    /// GL-reduct minimality: is `m` a minimal model of `P^m`?
    fn is_stable(&self, m: &Model) -> bool {
        // Reduct rules relevant below m: keep rules whose neg-part is
        // m-satisfied and whose pos-part lies inside m (others are satisfied
        // by any subset of m). Restrict heads to m.
        let atoms: Vec<AtomId> = m.iter().copied().collect();
        if atoms.is_empty() {
            return true;
        }
        let index_of = |a: AtomId| atoms.binary_search(&a).ok();
        let mut clauses: Vec<(Vec<usize>, Vec<usize>)> = Vec::new(); // (¬pos…, head…)
        for r in &self.program.rules {
            if r.neg.iter().any(|a| m.contains(a)) {
                continue; // dropped by the reduct
            }
            if !r.pos.iter().all(|a| m.contains(a)) {
                continue; // body false under every subset of m
            }
            let pos: Vec<usize> = r.pos.iter().filter_map(|&a| index_of(a)).collect();
            let head: Vec<usize> = r.head.iter().filter_map(|&a| index_of(a)).collect();
            // Rule must stay satisfied: ⋁¬pos ∨ ⋁head.
            clauses.push((pos, head));
        }
        // Search for a proper submodel: an assignment over `atoms` (true ⊆
        // m) satisfying all clauses with at least one atom false.
        !has_proper_submodel(atoms.len(), &clauses)
    }
}

/// Tiny DPLL over `n` variables: find an assignment satisfying every clause
/// `(⋁ ¬pos) ∨ (⋁ head)` with at least one variable false.
fn has_proper_submodel(n: usize, clauses: &[(Vec<usize>, Vec<usize>)]) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum V {
        T,
        F,
        O,
    }
    fn sat(clauses: &[(Vec<usize>, Vec<usize>)], assign: &mut Vec<V>, any_false: bool) -> bool {
        // Unit propagation.
        let mut trail: Vec<usize> = Vec::new();
        loop {
            let mut changed = false;
            for (pos, head) in clauses {
                // Clause satisfied if some pos var false or some head true.
                if pos.iter().any(|&p| assign[p] == V::F) || head.iter().any(|&h| assign[h] == V::T)
                {
                    continue;
                }
                let open_pos: Vec<usize> =
                    pos.iter().copied().filter(|&p| assign[p] == V::O).collect();
                let open_head: Vec<usize> = head
                    .iter()
                    .copied()
                    .filter(|&h| assign[h] == V::O)
                    .collect();
                match open_pos.len() + open_head.len() {
                    0 => {
                        for &t in &trail {
                            assign[t] = V::O;
                        }
                        return false; // conflict
                    }
                    1 => {
                        if let Some(&p) = open_pos.first() {
                            assign[p] = V::F;
                            trail.push(p);
                        } else {
                            assign[open_head[0]] = V::T;
                            trail.push(open_head[0]);
                        }
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                break;
            }
        }
        let have_false = any_false || assign.contains(&V::F);
        match assign.iter().position(|&v| v == V::O) {
            None => {
                let ok = have_false;
                for &t in &trail {
                    assign[t] = V::O;
                }
                ok
            }
            Some(i) => {
                for v in [V::F, V::T] {
                    assign[i] = v;
                    if sat(clauses, assign, have_false) {
                        assign[i] = V::O;
                        for &t in &trail {
                            assign[t] = V::O;
                        }
                        return true;
                    }
                }
                assign[i] = V::O;
                for &t in &trail {
                    assign[t] = V::O;
                }
                false
            }
        }
    }
    let mut assign = vec![V::O; n];
    let _ = n;
    sat(clauses, &mut assign, false)
}

/// Enumerate all stable models of a ground program (deterministic order).
///
/// Dispatches on the atom-level static analysis: stratified programs take
/// the bottom-up fast path, everything else the DPLL search. Both produce
/// the same sorted, deduplicated model list.
pub fn stable_models(program: &GroundProgram) -> Vec<Model> {
    stable_models_with_limit(program, None)
}

/// Enumerate up to `limit` stable models (analysis-dispatched like
/// [`stable_models`]).
pub fn stable_models_with_limit(program: &GroundProgram, limit: Option<usize>) -> Vec<Model> {
    stable_models_budgeted(program, limit, &Budget::unlimited()).into_value()
}

/// Budget-aware stable-model enumeration (analysis-dispatched like
/// [`stable_models`]).
///
/// The stratified fast path is polynomial and always returns
/// [`Outcome::Exact`]. The DPLL search ticks the budget once per search
/// node and charges one item per model found; a truncated result is a
/// *sound subset* of the stable models — every returned model passed the
/// full GL-reduct stability check — but other stable models may exist in
/// the unexplored part of the tree.
pub fn stable_models_budgeted(
    program: &GroundProgram,
    limit: Option<usize>,
    budget: &Budget,
) -> Outcome<Vec<Model>> {
    if let Some(mut models) = stable_models_stratified(program) {
        if let Some(l) = limit {
            models.truncate(l);
        }
        return Outcome::Exact(models);
    }
    stable_models_search_budgeted(program, limit, budget)
}

/// Enumerate all stable models by DPLL search, unconditionally (the
/// reference path; [`stable_models`] uses it only when the analysis rules
/// the stratified fast path out).
pub fn stable_models_search(program: &GroundProgram) -> Vec<Model> {
    stable_models_search_with_limit(program, None)
}

/// Enumerate up to `limit` stable models by DPLL search, unconditionally.
pub fn stable_models_search_with_limit(
    program: &GroundProgram,
    limit: Option<usize>,
) -> Vec<Model> {
    stable_models_search_budgeted(program, limit, &Budget::unlimited()).into_value()
}

/// Budget-aware DPLL search, unconditionally (see
/// [`stable_models_budgeted`] for the truncation contract). The search is
/// sequential, so a pure step/item budget truncates at the same point
/// regardless of the thread count.
pub fn stable_models_search_budgeted(
    program: &GroundProgram,
    limit: Option<usize>,
    budget: &Budget,
) -> Outcome<Vec<Model>> {
    let mut solver = Solver::new(program, limit, budget);
    solver.search();
    solver.models.sort();
    solver.models.dedup();
    let explored = solver.models.len() as u64;
    budget.outcome_with(solver.models, explored)
}

/// The stratified bottom-up fast path.
///
/// Returns `None` when the analysis classifies the ground program as
/// anything other than [`cqa_analysis::ProgramClass::Stratified`] (disjunctive heads or
/// recursion through negation). Otherwise evaluates the unique perfect
/// model stratum by stratum — negated atoms always live in a strictly
/// lower, already-final stratum, so each rule application is a plain
/// monotone fixpoint step — then checks hard constraints, yielding one
/// model or none. No stable-model guessing, no stability check.
pub fn stable_models_stratified(program: &GroundProgram) -> Option<Vec<Model>> {
    // Disjunctive programs are never Stratified: bail before building
    // anything. Then the atom dependency graph is built directly from the
    // ground rules — same decision as `classify_ground`, minus the
    // intermediate shape allocations (this runs on every solver call).
    if program.rules.iter().any(|r| r.head.len() > 1) {
        return None;
    }
    let n = program.atom_count();
    let mut graph = DepGraph::new(n);
    for r in &program.rules {
        let Some(&h) = r.head.first() else { continue };
        for a in &r.pos {
            graph.add_edge(h.0 as usize, a.0 as usize, EdgeKind::Positive);
        }
        for a in &r.neg {
            graph.add_edge(h.0 as usize, a.0 as usize, EdgeKind::Negative);
        }
    }
    let (strata, stratified, _) = graph.strata();
    if !stratified {
        return None;
    }
    let n_strata = strata.iter().copied().max().unwrap_or(0) + 1;
    let mut truth = vec![false; n];

    // Counter-based propagation (linear in total body size): each rule
    // counts its not-yet-true positive literals; when the count hits zero
    // the rule is queued on its head's stratum. Negative literals live in
    // strictly lower strata (that is what "stratified" means), so they are
    // final by the time the head's stratum is processed and can be checked
    // once, at fire time. Constraints (empty heads) are checked at the end.
    let rules: Vec<&GroundRule> = program
        .rules
        .iter()
        .filter(|r| !r.head.is_empty())
        .collect();
    let mut remaining: Vec<usize> = rules.iter().map(|r| r.pos.len()).collect();
    let mut watch: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ri, r) in rules.iter().enumerate() {
        for a in &r.pos {
            watch[a.0 as usize].push(ri);
        }
    }
    let mut pending: Vec<Vec<usize>> = vec![Vec::new(); n_strata];
    for (ri, r) in rules.iter().enumerate() {
        if remaining[ri] == 0 {
            pending[strata[r.head[0].0 as usize]].push(ri);
        }
    }
    for s in 0..n_strata {
        while let Some(ri) = pending[s].pop() {
            let r = rules[ri];
            let h = r.head[0].0 as usize;
            if truth[h] || r.neg.iter().any(|a| truth[a.0 as usize]) {
                continue;
            }
            truth[h] = true;
            for &watcher in &watch[h] {
                remaining[watcher] -= 1;
                if remaining[watcher] == 0 {
                    // Positive edges never step down a stratum, so this
                    // never queues into an already-drained layer.
                    pending[strata[rules[watcher].head[0].0 as usize]].push(watcher);
                }
            }
        }
    }
    // Hard constraints: a satisfied body kills the single candidate model.
    for r in &program.rules {
        if r.head.is_empty()
            && r.pos.iter().all(|a| truth[a.0 as usize])
            && r.neg.iter().all(|a| !truth[a.0 as usize])
        {
            return Some(Vec::new());
        }
    }
    let model: Model = (0..n as u32)
        .map(AtomId)
        .filter(|a| truth[a.0 as usize])
        .collect();
    Some(vec![model])
}

/// Brave consequence: is `atom` true in *some* stable model?
pub fn brave(program: &GroundProgram, models: &[Model], atom: AtomId) -> bool {
    let _ = program;
    models.iter().any(|m| m.contains(&atom))
}

/// Cautious consequence: is `atom` true in *every* stable model?
pub fn cautious(program: &GroundProgram, models: &[Model], atom: AtomId) -> bool {
    let _ = program;
    !models.is_empty() && models.iter().all(|m| m.contains(&atom))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::ground;
    use crate::parser::parse_asp;
    use cqa_relation::tuple;

    fn models_of(src: &str) -> (GroundProgram, Vec<Model>) {
        let p = parse_asp(src).unwrap();
        let g = ground(&p).unwrap();
        let m = stable_models(&g);
        (g, m)
    }

    fn model_strings(g: &GroundProgram, m: &Model) -> Vec<String> {
        m.iter().map(|&a| g.atom(a).to_string()).collect()
    }

    #[test]
    fn facts_have_one_model() {
        let (g, ms) = models_of("p(A).\nq(B).");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].len(), 2);
        let _ = g;
    }

    #[test]
    fn definite_rules_compute_least_model() {
        let (g, ms) = models_of(
            "e(1, 2).\ne(2, 3).\n\
             t(x, y) :- e(x, y).\n\
             t(x, z) :- e(x, y), t(y, z).",
        );
        assert_eq!(ms.len(), 1);
        assert!(ms[0].contains(&g.lookup("t", &tuple![1, 3]).unwrap()));
        assert_eq!(ms[0].len(), 5); // 2 e-facts + 3 t-atoms
    }

    #[test]
    fn choice_via_even_negation_loop() {
        // a :- not b. b :- not a. — two stable models {a}, {b}.
        let (g, ms) = models_of("a :- not b().\nb :- not a().");
        assert_eq!(ms.len(), 2);
        let names: Vec<Vec<String>> = ms.iter().map(|m| model_strings(&g, m)).collect();
        assert!(names.contains(&vec!["a".to_string()]));
        assert!(names.contains(&vec!["b".to_string()]));
    }

    #[test]
    fn odd_negation_loop_has_no_model() {
        let (_, ms) = models_of("a :- not a().");
        assert!(ms.is_empty());
    }

    #[test]
    fn positive_loop_is_not_self_supporting() {
        // a :- b. b :- a. — only the empty model is stable.
        let (_, ms) = models_of("a :- b().\nb :- a().");
        assert_eq!(ms.len(), 1);
        assert!(ms[0].is_empty());
    }

    #[test]
    fn disjunction_is_minimal() {
        let (g, ms) = models_of("a | b.");
        assert_eq!(ms.len(), 2);
        for m in &ms {
            assert_eq!(m.len(), 1);
        }
        let _ = g;
        // {a, b} is a classical model but not minimal → not stable.
    }

    #[test]
    fn disjunction_with_constraint() {
        let (g, ms) = models_of("a | b.\n:- a().");
        assert_eq!(ms.len(), 1);
        assert_eq!(model_strings(&g, &ms[0]), vec!["b"]);
    }

    #[test]
    fn head_shared_by_rules_non_minimal_pruned() {
        // a | b. a :- b. — {b} is not stable ({b} model? rule2: b→a so {b}
        // violates rule2; {a} stable; {a,b}? reduct minimality fails).
        let (g, ms) = models_of("a | b.\na :- b().");
        let names: Vec<Vec<String>> = ms.iter().map(|m| model_strings(&g, m)).collect();
        assert_eq!(names, vec![vec!["a".to_string()]]);
    }

    #[test]
    fn hard_constraint_kills_all_models() {
        let (_, ms) = models_of("a | b.\n:- a().\n:- b().");
        assert!(ms.is_empty());
    }

    #[test]
    fn example_3_5_repair_program_shape() {
        // Hand-written version of the paper's repair program for κ on the
        // R/S instance; tids as first arguments, annotations d/s.
        let src = "\
            s(4, A4).\n\
            s(5, A2).\n\
            s(6, A3).\n\
            r(1, A4, A3).\n\
            r(2, A2, A1).\n\
            r(3, A3, A3).\n\
            sp(t1, x, D) | rp(t2, x, y, D) | sp(t3, y, D) :- s(t1, x), r(t2, x, y), s(t3, y).\n\
            sp(t, x, S) :- s(t, x), not sp(t, x, D).\n\
            rp(t, x, y, S) :- r(t, x, y), not rp(t, x, y, D).";
        let (g, ms) = models_of(src);
        assert_eq!(ms.len(), 3, "three S-repairs = three stable models");
        // Each model keeps exactly the tuples of one of D1, D2, D3.
        let kept: Vec<BTreeSet<String>> = ms
            .iter()
            .map(|m| {
                m.iter()
                    .map(|&a| g.atom(a))
                    .filter(|a| {
                        (a.predicate == "sp" || a.predicate == "rp")
                            && a.args.values().last().unwrap() == &cqa_relation::Value::str("S")
                    })
                    .map(|a| format!("{}{}", a.predicate, a.args.at(0)))
                    .collect()
            })
            .collect();
        // D1 deletes ι6 → keeps sp4, sp5, rp1, rp2, rp3.
        assert!(kept.contains(
            &["sp4", "sp5", "rp1", "rp2", "rp3"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        ));
        // D2 = {ι2, ι4, ι5, ι6} keeps rp2, sp4, sp5, sp6.
        assert!(kept.contains(
            &["rp2", "sp4", "sp5", "sp6"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        ));
        // D3 = {ι1, ι2, ι5, ι6} keeps rp1, rp2, sp5, sp6.
        assert!(kept.contains(
            &["rp1", "rp2", "sp5", "sp6"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        ));
    }

    #[test]
    fn brave_and_cautious() {
        let (g, ms) = models_of("a | b.\nc :- a().\nc :- b().");
        let a = g.lookup("a", &Tuple::new(vec![])).unwrap();
        let c = g.lookup("c", &Tuple::new(vec![])).unwrap();
        assert!(brave(&g, &ms, a));
        assert!(!cautious(&g, &ms, a));
        assert!(cautious(&g, &ms, c));
    }

    #[test]
    fn stratified_fast_path_agrees_with_search() {
        // Programs the analysis classifies as stratified: the fast path must
        // fire and return exactly what the reference search returns.
        for src in [
            "p(A).\nq(B).",
            "e(1, 2).\ne(2, 3).\nt(x, y) :- e(x, y).\nt(x, z) :- e(x, y), t(y, z).",
            "node(A).\nnode(B).\nedge(A, B).\nreach(x) :- edge(x, y).\n\
             isolated(x) :- node(x), not reach(x).",
            "p(A).\n:- p(x).",
            "a :- b().\nb :- a().",
        ] {
            let p = parse_asp(src).unwrap();
            let g = ground(&p).unwrap();
            let fast = stable_models_stratified(&g)
                .unwrap_or_else(|| panic!("fast path refused stratified program: {src}"));
            assert_eq!(fast, stable_models_search(&g), "disagreement on: {src}");
        }
    }

    #[test]
    fn fast_path_declines_unstratified_and_disjunctive() {
        for src in ["a :- not b().\nb :- not a().", "a | b.", "a :- not a()."] {
            let p = parse_asp(src).unwrap();
            let g = ground(&p).unwrap();
            assert!(
                stable_models_stratified(&g).is_none(),
                "fast path wrongly accepted: {src}"
            );
            // The dispatcher still answers via the search.
            assert_eq!(stable_models(&g), stable_models_search(&g));
        }
    }

    #[test]
    fn budgeted_search_truncates_to_sound_subset() {
        // 2^4 = 16 stable models; a tiny step budget finds a strict subset,
        // and every member of the subset is a genuine stable model.
        let p = parse_asp("a | b.\nc | d.\ne | f.\ng | h.").unwrap();
        let g = ground(&p).unwrap();
        let exact = stable_models(&g);
        assert_eq!(exact.len(), 16);
        let outcome = stable_models_budgeted(&g, None, &Budget::steps(40));
        assert!(outcome.is_truncated());
        let truncated = outcome.into_value();
        assert!(truncated.len() < exact.len());
        for m in &truncated {
            assert!(exact.contains(m), "truncated model not stable: {m:?}");
        }
    }

    #[test]
    fn budgeted_search_exact_with_ample_budget() {
        let p = parse_asp("a | b.\nc | d.").unwrap();
        let g = ground(&p).unwrap();
        let outcome = stable_models_budgeted(&g, None, &Budget::steps(1_000_000));
        assert!(outcome.is_exact());
        assert_eq!(outcome.into_value(), stable_models(&g));
    }

    #[test]
    fn stratified_fast_path_ignores_budget() {
        // Polynomial path: exact even under a one-step budget.
        let p = parse_asp("p(A).\nq(x) :- p(x).").unwrap();
        let g = ground(&p).unwrap();
        let outcome = stable_models_budgeted(&g, None, &Budget::steps(1));
        assert!(outcome.is_exact());
        assert_eq!(outcome.into_value(), stable_models(&g));
    }

    #[test]
    fn item_cap_limits_models() {
        let p = parse_asp("a | b.\nc | d.\ne | f.").unwrap();
        let g = ground(&p).unwrap();
        let outcome = stable_models_budgeted(&g, None, &Budget::items(3));
        assert!(outcome.is_truncated());
        assert_eq!(outcome.value().len(), 3);
    }

    #[test]
    fn model_limit() {
        let (_, _) = models_of("a | b.");
        let p = parse_asp("a | b.\nc | d.").unwrap();
        let g = ground(&p).unwrap();
        assert_eq!(stable_models(&g).len(), 4);
        assert_eq!(stable_models_with_limit(&g, Some(2)).len(), 2);
    }

    use cqa_relation::Tuple;
}
