//! Weak-constraint optimization (DLV semantics, \[82\]; used for C-repairs in
//! Ex. 4.2 and for maximum-responsibility causes in §7).
//!
//! A weak constraint `:~ body. [w@l]` charges weight `w` at level `l` for
//! every ground instance whose body a model satisfies. Models are compared
//! by their cost vectors, **higher levels first**; `optimal_models` keeps
//! the minima.

use crate::ground::{GroundProgram, GroundWeak};
use crate::solve::{stable_models, Model};
use std::collections::BTreeMap;

/// Cost of a model: level → total weight of violated instances. Missing
/// levels count as zero.
pub type Cost = BTreeMap<u32, i64>;

/// Compute the cost vector of `model`.
pub fn cost_of(program: &GroundProgram, model: &Model) -> Cost {
    let mut cost = Cost::new();
    for w in &program.weak {
        if violated(w, model) {
            *cost.entry(w.level).or_insert(0) += w.weight;
        }
    }
    cost
}

fn violated(w: &GroundWeak, model: &Model) -> bool {
    w.pos.iter().all(|a| model.contains(a)) && w.neg.iter().all(|a| !model.contains(a))
}

/// Compare two costs lexicographically by level, higher levels first.
pub fn compare_costs(a: &Cost, b: &Cost) -> std::cmp::Ordering {
    let levels: std::collections::BTreeSet<u32> = a.keys().chain(b.keys()).copied().collect();
    for level in levels.into_iter().rev() {
        let va = a.get(&level).copied().unwrap_or(0);
        let vb = b.get(&level).copied().unwrap_or(0);
        match va.cmp(&vb) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// All cost-optimal stable models, with their (shared) cost.
pub fn optimal_models(program: &GroundProgram) -> (Vec<Model>, Cost) {
    let all = stable_models(program);
    optimal_among(program, all)
}

/// Filter an explicit model list down to the cost-optimal ones.
pub fn optimal_among(program: &GroundProgram, models: Vec<Model>) -> (Vec<Model>, Cost) {
    let mut best: Option<Cost> = None;
    let mut kept: Vec<Model> = Vec::new();
    for m in models {
        let c = cost_of(program, &m);
        match &best {
            None => {
                best = Some(c);
                kept = vec![m];
            }
            Some(b) => match compare_costs(&c, b) {
                std::cmp::Ordering::Less => {
                    best = Some(c);
                    kept = vec![m];
                }
                std::cmp::Ordering::Equal => kept.push(m),
                std::cmp::Ordering::Greater => {}
            },
        }
    }
    (kept, best.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::ground;
    use crate::parser::parse_asp;

    #[test]
    fn weak_constraints_pick_cheapest_models() {
        // Two independent choices; penalize a and c.
        let p = parse_asp(
            "a | b.\nc | d.\n\
             :~ a().\n\
             :~ c().",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        let (opt, cost) = optimal_models(&g);
        assert_eq!(opt.len(), 1); // {b, d}
        assert_eq!(cost.get(&1).copied().unwrap_or(0), 0);
        let names: Vec<String> = opt[0].iter().map(|&a| g.atom(a).to_string()).collect();
        assert_eq!(names, vec!["b", "d"]);
    }

    #[test]
    fn weights_accumulate() {
        let p = parse_asp(
            "a | b.\n\
             :~ a(). [3]\n\
             :~ b(). [1]\n\
             :~ b(). [1]",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        // Duplicate ground weak constraints dedupe? No: both :~ b() lines
        // are distinct constraints; b costs 2 < a costs 3.
        let (opt, cost) = optimal_models(&g);
        let names: Vec<String> = opt[0].iter().map(|&a| g.atom(a).to_string()).collect();
        assert_eq!(names, vec!["b"]);
        assert_eq!(cost.get(&1).copied().unwrap(), 2);
    }

    #[test]
    fn levels_dominate_weights() {
        // a violates level 2 weight 1; b violates level 1 weight 100.
        let p = parse_asp(
            "a | b.\n\
             :~ a(). [1@2]\n\
             :~ b(). [100@1]",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        let (opt, _) = optimal_models(&g);
        let names: Vec<String> = opt[0].iter().map(|&a| g.atom(a).to_string()).collect();
        assert_eq!(names, vec!["b"]); // level 2 is minimized first
    }

    #[test]
    fn ties_keep_all_optima() {
        let p = parse_asp(
            "a | b.\n\
             :~ a().\n\
             :~ b().",
        )
        .unwrap();
        let g = ground(&p).unwrap();
        let (opt, cost) = optimal_models(&g);
        assert_eq!(opt.len(), 2);
        assert_eq!(cost.get(&1).copied().unwrap(), 1);
    }

    #[test]
    fn cost_comparison_orders() {
        use std::cmp::Ordering::*;
        let c = |pairs: &[(u32, i64)]| -> Cost { pairs.iter().copied().collect() };
        assert_eq!(compare_costs(&c(&[(1, 1)]), &c(&[(1, 2)])), Less);
        assert_eq!(compare_costs(&c(&[(2, 1)]), &c(&[(1, 100)])), Greater);
        assert_eq!(compare_costs(&c(&[]), &c(&[(1, 0)])), Equal);
    }
}
