// Golden fixture: L001 near-misses that must stay clean — hash iteration
// is fine when the order is re-established (sort_unstable, BTree rebuild)
// or never observed (order-insensitive folds).
use std::collections::{BTreeSet, HashMap, HashSet};

pub fn sorted_afterwards(m: &HashMap<u32, String>) -> Vec<u32> {
    let mut v: Vec<u32> = m.keys().copied().collect();
    v.sort_unstable();
    v
}

pub fn btree_rebuild(m: &HashMap<u32, String>) -> BTreeSet<u32> {
    m.keys().copied().collect()
}

pub fn order_free(s: &HashSet<u32>) -> u32 {
    s.iter().sum()
}

#[cfg(test)]
mod tests {
    // Test code is exempt: assertion order is the test's own business.
    pub fn in_test(m: &super::HashMap<u32, String>) -> Vec<u32> {
        m.keys().copied().collect()
    }
}
