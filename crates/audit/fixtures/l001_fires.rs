// Golden fixture: L001 must fire — hash-order reaches a collected Vec and
// a pushed Vec with no sort or BTree rebuild in between.
use std::collections::{HashMap, HashSet};

pub fn leaked_collect(m: &HashMap<u32, String>) -> Vec<u32> {
    m.keys().copied().collect()
}

pub fn leaked_loop(s: &HashSet<u32>, out: &mut Vec<u32>) {
    for x in s {
        out.push(*x);
    }
}
