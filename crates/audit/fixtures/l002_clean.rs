// Golden fixture: L002 near-miss that must stay clean — the same shapes,
// but every search path threads a Budget and ticks it.
// audit:exponential — fixture search module (budgeted).

pub fn subsets(pool: &[u32], cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>, budget: &Budget) {
    if !budget.tick() {
        return;
    }
    out.push(cur.clone());
    for (i, x) in pool.iter().enumerate() {
        cur.push(*x);
        subsets(&pool[i + 1..], cur, out, budget);
        cur.pop();
    }
}

pub fn drain_frontier(mut frontier: Vec<u32>, budget: &Budget) -> u32 {
    let mut best = 0;
    while let Some(x) = frontier.pop() {
        if !budget.tick() {
            break;
        }
        best = best.max(x);
    }
    best
}
