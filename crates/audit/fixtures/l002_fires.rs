// Golden fixture: L002 must fire — a recursive and a worklist function in
// an audit:exponential module, neither threading a Budget, and the module
// never charges one.
// audit:exponential — fixture search module.

pub fn subsets(pool: &[u32], cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
    out.push(cur.clone());
    for (i, x) in pool.iter().enumerate() {
        cur.push(*x);
        subsets(&pool[i + 1..], cur, out);
        cur.pop();
    }
}

pub fn drain_frontier(mut frontier: Vec<u32>) -> u32 {
    let mut best = 0;
    while let Some(x) = frontier.pop() {
        best = best.max(x);
    }
    best
}
