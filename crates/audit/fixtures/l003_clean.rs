// Golden fixture: L003 near-misses that must stay clean — fallible
// handling, non-panicking unwrap_or variants, array patterns and literals
// (which are not index expressions), full-range slices, waived sites, and
// test code.

pub fn parse_pair(s: &str) -> Option<(u32, u32)> {
    let mut it = s.split(',');
    let a = it.next()?.trim().parse().ok()?;
    let b = it.next()?.trim().parse().ok()?;
    Some((a, b))
}

pub fn shapes(v: &[u32]) -> u32 {
    let arr: [u32; 2] = [1, 2];
    let [x, y] = arr;
    let all = &v[..];
    let macro_made = vec![x, y];
    all.first().copied().unwrap_or(0) + macro_made.len() as u32
}

#[allow(clippy::unwrap_used)]
pub fn locally_proven(x: Option<u32>) -> u32 {
    // The allow attribute is a reviewed waiver; the audit honors it.
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(super::parse_pair("1, 2").unwrap(), (1, 2));
    }
}
