// Golden fixture: L003 must fire — unwrap/expect, a panicking macro, and
// expression-position indexing in (nominally) input-surface code.

pub fn parse_pair(s: &str) -> (u32, u32) {
    let parts: Vec<&str> = s.split(',').collect();
    let a = parts[0].trim().parse().unwrap();
    let b = parts[1].trim().parse().expect("second field");
    if parts.len() > 2 {
        panic!("too many fields");
    }
    (a, b)
}
