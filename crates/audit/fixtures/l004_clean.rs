// Golden fixture: L004 near-misses that must stay clean — the words only
// appear in strings/comments, RwLock is not Mutex, and test code may spawn
// helper threads to exercise concurrency.
use std::sync::RwLock;

pub fn documented() -> &'static str {
    // A comment mentioning thread::spawn and Mutex is not a violation.
    "prefer the pool over thread::spawn and Mutex"
}

pub fn shared_cache(l: &RwLock<u32>) -> u32 {
    *l.read().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spawn() {
        let h = std::thread::spawn(|| 41 + 1);
        assert_eq!(h.join().unwrap(), 42);
    }
}
