// Golden fixture: L004 must fire — raw thread::spawn and an ad-hoc Mutex
// outside cqa-exec.
use std::sync::Mutex;

pub fn ad_hoc(n: usize) -> usize {
    let total = Mutex::new(0usize);
    std::thread::spawn(move || {
        // racy accumulation the pool would have made deterministic
    });
    n
}
