// Golden fixture: L005 near-misses that must stay clean — the names in
// strings/comments, an unrelated `now`/`var`, and test code.

pub fn documented() -> &'static str {
    // Instant::now and env::var are discussed here, not called.
    "deadlines come from Budget, configuration from cqa-exec::config"
}

pub fn unrelated(now: u32, var: u32) -> u32 {
    now + var
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_read_the_clock() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_secs() < 60);
    }
}
