// Golden fixture: L005 must fire — wall-clock and environment reads in an
// unsanctioned module.
use std::time::Instant;

pub fn ambient() -> bool {
    let t = Instant::now();
    std::env::var("CQA_THREADS").is_ok() && t.elapsed().as_millis() > 0
}
