// Golden fixture: L006 near-misses that must stay clean — the token only
// inside a string literal, a raw string, comments, and identifiers that
// merely contain it. This is exactly what the old CI grep got wrong.

pub fn grep_bait() -> (&'static str, &'static str) {
    let in_string = "unsafe { transmute() }";
    let in_raw = r#"unsafe impl Send for X {}"#;
    (in_string, in_raw)
}

// unsafe in a line comment
/* unsafe { } in a block comment */

pub fn unsafe_code_mention(forbid_unsafe_code: bool) -> bool {
    forbid_unsafe_code
}
