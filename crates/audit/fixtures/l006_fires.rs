// Golden fixture: L006 must fire — real unsafe code, even inside test
// modules (the workspace forbids unsafe everywhere).

pub fn deref(p: *const u8) -> u8 {
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    pub fn also_counts(p: *const u8) -> u8 {
        unsafe { *p }
    }
}
