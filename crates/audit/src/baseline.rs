//! The audit baseline: justified exceptions, checked in next to the code.
//!
//! Format — one entry per line, `#` comments and blank lines ignored:
//!
//! ```text
//! CODE  path/to/file.rs  scope  count  -- reason the finding is acceptable
//! ```
//!
//! `scope` is the enclosing function name (or `<module>`), `count` is the
//! number of findings the entry absorbs for that `(code, file, scope)`
//! triple — findings beyond the count stay active, so new regressions in an
//! already-baselined function still fail the gate. Entries that no longer
//! match anything (or allow more than currently fires) are reported as
//! *stale* and fail `--deny`: the baseline must shrink with the code.

use crate::Finding;

/// One parsed baseline line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Diagnostic code, e.g. `L003`.
    pub code: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Enclosing function name or `<module>`.
    pub scope: String,
    /// Number of findings this entry absorbs.
    pub count: usize,
    /// Human justification (after `--`).
    pub reason: String,
    /// 1-based line in the baseline file (for stale reports).
    pub line: u32,
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<BaselineEntry>,
}

/// Result of matching findings against a baseline.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Findings not absorbed by any entry — these are reported.
    pub active: Vec<Finding>,
    /// Number of findings absorbed.
    pub suppressed: usize,
    /// Entries that matched nothing or allowed more than fired; each string
    /// is a ready-to-print explanation. Stale entries fail `--deny`.
    pub stale: Vec<String>,
}

impl Baseline {
    /// Parse a baseline file. Malformed lines are hard errors: a baseline
    /// that silently ignores a typo would silently stop suppressing.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = (idx + 1) as u32;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (head, reason) = line
                .split_once("--")
                .ok_or_else(|| format!("baseline line {line_no}: missing `-- reason`"))?;
            let fields: Vec<&str> = head.split_whitespace().collect();
            let [code, file, scope, count] = fields.as_slice() else {
                return Err(format!(
                    "baseline line {line_no}: expected `CODE file scope count -- reason`, \
                     got {} fields",
                    fields.len()
                ));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {line_no}: count `{count}` is not a number"))?;
            let reason = reason.trim().to_string();
            if reason.is_empty() {
                return Err(format!("baseline line {line_no}: empty reason"));
            }
            entries.push(BaselineEntry {
                code: code.to_string(),
                file: file.to_string(),
                scope: scope.to_string(),
                count,
                reason,
                line: line_no,
            });
        }
        Ok(Baseline { entries })
    }

    /// Match `findings` (already in stable order) against the baseline.
    pub fn apply(&self, findings: Vec<Finding>) -> BaselineOutcome {
        let mut used = vec![0usize; self.entries.len()];
        let mut out = BaselineOutcome::default();
        for f in findings {
            let slot = self.entries.iter().enumerate().find(|(k, e)| {
                used[*k] < e.count
                    && e.code == f.code.code()
                    && e.file == f.file
                    && e.scope == f.scope
            });
            match slot {
                Some((k, _)) => {
                    used[k] += 1;
                    out.suppressed += 1;
                }
                None => out.active.push(f),
            }
        }
        for (k, e) in self.entries.iter().enumerate() {
            if used[k] == 0 {
                out.stale.push(format!(
                    "baseline line {}: `{} {} {}` matches no current finding — delete it",
                    e.line, e.code, e.file, e.scope
                ));
            } else if used[k] < e.count {
                out.stale.push(format!(
                    "baseline line {}: `{} {} {}` allows {} but only {} fire — tighten the count",
                    e.line, e.code, e.file, e.scope, e.count, used[k]
                ));
            }
        }
        out
    }

    /// Render `findings` as a fresh baseline body (reasons left as TODO) —
    /// the output of `repairctl audit --print-baseline`.
    pub fn render(findings: &[Finding]) -> String {
        let mut groups: Vec<((&'static str, &str, &str), usize)> = Vec::new();
        for f in findings {
            let key = (f.code.code(), f.file.as_str(), f.scope.as_str());
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => groups.push((key, 1)),
            }
        }
        groups.sort();
        let mut s = String::from(
            "# cqa-audit baseline: CODE file scope count -- reason\n\
             # Each entry absorbs `count` findings for that (code, file, scope);\n\
             # anything beyond the count, and any stale entry, fails --deny.\n",
        );
        for ((code, file, scope), n) in groups {
            s.push_str(&format!("{code} {file} {scope} {n} -- TODO: justify\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_analysis::DiagCode;

    fn f(code: DiagCode, file: &str, scope: &str, line: u32) -> Finding {
        Finding {
            code,
            file: file.to_string(),
            line,
            scope: scope.to_string(),
            message: "m".to_string(),
        }
    }

    #[test]
    fn parse_roundtrip() {
        let b = Baseline::parse(
            "# header\n\
             \n\
             L003 crates/cli/src/lib.rs parse 2 -- argv is process-owned\n",
        )
        .unwrap();
        assert_eq!(b.entries.len(), 1);
        assert_eq!(b.entries[0].count, 2);
        assert_eq!(b.entries[0].reason, "argv is process-owned");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Baseline::parse("L003 f s 2\n").is_err()); // no reason
        assert!(Baseline::parse("L003 f s x -- r\n").is_err()); // bad count
        assert!(Baseline::parse("L003 f 2 -- r\n").is_err()); // missing field
    }

    #[test]
    fn apply_suppresses_up_to_count_and_reports_stale() {
        let b = Baseline::parse(
            "L003 a.rs parse 1 -- ok\n\
             L004 b.rs <module> 2 -- ok\n\
             L006 c.rs gone 1 -- ok\n",
        )
        .unwrap();
        let findings = vec![
            f(DiagCode::PanicSurface, "a.rs", "parse", 1),
            f(DiagCode::PanicSurface, "a.rs", "parse", 2), // beyond count
            f(DiagCode::AdHocParallelism, "b.rs", "<module>", 3), // 1 of 2
        ];
        let out = b.apply(findings);
        assert_eq!(out.suppressed, 2);
        assert_eq!(out.active.len(), 1);
        assert_eq!(out.active[0].line, 2);
        assert_eq!(out.stale.len(), 2); // unused L006 + overcounted L004
    }

    #[test]
    fn render_groups_and_counts() {
        let findings = vec![
            f(DiagCode::PanicSurface, "a.rs", "parse", 1),
            f(DiagCode::PanicSurface, "a.rs", "parse", 2),
            f(DiagCode::UnsafeCode, "b.rs", "<module>", 3),
        ];
        let s = Baseline::render(&findings);
        assert!(s.contains("L003 a.rs parse 2 -- TODO: justify"));
        assert!(s.contains("L006 b.rs <module> 1 -- TODO: justify"));
    }
}
