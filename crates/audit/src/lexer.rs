//! A lightweight, comment/string/char-literal-aware lexer for Rust sources.
//!
//! The audit rules need exactly one guarantee the old `grep -R unsafe` CI
//! gate could not give: a keyword inside a string literal, a doc comment, or
//! a nested block comment is **not** a finding. This lexer provides that —
//! it splits a source file into identifier / punctuation / literal tokens
//! with line numbers, swallowing comments and literal *contents* entirely —
//! without attempting to be a full Rust parser. Tricky corners it does get
//! right:
//!
//! * nested block comments (`/* /* */ */` — Rust block comments nest),
//! * raw strings with any hash depth (`r#"…"#`, `br##"…"##`) and the
//!   raw-identifier ambiguity (`r#type` is an identifier, `r#"…"#` is not),
//! * byte/C-string prefixes (`b"…"`, `br"…"`, `c"…"`),
//! * char literals vs lifetimes (`'a'` vs `'a`, `'\u{1F4A9}'`, `'_'` vs
//!   `'_`),
//! * escape sequences inside ordinary strings (`"\"/* not a comment"`).
//!
//! Comments are not discarded silently: any comment containing `audit:` is
//! surfaced as a *directive* (with its line number), which is how modules
//! opt into the `L002` exponential-path contract (`// audit:exponential`).

/// What kind of token this is. Rules mostly match on [`TokKind::Ident`] and
/// [`TokKind::Punct`]; literal tokens exist so that rules can reason about
/// expression shape (e.g. indexing) without ever seeing literal contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident,
    /// A single punctuation byte (`{`, `.`, `#`, …).
    Punct,
    /// A string literal (contents swallowed): `"…"`, `r#"…"#`, `b"…"`.
    Str,
    /// A char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// A numeric literal (value swallowed).
    Num,
    /// A lifetime (`'a`); kept distinct so `'a` never looks like a char.
    Lifetime,
}

/// One lexed token: kind, text (identifiers and punctuation only), and the
/// 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// The token text for identifiers and punctuation; empty for literals.
    pub text: String,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// Is this the identifier `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this the punctuation byte `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// A lexed file: the token stream plus every `audit:` directive comment.
#[derive(Debug, Clone, Default)]
pub struct LexedFile {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// `(line, trimmed comment text)` for each comment containing `audit:`.
    pub directives: Vec<(u32, String)>,
}

impl LexedFile {
    /// Does any directive comment contain the given marker (e.g.
    /// `"audit:exponential"`)?
    pub fn has_directive(&self, marker: &str) -> bool {
        self.directives.iter().any(|(_, d)| d.contains(marker))
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// How many bytes the UTF-8 character starting at `b` occupies (1 for
/// ASCII and for any malformed lead byte — the lexer only needs to make
/// forward progress, not validate UTF-8).
fn utf8_len(b: u8) -> usize {
    match b {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

struct Cursor<'a> {
    s: &'a [u8],
    i: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.s.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.s.get(self.i).copied();
        if let Some(b) = b {
            if b == b'\n' {
                self.line += 1;
            }
            self.i += 1;
        }
        b
    }

    /// Advance `n` bytes, maintaining the line count.
    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consume a line comment (cursor on the second `/`), returning its
    /// text without the trailing newline.
    fn line_comment(&mut self) -> String {
        let start = self.i;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        String::from_utf8_lossy(&self.s[start..self.i]).into_owned()
    }

    /// Consume a (possibly nested) block comment; cursor just after `/*`.
    fn block_comment(&mut self) -> String {
        let start = self.i;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    let end = self.i;
                    self.bump_n(2);
                    if depth == 0 {
                        return String::from_utf8_lossy(&self.s[start..end]).into_owned();
                    }
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: swallow to EOF
            }
        }
        String::from_utf8_lossy(&self.s[start..self.i]).into_owned()
    }

    /// Consume an escaped (non-raw) string body; cursor just after the
    /// opening quote.
    fn escaped_string(&mut self) {
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump(); // whatever is escaped, including `"` and `\`
                }
                b'"' => return,
                _ => {}
            }
        }
    }

    /// Consume a raw string body with `hashes` trailing hashes; cursor just
    /// after the opening quote.
    fn raw_string(&mut self, hashes: usize) {
        while let Some(b) = self.bump() {
            if b == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(k) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump_n(hashes);
                    return;
                }
            }
        }
    }

    /// Consume a char-literal body; cursor just after the opening `'`.
    fn char_body(&mut self) {
        match self.peek(0) {
            Some(b'\\') => {
                self.bump();
                self.bump(); // the escaped char (or `u`; `{…}` consumed below)
                while let Some(b) = self.peek(0) {
                    if b == b'\'' {
                        self.bump();
                        return;
                    }
                    self.bump();
                }
            }
            Some(b) => {
                self.bump_n(utf8_len(b));
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
            }
            None => {}
        }
    }
}

/// Lex `src` into tokens and `audit:` directives. Never panics: malformed
/// input degrades to punct tokens or swallowed-to-EOF literals, which is
/// the right behaviour for an auditor (the compiler is the arbiter of
/// validity; the auditor must merely never mistake a literal for code).
pub fn lex(src: &str) -> LexedFile {
    let mut c = Cursor {
        s: src.as_bytes(),
        i: 0,
        line: 1,
    };
    let mut out = LexedFile::default();
    let comment = |line: u32, text: String, out: &mut LexedFile| {
        if text.contains("audit:") {
            out.directives.push((line, text.trim().to_string()));
        }
    };
    while let Some(b) = c.peek(0) {
        let line = c.line;
        match b {
            b'/' if c.peek(1) == Some(b'/') => {
                c.bump_n(2);
                let text = c.line_comment();
                comment(line, text, &mut out);
            }
            b'/' if c.peek(1) == Some(b'*') => {
                c.bump_n(2);
                let text = c.block_comment();
                comment(line, text, &mut out);
            }
            b'"' => {
                c.bump();
                c.escaped_string();
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
            }
            b'\'' => {
                c.bump();
                // Char literal iff an escape follows, or exactly one char
                // then a closing quote. Otherwise it is a lifetime.
                let is_char = match c.peek(0) {
                    Some(b'\\') => true,
                    Some(ch) => {
                        let n = utf8_len(ch);
                        c.peek(n) == Some(b'\'')
                    }
                    None => false,
                };
                if is_char {
                    c.char_body();
                    out.tokens.push(Token {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                } else {
                    let start = c.i;
                    while c.peek(0).is_some_and(is_ident_continue) {
                        c.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: String::from_utf8_lossy(&c.s[start..c.i]).into_owned(),
                        line,
                    });
                }
            }
            b if b.is_ascii_digit() => {
                let start = c.i;
                while let Some(d) = c.peek(0) {
                    if is_ident_continue(d) {
                        c.bump();
                    } else if d == b'.'
                        && c.peek(1).is_some_and(|n| n.is_ascii_digit())
                        && !c.s[start..c.i].contains(&b'.')
                    {
                        c.bump(); // decimal point, but never a `..` range
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Num,
                    text: String::new(),
                    line,
                });
            }
            b if is_ident_start(b) => {
                let start = c.i;
                while c.peek(0).is_some_and(is_ident_continue) {
                    c.bump();
                }
                let text = String::from_utf8_lossy(&c.s[start..c.i]).into_owned();
                // Literal prefixes and raw identifiers.
                let raw_capable = matches!(text.as_str(), "r" | "br" | "cr");
                let str_capable = matches!(text.as_str(), "r" | "br" | "cr" | "b" | "c");
                match c.peek(0) {
                    Some(b'"') if str_capable => {
                        c.bump();
                        if raw_capable {
                            c.raw_string(0);
                        } else {
                            c.escaped_string();
                        }
                        out.tokens.push(Token {
                            kind: TokKind::Str,
                            text: String::new(),
                            line,
                        });
                    }
                    Some(b'#') if raw_capable => {
                        // Count hashes; a quote after them means raw string,
                        // anything else means `r#ident`.
                        let mut hashes = 0usize;
                        while c.peek(hashes) == Some(b'#') {
                            hashes += 1;
                        }
                        if c.peek(hashes) == Some(b'"') {
                            c.bump_n(hashes + 1);
                            c.raw_string(hashes);
                            out.tokens.push(Token {
                                kind: TokKind::Str,
                                text: String::new(),
                                line,
                            });
                        } else if text == "r" && hashes == 1 {
                            c.bump(); // the `#`
                            let start = c.i;
                            while c.peek(0).is_some_and(is_ident_continue) {
                                c.bump();
                            }
                            out.tokens.push(Token {
                                kind: TokKind::Ident,
                                text: String::from_utf8_lossy(&c.s[start..c.i]).into_owned(),
                                line,
                            });
                        } else {
                            out.tokens.push(Token {
                                kind: TokKind::Ident,
                                text,
                                line,
                            });
                        }
                    }
                    Some(b'\'') if text == "b" => {
                        c.bump();
                        c.char_body();
                        out.tokens.push(Token {
                            kind: TokKind::Char,
                            text: String::new(),
                            line,
                        });
                    }
                    _ => out.tokens.push(Token {
                        kind: TokKind::Ident,
                        text,
                        line,
                    }),
                }
            }
            b if b.is_ascii_whitespace() => {
                c.bump();
            }
            _ => {
                let n = utf8_len(b);
                c.bump_n(n);
                if b.is_ascii() {
                    out.tokens.push(Token {
                        kind: TokKind::Punct,
                        text: (b as char).to_string(),
                        line,
                    });
                }
                // Non-ASCII bytes outside literals (emoji in macros…) are
                // skipped: no audit rule matches them.
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_keywords() {
        let src = r##"
            // unsafe in a line comment
            /* unsafe /* nested unsafe */ still comment */
            let a = "unsafe in a string";
            let b = r#"unsafe in a raw string "quoted" inner"#;
            let c = 'u';
            fn safe() {}
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unsafe"), "{ids:?}");
        assert!(ids.iter().any(|i| i == "safe"));
    }

    #[test]
    fn escapes_do_not_terminate_strings() {
        let src = r#"let s = "ends with backslash-quote \" // not a comment"; unsafe"#;
        let ids = idents(src);
        assert_eq!(ids, ["let", "s", "unsafe"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'a'; let u = '\\u{1F4A9}'; x }";
        let toks = lex(src);
        let lifetimes = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(lifetimes, 3, "{toks:?}");
        assert_eq!(chars, 2, "{toks:?}");
    }

    #[test]
    fn raw_identifiers_and_byte_strings() {
        let src = r##"let r#type = b"bytes"; let x = br#"raw "bytes""#; r#fn"##;
        let toks = lex(src);
        let ids: Vec<&str> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ids, ["let", "type", "let", "x", "fn"]);
        let strs = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .count();
        assert_eq!(strs, 2);
    }

    #[test]
    fn directives_are_collected_with_lines() {
        let src = "// audit:exponential\nfn f() {}\n/* audit:exempt because reasons */\n";
        let lexed = lex(src);
        assert!(lexed.has_directive("audit:exponential"));
        assert!(lexed.has_directive("audit:exempt"));
        assert_eq!(lexed.directives[0].0, 1);
        assert_eq!(lexed.directives[1].0, 3);
        // The marker inside a *string* is not a directive.
        let lexed = lex("let s = \"audit:exponential\";");
        assert!(!lexed.has_directive("audit:exponential"));
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"line\nline\nline\";\nunsafe";
        let lexed = lex(src);
        let last = lexed.tokens.last().unwrap();
        assert!(last.is_ident("unsafe"));
        assert_eq!(last.line, 4);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let src = "for i in 0..n { x[1.5]; }";
        let toks = lex(src);
        let dots = toks.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "{toks:?}"); // the two dots of `..`
    }
}
