//! `cqa-audit` — workspace invariant lints (the L-series).
//!
//! The repair/CQA semantics implemented by this workspace are *set*
//! semantics: repair families, certain answers, and responsibilities are
//! order-free objects. Two load-bearing contracts follow: byte-identical
//! output at any thread count, and anytime soundness
//! (`Outcome::Exact`/`Truncated`) on every exponential path. This crate
//! machine-checks the coding disciplines those contracts rest on, using a
//! std-only, dependency-free static pass over the workspace's own sources:
//! a comment/string/char-literal-aware lexer ([`lexer`]), a structural
//! annotation pass ([`structure`]), and six rules ([`rules`]) emitting
//! stable `L001`–`L006` codes through the `cqa-analysis` [`Diagnostic`]
//! framework. Justified exceptions live in a checked-in [`baseline`].
//!
//! Run it as `repairctl audit [--deny] [--baseline FILE]`.

#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};

use cqa_analysis::{DiagCode, Diagnostic};

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod structure;

pub use baseline::{Baseline, BaselineOutcome};

/// One audit finding, anchored to a file, line, and enclosing function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The stable L-series code.
    pub code: DiagCode,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Enclosing function name, or `<module>`.
    pub scope: String,
    /// What fired and why it matters.
    pub message: String,
}

impl Finding {
    /// Render through the shared diagnostic framework, with a
    /// `file:line (in scope)` context so output is jump-to-able.
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::new(self.code, self.message.clone())
            .with_context(format!("{}:{} (in {})", self.file, self.line, self.scope))
    }
}

/// The result of auditing a source tree.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// All findings, sorted by `(file, line, code)` — stable across runs.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Total bytes lexed.
    pub bytes: usize,
}

/// Audit a single source text under its workspace-relative path.
/// This is the pure core: `audit_workspace` is walk + this.
pub fn audit_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let ann = structure::annotate(&lexed);
    rules::run_rules(rel_path, &lexed, &ann)
}

/// Audit every `.rs` file under `root`'s `src/`, `crates/`, and `tests/`
/// directories. Skips `target/`, `vendor/` (third-party-equivalent stubs),
/// `fixtures/` (intentionally-firing golden files), and hidden directories.
/// File order is sorted, so the report is stable across filesystems.
pub fn audit_workspace(root: &Path) -> Result<AuditReport, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["src", "crates", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut report = AuditReport::default();
    for path in files {
        let src = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        report.files += 1;
        report.bytes += src.len();
        report.findings.extend(audit_source(&rel, &src));
    }
    report.findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.code.code(), a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.code.code(),
            b.message.as_str(),
        ))
    });
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_renders_with_file_line_context() {
        let f = Finding {
            code: DiagCode::UnsafeCode,
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            scope: "f".to_string(),
            message: "no".to_string(),
        };
        let d = f.to_diagnostic();
        let s = d.to_string();
        assert!(s.contains("L006"), "{s}");
        assert!(s.contains("crates/x/src/lib.rs:7 (in f)"), "{s}");
    }
}
