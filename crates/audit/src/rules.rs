//! The L-series rules. Each rule is a pure function from an annotated
//! token stream (plus the file's workspace-relative path, which carries the
//! crate-scoping) to findings.
//!
//! | code | invariant |
//! |------|-----------|
//! | L001 | hash-order must not reach output order in determinism crates |
//! | L002 | `audit:exponential` modules must thread a `Budget` and tick |
//! | L003 | input-surface crates must not panic on untrusted data |
//! | L004 | parallelism goes through `cqa-exec`, not raw threads/locks |
//! | L005 | wall clocks and env reads stay in sanctioned modules |
//! | L006 | no `unsafe` anywhere (replaces the CI grep, string-aware) |

use crate::lexer::{LexedFile, TokKind, Token};
use crate::structure::Annotations;
use crate::Finding;
use cqa_analysis::DiagCode;

/// Crates under the byte-identical-output determinism contract (PR 2):
/// hash-order leaking into emitted/collected order here is a contract bug.
const DETERMINISM_CRATES: &[&str] = &[
    "crates/relation/src/",
    "crates/constraints/src/",
    "crates/core/src/",
    "crates/asp/src/",
    "crates/query/src/",
    "crates/causality/src/",
    "crates/exec/src/",
    "crates/server/src/",
];

/// Crates whose public surface consumes untrusted input (PR 5's panic-free
/// contract): parsers, constraint/query loaders, and the CLI itself.
const INPUT_SURFACE_CRATES: &[&str] = &[
    "crates/relation/src/",
    "crates/constraints/src/",
    "crates/query/src/",
    "crates/cli/src/",
    "crates/server/src/",
];

/// Modules allowed to read wall clocks and the environment: budget
/// deadlines, thread-count/seed configuration, and the bench harness.
const AMBIENT_SANCTIONED: &[&str] = &[
    "crates/exec/src/budget.rs",
    "crates/exec/src/config.rs",
    "crates/exec/src/fuzz.rs",
    "crates/bench/",
];

/// Iterator-producing methods on hash containers.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Hash container type names whose iteration order is nondeterministic.
/// `WordHashMap`/`WordHashSet` are `cqa-relation`'s word-keyed aliases (the
/// dictionary-id join maps): their *lookup* is deterministic but their
/// iteration order still follows hash order, so they fall under the same
/// contract — the dictionary only guarantees ids in first-insertion order,
/// never that id-keyed map iteration is ordered.
const HASH_TYPES: &[&str] = &[
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
    "WordHashMap",
    "WordHashSet",
];

/// Order-insensitive consumers: if one of these appears in the statement,
/// hash-order cannot reach the output.
const ORDER_NEUTRAL: &[&str] = &[
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "HashMap",
    "HashSet",
    "sum",
    "product",
    "count",
    "len",
    "is_empty",
    "min",
    "max",
    "min_by",
    "min_by_key",
    "max_by",
    "max_by_key",
    "any",
    "all",
    "contains",
    "contains_key",
    "position",
];

/// Order-propagating sinks: the statement materializes or emits a sequence.
const ORDER_SINKS: &[&str] = &[
    "collect",
    "extend",
    "push",
    "push_str",
    "for_each",
    "write",
    "writeln",
    "print",
    "println",
    "format",
    "join",
    "fold",
    "zip",
    "enumerate",
];

/// Keywords that can directly precede `[` without it being an index
/// expression (array patterns, array literals after `return`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "else", "match", "return", "break", "continue", "move",
    "static", "const", "dyn", "impl", "for", "where", "as", "use", "pub", "crate", "box",
];

fn in_any(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

fn sortish(t: &Token) -> bool {
    t.kind == TokKind::Ident && t.text.starts_with("sort")
}

/// Run every rule over one annotated file.
pub fn run_rules(rel_path: &str, lexed: &LexedFile, ann: &Annotations) -> Vec<Finding> {
    let mut out = Vec::new();
    l001_nondeterministic_iteration(rel_path, lexed, ann, &mut out);
    l002_unbudgeted_exponential(rel_path, lexed, ann, &mut out);
    l003_panic_surface(rel_path, lexed, ann, &mut out);
    l004_ad_hoc_parallelism(rel_path, lexed, ann, &mut out);
    l005_ambient_authority(rel_path, lexed, ann, &mut out);
    l006_unsafe_code(rel_path, lexed, ann, &mut out);
    out.sort_by(|a, b| {
        (a.line, a.code.code(), a.message.as_str()).cmp(&(
            b.line,
            b.code.code(),
            b.message.as_str(),
        ))
    });
    out
}

fn finding(
    code: DiagCode,
    rel_path: &str,
    ann: &Annotations,
    tok_idx: usize,
    line: u32,
    message: String,
) -> Finding {
    Finding {
        code,
        file: rel_path.to_string(),
        line,
        scope: ann.scope_name(tok_idx).to_string(),
        message,
    }
}

/// Start of the statement containing token `i`: the token just after the
/// previous `;`, `{`, or `}`.
fn stmt_start(toks: &[Token], i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return j;
        }
        j -= 1;
    }
    0
}

/// End (inclusive) of the statement containing token `i`: the next `;` at
/// bracket level zero, or — if a block opens first (a `for`/`while` body,
/// a `match` tail) — the end of that block.
fn stmt_end(toks: &[Token], ann: &Annotations, i: usize) -> usize {
    let n = toks.len();
    let mut depth = 0i32;
    let mut j = i;
    while j < n {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth <= 0 && t.is_punct(';') {
            return j;
        } else if depth <= 0 && t.is_punct('{') {
            return ann.matching_close(j).unwrap_or(n - 1);
        } else if depth < 0 || t.is_punct('}') {
            return j.saturating_sub(1);
        }
        j += 1;
    }
    n - 1
}

/// The signature span (from `fn` to the body `{`, exclusive) of the
/// function enclosing token `i`, located by the annotated scope name.
fn fn_signature(toks: &[Token], ann: &Annotations, i: usize) -> Option<(usize, usize)> {
    let name = ann.scope.get(i)?.as_deref()?;
    let mut k = i;
    while k > 0 {
        k -= 1;
        if toks[k].is_ident("fn") && toks.get(k + 1).is_some_and(|t| t.is_ident(name)) {
            let mut j = k + 2;
            while j < i {
                if toks[j].is_punct('{') {
                    return Some((k, j.saturating_sub(1)));
                }
                j += 1;
            }
            return Some((k, i.saturating_sub(1)));
        }
    }
    None
}

/// Identifiers bound (via `let` or a `name: Type` ascription) to a hash
/// container type in this file.
fn hash_bound_idents(toks: &[Token], ann: &Annotations) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let n = toks.len();
    for i in 0..n {
        // `let [mut] name … = … HashMap …;`
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                let end = stmt_end(toks, ann, i);
                if toks[j + 1..=end.min(n - 1)]
                    .iter()
                    .any(|t| HASH_TYPES.iter().any(|h| t.is_ident(h)))
                {
                    names.push(name.text.clone());
                }
            }
        }
        // `name: … HashMap<…> …` (fn params, struct fields): scan the type
        // up to the next `,`/`)`/`{`/`;`/`=` at bracket level zero.
        if toks[i].is_punct(':')
            && i > 0
            && toks[i - 1].kind == TokKind::Ident
            && !(i > 1 && toks[i - 2].is_punct(':'))
            && toks.get(i + 1).is_none_or(|t| !t.is_punct(':'))
        {
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < n {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if depth == 0
                    && (t.is_punct(',') || t.is_punct('{') || t.is_punct(';') || t.is_punct('='))
                {
                    break;
                } else if HASH_TYPES.iter().any(|h| t.is_ident(h)) {
                    names.push(toks[i - 1].text.clone());
                    break;
                }
                j += 1;
            }
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

/// L001 — nondeterministic iteration: in determinism-contract crates, the
/// tokens of a statement that iterates a hash container must contain an
/// order-insensitive consumer (or a BTree/sort rebuild) whenever they also
/// contain an order sink; a `let` binding collected without one may still
/// be cleared by a later `name.sort*()` in the same function.
fn l001_nondeterministic_iteration(
    rel_path: &str,
    lexed: &LexedFile,
    ann: &Annotations,
    out: &mut Vec<Finding>,
) {
    if !in_any(rel_path, DETERMINISM_CRATES) {
        return;
    }
    let toks = &lexed.tokens;
    let n = toks.len();
    let hash_idents = hash_bound_idents(toks, ann);
    let is_hash = |t: &Token| t.kind == TokKind::Ident && hash_idents.contains(&t.text);

    let mut flagged_stmts: Vec<usize> = Vec::new();
    for i in 0..n {
        if ann.test[i] {
            continue;
        }
        // Receiver pattern: `name . iter_method` or a bare `for x in &name {`.
        let hash_iter_here = (toks[i].kind == TokKind::Ident
            && ITER_METHODS.iter().any(|m| toks[i].is_ident(m))
            && i >= 2
            && toks[i - 1].is_punct('.')
            && is_hash(&toks[i - 2]))
            || (toks[i].is_ident("in")
                && (1..=2).any(|d| toks.get(i + d).is_some_and(is_hash))
                && (1..=4).any(|d| toks.get(i + d).is_some_and(|t| t.is_punct('{'))));
        if !hash_iter_here {
            continue;
        }
        let s = stmt_start(toks, i);
        if flagged_stmts.contains(&s) {
            continue;
        }
        let e = stmt_end(toks, ann, i);
        let span = &toks[s..=e.min(n - 1)];
        if span
            .iter()
            .any(|t| sortish(t) || ORDER_NEUTRAL.iter().any(|z| t.is_ident(z)))
        {
            continue;
        }
        // A bare `collect()` typed by the fn's return position: if the
        // enclosing signature mentions an ordered container, the rebuild
        // neutralizes hash order even without a turbofish.
        if fn_signature(toks, ann, i).is_some_and(|(a, b)| {
            toks[a..=b].iter().any(|t| {
                t.is_ident("BTreeMap") || t.is_ident("BTreeSet") || t.is_ident("BinaryHeap")
            })
        }) {
            continue;
        }
        if !span
            .iter()
            .any(|t| ORDER_SINKS.iter().any(|z| t.is_ident(z)))
        {
            continue;
        }
        // Later-sort escape: `let v = m.keys().collect(); … v.sort…();`.
        if toks[s].is_ident("let") {
            let mut j = s + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(bound) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                let fn_name = ann.scope_name(i).to_string();
                let sorted_later = (e + 1..n)
                    .take_while(|&k| ann.scope_name(k) == fn_name)
                    .any(|k| {
                        toks[k].is_ident(&bound.text)
                            && toks.get(k + 1).is_some_and(|t| t.is_punct('.'))
                            && toks.get(k + 2).is_some_and(sortish)
                    });
                if sorted_later {
                    continue;
                }
            }
        }
        flagged_stmts.push(s);
        let receiver = if i >= 2 && is_hash(&toks[i - 2]) {
            toks[i - 2].text.clone()
        } else {
            (1..=2)
                .find_map(|d| {
                    toks.get(i + d)
                        .filter(|t| is_hash(t))
                        .map(|t| t.text.clone())
                })
                .unwrap_or_default()
        };
        out.push(finding(
            DiagCode::NondeterministicIteration,
            rel_path,
            ann,
            i,
            toks[i].line,
            format!(
                "hash-order iteration of `{receiver}` flows into an ordered sink \
                 without a sort or BTree rebuild"
            ),
        ));
    }
}

/// L002 — unbudgeted exponential path: in files carrying an
/// `audit:exponential` directive comment, every non-test recursive or
/// worklist-shaped function must mention a `Budget`/`budget`, and the file
/// must actually charge one (`tick`/`charge_item`/`check_deadline`).
fn l002_unbudgeted_exponential(
    rel_path: &str,
    lexed: &LexedFile,
    ann: &Annotations,
    out: &mut Vec<Finding>,
) {
    if !lexed.has_directive("audit:exponential") {
        return;
    }
    let toks = &lexed.tokens;
    let n = toks.len();
    let mut saw_exponential_fn = false;
    let mut charges = false;
    for (i, tok) in toks.iter().enumerate() {
        if !ann.test[i]
            && (tok.is_ident("tick")
                || tok.is_ident("charge_item")
                || tok.is_ident("check_deadline"))
        {
            charges = true;
        }
    }
    let mut i = 0usize;
    while i < n {
        if toks[i].is_ident("fn") && !ann.test[i] {
            if let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                let name = name_tok.text.clone();
                // Locate the body span the same way the structure pass does.
                let mut depth = 0i32;
                let mut j = i + 2;
                let mut body: Option<(usize, usize)> = None;
                while j < n {
                    let t = &toks[j];
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth -= 1;
                    } else if depth == 0 && t.is_punct(';') {
                        break;
                    } else if depth == 0 && t.is_punct('{') {
                        body = Some((j, ann.matching_close(j).unwrap_or(n - 1)));
                        break;
                    }
                    j += 1;
                }
                if let Some((open, close)) = body {
                    let body_toks = &toks[open..=close];
                    // A call to the fn's own name: `name(…)`, `Self::name(…)`
                    // or `self.name(…)` — but NOT a call through a different
                    // receiver or type (`map.insert(…)` inside `fn insert`,
                    // `OnceLock::new()` inside `fn new`).
                    let recursive = (1..body_toks.len().saturating_sub(1)).any(|k| {
                        body_toks[k].is_ident(&name)
                            && body_toks[k + 1].is_punct('(')
                            && if body_toks[k - 1].is_punct('.') {
                                k >= 2 && body_toks[k - 2].is_ident("self")
                            } else if body_toks[k - 1].is_punct(':') {
                                k >= 3
                                    && body_toks[k - 2].is_punct(':')
                                    && body_toks[k - 3].is_ident("Self")
                            } else {
                                true
                            }
                    });
                    let worklist = body_toks
                        .iter()
                        .any(|t| t.is_ident("while") || t.is_ident("loop"))
                        && body_toks.iter().any(|t| {
                            t.is_ident("pop") || t.is_ident("pop_front") || t.is_ident("pop_back")
                        });
                    if recursive || worklist {
                        saw_exponential_fn = true;
                        let budgeted = toks[i..=close]
                            .iter()
                            .any(|t| t.is_ident("Budget") || t.is_ident("budget"));
                        if !budgeted {
                            let shape = if recursive { "recursive" } else { "worklist" };
                            out.push(finding(
                                DiagCode::UnbudgetedExponentialPath,
                                rel_path,
                                ann,
                                i + 1,
                                name_tok.line,
                                format!(
                                    "{shape} function `{name}` in an audit:exponential \
                                     module does not thread a Budget"
                                ),
                            ));
                        }
                    }
                    i = open; // descend into the body for nested fns
                }
            }
        }
        i += 1;
    }
    if saw_exponential_fn && !charges {
        let line = lexed
            .directives
            .iter()
            .find(|(_, d)| d.contains("audit:exponential"))
            .map(|(l, _)| *l)
            .unwrap_or(1);
        out.push(Finding {
            code: DiagCode::UnbudgetedExponentialPath,
            file: rel_path.to_string(),
            line,
            scope: "<module>".to_string(),
            message: "module marked audit:exponential never charges its Budget \
                      (no tick/charge_item/check_deadline call)"
                .to_string(),
        });
    }
}

/// L003 — panic surface: in input-surface crates, non-test code must not
/// `unwrap`/`expect`, invoke a panicking macro, or index a slice (all of
/// which turn malformed input into a process abort instead of an `Err`).
/// Sites under `#[allow(clippy::unwrap_used/expect_used)]` are treated as
/// already justified.
fn l003_panic_surface(
    rel_path: &str,
    lexed: &LexedFile,
    ann: &Annotations,
    out: &mut Vec<Finding>,
) {
    if !in_any(rel_path, INPUT_SURFACE_CRATES) {
        return;
    }
    let toks = &lexed.tokens;
    let n = toks.len();
    for i in 0..n {
        if ann.test[i] || ann.panic_waived[i] {
            continue;
        }
        let t = &toks[i];
        // `.unwrap()` / `.expect(`
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|x| x.is_punct('('))
        {
            out.push(finding(
                DiagCode::PanicSurface,
                rel_path,
                ann,
                i,
                t.line,
                format!(
                    "`.{}()` in input-surface code can abort on malformed input",
                    t.text
                ),
            ));
            continue;
        }
        // panic-family macros
        if (t.is_ident("panic")
            || t.is_ident("unreachable")
            || t.is_ident("todo")
            || t.is_ident("unimplemented"))
            && toks.get(i + 1).is_some_and(|x| x.is_punct('!'))
        {
            out.push(finding(
                DiagCode::PanicSurface,
                rel_path,
                ann,
                i,
                t.line,
                format!("`{}!` in input-surface code", t.text),
            ));
            continue;
        }
        // expression-position slice indexing: `expr[…]` where expr ends in
        // an identifier, `)` or `]` — but not macro brackets (`vec![`),
        // attribute brackets (`#[`), or patterns after a keyword.
        if t.is_punct('[') && i > 0 {
            let p = &toks[i - 1];
            let indexing = (p.kind == TokKind::Ident
                && !NON_INDEX_KEYWORDS.iter().any(|k| p.is_ident(k)))
                || p.is_punct(')')
                || p.is_punct(']');
            // `expr[..]` — a full-range slice — cannot go out of bounds.
            let full_range = toks.get(i + 1).is_some_and(|a| a.is_punct('.'))
                && toks.get(i + 2).is_some_and(|a| a.is_punct('.'))
                && toks.get(i + 3).is_some_and(|a| a.is_punct(']'));
            if indexing && !full_range {
                out.push(finding(
                    DiagCode::PanicSurface,
                    rel_path,
                    ann,
                    i,
                    t.line,
                    "slice/array indexing in input-surface code can panic out of bounds"
                        .to_string(),
                ));
            }
        }
    }
}

/// L004 — ad-hoc parallelism: `std::thread::spawn` and `Mutex` outside
/// `cqa-exec` bypass the pool's cancellation, budget, and determinism
/// machinery.
fn l004_ad_hoc_parallelism(
    rel_path: &str,
    lexed: &LexedFile,
    ann: &Annotations,
    out: &mut Vec<Finding>,
) {
    if rel_path.starts_with("crates/exec/src/") {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if ann.test[i] {
            continue;
        }
        let t = &toks[i];
        if t.is_ident("spawn")
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("thread")
        {
            out.push(finding(
                DiagCode::AdHocParallelism,
                rel_path,
                ann,
                i,
                t.line,
                "raw thread::spawn outside cqa-exec bypasses the pool's cancellation \
                 and determinism contract"
                    .to_string(),
            ));
        }
        if t.is_ident("Mutex") {
            out.push(finding(
                DiagCode::AdHocParallelism,
                rel_path,
                ann,
                i,
                t.line,
                "ad-hoc Mutex outside cqa-exec: shared mutable state belongs behind \
                 the pool's combinators"
                    .to_string(),
            ));
        }
    }
}

/// L005 — ambient authority: wall-clock reads (`Instant::now`,
/// `SystemTime::now`) and environment reads (`env::var*`) outside the
/// sanctioned modules make behaviour depend on when/where the process runs.
fn l005_ambient_authority(
    rel_path: &str,
    lexed: &LexedFile,
    ann: &Annotations,
    out: &mut Vec<Finding>,
) {
    if in_any(rel_path, AMBIENT_SANCTIONED) {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if ann.test[i] {
            continue;
        }
        let t = &toks[i];
        let qualified_by = |name: &str| {
            i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].is_ident(name)
        };
        if t.is_ident("now") && (qualified_by("Instant") || qualified_by("SystemTime")) {
            out.push(finding(
                DiagCode::AmbientAuthority,
                rel_path,
                ann,
                i,
                t.line,
                format!(
                    "`{}::now` outside sanctioned modules (budget/config/bench)",
                    toks[i - 3].text
                ),
            ));
        }
        if (t.is_ident("var") || t.is_ident("var_os") || t.is_ident("vars")) && qualified_by("env")
        {
            out.push(finding(
                DiagCode::AmbientAuthority,
                rel_path,
                ann,
                i,
                t.line,
                format!(
                    "`env::{}` outside sanctioned modules (budget/config/bench)",
                    t.text
                ),
            ));
        }
    }
}

/// L006 — unsafe code, anywhere (tests included). The comment/string-aware
/// lexer is what lets this retire the CI grep without false positives.
fn l006_unsafe_code(rel_path: &str, lexed: &LexedFile, ann: &Annotations, out: &mut Vec<Finding>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.is_ident("unsafe") {
            out.push(finding(
                DiagCode::UnsafeCode,
                rel_path,
                ann,
                i,
                t.line,
                "`unsafe` is forbidden throughout the workspace".to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::audit_source;

    fn codes(rel: &str, src: &str) -> Vec<&'static str> {
        audit_source(rel, src)
            .iter()
            .map(|f| f.code.code())
            .collect()
    }

    #[test]
    fn l001_fires_on_unsorted_collect() {
        let src = "
            fn emit(m: &HashMap<u32, u32>) -> Vec<u32> {
                m.keys().copied().collect()
            }
        ";
        assert_eq!(codes("crates/core/src/x.rs", src), ["L001"]);
    }

    #[test]
    fn l001_clean_when_sorted_or_neutral() {
        let src = "
            fn emit(m: &HashMap<u32, u32>) -> Vec<u32> {
                let mut v: Vec<u32> = m.keys().copied().collect();
                v.sort_unstable();
                v
            }
            fn total(m: &HashMap<u32, u32>) -> u32 { m.values().sum() }
            fn rebuild(m: &HashMap<u32, u32>) -> BTreeSet<u32> {
                m.keys().copied().collect()
            }
        ";
        assert_eq!(codes("crates/core/src/x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn l001_ignores_out_of_scope_and_test_code() {
        let src = "
            fn emit(m: &HashMap<u32, u32>) -> Vec<u32> { m.keys().copied().collect() }
        ";
        assert_eq!(codes("crates/bench/src/x.rs", src), Vec::<&str>::new());
        let test_src = "
            #[cfg(test)]
            mod tests {
                fn emit(m: &HashMap<u32, u32>) -> Vec<u32> { m.keys().copied().collect() }
            }
        ";
        assert_eq!(codes("crates/core/src/x.rs", test_src), Vec::<&str>::new());
    }

    #[test]
    fn l001_covers_word_keyed_dictionary_maps() {
        // The Vid-keyed aliases from cqa-relation's fxhash module are hash
        // containers too: iterating one into an ordered sink violates the
        // dictionary's insertion-order contract just like FxHashMap would.
        let src = "
            fn emit(m: &WordHashMap<Vid, u32>) -> Vec<Vid> {
                m.keys().copied().collect()
            }
        ";
        assert_eq!(codes("crates/relation/src/x.rs", src), ["L001"]);
        let sorted = "
            fn emit(dict: &ValueDict, m: &WordHashSet<Vid>) -> Vec<Vid> {
                let mut v: Vec<Vid> = m.iter().copied().collect();
                v.sort_unstable_by(|a, b| dict.cmp_vids(*a, *b));
                v
            }
        ";
        assert_eq!(
            codes("crates/relation/src/x.rs", sorted),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn l001_for_loop_push() {
        let src = "
            fn emit(m: &HashSet<u32>, out: &mut Vec<u32>) {
                for x in &m {
                    out.push(*x);
                }
            }
        ";
        assert_eq!(codes("crates/core/src/x.rs", src), ["L001"]);
    }

    #[test]
    fn l002_fires_without_budget_and_without_charge() {
        let src = "
            // audit:exponential — subset enumeration
            fn explore(s: &mut Vec<u32>) {
                explore(s);
            }
        ";
        let found = codes("crates/core/src/x.rs", src);
        assert_eq!(found, ["L002", "L002"]); // per-fn + module-never-charges
    }

    #[test]
    fn l002_clean_with_budget_and_tick() {
        let src = "
            // audit:exponential — subset enumeration
            fn explore(s: &mut Vec<u32>, budget: &Budget) {
                budget.tick();
                explore(s, budget);
            }
        ";
        assert_eq!(codes("crates/core/src/x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn l002_method_call_on_other_receiver_is_not_recursion() {
        // `fn insert` calling `self.seen.insert(…)` is a map insert, not
        // recursion; `self.insert(…)` is.
        let src = "
            // audit:exponential
            fn insert(s: &mut S) { s.seen.insert(1); }
        ";
        assert_eq!(codes("crates/core/src/x.rs", src), Vec::<&str>::new());
        let src = "
            // audit:exponential
            impl S { fn insert(&mut self) { self.insert(); } }
        ";
        let found = codes("crates/core/src/x.rs", src);
        assert_eq!(found, ["L002", "L002"]);
        // `Type::new()` inside `fn new` is construction, not recursion;
        // `Self::new()` is.
        let src = "
            // audit:exponential
            fn new() -> S { S { cache: OnceLock::new() } }
        ";
        assert_eq!(codes("crates/core/src/x.rs", src), Vec::<&str>::new());
        let src = "
            // audit:exponential
            impl S { fn build(d: u32) -> S { Self::build(d - 1) } }
        ";
        assert_eq!(codes("crates/core/src/x.rs", src), ["L002", "L002"]);
    }

    #[test]
    fn l003_full_range_slice_is_clean() {
        let src = "fn f(v: &Vec<u32>) -> &[u32] { &v[..] }";
        assert_eq!(codes("crates/relation/src/x.rs", src), Vec::<&str>::new());
        let src = "fn f(v: &Vec<u32>) -> &[u32] { &v[1..] }";
        assert_eq!(codes("crates/relation/src/x.rs", src), ["L003"]);
    }

    #[test]
    fn l002_silent_without_directive() {
        let src = "fn explore(s: &mut Vec<u32>) { explore(s); }";
        assert_eq!(codes("crates/core/src/x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn l003_unwrap_and_indexing() {
        let src = "
            fn parse(s: &str) -> u32 {
                let parts: Vec<&str> = s.split(',').collect();
                parts[0].parse().unwrap()
            }
        ";
        let found = codes("crates/relation/src/x.rs", src);
        assert_eq!(found, ["L003", "L003"]); // indexing + unwrap
    }

    #[test]
    fn l003_near_misses_stay_clean() {
        let src = "
            fn parse(s: &str) -> Option<u32> {
                let v = vec![1, 2];
                let arr: [u32; 2] = [0, 1];
                let [a, b] = arr;
                s.parse().ok().map(|x: u32| x + v.first().copied().unwrap_or(a) + b)
            }
            #[allow(clippy::unwrap_used)]
            fn proven(x: Option<u32>) -> u32 { x.unwrap() }
        ";
        assert_eq!(codes("crates/relation/src/x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn l004_thread_spawn_and_mutex() {
        let src = "
            fn go() {
                let m = Mutex::new(0);
                std::thread::spawn(move || drop(m));
            }
        ";
        let found = codes("crates/core/src/x.rs", src);
        assert_eq!(found, ["L004", "L004"]);
        assert_eq!(codes("crates/exec/src/pool.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn l005_instant_and_env() {
        let src = "
            fn go() -> bool {
                let t = Instant::now();
                std::env::var(\"CQA_THREADS\").is_ok() && t.elapsed().as_secs() > 0
            }
        ";
        let found = codes("crates/core/src/x.rs", src);
        assert_eq!(found, ["L005", "L005"]);
        assert_eq!(codes("crates/exec/src/config.rs", src), Vec::<&str>::new());
        assert_eq!(codes("crates/bench/src/lib.rs", src), Vec::<&str>::new());
    }

    /// The planner/subplan-cache module is inside both contracts: its cache
    /// maps are fingerprint-keyed and must never leak hash order into
    /// answers (L001), and cache policy must not consult wall clocks or the
    /// environment directly — `CQA_PLAN_CACHE` goes through `cqa-exec`'s
    /// sanctioned config module (L005).
    #[test]
    fn plan_module_is_covered_by_determinism_and_ambient_rules() {
        let leak = "
            fn answers(cache: &HashMap<u64, u32>) -> Vec<u32> {
                cache.values().copied().collect()
            }
        ";
        assert_eq!(codes("crates/query/src/plan.rs", leak), ["L001"]);
        let ambient = "
            fn evict() -> bool {
                let t = Instant::now();
                std::env::var(\"CQA_PLAN_CACHE\").is_ok() && t.elapsed().as_secs() > 0
            }
        ";
        assert_eq!(codes("crates/query/src/plan.rs", ambient), ["L005", "L005"]);
    }

    #[test]
    fn l006_fires_everywhere_even_in_tests() {
        let src = "
            #[cfg(test)]
            mod tests {
                fn f() { unsafe { core::hint::unreachable_unchecked() } }
            }
        ";
        assert_eq!(codes("crates/bench/src/x.rs", src), ["L006"]);
    }

    #[test]
    fn l006_clean_when_unsafe_only_in_strings_and_comments() {
        let src = "
            // this comment says unsafe
            fn f() -> &'static str { \"unsafe { }\" }
        ";
        assert_eq!(codes("crates/core/src/x.rs", src), Vec::<&str>::new());
    }
}
