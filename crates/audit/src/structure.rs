//! Structural annotation of a lexed file: which tokens are test code,
//! which function encloses each token, and which tokens sit under an
//! explicit `#[allow(clippy::unwrap_used/expect_used)]` waiver.
//!
//! This is deliberately *not* a parser. Three passes over the token stream
//! — brace matching, attribute-region marking, and `fn`-scope marking —
//! give the rules everything they need: `#[cfg(test)] mod tests { … }` and
//! `#[test] fn …` bodies are excluded from production-code rules, findings
//! are attributed to the innermost enclosing function (the granularity of
//! the baseline file), and sites a human already waived for clippy's
//! unwrap/expect lints are not re-reported by `L003`.

use crate::lexer::{LexedFile, TokKind, Token};

/// Per-token annotations, parallel to `LexedFile::tokens`.
#[derive(Debug, Clone, Default)]
pub struct Annotations {
    /// Token is inside a `#[cfg(test)]` / `#[test]` item.
    pub test: Vec<bool>,
    /// Token is inside an item carrying `#[allow(clippy::unwrap_used)]` or
    /// `#[allow(clippy::expect_used)]` (an already-justified panic site).
    pub panic_waived: Vec<bool>,
    /// Name of the innermost enclosing `fn`, if any.
    pub scope: Vec<Option<String>>,
    /// `close[i]` = index of the `}` matching the `{` at token `i`.
    close: Vec<Option<usize>>,
}

impl Annotations {
    /// The baseline scope for token `i`: the enclosing function, or
    /// `"<module>"` for module-level code.
    pub fn scope_name(&self, i: usize) -> &str {
        self.scope
            .get(i)
            .and_then(|s| s.as_deref())
            .unwrap_or("<module>")
    }

    /// Index of the `}` matching the `{` at token `i` (if `i` is an open
    /// brace with a match).
    pub fn matching_close(&self, i: usize) -> Option<usize> {
        self.close.get(i).copied().flatten()
    }
}

/// Does the attribute body (tokens strictly between `[` and `]`) mark test
/// code? Matches `#[test]`, `#[cfg(test)]`, and composites like
/// `#[cfg(all(test, feature = "x"))]`.
fn is_test_attr(body: &[Token]) -> bool {
    match body.first() {
        Some(t) if t.is_ident("test") => body.len() == 1,
        Some(t) if t.is_ident("cfg") => body.iter().any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Does the attribute body waive clippy's unwrap/expect lints?
fn is_panic_waiver(body: &[Token]) -> bool {
    body.first().is_some_and(|t| t.is_ident("allow"))
        && body
            .iter()
            .any(|t| t.is_ident("unwrap_used") || t.is_ident("expect_used"))
}

/// Annotate `lexed`. Single entry point used by the rule engine.
pub fn annotate(lexed: &LexedFile) -> Annotations {
    let toks = &lexed.tokens;
    let n = toks.len();
    let mut ann = Annotations {
        test: vec![false; n],
        panic_waived: vec![false; n],
        scope: vec![None; n],
        close: vec![None; n],
    };

    // Pass 1: brace matching.
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(i);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                ann.close[open] = Some(i);
            }
        }
    }

    // Pass 2: attribute regions. For `#[…]` at token i, the governed item
    // runs from the attribute to the end of the next balanced `{…}` block
    // opened at the attribute's nesting level — or to the next `;` if the
    // item is brace-less (`#[cfg(test)] use super::*;`). Inner attributes
    // (`#![…]`) govern the enclosing block and are skipped here: the only
    // inner attribute the rules care about (`#![cfg(test)]` on a test-only
    // file) is handled by marking the whole file.
    let mut i = 0usize;
    while i < n {
        if toks[i].is_punct('#') && i + 1 < n {
            if toks[i + 1].is_punct('!') {
                // Inner attribute: `#![cfg(test)]` marks the whole file.
                let (body, end) = attr_body(toks, i + 2);
                if is_test_attr(&body) {
                    for f in ann.test.iter_mut() {
                        *f = true;
                    }
                }
                i = end;
                continue;
            }
            if toks[i + 1].is_punct('[') {
                let (body, end) = attr_body(toks, i + 1);
                let test = is_test_attr(&body);
                let waived = is_panic_waiver(&body);
                if test || waived {
                    let region_end = item_end(toks, &ann, end);
                    for k in i..=region_end.min(n.saturating_sub(1)) {
                        if test {
                            ann.test[k] = true;
                        }
                        if waived {
                            ann.panic_waived[k] = true;
                        }
                    }
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }

    // Pass 3: fn scopes. Outer functions first, inner (later `fn` tokens
    // start later) overwrite — so each token ends up with its *innermost*
    // enclosing function.
    let mut i = 0usize;
    while i < n {
        if toks[i].is_ident("fn") {
            if let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                let name = name_tok.text.clone();
                // Find the body `{` at the signature's bracket level; a `;`
                // first means a trait-method declaration without a body.
                let mut depth = 0i32;
                let mut j = i + 2;
                while j < n {
                    let t = &toks[j];
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth -= 1;
                    } else if depth == 0 && t.is_punct(';') {
                        break;
                    } else if depth == 0 && t.is_punct('{') {
                        let close = ann.matching_close(j).unwrap_or(n - 1);
                        for k in i..=close {
                            ann.scope[k] = Some(name.clone());
                        }
                        break;
                    }
                    j += 1;
                }
            }
        }
        i += 1;
    }

    ann
}

/// Tokens strictly inside the `[…]` starting at `open` (which must point at
/// the `[`), and the index just past the closing `]`.
fn attr_body(toks: &[Token], open: usize) -> (Vec<Token>, usize) {
    if toks.get(open).is_none_or(|t| !t.is_punct('[')) {
        return (Vec::new(), open + 1);
    }
    let mut depth = 0i32;
    let mut body = Vec::new();
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
            if depth == 1 {
                continue;
            }
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (body, j + 1);
            }
        }
        body.push(t.clone());
    }
    (body, toks.len())
}

/// The index of the last token of the item starting at `start` (just past
/// an attribute): the matching `}` of the first block opened at item level,
/// or the first item-level `;`, whichever comes first. Skips any further
/// attributes prefixed to the item.
fn item_end(toks: &[Token], ann: &Annotations, start: usize) -> usize {
    let n = toks.len();
    let mut j = start;
    let mut depth = 0i32;
    while j < n {
        let t = &toks[j];
        if t.is_punct('#') && j + 1 < n && toks[j + 1].is_punct('[') && depth == 0 {
            let (_, end) = attr_body(toks, j + 1);
            j = end;
            continue;
        }
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(';') {
            return j;
        } else if depth == 0 && t.is_punct('{') {
            return ann.matching_close(j).unwrap_or(n - 1);
        }
        j += 1;
    }
    n.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ann_of(src: &str) -> (LexedFile, Annotations) {
        let lexed = lex(src);
        let ann = annotate(&lexed);
        (lexed, ann)
    }

    /// Index of the first token with the given ident text.
    fn pos(lexed: &LexedFile, ident: &str) -> usize {
        lexed
            .tokens
            .iter()
            .position(|t| t.is_ident(ident))
            .unwrap_or_else(|| panic!("ident {ident} not found"))
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "
            fn prod() { body(); }
            #[cfg(test)]
            mod tests {
                fn helper() { inner(); }
            }
            fn also_prod() { tail(); }
        ";
        let (lexed, ann) = ann_of(src);
        assert!(!ann.test[pos(&lexed, "body")]);
        assert!(ann.test[pos(&lexed, "inner")]);
        assert!(!ann.test[pos(&lexed, "tail")]);
    }

    #[test]
    fn test_attr_on_fn_is_marked() {
        let src = "#[test]\nfn check() { probe(); }\nfn prod() { real(); }";
        let (lexed, ann) = ann_of(src);
        assert!(ann.test[pos(&lexed, "probe")]);
        assert!(!ann.test[pos(&lexed, "real")]);
    }

    #[test]
    fn braceless_cfg_test_item_does_not_swallow_the_file() {
        let src = "#[cfg(test)]\nuse super::*;\nfn prod() { real(); }";
        let (lexed, ann) = ann_of(src);
        assert!(!ann.test[pos(&lexed, "real")]);
    }

    #[test]
    fn inner_cfg_test_marks_whole_file() {
        let src = "#![cfg(test)]\nfn anything() { x(); }";
        let (lexed, ann) = ann_of(src);
        assert!(ann.test[pos(&lexed, "x")]);
    }

    #[test]
    fn scopes_are_innermost() {
        let src = "
            const TOP: u32 = 0;
            fn outer() {
                first();
                fn inner() { second(); }
                third();
            }
            fn other() { fourth(); }
        ";
        let (lexed, ann) = ann_of(src);
        assert_eq!(ann.scope_name(pos(&lexed, "first")), "outer");
        assert_eq!(ann.scope_name(pos(&lexed, "second")), "inner");
        assert_eq!(ann.scope_name(pos(&lexed, "third")), "outer");
        assert_eq!(ann.scope_name(pos(&lexed, "fourth")), "other");
        assert_eq!(ann.scope_name(pos(&lexed, "TOP")), "<module>");
    }

    #[test]
    fn panic_waiver_regions() {
        let src = "
            #[allow(clippy::unwrap_used)]
            fn proven() { x.unwrap(); }
            fn not_proven() { y.unwrap(); }
        ";
        let (lexed, ann) = ann_of(src);
        assert!(ann.panic_waived[pos(&lexed, "x")]);
        assert!(!ann.panic_waived[pos(&lexed, "y")]);
    }

    #[test]
    fn stacked_attributes_reach_the_item() {
        let src = "
            #[cfg(test)]
            #[allow(dead_code)]
            mod tests { fn f() { marked(); } }
        ";
        let (lexed, ann) = ann_of(src);
        assert!(ann.test[pos(&lexed, "marked")]);
    }
}
