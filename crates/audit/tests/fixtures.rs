//! Golden-fixture tests: one firing file and one clean near-miss per
//! L-code, checked against `audit_source` with a rel path that puts the
//! fixture in the rule's scope. The near-misses are the cases the old
//! grep-based CI gate got wrong (keywords in literals, re-sorted hash
//! iteration, waived panics, …), so these fixtures double as the
//! regression suite for the lexer/structure/rule pipeline.

use cqa_audit::audit_source;
use std::fs;
use std::path::Path;

/// Read a fixture from `crates/audit/fixtures/`.
fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Audit `name` as if it lived at `rel_path`, asserting every finding has
/// code `code` and that there are at least `min` of them.
fn assert_fires(name: &str, rel_path: &str, code: &str, min: usize) {
    let findings = audit_source(rel_path, &fixture(name));
    assert!(
        findings.len() >= min,
        "{name}: expected >= {min} {code} findings, got {findings:?}"
    );
    for f in &findings {
        assert_eq!(
            f.code.code(),
            code,
            "{name}: unexpected code in {findings:?}"
        );
    }
}

/// Audit `name` as if it lived at `rel_path`, asserting zero findings.
fn assert_clean(name: &str, rel_path: &str) {
    let findings = audit_source(rel_path, &fixture(name));
    assert!(
        findings.is_empty(),
        "{name}: expected clean, got {findings:?}"
    );
}

#[test]
fn l001_hash_order_fixtures() {
    assert_fires("l001_fires.rs", "crates/core/src/fx.rs", "L001", 2);
    assert_clean("l001_clean.rs", "crates/core/src/fx.rs");
}

#[test]
fn l002_unbudgeted_search_fixtures() {
    // Two unbudgeted search fns plus the module-level "never ticks" finding.
    assert_fires("l002_fires.rs", "crates/core/src/fx.rs", "L002", 3);
    assert_clean("l002_clean.rs", "crates/core/src/fx.rs");
}

#[test]
fn l003_panic_surface_fixtures() {
    assert_fires("l003_fires.rs", "crates/query/src/fx.rs", "L003", 4);
    assert_clean("l003_clean.rs", "crates/query/src/fx.rs");
}

#[test]
fn l004_ad_hoc_parallelism_fixtures() {
    assert_fires("l004_fires.rs", "crates/core/src/fx.rs", "L004", 2);
    assert_clean("l004_clean.rs", "crates/core/src/fx.rs");
}

#[test]
fn l005_ambient_authority_fixtures() {
    assert_fires("l005_fires.rs", "crates/core/src/fx.rs", "L005", 2);
    assert_clean("l005_clean.rs", "crates/core/src/fx.rs");
}

#[test]
fn l006_unsafe_fixtures() {
    // Unlike every other rule, L006 counts test code too.
    assert_fires("l006_fires.rs", "crates/core/src/fx.rs", "L006", 2);
    assert_clean("l006_clean.rs", "crates/core/src/fx.rs");
}

#[test]
fn fixtures_respect_rule_scoping() {
    // The same panic-surface fixture is *clean* outside the input-surface
    // crates: core internals may index into schema-validated positions.
    assert_clean("l003_fires.rs", "crates/core/src/fx.rs");
    // And the same ad-hoc-parallelism fixture is clean inside cqa-exec,
    // which owns the sanctioned pool.
    assert_clean("l004_fires.rs", "crates/exec/src/fx.rs");
    // L006 has no sanctuary: unsafe fires even inside cqa-exec.
    assert_fires("l006_fires.rs", "crates/exec/src/fx.rs", "L006", 2);
}
