//! Property test: the audit lexer never mis-tokenizes comment/string
//! nestings. Random sequences of literal-bearing segments are concatenated
//! into a source file; each segment knows how many *real* `unsafe`
//! identifier tokens and how many `audit:` directives it contributes, so
//! the lexed file can be checked exactly. Keywords hidden inside comments,
//! ordinary strings, raw strings of any hash depth, byte strings, and char
//! literals must never surface as identifiers — the guarantee the old
//! `grep -R unsafe` CI gate lacked.

use cqa_audit::lexer::{lex, TokKind};
use proptest::collection::vec;
use proptest::prelude::*;

/// One generated source segment: its text, the number of genuine `unsafe`
/// identifier tokens in it, and the number of `audit:` directives.
#[derive(Debug, Clone)]
struct Segment {
    text: String,
    unsafe_idents: usize,
    directives: usize,
}

impl Segment {
    fn hides(text: String) -> Segment {
        Segment {
            text,
            unsafe_idents: 0,
            directives: 0,
        }
    }
}

/// Strategy for a filler word that can never collide with the markers the
/// assertions look for (`unsafe`, `hidden`, `audit:`).
fn filler() -> impl Strategy<Value = String> {
    "[a-z]{0,6}".prop_map(|f| format!("w{f}"))
}

/// Strategy for one segment. Every arm is terminated (an unterminated
/// literal would legitimately swallow the rest of the file).
fn segment() -> BoxedStrategy<Segment> {
    prop_oneof![
        // Line comment hiding the keyword.
        filler().prop_map(|f| Segment::hides(format!("// unsafe hidden {f}\n"))),
        // Nested block comment: both `unsafe`s are inside.
        filler().prop_map(|f| Segment::hides(format!("/* unsafe /* hidden {f} */ unsafe */"))),
        // Ordinary string literal.
        filler().prop_map(|f| Segment::hides(format!("\"unsafe hidden {f}\""))),
        // String whose escapes try to break out: `\"` must not close it and
        // `\\` must not escape the real closing quote.
        filler().prop_map(|f| Segment::hides(format!("\" \\\" unsafe hidden \\\\ {f}\""))),
        // Multi-line string: line counting must survive it.
        filler().prop_map(|f| Segment::hides(format!("\"line\nunsafe hidden\n{f}\""))),
        // Raw string containing quotes.
        filler().prop_map(|f| Segment::hides(format!("r#\" unsafe \"quoted\" hidden {f} \"#"))),
        // Raw string with deeper hashes containing a lesser terminator.
        filler().prop_map(|f| { Segment::hides(format!("r##\" unsafe \"# hidden {f} \"##")) }),
        // Byte string.
        filler().prop_map(|f| Segment::hides(format!("b\"unsafe hidden {f}\""))),
        // Char literals that look like openers: a double quote and an
        // escaped single quote.
        Just(Segment::hides("'\"'".to_string())),
        Just(Segment::hides("'\\''".to_string())),
        // A comment that IS a directive (and hides a keyword).
        filler().prop_map(|f| Segment {
            text: format!("// audit:exponential unsafe hidden {f}\n"),
            unsafe_idents: 0,
            directives: 1,
        }),
        // A directive marker inside a string is NOT a directive.
        Just(Segment::hides("\"audit:exponential hidden\"".to_string())),
        // Genuine code: exactly one real `unsafe` identifier.
        Just(Segment {
            text: "unsafe { }".to_string(),
            unsafe_idents: 1,
            directives: 0,
        }),
        // Genuine safe code, with a lifetime that must not parse as a char.
        filler().prop_map(|f| Segment::hides(format!("fn {f}<'a>(x: &'a str) -> u32 {{ 1 }}"))),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_nestings_never_mistokenize(segs in vec(segment(), 0..12)) {
        let src: String = segs
            .iter()
            .map(|s| s.text.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        let want_unsafe: usize = segs.iter().map(|s| s.unsafe_idents).sum();
        let want_directives: usize = segs.iter().map(|s| s.directives).sum();

        let lexed = lex(&src);
        let got_unsafe = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text == "unsafe")
            .count();
        prop_assert_eq!(got_unsafe, want_unsafe, "source:\n{}", src);
        prop_assert_eq!(lexed.directives.len(), want_directives, "source:\n{}", src);

        // Literal contents are swallowed entirely: the sentinel word that
        // every literal/comment carries must never surface in any token.
        prop_assert!(
            lexed.tokens.iter().all(|t| !t.text.contains("hidden")),
            "literal contents leaked into tokens; source:\n{}",
            src
        );

        // Line numbers stay monotone and within the file.
        let lines = src.lines().count() as u32 + 1;
        let mut prev = 1;
        for t in &lexed.tokens {
            prop_assert!(t.line >= prev && t.line <= lines, "line went backwards in:\n{}", src);
            prev = t.line;
        }
    }
}
