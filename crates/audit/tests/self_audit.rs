//! The audit applied to its own workspace: every finding must be fixed or
//! carry a justified baseline entry, and no baseline entry may go stale.
//! This is the same check CI runs via `repairctl audit --deny`.

use std::path::Path;

use cqa_audit::{audit_workspace, Baseline};

#[test]
fn workspace_is_clean_modulo_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = audit_workspace(&root).expect("workspace walk");
    assert!(
        report.files > 30,
        "walker found only {} files",
        report.files
    );

    let baseline_path = root.join("audit.baseline");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text).expect("audit.baseline parses"),
        Err(_) => Baseline::default(),
    };
    let outcome = baseline.apply(report.findings);

    let mut problems = String::new();
    for f in &outcome.active {
        problems.push_str(&format!(
            "  {} {}:{} (in {}) {}\n",
            f.code.code(),
            f.file,
            f.line,
            f.scope,
            f.message
        ));
    }
    for s in &outcome.stale {
        problems.push_str(&format!("  stale: {s}\n"));
    }
    assert!(
        problems.is_empty(),
        "audit not clean ({} active, {} stale; {} suppressed by baseline):\n{problems}",
        outcome.active.len(),
        outcome.stale.len(),
        outcome.suppressed
    );
}
