//! E-series micro-benchmarks: the cost of each paper example's headline
//! operation, so regressions in the core paths are visible.

use cqa_constraints::{ConstraintSet, DenialConstraint, KeyConstraint, Tgd};
use cqa_core::RepairClass;
use cqa_query::{parse_query, NullSemantics, UnionQuery};
use cqa_relation::{tuple, Database, RelationSchema};
use criterion::{criterion_group, criterion_main, Criterion};

fn supply_db() -> (Database, ConstraintSet) {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new(
        "Supply",
        ["Company", "Receiver", "Item"],
    ))
    .unwrap();
    db.create_relation(RelationSchema::new("Articles", ["Item"]))
        .unwrap();
    db.insert("Supply", tuple!["C1", "R1", "I1"]).unwrap();
    db.insert("Supply", tuple!["C2", "R2", "I2"]).unwrap();
    db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
    db.insert("Articles", tuple!["I1"]).unwrap();
    db.insert("Articles", tuple!["I2"]).unwrap();
    let sigma =
        ConstraintSet::from_iter([Tgd::parse("ID", "Articles(z) :- Supply(x, y, z)").unwrap()]);
    (db, sigma)
}

fn rs_db() -> (Database, ConstraintSet) {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("R", ["A", "B"]))
        .unwrap();
    db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
    db.insert("R", tuple!["a4", "a3"]).unwrap();
    db.insert("R", tuple!["a2", "a1"]).unwrap();
    db.insert("R", tuple!["a3", "a3"]).unwrap();
    db.insert("S", tuple!["a4"]).unwrap();
    db.insert("S", tuple!["a2"]).unwrap();
    db.insert("S", tuple!["a3"]).unwrap();
    let sigma =
        ConstraintSet::from_iter(
            [DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap()],
        );
    (db, sigma)
}

fn bench(c: &mut Criterion) {
    let (supply, supply_sigma) = supply_db();
    let (rs, kappa) = rs_db();

    c.bench_function("e1_residue_rewrite", |b| {
        let q = parse_query("Q(z) :- Supply(x, y, z)").unwrap();
        b.iter(|| {
            let rr = cqa_core::residue_rewrite(&q, &supply_sigma).unwrap();
            cqa_query::eval_fo(&supply, &rr.query, NullSemantics::Structural).len()
        })
    });

    c.bench_function("e2_supply_s_repairs", |b| {
        b.iter(|| cqa_core::s_repairs(&supply, &supply_sigma).unwrap().len())
    });

    c.bench_function("e3_employee_cqa", |b| {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        db.insert("Employee", tuple!["page", 5000]).unwrap();
        db.insert("Employee", tuple!["page", 8000]).unwrap();
        db.insert("Employee", tuple!["smith", 3000]).unwrap();
        db.insert("Employee", tuple!["stowe", 7000]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("Employee", ["Name"])]);
        let q = UnionQuery::single(parse_query("Q(x, y) :- Employee(x, y)").unwrap());
        b.iter(|| {
            cqa_core::consistent_answers(&db, &sigma, &q, &RepairClass::Subset)
                .unwrap()
                .len()
        })
    });

    c.bench_function("e4_repair_program_stable_models", |b| {
        b.iter(|| {
            let rp = cqa_asp::RepairProgram::build(&rs, &kappa).unwrap();
            rp.s_repair_models().unwrap().len()
        })
    });

    c.bench_function("e8_attribute_repairs", |b| {
        b.iter(|| cqa_core::attribute_repairs(&rs, &kappa).unwrap().len())
    });

    c.bench_function("e11_actual_causes", |b| {
        let q = UnionQuery::single(parse_query("Q() :- S(x), R(x, y), S(y)").unwrap());
        b.iter(|| cqa_causality::actual_causes(&rs, &q).len())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
