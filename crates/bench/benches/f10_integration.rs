//! F10: mediation cost (§5) — GAV (materialize + query) vs LAV (inverse
//! rules with skolems), both roughly linear in source size, LAV paying the
//! skolemization overhead.

use cqa_bench::university_sources;
use cqa_integration::{GavMediator, LavMapping, LavMediator};
use cqa_query::{parse_program, parse_query, UnionQuery};
use cqa_relation::RelationSchema;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let views_src = "Stds(x, y, 'cu', z) :- CUstds(x, y), SpecCU(x, z).\n\
                     Stds(x, y, 'ou', z) :- OUstds(x, y), SpecOU(x, z).";
    let q = UnionQuery::single(parse_query("Q(y) :- Stds(x, y, u, z)").unwrap());

    let mut group = c.benchmark_group("f10_integration");
    // Scaling probes, not micro-benchmarks: few samples, short windows.
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [50usize, 150, 400] {
        let sources = university_sources(n, n / 10, 11);
        let gav = GavMediator::new(sources.clone(), parse_program(views_src).unwrap());
        group.bench_with_input(BenchmarkId::new("gav_answer", n), &n, |b, _| {
            b.iter(|| gav.answer(&q).unwrap().len())
        });
        let lav = LavMediator::new(
            sources.clone(),
            vec![RelationSchema::new(
                "Stds",
                ["Number", "Name", "Univ", "Field"],
            )],
            vec![
                LavMapping::parse("CUstds(x, y) :- Stds(x, y, 'cu', z)").unwrap(),
                LavMapping::parse("OUstds(x, y) :- Stds(x, y, 'ou', z)").unwrap(),
            ],
        );
        group.bench_with_input(BenchmarkId::new("lav_certain_answers", n), &n, |b, _| {
            b.iter(|| lav.certain_answers(&q).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
