//! F11: "the data complexity of CQA was bound to be higher than polynomial
//! time … coNP-complete" (§3.2, [48]). The classic witness is the
//! self-join-free but *attack-cyclic* query `∃x∃y (R(x,y) ∧ S(y,x))` under
//! primary keys: the rewriting procedure certifies non-rewritability and the
//! only exact route is repair enumeration, whose cost grows exponentially
//! with the number of key conflicts.

use cqa_constraints::{ConstraintSet, KeyConstraint};
use cqa_core::rewrite::keys::{rewrite_key_query, KeyPositions, KeyRewriteError};
use cqa_core::RepairClass;
use cqa_query::{parse_query, UnionQuery};
use cqa_relation::{tuple, Database};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// `k` interlocked R/S key groups so that certainty requires case analysis.
fn cyclic_instance(k: usize) -> (Database, ConstraintSet) {
    let mut db = Database::new();
    db.create_relation(cqa_relation::RelationSchema::new("R", ["A", "B"]))
        .unwrap();
    db.create_relation(cqa_relation::RelationSchema::new("S", ["A", "B"]))
        .unwrap();
    for i in 0..k as i64 {
        // R(i, ·) can point at i or i+1; S mirrors back only one of them.
        db.insert("R", tuple![i, i]).unwrap();
        db.insert("R", tuple![i, i + 1]).unwrap();
        db.insert("S", tuple![i, i]).unwrap();
        db.insert("S", tuple![i + 1, 1_000 + i]).unwrap();
    }
    let sigma = ConstraintSet::from_iter([
        KeyConstraint::new("R", ["A"]),
        KeyConstraint::new("S", ["A"]),
    ]);
    (db, sigma)
}

fn bench(c: &mut Criterion) {
    let q = parse_query("Q() :- R(x, y), S(y, x)").unwrap();
    // The dichotomy says: no FO rewriting for this query.
    let keys: KeyPositions = [
        ("R".to_string(), vec![0usize]),
        ("S".to_string(), vec![0usize]),
    ]
    .into();
    assert!(matches!(
        rewrite_key_query(&q, &keys),
        Err(KeyRewriteError::CyclicAttackGraph { .. })
    ));

    let mut group = c.benchmark_group("f11_conp_query");
    // Scaling probes, not micro-benchmarks: few samples, short windows.
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for k in [2usize, 4, 6] {
        let (db, sigma) = cyclic_instance(k);
        group.bench_with_input(BenchmarkId::new("repair_enumeration_cqa", k), &k, |b, _| {
            b.iter(|| {
                cqa_core::certainly_true(
                    &db,
                    &sigma,
                    &UnionQuery::single(q.clone()),
                    &RepairClass::Subset,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
