//! F12: the analysis-selected stratified fast path vs the full
//! stable-model search on the same ground programs. Stratified programs
//! have a unique stable model computable bottom-up per stratum, so the
//! dispatcher (`stable_models`) should beat the branch-and-propagate
//! search (`stable_models_search`) on every stratified workload here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Transitive closure over a chain of `n` nodes: definite, one stratum.
fn chain_program(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("e({}, {}).\n", i, i + 1));
    }
    src.push_str("t(x, y) :- e(x, y).\nt(x, z) :- e(x, y), t(y, z).\n");
    src
}

/// Reachability plus a negation layer (`unreached`): two strata. Nodes
/// `0..n/2` form a chain from the start node; the rest stay unreached.
fn negation_program(n: usize) -> String {
    let mut src = String::new();
    for i in 0..=2 * n {
        src.push_str(&format!("node({i}).\n"));
    }
    for i in 0..n {
        src.push_str(&format!("e({}, {}).\n", i, i + 1));
    }
    src.push_str(
        "reach(0).\nreach(y) :- reach(x), e(x, y).\n\
         unreached(x) :- node(x), not reach(x).\n",
    );
    src
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f12_stratified_fastpath");
    // Scaling probes, not micro-benchmarks: few samples, short windows.
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [10usize, 20, 40] {
        for (label, src) in [
            ("chain_tc", chain_program(n)),
            ("negation_layers", negation_program(n)),
        ] {
            let program = cqa_asp::parse_asp(&src).unwrap();
            let g = cqa_asp::ground(&program).unwrap();
            // The dispatcher must actually take the fast path here.
            assert!(cqa_asp::stable_models_stratified(&g).is_some());
            group.bench_with_input(
                BenchmarkId::new(format!("{label}_fastpath"), n),
                &n,
                |b, _| b.iter(|| cqa_asp::stable_models(&g).len()),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{label}_search"), n),
                &n,
                |b, _| b.iter(|| cqa_asp::stable_models_search(&g).len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
