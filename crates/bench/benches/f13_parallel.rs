//! F13: the cqa-exec scoped pool vs the exact sequential code paths, on
//! the hot loops it parallelizes — repair-enumeration CQA (F1 shape),
//! hitting-set search (F3 shape) and responsibility (F5 shape) — plus the
//! denial-constraint hash-join fast path vs the generic witness evaluator
//! it replaced. `with_threads` pins the count per measurement, so the two
//! sides of each comparison run the same binary on the same inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cqa_bench::{dc_instance, key_conflict_instance, star_instance};
use cqa_constraints::DenialConstraint;
use cqa_exec::with_threads;
use cqa_query::{parse_query, NullSemantics, UnionQuery};
use cqa_relation::{tuple, Database, RelationSchema};
use std::collections::BTreeSet;

fn bench_cqa(c: &mut Criterion) {
    let mut group = c.benchmark_group("f13_parallel_cqa");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for k in [8usize, 10, 12] {
        let (db, sigma) = key_conflict_instance(60, k, 2, 1);
        let instances: Vec<Database> = cqa_core::s_repairs(&db, &sigma)
            .unwrap()
            .into_iter()
            .map(|r| r.into_db())
            .collect();
        let q = UnionQuery::single(parse_query("Q(k, v) :- T(k, v)").unwrap());
        for threads in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("certain_over_{threads}thr"), k),
                &k,
                |b, _| b.iter(|| with_threads(threads, || cqa_core::certain_over(&instances, &q))),
            );
        }
    }
    group.finish();
}

fn bench_hitting_sets(c: &mut Criterion) {
    let mut group = c.benchmark_group("f13_parallel_hitting_sets");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for (n_r, n_s, dom) in [(25usize, 12usize, 8usize), (40, 16, 10)] {
        let (db, sigma) = dc_instance(n_r, n_s, dom, 3);
        let g = sigma.conflict_hypergraph(&db).unwrap();
        let label = format!("{n_r}x{n_s}");
        for threads in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("minimal_all_{threads}thr"), &label),
                &label,
                |b, _| b.iter(|| with_threads(threads, || g.minimal_hitting_sets(None).len())),
            );
        }
    }
    group.finish();
}

fn bench_responsibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("f13_parallel_responsibility");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for width in [12usize, 16] {
        let db = star_instance(width);
        let q = UnionQuery::single(parse_query("Q() :- Hub(x), Spoke(x, y)").unwrap());
        for threads in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("actual_causes_{threads}thr"), width),
                &width,
                |b, _| b.iter(|| with_threads(threads, || cqa_causality::actual_causes(&db, &q))),
            );
        }
    }
    group.finish();
}

/// The generic evaluator the hash join replaced for binary denial
/// constraints: enumerate every witness of the body and collect its tids.
fn violations_generic(
    dc: &DenialConstraint,
    db: &Database,
) -> BTreeSet<BTreeSet<cqa_relation::Tid>> {
    let mut out = BTreeSet::new();
    cqa_query::for_each_witness(db, dc.body(), NullSemantics::Sql, &mut |w| {
        out.insert(w.tids.iter().copied().collect());
        true
    });
    out
}

fn bench_violations_hash_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("f13_violations_hash_join");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    // FD-shaped self-join T(K)→V over n tuples in groups of 4 per key: the
    // hash join probes one bucket per tuple where the generic evaluator
    // scans the whole relation per tuple.
    let dc = DenialConstraint::parse("fd", "T(x, y), T(x, z), y != z").unwrap();
    for n in [200usize, 400, 800] {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        for i in 0..n {
            db.insert("T", tuple![(i / 4) as i64, i as i64]).unwrap();
        }
        assert_eq!(dc.violations(&db), violations_generic(&dc, &db));
        group.bench_with_input(BenchmarkId::new("hash_join", n), &n, |b, _| {
            b.iter(|| dc.violations(&db).len())
        });
        group.bench_with_input(BenchmarkId::new("generic", n), &n, |b, _| {
            b.iter(|| violations_generic(&dc, &db).len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cqa,
    bench_hitting_sets,
    bench_responsibility,
    bench_violations_hash_join
);
criterion_main!(benches);
