//! F14: zero-clone repair views vs materialized repair instances, on the
//! enumeration-based CQA hot path. The materialized side clones the base
//! instance once per repair (`Repair::into_db`); the view side folds the
//! query over [`cqa_relation::DeltaView`]s that share the base and its
//! one-column index cache. Both sides compute byte-identical answers —
//! asserted before each measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cqa_bench::key_conflict_instance;
use cqa_query::{parse_query, UnionQuery};
use cqa_relation::{Database, DeltaView};

fn query() -> UnionQuery {
    UnionQuery::single(parse_query("Q(k, v) :- T(k, v)").unwrap())
}

/// Enumerate S-repairs and fold certain answers over materialized instances
/// (one `with_changes` clone per repair).
fn cqa_materialized(db: &Database, sigma: &cqa_constraints::ConstraintSet, q: &UnionQuery) {
    let instances: Vec<Database> = cqa_core::s_repairs(db, sigma)
        .unwrap()
        .into_iter()
        .map(|r| r.into_db())
        .collect();
    cqa_core::certain_over(&instances, q);
}

/// Enumerate S-repairs lazily and fold certain answers over zero-clone
/// delta views of the shared base.
fn cqa_views(db: &Database, sigma: &cqa_constraints::ConstraintSet, q: &UnionQuery) {
    let repairs = cqa_core::s_repairs(db, sigma).unwrap();
    let views: Vec<DeltaView<'_>> = repairs.iter().map(|r| r.view()).collect();
    cqa_core::certain_over(&views, q);
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("f14_views_enumeration");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    // Repair enumeration alone: lazy deltas vs one instance clone per repair.
    for k in [8usize, 10] {
        let (db, sigma) = key_conflict_instance(300, k, 2, 1);
        group.bench_with_input(BenchmarkId::new("materialized", k), &k, |b, _| {
            b.iter(|| {
                let instances: Vec<Database> = cqa_core::s_repairs(&db, &sigma)
                    .unwrap()
                    .into_iter()
                    .map(|r| r.into_db())
                    .collect();
                instances.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("views", k), &k, |b, _| {
            b.iter(|| cqa_core::s_repairs(&db, &sigma).unwrap().len())
        });
    }
    group.finish();
}

fn bench_cqa(c: &mut Criterion) {
    let mut group = c.benchmark_group("f14_views_cqa");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    let q = query();
    for k in [8usize, 10] {
        let (db, sigma) = key_conflict_instance(300, k, 2, 1);
        // Both sides must agree byte-for-byte before we time them.
        let repairs = cqa_core::s_repairs(&db, &sigma).unwrap();
        let views: Vec<DeltaView<'_>> = repairs.iter().map(|r| r.view()).collect();
        let via_views = cqa_core::certain_over(&views, &q);
        let instances: Vec<Database> = repairs.into_iter().map(|r| r.into_db()).collect();
        assert_eq!(via_views, cqa_core::certain_over(&instances, &q));
        drop(instances);

        group.bench_with_input(BenchmarkId::new("materialized", k), &k, |b, _| {
            b.iter(|| cqa_materialized(&db, &sigma, &q))
        });
        group.bench_with_input(BenchmarkId::new("views", k), &k, |b, _| {
            b.iter(|| cqa_views(&db, &sigma, &q))
        });
    }
    group.finish();
}

fn bench_index_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("f14_index_cache");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    // Join probes through the shared base index cache: the first view builds
    // the one-column index, every later view (and every repetition) reuses it.
    let (db, sigma) = key_conflict_instance(300, 10, 2, 1);
    let q = UnionQuery::single(parse_query("Q(k) :- T(k, v), S(v)").unwrap());
    let mut with_s = db.clone();
    with_s
        .create_relation(cqa_relation::RelationSchema::new("S", ["V"]))
        .unwrap();
    for v in 0..2 {
        with_s.insert("S", cqa_relation::tuple![v as i64]).unwrap();
    }
    group.bench_with_input(
        BenchmarkId::new("join_cqa_views", "300x10"),
        &(),
        |b, ()| {
            b.iter(|| {
                let repairs = cqa_core::s_repairs(&with_s, &sigma).unwrap();
                let views: Vec<DeltaView<'_>> = repairs.iter().map(|r| r.view()).collect();
                cqa_core::certain_over(&views, &q)
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_enumeration, bench_cqa, bench_index_cache);
criterion_main!(benches);
