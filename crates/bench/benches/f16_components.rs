//! F16: conflict-component factorization vs the monolithic cross-product,
//! on the replicated key-conflict workload. With `m` independent key groups
//! of size `g` the conflict graph has `m` components and the repair family
//! is the `g^m` cross-product; the factored paths pay `Σ = m·g` while the
//! monolithic ones pay `Π = g^m`. Answers are asserted byte-identical
//! before each measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cqa_bench::key_conflict_instance;
use cqa_core::{consistent_answers_factored_budgeted, RepairClass, RepairOptions};
use cqa_exec::Budget;
use cqa_query::{parse_query, UnionQuery};
use std::sync::Arc;

fn query() -> UnionQuery {
    UnionQuery::single(parse_query("Q(k, v) :- T(k, v)").unwrap())
}

/// The legacy sequential enumeration-and-fold over the full cross-product
/// (a generous step budget disables the factored gate).
fn cqa_monolithic(
    db: &cqa_relation::Database,
    sigma: &cqa_constraints::ConstraintSet,
    q: &UnionQuery,
) -> std::collections::BTreeSet<cqa_relation::Tuple> {
    let out = cqa_core::consistent_answers_budgeted(
        db,
        sigma,
        q,
        &RepairClass::Subset,
        &Budget::steps(1_000_000_000),
    )
    .unwrap();
    assert!(out.truncation().is_none());
    out.into_value()
}

/// The component-wise certain fold: query the frozen core once, then fold
/// each component's local repair family independently.
fn cqa_factored(
    db: &cqa_relation::Database,
    sigma: &cqa_constraints::ConstraintSet,
    q: &UnionQuery,
) -> std::collections::BTreeSet<cqa_relation::Tuple> {
    let out = consistent_answers_factored_budgeted(
        db,
        sigma,
        q,
        &RepairClass::Subset,
        &Budget::unlimited(),
    )
    .unwrap()
    .expect("key constraints are denial-class");
    assert!(out.truncation().is_none());
    out.into_value().0
}

fn bench_cqa(c: &mut Criterion) {
    let mut group = c.benchmark_group("f16_components_cqa");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    let q = query();
    for m in [2usize, 4, 6] {
        let (db, sigma) = key_conflict_instance(20, m, 4, 1);
        assert_eq!(
            cqa_monolithic(&db, &sigma, &q),
            cqa_factored(&db, &sigma, &q)
        );
        group.bench_with_input(BenchmarkId::new("monolithic", m), &m, |b, _| {
            b.iter(|| cqa_monolithic(&db, &sigma, &q))
        });
        group.bench_with_input(BenchmarkId::new("factored", m), &m, |b, _| {
            b.iter(|| cqa_factored(&db, &sigma, &q))
        });
    }
    group.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("f16_components_enumeration");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    // The search itself: Σ-shaped per-component hitting-set enumeration vs
    // the Π-shaped sequential DFS (expansion excluded on the factored side —
    // CQA and the CLI never materialize the product).
    for m in [4usize, 6] {
        let (db, sigma) = key_conflict_instance(20, m, 4, 1);
        let base = Arc::new(db);
        group.bench_with_input(BenchmarkId::new("sequential_dfs", m), &m, |b, _| {
            b.iter(|| {
                let out = cqa_core::s_repairs_budgeted(
                    &base,
                    &sigma,
                    &RepairOptions::default(),
                    &Budget::steps(1_000_000_000),
                )
                .unwrap();
                assert!(out.truncation().is_none());
                out.into_value().len()
            })
        });
        group.bench_with_input(BenchmarkId::new("factored_families", m), &m, |b, _| {
            b.iter(|| {
                let out =
                    cqa_core::factored_s_repairs_budgeted(&base, &sigma, &Budget::unlimited())
                        .unwrap()
                        .expect("key constraints are denial-class");
                assert!(out.truncation().is_none());
                out.into_value().factored_len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cqa, bench_enumeration);
criterion_main!(benches);
