//! F18: dictionary-encoded columnar storage vs the row-oriented baseline.
//!
//! The same generated workload (`Orders`/`Cities`, heavy string repetition)
//! is loaded into [`cqa_relation::Database`] (dictionary + columns + typed
//! indexes) and into the preserved row store (`cqa_bench::rowstore`), and
//! both run violation detection (an FD-shaped self-join plus a comparison
//! range scan) and the CQA equi-join. Answers are asserted byte-identical
//! before any measurement; memory is reported by the harness (`F18`
//! section), not here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cqa_bench::rowstore::{f18_rowdb, RowDb};
use cqa_bench::{f18_columnar, f18_data};
use cqa_constraints::DenialConstraint;
use cqa_query::{parse_query, ConjunctiveQuery, NullSemantics};
use cqa_relation::{Database, Tid, Tuple, Value};
use std::collections::BTreeSet;

fn columnar_violations(
    db: &Database,
    denials: &[DenialConstraint],
) -> Vec<BTreeSet<BTreeSet<Tid>>> {
    denials.iter().map(|dc| dc.violations(db)).collect()
}

fn row_violations(db: &RowDb) -> Vec<BTreeSet<BTreeSet<Tid>>> {
    vec![
        db.fd_violations("Orders", 1, 2),
        db.range_violations("Orders", 4, &Value::Int(9900)),
    ]
}

fn join_query() -> ConjunctiveQuery {
    parse_query("Q(c, r) :- Orders(o, c, x, s, a), Cities(x, r)").unwrap()
}

fn columnar_join(db: &Database, q: &ConjunctiveQuery) -> BTreeSet<Tuple> {
    cqa_query::eval_cq(db, q, NullSemantics::Sql)
}

fn row_join(db: &RowDb) -> BTreeSet<Tuple> {
    db.join("Orders", 2, "Cities", 0, &[(0, 1), (1, 1)])
}

fn bench_f18(c: &mut Criterion) {
    let q = join_query();
    for n in [2_000usize, 8_000] {
        let data = f18_data(n, 18);
        let (db, sigma) = f18_columnar(&data);
        let denials = sigma.all_denials(&db).unwrap();
        let row = f18_rowdb(&data);
        // Equality gates: both engines agree before either is timed.
        assert_eq!(columnar_violations(&db, &denials), row_violations(&row));
        assert_eq!(columnar_join(&db, &q), row_join(&row));

        let mut group = c.benchmark_group("f18_violations");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("columnar", n), &n, |b, _| {
            b.iter(|| columnar_violations(&db, &denials))
        });
        group.bench_with_input(BenchmarkId::new("rowstore", n), &n, |b, _| {
            b.iter(|| row_violations(&row))
        });
        group.finish();

        let mut group = c.benchmark_group("f18_cqa_join");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("columnar", n), &n, |b, _| {
            b.iter(|| columnar_join(&db, &q))
        });
        group.bench_with_input(BenchmarkId::new("rowstore", n), &n, |b, _| {
            b.iter(|| row_join(&row))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_f18);
criterion_main!(benches);
