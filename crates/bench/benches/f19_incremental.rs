//! F19: delta-driven incremental maintenance vs recompute-from-scratch.
//!
//! The F18 workload (`Orders`/`Cities`, FD Cust → City at 1% dirty plus the
//! comparison denial Amount > 9900) is loaded once; each iteration then
//! performs a closed single-tuple cycle — insert one conflicting order,
//! bring the conflict state up to date, delete it, bring it up to date
//! again — so the instance returns to its starting point every iteration.
//! The `incremental` side maintains an [`IncrementalState`] through its
//! change-log delta path; the `recompute` side rebuilds violations, the
//! conflict hyper-graph and the component factorization from scratch.
//! Byte-identity of the two is asserted before any measurement; throughput
//! (updates/sec) is what the F19 harness section reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cqa_bench::{f18_columnar, f18_data};
use cqa_core::IncrementalState;
use cqa_relation::tuple;

fn bench_f19(c: &mut Criterion) {
    for n in [2_000usize, 8_000] {
        let data = f18_data(n, 19);
        let (mut db, sigma) = f18_columnar(&data);
        let mut state = IncrementalState::new(&db, &sigma).unwrap();
        let cust = data.orders[0].1.clone();
        let city = data.cities[1].0.clone();

        // Equality gate: one full cycle, maintained state checked against a
        // from-scratch build, before either side is timed.
        let t = db
            .insert(
                "Orders",
                tuple![9_000_000i64, cust.as_str(), city.as_str(), "late", 123],
            )
            .unwrap();
        state.refresh(&db, &sigma).unwrap();
        let scratch = IncrementalState::new(&db, &sigma).unwrap();
        assert_eq!(state.violations(), scratch.violations());
        assert!(state.graph() == scratch.graph(), "graphs diverged");
        assert_eq!(*state.components(), *scratch.components());
        db.delete(t).unwrap();
        state.refresh(&db, &sigma).unwrap();

        let mut group = c.benchmark_group("f19_single_update");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                let t = db
                    .insert(
                        "Orders",
                        tuple![9_000_000i64, cust.as_str(), city.as_str(), "late", 123],
                    )
                    .unwrap();
                state.refresh(&db, &sigma).unwrap();
                db.delete(t).unwrap();
                state.refresh(&db, &sigma).unwrap();
                state.violations().len()
            })
        });
        group.bench_with_input(BenchmarkId::new("recompute", n), &n, |b, _| {
            b.iter(|| {
                let t = db
                    .insert(
                        "Orders",
                        tuple![9_000_000i64, cust.as_str(), city.as_str(), "late", 123],
                    )
                    .unwrap();
                let s1 = IncrementalState::new(&db, &sigma).unwrap();
                db.delete(t).unwrap();
                let s2 = IncrementalState::new(&db, &sigma).unwrap();
                s1.violations().len() + s2.violations().len()
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_f19);
criterion_main!(benches);
