//! F1: "it is easy to produce examples of databases that have
//! exponentially many repairs" (§3.1). S-repair enumeration time doubles
//! (roughly) with each extra independent key conflict.

use cqa_bench::key_conflict_instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_repair_explosion");
    // Scaling probes, not micro-benchmarks: few samples, short windows.
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for k in [2usize, 4, 6, 8, 10] {
        let (db, sigma) = key_conflict_instance(50, k, 2, 1);
        group.bench_with_input(BenchmarkId::new("enumerate_s_repairs", k), &k, |b, _| {
            b.iter(|| {
                let repairs = cqa_core::s_repairs(&db, &sigma).unwrap();
                assert_eq!(repairs.len(), 1usize << k);
                repairs.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
