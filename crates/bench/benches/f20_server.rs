//! F20: session reuse in repaird — warm queries against a live session vs
//! cold create-query-delete one-shots, driven straight through the request
//! handler (no sockets), so the measured gap is session state — the loaded
//! database, its indexes and the warm incremental conflict state — not TCP
//! framing. The F20 harness section measures the same contrast end-to-end
//! over loopback.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cqa_bench::key_conflict_instance;
use cqa_exec::{AdmissionGate, CancelToken};
use cqa_server::{api, Json, Request, ServerConfig, ServerState, SessionStore};
use std::sync::RwLock;

fn call(
    state: &ServerState,
    slot: &RwLock<Option<CancelToken>>,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String) {
    let req = Request {
        method: method.to_string(),
        path: path.to_string(),
        body: body.as_bytes().to_vec(),
        close: false,
    };
    let reply = api::handle(state, &req, slot);
    (reply.status, reply.body.to_string())
}

fn session_id(reply: &str) -> u64 {
    reply
        .split("\"session\":")
        .nth(1)
        .expect("session id in reply")
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric session id")
}

fn bench_f20(c: &mut Criterion) {
    for n in [1_000usize, 8_000] {
        let (db, _sigma) = key_conflict_instance(n, 12, 2, 7);
        let create_body = format!(
            "{{\"db\": {}, \"constraints\": {}}}",
            Json::str(cqa_relation::save(&db).as_str()),
            Json::str("key T(K)\n")
        );
        let query_body = r#"{"query": "Q(y) :- T(5, y)"}"#;
        let state = ServerState {
            config: ServerConfig::default(),
            sessions: SessionStore::new(1024),
            gate: AdmissionGate::new(64),
            stop: CancelToken::new(),
        };
        let slot = RwLock::new(None);
        let (status, reply) = call(&state, &slot, "POST", "/sessions", &create_body);
        assert_eq!(status, 200, "{reply}");
        let warm_id = session_id(&reply);

        let mut group = c.benchmark_group("f20_session_reuse");
        group.sample_size(20);
        group.bench_with_input(BenchmarkId::new("warm_query", n), &n, |b, _| {
            b.iter(|| {
                let (status, reply) = call(
                    &state,
                    &slot,
                    "POST",
                    &format!("/sessions/{warm_id}/query"),
                    query_body,
                );
                assert_eq!(status, 200, "{reply}");
                reply.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("cold_one_shot", n), &n, |b, _| {
            b.iter(|| {
                let (status, reply) = call(&state, &slot, "POST", "/sessions", &create_body);
                assert_eq!(status, 200, "{reply}");
                let id = session_id(&reply);
                let (status, reply) = call(
                    &state,
                    &slot,
                    "POST",
                    &format!("/sessions/{id}/query"),
                    query_body,
                );
                assert_eq!(status, 200, "{reply}");
                let len = reply.len();
                let (status, _) = call(&state, &slot, "DELETE", &format!("/sessions/{id}"), "");
                assert_eq!(status, 200);
                len
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_f20);
criterion_main!(benches);
