//! F21: repair-family subplan sharing, as a criterion smoke benchmark.
//!
//! One iteration = the F21 harness unit of work: certain *and* possible
//! answers for the same key-lookup UCQ over a 2^k S-repair family, asked
//! three times (a warm session re-asking). With sharing on, only the first
//! certain pass evaluates the query per repair; every later pass hits the
//! (query fingerprint, content fingerprint) cache. The cache is reset at
//! the top of each iteration, so `sharing_on` measures within-family
//! sharing, not residue from previous iterations. Row equality between the
//! two sides is asserted once before any measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cqa_bench::key_conflict_instance;
use cqa_core::{consistent_answers, possible_answers, RepairClass};
use cqa_exec::with_plan_cache;
use cqa_query::{parse_query, reset_plan_cache, UnionQuery};

fn family_fold(
    db: &cqa_relation::Database,
    sigma: &cqa_constraints::ConstraintSet,
    q: &UnionQuery,
) -> (
    std::collections::BTreeSet<cqa_relation::Tuple>,
    std::collections::BTreeSet<cqa_relation::Tuple>,
) {
    let class = RepairClass::Subset;
    let mut last = None;
    for _ in 0..3 {
        let c = consistent_answers(db, sigma, q, &class).unwrap();
        let p = possible_answers(db, sigma, q, &class).unwrap();
        last = Some((c, p));
    }
    last.expect("three passes ran")
}

fn bench_f21(c: &mut Criterion) {
    let q = UnionQuery::single(parse_query("Q(x) :- T(x, y)").unwrap());
    for k in [6usize, 8] {
        let (db, sigma) = key_conflict_instance(2_000, k, 2, 21);

        // Equality gate: sharing must be answer-invariant before it is timed.
        reset_plan_cache();
        let on = with_plan_cache(true, || family_fold(&db, &sigma, &q));
        let off = with_plan_cache(false, || family_fold(&db, &sigma, &q));
        assert_eq!(on, off, "subplan sharing changed answers at k={k}");

        let mut group = c.benchmark_group("f21_plan_cache");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sharing_on", k), &k, |b, _| {
            b.iter(|| {
                reset_plan_cache();
                with_plan_cache(true, || family_fold(&db, &sigma, &q))
            })
        });
        group.bench_with_input(BenchmarkId::new("sharing_off", k), &k, |b, _| {
            b.iter(|| with_plan_cache(false, || family_fold(&db, &sigma, &q)))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_f21);
criterion_main!(benches);
