//! F2: the crossover the paper's §3.2 story is about — FO rewriting answers
//! CQA in polynomial time on the inconsistent instance, while the
//! model-theoretic definition (enumerate all repairs, intersect) blows up
//! exponentially in the number of conflicts.

use cqa_bench::key_conflict_instance;
use cqa_core::rewrite::keys::KeyPositions;
use cqa_core::RepairClass;
use cqa_query::{parse_query, NullSemantics, UnionQuery};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let q = parse_query("Q(k, v) :- T(k, v)").unwrap();
    let keys: KeyPositions = [("T".to_string(), vec![0usize])].into();
    let fo = cqa_core::rewrite_key_query(&q, &keys).unwrap();

    let mut group = c.benchmark_group("f2_rewriting_vs_enumeration");
    // Scaling probes, not micro-benchmarks: few samples, short windows.
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for k in [2usize, 5, 8, 11] {
        let (db, sigma) = key_conflict_instance(300, k, 2, 2);
        group.bench_with_input(BenchmarkId::new("fo_rewriting", k), &k, |b, _| {
            b.iter(|| cqa_query::eval_fo(&db, &fo, NullSemantics::Structural).len())
        });
        group.bench_with_input(BenchmarkId::new("repair_enumeration", k), &k, |b, _| {
            b.iter(|| {
                cqa_core::consistent_answers(
                    &db,
                    &sigma,
                    &UnionQuery::single(q.clone()),
                    &RepairClass::Subset,
                )
                .unwrap()
                .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
