//! F3: "the complexity of computational problems related to C-repairs tends
//! to be higher than for S-repairs" (§4.1). One greedy S-repair is cheap;
//! the branch-and-bound minimum hitting set (C-repair distance) costs more;
//! full enumeration dominates both.

use cqa_bench::dc_instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_s_vs_c_repairs");
    // Scaling probes, not micro-benchmarks: few samples, short windows.
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for (i, (n_r, n_s, dom)) in [(15, 8, 6), (30, 14, 9), (50, 18, 11)]
        .into_iter()
        .enumerate()
    {
        let (db, sigma) = dc_instance(n_r, n_s, dom, 3);
        let graph = sigma.conflict_hypergraph(&db).unwrap();
        group.bench_with_input(BenchmarkId::new("one_s_repair_greedy", i), &i, |b, _| {
            b.iter(|| graph.greedy_hitting_set().len())
        });
        group.bench_with_input(BenchmarkId::new("c_repair_distance_bnb", i), &i, |b, _| {
            b.iter(|| graph.minimum_hitting_set_size())
        });
        group.bench_with_input(
            BenchmarkId::new("enumerate_all_s_repairs", i),
            &i,
            |b, _| b.iter(|| graph.minimal_hitting_sets(None).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
