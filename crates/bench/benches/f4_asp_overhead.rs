//! F4: "repair programs have exactly the required expressive power" (§3.3):
//! the ASP route (ground + solve) computes the same S-repairs as the direct
//! hitting-set engine, at a constant-factor overhead that grows with the
//! grounding.

use cqa_asp::RepairProgram;
use cqa_bench::dc_instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f4_asp_overhead");
    // Scaling probes, not micro-benchmarks: few samples, short windows.
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for (i, (n_r, n_s, dom)) in [(6, 4, 4), (10, 6, 5), (14, 8, 6)].into_iter().enumerate() {
        let (db, sigma) = dc_instance(n_r, n_s, dom, 4);
        group.bench_with_input(BenchmarkId::new("direct_engine", i), &i, |b, _| {
            b.iter(|| cqa_core::s_repairs(&db, &sigma).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("asp_ground_and_solve", i), &i, |b, _| {
            b.iter(|| {
                let rp = RepairProgram::build(&db, &sigma).unwrap();
                rp.s_repair_models().unwrap().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
