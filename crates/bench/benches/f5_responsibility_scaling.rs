//! F5: responsibility computation (§7) — `FP^NP(log n)`-flavoured: the
//! minimum-contingency search cost grows with the conflict width, and the
//! repair connection (S-/C-repairs of κ(Q)) pays the repair-enumeration
//! price on top.

use cqa_bench::star_instance;
use cqa_query::{parse_query, UnionQuery};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let q = UnionQuery::single(parse_query("Q() :- Hub(x), Spoke(x, y)").unwrap());
    let mut group = c.benchmark_group("f5_responsibility");
    // Scaling probes, not micro-benchmarks: few samples, short windows.
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for width in [4usize, 8, 12, 16] {
        let db = star_instance(width);
        group.bench_with_input(
            BenchmarkId::new("direct_hypergraph", width),
            &width,
            |b, _| b.iter(|| cqa_causality::actual_causes(&db, &q).len()),
        );
        group.bench_with_input(BenchmarkId::new("via_repairs", width), &width, |b, _| {
            b.iter(|| cqa_causality::causes_via_repairs(&db, &q).unwrap().len())
        });
        group.bench_with_input(
            BenchmarkId::new("mracs_via_c_repairs", width),
            &width,
            |b, _| b.iter(|| cqa_causality::mracs_via_c_repairs(&db, &q).unwrap().len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
