//! F6: aggregate CQA under range semantics \[5\] — the certain SUM interval
//! widens with the number of conflicts; computing it costs one aggregate
//! evaluation per repair.

use cqa_bench::key_conflict_instance;
use cqa_core::RepairClass;
use cqa_query::{parse_query, AggOp, AggregateQuery};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f6_aggregate_cqa");
    // Scaling probes, not micro-benchmarks: few samples, short windows.
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for k in [1usize, 3, 5, 7] {
        let (db, sigma) = key_conflict_instance(20, k, 2, 6);
        let body = parse_query("Q() :- T(k, v)").unwrap();
        let v = body.vars.lookup("v").unwrap();
        let agg = AggregateQuery {
            body,
            group_by: vec![],
            target: Some(v),
            op: AggOp::Sum,
        };
        group.bench_with_input(BenchmarkId::new("sum_range", k), &k, |b, _| {
            b.iter(|| {
                cqa_core::consistent_aggregate_range(&db, &sigma, &agg, &RepairClass::Subset)
                    .unwrap()
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
