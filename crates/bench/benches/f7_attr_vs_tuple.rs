//! F7: attribute-level null repairs (§4.3) vs tuple deletions — both
//! minimal-change semantics, measured side by side on the same DC
//! workloads.

use cqa_bench::dc_instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f7_attr_vs_tuple");
    // Scaling probes, not micro-benchmarks: few samples, short windows.
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for (i, (n_r, n_s, dom)) in [(8, 5, 4), (14, 7, 6), (20, 9, 7)].into_iter().enumerate() {
        let (db, sigma) = dc_instance(n_r, n_s, dom, 8);
        group.bench_with_input(BenchmarkId::new("tuple_s_repairs", i), &i, |b, _| {
            b.iter(|| cqa_core::s_repairs(&db, &sigma).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("attribute_null_repairs", i), &i, |b, _| {
            b.iter(|| cqa_core::attribute_repairs(&db, &sigma).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
