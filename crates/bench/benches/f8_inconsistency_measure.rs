//! F8: the repair-based inconsistency degree of §8 (\[16, 17\]) — measure
//! computation time as violation density grows (the dominant cost is the
//! minimum-hitting-set branch and bound).

use cqa_bench::key_conflict_instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f8_inconsistency_measure");
    // Scaling probes, not micro-benchmarks: few samples, short windows.
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for dirty in [0usize, 5, 10, 20] {
        let (db, sigma) = key_conflict_instance(40 - dirty, dirty, 2, 9);
        group.bench_with_input(BenchmarkId::new("degree", dirty), &dirty, |b, _| {
            b.iter(|| cqa_core::inconsistency_degree(&db, &sigma).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
