//! F9: grounding scale for disjunctive repair programs (§3.3) — the
//! grounding grows polynomially with the instance while the stable-model
//! count grows with the independent conflicts.

use cqa_asp::RepairProgram;
use cqa_bench::dc_instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f9_grounding");
    // Scaling probes, not micro-benchmarks: few samples, short windows.
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for (i, (n_r, n_s, dom)) in [(6, 4, 4), (14, 8, 6), (24, 12, 9)].into_iter().enumerate() {
        let (db, sigma) = dc_instance(n_r, n_s, dom, 10);
        group.bench_with_input(BenchmarkId::new("build_and_ground", i), &i, |b, _| {
            b.iter(|| {
                let rp = RepairProgram::build(&db, &sigma).unwrap();
                rp.ground().unwrap().atom_count()
            })
        });
        let rp = RepairProgram::build(&db, &sigma).unwrap();
        let ground = rp.ground().unwrap();
        group.bench_with_input(BenchmarkId::new("solve_only", i), &i, |b, _| {
            b.iter(|| cqa_asp::stable_models(&ground).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
