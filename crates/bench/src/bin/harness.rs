//! The experiment harness: regenerates every table/figure of DESIGN.md's
//! experiment index as printed tables (E-series: exact paper examples;
//! F-series: scaling shapes for the survey's complexity claims).
//!
//! Run with `cargo run --release --bin harness` (optionally
//! `harness F2 F4 …` to select experiments). Output is recorded in
//! EXPERIMENTS.md.

use cqa_bench::{dc_instance, key_conflict_instance, star_instance, timed, university_sources};
use cqa_constraints::{ConstraintSet, DenialConstraint, FunctionalDependency, KeyConstraint};
use cqa_core::RepairClass;
use cqa_query::{parse_program, parse_query, AggOp, AggregateQuery, NullSemantics, UnionQuery};
use cqa_relation::{tuple, Database, Facts, RelationSchema};

fn main() {
    // `--threads N` configures the cqa-exec pool (1 = sequential); all
    // other arguments select experiments by name.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args: Vec<String> = Vec::new();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            let n: usize = it
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .expect("--threads expects a positive number");
            cqa_exec::set_threads(n);
        } else {
            args.push(a.to_uppercase());
        }
    }
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    println!("inconsistent-db experiment harness");
    println!("==================================");
    println!("threads: {}\n", cqa_exec::ExecConfig::current());

    if want("E") || args.is_empty() {
        e_series();
    }
    if want("F1") {
        f1_repair_explosion();
    }
    if want("F2") {
        f2_rewriting_vs_enumeration();
    }
    if want("F3") {
        f3_s_vs_c_repairs();
    }
    if want("F4") {
        f4_asp_overhead();
    }
    if want("F5") {
        f5_responsibility_scaling();
    }
    if want("F6") {
        f6_aggregate_cqa();
    }
    if want("F7") {
        f7_attr_vs_tuple();
    }
    if want("F8") {
        f8_inconsistency_measure();
    }
    if want("F9") {
        f9_grounding();
    }
    if want("F10") {
        f10_integration();
    }
    if want("F11") {
        f11_conp_query();
    }
    if want("F13") {
        f13_parallel_speedup();
    }
    if want("F14") {
        f14_views();
    }
    if want("F15") {
        f15_budgets();
    }
    if want("F16") {
        f16_components();
    }
    if want("F17") {
        f17_audit();
    }
    if want("F18") {
        f18_columnar_storage();
    }
    if want("F19") {
        f19_incremental_maintenance();
    }
    if want("F20") {
        f20_server();
    }
    if want("F21") {
        f21_plan_cache();
    }
}

/// E-series: one line per paper example, checked programmatically.
/// One E-series check: label + the closure asserting the paper's output.
type Check = (&'static str, Box<dyn Fn() -> bool>);

fn e_series() {
    println!("E-series: exact reproduction of the paper's examples");
    println!("----------------------------------------------------");
    let checks: Vec<Check> = vec![
        (
            "E1  Ex 2.1/2.2  residue rewriting -> {I1, I2}",
            Box::new(e1),
        ),
        (
            "E2  Ex 3.1/3.2  two S-repairs; Cons(Q) = {I1, I2}",
            Box::new(e2),
        ),
        ("E3  Ex 3.3/3.4  key repairs + SQL rewriting", Box::new(e3)),
        (
            "E4  Ex 3.5      3 stable models = 3 S-repairs",
            Box::new(e4),
        ),
        (
            "E5  Ex 4.1      Fig. 1 hypergraph; 4 S-, 3 C-repairs",
            Box::new(e5),
        ),
        (
            "E6  Ex 4.2      weak constraints -> C-repair {ι6}",
            Box::new(e6),
        ),
        ("E7  Ex 4.3      delete vs insert(I3, NULL)", Box::new(e7)),
        (
            "E8  Ex 4.4      attr repairs {ι6[1]}, {ι1[2], ι3[2]}",
            Box::new(e8),
        ),
        ("E9  Ex 5.1/5.2  GAV/LAV + global CQA", Box::new(e9)),
        (
            "E10 §6          CFD violated, FDs hold, cleaner fixes",
            Box::new(e10),
        ),
        (
            "E11 Ex 7.1      causes ρ: ι6=1, ι1=ι3=ι4=1/2",
            Box::new(e11),
        ),
        (
            "E12 Ex 7.2      causes via repair programs agree",
            Box::new(e12),
        ),
        (
            "E13 Ex 7.3      attribute causes ι6[1], ι1[2], ι3[2]",
            Box::new(e13),
        ),
        (
            "E14 Ex 7.4      responsibilities under ψ: 1, 0, 1/3",
            Box::new(e14),
        ),
    ];
    for (label, check) in checks {
        let (ok, secs) = timed(check);
        println!(
            "  [{}] {label}   ({:.1} ms)",
            if ok { "ok" } else { "FAIL" },
            secs * 1e3
        );
    }
    println!();
}

fn supply_db() -> (Database, ConstraintSet) {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new(
        "Supply",
        ["Company", "Receiver", "Item"],
    ))
    .unwrap();
    db.create_relation(RelationSchema::new("Articles", ["Item"]))
        .unwrap();
    db.insert("Supply", tuple!["C1", "R1", "I1"]).unwrap();
    db.insert("Supply", tuple!["C2", "R2", "I2"]).unwrap();
    db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
    db.insert("Articles", tuple!["I1"]).unwrap();
    db.insert("Articles", tuple!["I2"]).unwrap();
    let sigma = ConstraintSet::from_iter([cqa_constraints::Tgd::parse(
        "ID",
        "Articles(z) :- Supply(x, y, z)",
    )
    .unwrap()]);
    (db, sigma)
}

fn rs_db() -> (Database, ConstraintSet) {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("R", ["A", "B"]))
        .unwrap();
    db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
    db.insert("R", tuple!["a4", "a3"]).unwrap();
    db.insert("R", tuple!["a2", "a1"]).unwrap();
    db.insert("R", tuple!["a3", "a3"]).unwrap();
    db.insert("S", tuple!["a4"]).unwrap();
    db.insert("S", tuple!["a2"]).unwrap();
    db.insert("S", tuple!["a3"]).unwrap();
    let sigma =
        ConstraintSet::from_iter(
            [DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap()],
        );
    (db, sigma)
}

fn employee_db() -> (Database, ConstraintSet) {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
        .unwrap();
    db.insert("Employee", tuple!["page", 5000]).unwrap();
    db.insert("Employee", tuple!["page", 8000]).unwrap();
    db.insert("Employee", tuple!["smith", 3000]).unwrap();
    db.insert("Employee", tuple!["stowe", 7000]).unwrap();
    let sigma = ConstraintSet::from_iter([KeyConstraint::new("Employee", ["Name"])]);
    (db, sigma)
}

fn e1() -> bool {
    let (db, sigma) = supply_db();
    let q = parse_query("Q(z) :- Supply(x, y, z)").unwrap();
    let rr = cqa_core::residue_rewrite(&q, &sigma).unwrap();
    cqa_query::eval_fo(&db, &rr.query, NullSemantics::Structural)
        == [tuple!["I1"], tuple!["I2"]].into()
}

fn e2() -> bool {
    let (db, sigma) = supply_db();
    let repairs = cqa_core::s_repairs(&db, &sigma).unwrap();
    let q = UnionQuery::single(parse_query("Q(z) :- Supply(x, y, z)").unwrap());
    let cons = cqa_core::consistent_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap();
    repairs.len() == 2 && cons == [tuple!["I1"], tuple!["I2"]].into()
}

fn e3() -> bool {
    let (db, sigma) = employee_db();
    let q1 = UnionQuery::single(parse_query("Q(x, y) :- Employee(x, y)").unwrap());
    let cons = cqa_core::consistent_answers(&db, &sigma, &q1, &RepairClass::Subset).unwrap();
    let fo =
        cqa_query::parse_fo("x, y : Employee(x, y) & !exists z (Employee(x, z) & z != y)").unwrap();
    cons == cqa_query::eval_fo(&db, &fo, NullSemantics::Structural)
        && cons == [tuple!["smith", 3000], tuple!["stowe", 7000]].into()
}

fn e4() -> bool {
    let (db, sigma) = rs_db();
    let rp = cqa_asp::RepairProgram::build(&db, &sigma).unwrap();
    rp.s_repair_models().unwrap().len() == 3
}

fn e5() -> bool {
    let mut db = Database::new();
    for r in ["A", "B", "C", "D", "E"] {
        db.create_relation(RelationSchema::new(r, ["X"])).unwrap();
        db.insert(r, tuple!["a"]).unwrap();
    }
    let sigma = ConstraintSet::from_iter([
        DenialConstraint::parse("d1", "B(x), E(x)").unwrap(),
        DenialConstraint::parse("d2", "B(x), C(x), D(x)").unwrap(),
        DenialConstraint::parse("d3", "A(x), C(x)").unwrap(),
    ]);
    let g = sigma.conflict_hypergraph(&db).unwrap();
    g.maximal_independent_sets(None).len() == 4
        && cqa_core::c_repairs(&db, &sigma).unwrap().len() == 3
}

fn e6() -> bool {
    let (db, sigma) = rs_db();
    let mut rp = cqa_asp::RepairProgram::build(&db, &sigma).unwrap();
    rp.add_c_repair_weak_constraints();
    let models = rp.c_repair_models().unwrap();
    models.len() == 1 && models[0].deleted == [cqa_relation::Tid(6)].into()
}

fn e7() -> bool {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("Supply", ["C", "R", "I"]))
        .unwrap();
    db.create_relation(RelationSchema::new("Articles", ["I", "Cost"]))
        .unwrap();
    db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
    let sigma = ConstraintSet::from_iter([cqa_constraints::Tgd::parse(
        "IDp",
        "Articles(z, v) :- Supply(x, y, z)",
    )
    .unwrap()]);
    let repairs = cqa_core::null_tuple_repairs(&db, &sigma).unwrap();
    repairs.len() == 2
        && repairs.iter().any(|r| {
            r.repair
                .inserted
                .first()
                .is_some_and(|(_, t)| t.at(1).is_null())
        })
}

fn e8() -> bool {
    let (db, sigma) = rs_db();
    let repairs = cqa_core::attribute_repairs(&db, &sigma).unwrap();
    use cqa_core::attr_repair::CellChange;
    use cqa_relation::Tid;
    let sets: Vec<_> = repairs.iter().map(|r| r.changes.clone()).collect();
    sets.contains(
        &[CellChange {
            tid: Tid(6),
            position: 0,
        }]
        .into(),
    ) && sets.contains(
        &[
            CellChange {
                tid: Tid(1),
                position: 1,
            },
            CellChange {
                tid: Tid(3),
                position: 1,
            },
        ]
        .into(),
    )
}

fn e9() -> bool {
    let sources = university_sources(2, 1, 7);
    let views = parse_program(
        "Stds(x, y, 'cu', z) :- CUstds(x, y), SpecCU(x, z).\n\
         Stds(x, y, 'ou', z) :- OUstds(x, y), SpecOU(x, z).",
    )
    .unwrap();
    let system = cqa_integration::GlobalSystem::new(
        cqa_integration::GavMediator::new(sources, views),
        vec![RelationSchema::new(
            "Stds",
            ["Number", "Name", "Univ", "Field"],
        )],
        ConstraintSet::from_iter([FunctionalDependency::new("Stds", ["Number"], ["Name"])]),
    );
    !system.is_globally_consistent().unwrap()
        && !system
            .consistent_answers(
                &UnionQuery::single(parse_query("Q(x, y) :- Stds(x, y, u, z)").unwrap()),
                &RepairClass::Subset,
            )
            .unwrap()
            .is_empty()
}

fn e10() -> bool {
    let db = cqa_bench::cfd_customers(10, 0.9, 11);
    let cfd = cqa_constraints::ConditionalFd::new(
        "Cust",
        vec![("CC", Some(cqa_relation::Value::int(44))), ("Zip", None)],
        "Street",
        None,
    );
    let spec = cqa_cleaning::CleaningSpec::new().with_cfd(cfd);
    let result = cqa_cleaning::clean(&db, &spec, &cqa_cleaning::CostModel::uniform()).unwrap();
    spec.is_clean(&result.db).unwrap()
}

fn e11() -> bool {
    let (db, _) = rs_db();
    let q = UnionQuery::single(parse_query("Q() :- S(x), R(x, y), S(y)").unwrap());
    let causes = cqa_causality::actual_causes(&db, &q);
    causes.len() == 4
        && causes
            .iter()
            .find(|c| c.tid == cqa_relation::Tid(6))
            .is_some_and(|c| c.responsibility == 1.0)
}

fn e12() -> bool {
    let (db, _) = rs_db();
    let q = UnionQuery::single(parse_query("Q() :- S(x), R(x, y), S(y)").unwrap());
    let a = cqa_causality::causes_via_asp(&db, &q).unwrap();
    let d = cqa_causality::actual_causes(&db, &q);
    a.len() == d.len()
}

fn e13() -> bool {
    let (db, _) = rs_db();
    let q = UnionQuery::single(parse_query("Q() :- S(x), R(x, y), S(y)").unwrap());
    let causes = cqa_causality::attribute_causes(&db, &q).unwrap();
    causes
        .iter()
        .any(|c| c.cell.tid == cqa_relation::Tid(6) && c.counterfactual)
}

fn e14() -> bool {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("Dep", ["DName", "TStaff"]))
        .unwrap();
    db.create_relation(RelationSchema::new("Course", ["CName", "TStaff", "DName"]))
        .unwrap();
    db.insert("Dep", tuple!["Computing", "John"]).unwrap();
    db.insert("Dep", tuple!["Philosophy", "Patrick"]).unwrap();
    db.insert("Dep", tuple!["Math", "Kevin"]).unwrap();
    db.insert("Course", tuple!["COM08", "John", "Computing"])
        .unwrap();
    db.insert("Course", tuple!["Math01", "Kevin", "Math"])
        .unwrap();
    db.insert("Course", tuple!["HIST02", "Patrick", "Philosophy"])
        .unwrap();
    db.insert("Course", tuple!["Math08", "Eli", "Math"])
        .unwrap();
    db.insert("Course", tuple!["COM01", "John", "Computing"])
        .unwrap();
    let psi = ConstraintSet::from_iter([cqa_constraints::Tgd::parse(
        "psi",
        "Course(u, y, x) :- Dep(x, y)",
    )
    .unwrap()]);
    let q_c = UnionQuery::single(parse_query("Q() :- Course(z, 'John', y)").unwrap());
    let causes = cqa_causality::causes_under_ics(&db, &psi, &q_c, None).unwrap();
    causes.len() == 2
        && causes
            .iter()
            .all(|c| (c.responsibility - 1.0 / 3.0).abs() < 1e-12)
}

// ---------------------------------------------------------------- F-series

fn f1_repair_explosion() {
    println!("F1: exponentially many repairs (§3.1)");
    println!("--------------------------------------");
    println!("  conflicts |   repairs | enumerate (ms)");
    for k in [2usize, 4, 6, 8, 10, 12] {
        let (db, sigma) = key_conflict_instance(50, k, 2, 1);
        let (repairs, secs) = timed(|| cqa_core::s_repairs(&db, &sigma).unwrap());
        println!("  {k:>9} | {:>9} | {:>12.2}", repairs.len(), secs * 1e3);
    }
    println!();
}

fn f2_rewriting_vs_enumeration() {
    println!("F2: FO rewriting vs repair enumeration (§3.2)");
    println!("---------------------------------------------");
    println!("  conflicts | rewriting (ms) | enumeration (ms) | equal");
    let q = parse_query("Q(k, v) :- T(k, v)").unwrap();
    let keys: cqa_core::rewrite::keys::KeyPositions = [("T".to_string(), vec![0usize])].into();
    for k in [2usize, 4, 6, 8, 10, 12] {
        let (db, sigma) = key_conflict_instance(500, k, 2, 2);
        let fo = cqa_core::rewrite_key_query(&q, &keys).unwrap();
        let (via_rw, t_rw) = timed(|| cqa_query::eval_fo(&db, &fo, NullSemantics::Structural));
        let (via_rep, t_rep) = timed(|| {
            cqa_core::consistent_answers(
                &db,
                &sigma,
                &UnionQuery::single(q.clone()),
                &RepairClass::Subset,
            )
            .unwrap()
        });
        println!(
            "  {k:>9} | {:>14.2} | {:>16.2} | {}",
            t_rw * 1e3,
            t_rep * 1e3,
            via_rw == via_rep
        );
    }
    println!();
}

fn f3_s_vs_c_repairs() {
    println!("F3: one S-repair (greedy) vs C-repair (B&B) vs full enumeration (§4.1)");
    println!("-----------------------------------------------------------------------");
    println!("  |R| x |S| | edges | greedy-S (ms) | min-C (ms) | enumerate-all (ms) | #S");
    for (n_r, n_s, dom) in [(15, 8, 6), (25, 12, 8), (40, 16, 10)] {
        let (db, sigma) = dc_instance(n_r, n_s, dom, 3);
        let g = sigma.conflict_hypergraph(&db).unwrap();
        let (_, t_greedy) = timed(|| g.greedy_hitting_set());
        let (_, t_min) = timed(|| g.minimum_hitting_set_size());
        let (all, t_all) = timed(|| g.minimal_hitting_sets(None));
        println!(
            "  {:>4} x {:<3} | {:>5} | {:>13.3} | {:>10.3} | {:>18.2} | {}",
            n_r,
            n_s,
            g.edge_count(),
            t_greedy * 1e3,
            t_min * 1e3,
            t_all * 1e3,
            all.len()
        );
    }
    println!();
}

fn f4_asp_overhead() {
    println!("F4: repair programs vs direct engine (§3.3)");
    println!("-------------------------------------------");
    println!("  |R| x |S| | direct (ms) | ASP ground+solve (ms) | models == repairs");
    for (n_r, n_s, dom) in [(6, 4, 4), (10, 6, 5), (14, 8, 6)] {
        let (db, sigma) = dc_instance(n_r, n_s, dom, 4);
        let (direct, t_direct) = timed(|| cqa_core::s_repairs(&db, &sigma).unwrap());
        let (asp, t_asp) = timed(|| {
            let rp = cqa_asp::RepairProgram::build(&db, &sigma).unwrap();
            rp.s_repair_models().unwrap()
        });
        println!(
            "  {:>4} x {:<3} | {:>11.2} | {:>21.2} | {}",
            n_r,
            n_s,
            t_direct * 1e3,
            t_asp * 1e3,
            direct.len() == asp.len()
        );
        let rp = cqa_asp::RepairProgram::build(&db, &sigma).unwrap();
        let g = rp.ground().unwrap();
        println!(
            "             analysis: {}",
            cqa_asp::analyze_ground(&g).classification_line()
        );
    }
    println!();
}

fn f5_responsibility_scaling() {
    println!("F5: responsibility computation (§7)");
    println!("-----------------------------------");
    println!("  width | hub ρ | spoke ρ | direct (ms) | via repairs (ms)");
    for width in [2usize, 4, 8, 12, 16] {
        let db = star_instance(width);
        let q = UnionQuery::single(parse_query("Q() :- Hub(x), Spoke(x, y)").unwrap());
        let (direct, t_direct) = timed(|| cqa_causality::actual_causes(&db, &q));
        let (via, t_via) = timed(|| cqa_causality::causes_via_repairs(&db, &q).unwrap());
        let hub = direct
            .iter()
            .find(|c| c.tid == cqa_relation::Tid(1))
            .map(|c| c.responsibility)
            .unwrap_or(0.0);
        let spoke = direct
            .iter()
            .find(|c| c.tid == cqa_relation::Tid(2))
            .map(|c| c.responsibility)
            .unwrap_or(0.0);
        assert_eq!(direct.len(), via.len());
        println!(
            "  {width:>5} | {hub:>5.2} | {spoke:>7.3} | {:>11.2} | {:>16.2}",
            t_direct * 1e3,
            t_via * 1e3
        );
    }
    println!();
}

fn f6_aggregate_cqa() {
    println!("F6: aggregate CQA with range semantics (§3.2, [5])");
    println!("--------------------------------------------------");
    println!("  conflicts | glb SUM | lub SUM | width | time (ms)");
    for k in [1usize, 2, 4, 6, 8] {
        let (db, sigma) = key_conflict_instance(20, k, 2, 6);
        let body = parse_query("Q() :- T(k, v)").unwrap();
        let v = body.vars.lookup("v").unwrap();
        let agg = AggregateQuery {
            body,
            group_by: vec![],
            target: Some(v),
            op: AggOp::Sum,
        };
        let ((lo, hi), secs) = timed(|| {
            cqa_core::consistent_aggregate_range(&db, &sigma, &agg, &RepairClass::Subset)
                .unwrap()
                .unwrap()
        });
        let (lo_f, hi_f) = (lo.as_f64().unwrap(), hi.as_f64().unwrap());
        println!(
            "  {k:>9} | {lo_f:>7.0} | {hi_f:>7.0} | {:>5.0} | {:>9.2}",
            hi_f - lo_f,
            secs * 1e3
        );
    }
    println!();
}

fn f7_attr_vs_tuple() {
    println!("F7: attribute repairs change less than tuple repairs (§4.3)");
    println!("------------------------------------------------------------");
    println!("  |R| x |S| | avg tuples deleted (S) | avg cells nulled (attr)");
    for (n_r, n_s, dom) in [(8, 5, 4), (12, 6, 5), (16, 8, 6)] {
        let (db, sigma) = dc_instance(n_r, n_s, dom, 8);
        let s = cqa_core::s_repairs(&db, &sigma).unwrap();
        let a = cqa_core::attribute_repairs(&db, &sigma).unwrap();
        let avg_s = s.iter().map(|r| r.delta_size()).sum::<usize>() as f64 / s.len() as f64;
        let avg_a = a.iter().map(|r| r.changes.len()).sum::<usize>() as f64 / a.len() as f64;
        println!("  {n_r:>4} x {n_s:<3} | {avg_s:>22.2} | {avg_a:>23.2}");
    }
    println!();
}

fn f8_inconsistency_measure() {
    println!("F8: repair-based inconsistency degree (§8, [16, 17])");
    println!("-----------------------------------------------------");
    println!("  conflict pairs (of 20 groups) | degree | core gap");
    for dirty in [0usize, 2, 5, 10, 15, 20] {
        let (db, sigma) = key_conflict_instance(20 - dirty, dirty, 2, 9);
        let deg = cqa_core::inconsistency_degree(&db, &sigma).unwrap();
        let gap = cqa_core::core_gap(&db, &sigma).unwrap();
        println!("  {dirty:>29} | {deg:>6.3} | {gap:>8.3}");
    }
    println!();
}

fn f9_grounding() {
    println!("F9: grounding size and stable-model counts (§3.3)");
    println!("--------------------------------------------------");
    println!("  |R| x |S| | ground atoms | ground rules | models | ground (ms)");
    for (n_r, n_s, dom) in [(6, 4, 4), (12, 8, 6), (20, 12, 8), (30, 16, 10)] {
        let (db, sigma) = dc_instance(n_r, n_s, dom, 10);
        let rp = cqa_asp::RepairProgram::build(&db, &sigma).unwrap();
        let (g, t_ground) = timed(|| rp.ground().unwrap());
        let models = cqa_asp::stable_models_with_limit(&g, Some(2000));
        println!(
            "  {:>4} x {:<3} | {:>12} | {:>12} | {:>6} | {:>10.2}",
            n_r,
            n_s,
            g.atom_count(),
            g.rules.len(),
            models.len(),
            t_ground * 1e3
        );
        println!(
            "             analysis: {}",
            cqa_asp::analyze_ground(&g).classification_line()
        );
    }
    println!();
}

fn f10_integration() {
    println!("F10: GAV vs LAV mediation (§5)");
    println!("------------------------------");
    println!("  students/univ | GAV answer (ms) | LAV answer (ms) | GAV rows");
    for n in [50usize, 100, 200, 400] {
        let sources = university_sources(n, n / 10, 11);
        let views = parse_program(
            "Stds(x, y, 'cu', z) :- CUstds(x, y), SpecCU(x, z).\n\
             Stds(x, y, 'ou', z) :- OUstds(x, y), SpecOU(x, z).",
        )
        .unwrap();
        let gav = cqa_integration::GavMediator::new(sources.clone(), views);
        let q = UnionQuery::single(parse_query("Q(y) :- Stds(x, y, u, z)").unwrap());
        let (gav_ans, t_gav) = timed(|| gav.answer(&q).unwrap());
        let lav = cqa_integration::LavMediator::new(
            sources,
            vec![RelationSchema::new(
                "Stds",
                ["Number", "Name", "Univ", "Field"],
            )],
            vec![
                cqa_integration::LavMapping::parse("CUstds(x, y) :- Stds(x, y, 'cu', z)").unwrap(),
                cqa_integration::LavMapping::parse("OUstds(x, y) :- Stds(x, y, 'ou', z)").unwrap(),
            ],
        );
        let (_lav_ans, t_lav) = timed(|| lav.certain_answers(&q).unwrap());
        println!(
            "  {n:>13} | {:>15.2} | {:>15.2} | {:>8}",
            t_gav * 1e3,
            t_lav * 1e3,
            gav_ans.len()
        );
    }
    println!();
}

fn f13_parallel_speedup() {
    use cqa_exec::with_threads;
    println!("F13: parallel speedup — sequential vs 4 worker threads (cqa-exec)");
    println!("------------------------------------------------------------------");
    println!("  workload                       | seq (ms) | 4 thr (ms) | speedup | equal");

    // F1-shaped: certain answers by enumeration over 2^13 repairs.
    let (db, sigma) = key_conflict_instance(60, 13, 2, 1);
    let instances: Vec<cqa_relation::Database> = cqa_core::s_repairs(&db, &sigma)
        .unwrap()
        .into_iter()
        .map(|r| r.into_db())
        .collect();
    let q = UnionQuery::single(parse_query("Q(k, v) :- T(k, v)").unwrap());
    let (seq, t_seq) = timed(|| with_threads(1, || cqa_core::certain_over(&instances, &q)));
    let (par, t_par) = timed(|| with_threads(4, || cqa_core::certain_over(&instances, &q)));
    row("certain_over, 8192 repairs", t_seq, t_par, seq == par);

    // F3-shaped: minimal hitting sets of a dense conflict hypergraph.
    let (db, sigma) = dc_instance(40, 16, 10, 3);
    let g = sigma.conflict_hypergraph(&db).unwrap();
    let (seq, t_seq) = timed(|| with_threads(1, || g.minimal_hitting_sets(None)));
    let (par, t_par) = timed(|| with_threads(4, || g.minimal_hitting_sets(None)));
    row("minimal_hitting_sets, 40x16", t_seq, t_par, seq == par);
    let (seq, t_seq) = timed(|| with_threads(1, || g.minimum_hitting_set()));
    let (par, t_par) = timed(|| with_threads(4, || g.minimum_hitting_set()));
    row("minimum_hitting_set, 40x16", t_seq, t_par, seq == par);

    // F5-shaped: per-candidate responsibility over a wide star.
    let db = star_instance(16);
    let q = UnionQuery::single(parse_query("Q() :- Hub(x), Spoke(x, y)").unwrap());
    let (seq, t_seq) = timed(|| with_threads(1, || cqa_causality::actual_causes(&db, &q)));
    let (par, t_par) = timed(|| with_threads(4, || cqa_causality::actual_causes(&db, &q)));
    row("actual_causes, width 16", t_seq, t_par, seq == par);
    println!();

    fn row(label: &str, t_seq: f64, t_par: f64, equal: bool) {
        println!(
            "  {label:<30} | {:>8.2} | {:>10.2} | {:>6.2}x | {equal}",
            t_seq * 1e3,
            t_par * 1e3,
            t_seq / t_par
        );
    }
}

fn f14_views() {
    println!("F14: zero-clone repair views vs materialized enumeration");
    println!("---------------------------------------------------------");
    println!("  workload                          | materialized (ms) | views (ms) | speedup | view = materialized");

    fn row(label: &str, t_mat: f64, t_view: f64, equal: bool) {
        println!(
            "  {label:<33} | {:>17.2} | {:>10.2} | {:>6.2}x | {equal}",
            t_mat * 1e3,
            t_view * 1e3,
            t_mat / t_view
        );
    }

    // F1-shaped: enumerate 2^12 repairs of a 300-clean-tuple instance. The
    // seed materialized every repair inside `from_delta`; the view path
    // returns lazy deltas over one shared base.
    let (db, sigma) = key_conflict_instance(300, 12, 2, 1);
    let (mat, t_mat) = timed(|| {
        cqa_core::s_repairs(&db, &sigma)
            .unwrap()
            .into_iter()
            .map(|r| r.into_db())
            .collect::<Vec<Database>>()
    });
    let (lazy, t_view) = timed(|| cqa_core::s_repairs(&db, &sigma).unwrap());
    let equal = mat.len() == lazy.len()
        && mat
            .iter()
            .zip(&lazy)
            .all(|(m, r)| r.view().snapshot().same_content(m));
    row("F1 enumerate, 12 conf, 300 clean", t_mat, t_view, equal);

    // F2-shaped: certain answers over the same class — per-repair joins
    // probe the base's shared column indexes through the views.
    let q = UnionQuery::single(parse_query("Q(k, v) :- T(k, v)").unwrap());
    let (ans_mat, t_mat) = timed(|| {
        let dbs: Vec<Database> = cqa_core::s_repairs(&db, &sigma)
            .unwrap()
            .into_iter()
            .map(|r| r.into_db())
            .collect();
        cqa_core::certain_over(&dbs, &q)
    });
    let (ans_view, t_view) =
        timed(|| cqa_core::consistent_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap());
    row(
        "F2 CQA, 12 conf, 300 clean",
        t_mat,
        t_view,
        ans_mat == ans_view,
    );

    // F3-shaped: denial-constraint instance; CQA over the hitting-set
    // repairs of a dense conflict hypergraph.
    let (db, sigma) = dc_instance(40, 16, 10, 3);
    let q = UnionQuery::single(parse_query("Q(x, y) :- R(x, y), S(y)").unwrap());
    let (ans_mat, t_mat) = timed(|| {
        let dbs: Vec<Database> = cqa_core::s_repairs(&db, &sigma)
            .unwrap()
            .into_iter()
            .map(|r| r.into_db())
            .collect();
        cqa_core::certain_over(&dbs, &q)
    });
    let (ans_view, t_view) =
        timed(|| cqa_core::consistent_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap());
    row(
        "F3 DC CQA, 40x16 dom 10",
        t_mat,
        t_view,
        ans_mat == ans_view,
    );
    println!();
}

fn f11_conp_query() {
    use cqa_core::rewrite::keys::{rewrite_key_query, KeyPositions, KeyRewriteError};
    println!("F11: coNP-complete CQA — the attack-cyclic query (§3.2, [48])");
    println!("--------------------------------------------------------------");
    let q = parse_query("Q() :- R(x, y), S(y, x)").unwrap();
    let keys: KeyPositions = [
        ("R".to_string(), vec![0usize]),
        ("S".to_string(), vec![0usize]),
    ]
    .into();
    match rewrite_key_query(&q, &keys) {
        Err(KeyRewriteError::CyclicAttackGraph { .. }) => {
            println!("  rewriting: refused (attack graph cyclic) — as the dichotomy demands")
        }
        other => println!("  UNEXPECTED: {other:?}"),
    }
    println!("  conflicts | repairs | enumeration CQA (ms)");
    for k in [2usize, 4, 6, 8] {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["A", "B"]))
            .unwrap();
        for i in 0..k as i64 {
            db.insert("R", tuple![i, i]).unwrap();
            db.insert("R", tuple![i, i + 1]).unwrap();
            db.insert("S", tuple![i, i]).unwrap();
            db.insert("S", tuple![i + 1, 1_000 + i]).unwrap();
        }
        let sigma = ConstraintSet::from_iter([
            KeyConstraint::new("R", ["A"]),
            KeyConstraint::new("S", ["A"]),
        ]);
        let n_repairs = cqa_core::s_repairs(&db, &sigma).unwrap().len();
        let (certain, secs) = timed(|| {
            cqa_core::certainly_true(
                &db,
                &sigma,
                &UnionQuery::single(q.clone()),
                &RepairClass::Subset,
            )
            .unwrap()
        });
        println!(
            "  {k:>9} | {n_repairs:>7} | {:>19.2}  (certain: {certain})",
            secs * 1e3
        );
    }
    println!();
}

fn f15_budgets() {
    use cqa_exec::{with_threads, Budget, Limits, Outcome};
    println!("F15: graceful degradation under execution budgets (anytime CQA)");
    println!("----------------------------------------------------------------");
    println!("  workload: F11 attack-cyclic query, k = 12 key-conflict pairs");
    println!("  (rewriting refused; CQA must fold over 2^12 = 4096 repairs)");

    // The F11 hard instance at k = 12 conflicts: every conflict pair lives
    // in R (S stays consistent), so the repair family is exactly 2^k.
    // Three tiers of answers separate the approximation levels: 3 clean
    // rows (provable from the consistent core alone), 6 conflict pairs
    // whose *both* branches witness the query (certain, but only the full
    // fold proves it), and 6 pairs where one branch kills the answer (not
    // certain). Exact = 9 answers; the truncated core fallback = 3.
    let k = 12usize;
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("R", ["A", "B"]))
        .unwrap();
    db.create_relation(RelationSchema::new("S", ["A", "B"]))
        .unwrap();
    for i in 0..k as i64 {
        db.insert("R", tuple![i, i]).unwrap();
        db.insert("S", tuple![i, i]).unwrap();
        if i < 6 {
            db.insert("R", tuple![i, i + 100]).unwrap();
            db.insert("S", tuple![i + 100, i]).unwrap();
        } else {
            db.insert("R", tuple![i, i + 200]).unwrap();
        }
    }
    for i in 300..303i64 {
        db.insert("R", tuple![i, i]).unwrap();
        db.insert("S", tuple![i, i]).unwrap();
    }
    let sigma = ConstraintSet::from_iter([
        KeyConstraint::new("R", ["A"]),
        KeyConstraint::new("S", ["A"]),
    ]);
    let q = UnionQuery::single(parse_query("Q(x) :- R(x, y), S(y, x)").unwrap());
    let class = RepairClass::Subset;

    println!("  budget            | outcome            | answers | time (ms)");
    let run = |budget: &Budget| {
        timed(|| cqa_core::consistent_answers_budgeted(&db, &sigma, &q, &class, budget).unwrap())
    };
    let describe =
        |o: &Outcome<std::collections::BTreeSet<cqa_relation::Tuple>>| match o.truncation() {
            None => "exact".to_string(),
            Some((reason, _)) => format!("truncated ({reason})"),
        };
    let (exact, t) = run(&Budget::unlimited());
    println!(
        "  {:<17} | {:<18} | {:>7} | {:>9.2}",
        "unlimited",
        describe(&exact),
        exact.value().len(),
        t * 1e3
    );
    for steps in [100_000u64, 10_000, 1_000, 100] {
        let (got, t) = run(&Budget::steps(steps));
        // Soundness: every truncated answer is a true certain answer.
        assert!(got.value().is_subset(exact.value()), "unsound truncation");
        println!(
            "  {:<17} | {:<18} | {:>7} | {:>9.2}",
            format!("steps = {steps}"),
            describe(&got),
            got.value().len(),
            t * 1e3
        );
    }
    let (got, t) = run(&Budget::new(Limits {
        deadline_ms: Some(50),
        ..Limits::default()
    }));
    assert!(got.value().is_subset(exact.value()), "unsound truncation");
    println!(
        "  {:<17} | {:<18} | {:>7} | {:>9.2}",
        "deadline = 50 ms",
        describe(&got),
        got.value().len(),
        t * 1e3
    );

    // Deterministic truncation: the same logical budget truncates at the
    // same point at 1, 2 and 8 threads — byte-identical partial results.
    let at = |threads: usize, steps: u64| {
        with_threads(threads, || {
            let budget = Budget::steps(steps);
            let o =
                cqa_core::consistent_answers_budgeted(&db, &sigma, &q, &class, &budget).unwrap();
            (o.truncation(), o.into_value())
        })
    };
    let deterministic = [1_000u64, 10_000]
        .iter()
        .all(|&s| at(1, s) == at(2, s) && at(1, s) == at(8, s));
    println!("  deterministic truncation across 1/2/8 threads: {deterministic}");
    println!();
}

fn f16_components() {
    use cqa_core::consistent_answers_factored_budgeted;
    use cqa_exec::{with_threads, Budget};
    println!("F16: conflict-component factorization — replicated F11-style workload");
    println!("----------------------------------------------------------------------");
    println!("  m independent key groups of 4 (plus 20 clean rows): the conflict");
    println!("  graph has m components, the repair family is the 4^m cross-product.");
    println!("  The monolithic fold (sequential path, forced by a step budget)");
    println!("  touches every product repair; the factored fold touches 4m views.");
    println!("  m | components | product | factored | monolithic (ms) | factored (ms) | speedup | equal | 1/2/8-thread identical");
    let q = UnionQuery::single(parse_query("Q(k, v) :- T(k, v)").unwrap());
    let class = RepairClass::Subset;
    for m in 1usize..=6 {
        let (db, sigma) = key_conflict_instance(20, m, 4, 1);
        // Monolithic oracle: a (generous) step budget forces the legacy
        // sequential enumeration-and-fold over the full cross-product.
        let (mono, t_mono) = timed(|| {
            cqa_core::consistent_answers_budgeted(
                &db,
                &sigma,
                &q,
                &class,
                &Budget::steps(1_000_000_000),
            )
            .unwrap()
        });
        assert!(mono.truncation().is_none(), "monolithic oracle truncated");
        let (fact, t_fact) = timed(|| {
            consistent_answers_factored_budgeted(&db, &sigma, &q, &class, &Budget::unlimited())
                .unwrap()
                .expect("key constraints are denial-class")
        });
        assert!(fact.truncation().is_none());
        let (answers, info) = fact.into_value();
        let equal = &answers == mono.value();
        let identical = [1usize, 2, 8].iter().all(|&t| {
            let got = with_threads(t, || {
                consistent_answers_factored_budgeted(&db, &sigma, &q, &class, &Budget::unlimited())
                    .unwrap()
                    .expect("key constraints are denial-class")
                    .into_value()
                    .0
            });
            got == answers
        });
        println!(
            "  {m} | {:>10} | {:>7} | {:>8} | {:>15.2} | {:>13.2} | {:>6.2}x | {equal} | {identical}",
            info.components,
            info.product_repairs
                .map_or_else(|| "overflow".to_string(), |n| n.to_string()),
            info.factored_repairs,
            t_mono * 1e3,
            t_fact * 1e3,
            t_mono / t_fact,
        );
    }
    println!();
}

fn f17_audit() {
    use std::path::Path;
    println!("F17: workspace audit & schedule perturbation (the determinism contract, enforced)");
    println!("---------------------------------------------------------------------------------");

    // Static half: the L-series audit over the workspace's own sources.
    // CI runs this as `repairctl audit --deny`; the harness line records
    // that the full pass stays well under its 1-second target.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (report, t) =
        timed(|| cqa_audit::audit_workspace(&root).expect("workspace sources are readable"));
    let baseline_text = std::fs::read_to_string(root.join("audit.baseline")).unwrap_or_default();
    let baseline = cqa_audit::Baseline::parse(&baseline_text).expect("audit.baseline parses");
    let outcome = baseline.apply(report.findings.clone());
    println!(
        "  static half (L001-L006): {} files, {} KiB lexed",
        report.files,
        report.bytes / 1024
    );
    println!(
        "  findings: {} active, {} suppressed by baseline, {} stale entries",
        outcome.active.len(),
        outcome.suppressed,
        outcome.stale.len()
    );
    println!(
        "  audit wall time: {:.1} ms; within 1 s target: {}",
        t * 1e3,
        t < 1.0
    );

    // Dynamic half: seeded schedule perturbation against two parallel hot
    // paths. Compiled only under the schedule-fuzz feature so production
    // builds carry no hooks; the full four-path suite is
    // tests/schedule_fuzz.rs at the workspace root.
    f17_perturbation();
    println!();
}

#[cfg(feature = "schedule-fuzz")]
fn f17_perturbation() {
    use cqa_exec::{with_schedule_seed, with_threads};
    use cqa_relation::Tid;
    use std::collections::BTreeSet;

    let nodes: BTreeSet<Tid> = (1..=10u64).map(Tid).collect();
    let edges: Vec<BTreeSet<Tid>> = [
        [1u64, 2, 3],
        [3, 4, 5],
        [5, 6, 7],
        [7, 8, 9],
        [9, 10, 1],
        [2, 5, 8],
        [1, 6, 9],
        [4, 8, 10],
    ]
    .into_iter()
    .map(|e| e.into_iter().map(Tid).collect())
    .collect();
    let g = cqa_constraints::ConflictHypergraph::new(nodes, edges);

    let (db, sigma) = key_conflict_instance(20, 5, 3, 1);
    let q = UnionQuery::single(parse_query("Q(k, v) :- T(k, v)").unwrap());
    let class = RepairClass::Subset;

    let hs_ref = with_threads(4, || g.minimal_hitting_sets(None));
    let cqa_ref = with_threads(4, || {
        cqa_core::consistent_answers(&db, &sigma, &q, &class).unwrap()
    });
    let ((hs_ok, cqa_ok), t) = timed(|| {
        let hs = (1..=16u64).all(|seed| {
            with_schedule_seed(seed, || with_threads(4, || g.minimal_hitting_sets(None))) == hs_ref
        });
        let cqa = (1..=16u64).all(|seed| {
            with_schedule_seed(seed, || {
                with_threads(4, || {
                    cqa_core::consistent_answers(&db, &sigma, &q, &class).unwrap()
                })
            }) == cqa_ref
        });
        (hs, cqa)
    });
    println!(
        "  dynamic half: 16 perturbed 4-thread schedules per hot path ({:.1} ms)",
        t * 1e3
    );
    println!("  hitting-set search identical across seeds: {hs_ok}");
    println!("  CQA fold identical across seeds: {cqa_ok}");
}

#[cfg(not(feature = "schedule-fuzz"))]
fn f17_perturbation() {
    println!("  dynamic half: rebuild with `--features schedule-fuzz` to run seeded");
    println!("  perturbation here (CI runs the full suite: tests/schedule_fuzz.rs)");
}

fn f18_columnar_storage() {
    use cqa_bench::rowstore::f18_rowdb;
    use cqa_bench::{f18_columnar, f18_data};
    use cqa_relation::Value;

    println!("F18: dictionary-encoded columnar storage vs the row-oriented baseline");
    println!("---------------------------------------------------------------------");
    println!("  workload: Orders(OID, Cust, City, Status, Amount) + Cities(City, Region),");
    println!("  200 customers / 50 cities (heavy string repetition), FD Cust -> City");
    println!("  (1% dirty) and the comparison denial Amount > 9900.\n");
    println!("  n orders | row KiB | col KiB | mem ratio | viol row/col (ms) | join row/col (ms) | equal");

    for n in [5_000usize, 50_000] {
        let data = f18_data(n, 18);
        let (mut db, sigma) = f18_columnar(&data);
        let mut row = f18_rowdb(&data);
        // Both engines compact after the bulk load, so the comparison is
        // retained bytes, not allocator growth policy.
        db.shrink_to_fit();
        row.shrink_to_fit();
        let denials = sigma.all_denials(&db).unwrap();

        // Retained storage, analytically accounted on both sides: row boxes
        // + one Arc<str> block per string cell vs columns + spines + the
        // shared dictionary (strings counted once).
        let row_bytes = row.heap_bytes();
        let col_bytes = db.heap_bytes() + db.dict().heap_bytes();

        let q = parse_query("Q(c, r) :- Orders(o, c, x, s, a), Cities(x, r)").unwrap();
        // Warm both engines once: the first columnar call builds the shared
        // sorted/hash indexes (one-time, cached on the base), so the timed
        // runs below compare steady-state query latency on both sides.
        for dc in &denials {
            let _ = dc.violations(&db);
        }
        let _ = row.fd_violations("Orders", 1, 2);
        let _ = row.range_violations("Orders", 4, &Value::Int(9900));
        let _ = cqa_query::eval_cq(&db, &q, NullSemantics::Sql);
        let _ = row.join("Orders", 2, "Cities", 0, &[(0, 1), (1, 1)]);

        let (cv, t_cv) = timed(|| {
            denials
                .iter()
                .map(|dc| dc.violations(&db))
                .collect::<Vec<_>>()
        });
        let (rv, t_rv) = timed(|| {
            vec![
                row.fd_violations("Orders", 1, 2),
                row.range_violations("Orders", 4, &Value::Int(9900)),
            ]
        });

        let (cj, t_cj) = timed(|| cqa_query::eval_cq(&db, &q, NullSemantics::Sql));
        let (rj, t_rj) = timed(|| row.join("Orders", 2, "Cities", 0, &[(0, 1), (1, 1)]));

        println!(
            "  {n:>8} | {:>7} | {:>7} | {:>8.1}x | {:>7.1} / {:>6.1} | {:>7.1} / {:>6.1} | {}",
            row_bytes / 1024,
            col_bytes / 1024,
            row_bytes as f64 / col_bytes as f64,
            t_rv * 1e3,
            t_cv * 1e3,
            t_rj * 1e3,
            t_cj * 1e3,
            cv == rv && cj == rj
        );
    }
    println!();
}

fn f19_incremental_maintenance() {
    use cqa_bench::{f18_columnar, f18_data, F18Data};
    use cqa_core::{answer_consistently_incremental, IncrementalState};
    use cqa_exec::{with_threads, Budget};
    use cqa_relation::{Tid, Value};

    println!("F19: delta-driven incremental maintenance vs recompute-from-scratch");
    println!("--------------------------------------------------------------------");
    println!("  workload: the F18 Orders/Cities instance (FD Cust -> City, 1% dirty,");
    println!("  plus the comparison denial Amount > 9900). Each step applies ONE");
    println!("  tuple-level mutation (conflicting insert / amount update / delete)");
    println!("  and brings violations + hyper-graph + components up to date, either");
    println!("  through the change-log delta path or by full recompute. Maintained");
    println!("  state is asserted byte-identical to scratch after every step.\n");
    println!("  n orders | steps | incr (ms/upd) | scratch (ms/upd) | speedup | upd/s incr | upd/s scratch | identical");

    // One tuple-level mutation, deterministic in `i`, shared by the timing
    // loop and the thread-invariance replays.
    fn apply_op(db: &mut Database, data: &F18Data, n: usize, i: usize) {
        match i % 3 {
            0 => {
                // Existing customer, a different city: a fresh FD conflict.
                let cust = data.orders[(i * 97) % data.orders.len()].1.as_str();
                let city = data.cities[(i * 13 + 7) % data.cities.len()].0.as_str();
                db.insert(
                    "Orders",
                    tuple![1_000_000 + i as i64, cust, city, "late", 500],
                )
                .unwrap();
            }
            1 => {
                // Push an amount over the 9900 threshold (single-tuple
                // violation); the tid may have been deleted by an earlier
                // step, in which case the op is a no-op.
                let _ = db.update_value(Tid((i * 41 % n + 1) as u64), 4, Value::int(99_000));
            }
            _ => {
                let _ = db.delete(Tid((i * 29 % n + 1) as u64));
            }
        }
    }

    for n in [5_000usize, 50_000] {
        let data = f18_data(n, 19);
        let (mut db, sigma) = f18_columnar(&data);
        db.shrink_to_fit();
        let mut state = IncrementalState::new(&db, &sigma).unwrap();

        let steps = 12usize;
        let (mut t_inc, mut t_full) = (0.0f64, 0.0f64);
        let mut identical = true;
        for i in 0..steps {
            apply_op(&mut db, &data, n, i);
            let (_, s_inc) = timed(|| {
                state.refresh(&db, &sigma).unwrap();
            });
            let (scratch, s_full) = timed(|| IncrementalState::new(&db, &sigma).unwrap());
            t_inc += s_inc;
            t_full += s_full;
            identical &= state.violations() == scratch.violations()
                && state.graph() == scratch.graph()
                && *state.components() == *scratch.components();
        }
        println!(
            "  {n:>8} | {steps:>5} | {:>13.2} | {:>16.2} | {:>6.1}x | {:>10.0} | {:>13.0} | {identical}",
            t_inc / steps as f64 * 1e3,
            t_full / steps as f64 * 1e3,
            t_full / t_inc,
            steps as f64 / t_inc,
            steps as f64 / t_full,
        );
    }

    // Thread invariance: the same mutation script replayed through the
    // incremental planner at 1, 2 and 8 threads must produce byte-identical
    // violation sets, component factorizations and consistent answers.
    let n = 5_000usize;
    let data = f18_data(n, 19);
    let q =
        UnionQuery::single(parse_query("Q(c, r) :- Orders(o, c, x, s, a), Cities(x, r)").unwrap());
    let replay = |threads: usize| {
        with_threads(threads, || {
            let (mut db, sigma) = f18_columnar(&data);
            let mut state = IncrementalState::new(&db, &sigma).unwrap();
            for i in 0..12 {
                apply_op(&mut db, &data, n, i);
                state.refresh(&db, &sigma).unwrap();
            }
            let planned =
                answer_consistently_incremental(&db, &sigma, &q, &mut state, &Budget::unlimited())
                    .unwrap()
                    .into_value();
            (
                state.violations().clone(),
                (*state.components()).clone(),
                planned.answers,
            )
        })
    };
    let r1 = replay(1);
    let invariant = r1 == replay(2) && r1 == replay(8);
    println!(
        "\n  violations/components/CQA answers identical at 1/2/8 threads (n = {n}): {invariant}"
    );
    println!();
}

fn f20_server() {
    use cqa_exec::{with_threads, AdmissionGate, CancelToken, ServiceGroup};
    use cqa_server::{api, start, Json, Request, ServerConfig, ServerState, SessionStore};
    use std::sync::{mpsc, RwLock};

    println!("F20: repaird — multi-tenant CQA serving (sessions, warm caches, admission)");
    println!("---------------------------------------------------------------------------");
    println!("  a real repaird instance on loopback: 64 tenant sessions under a");
    println!("  64-client concurrent burst, session reuse vs create-query-delete");
    println!("  one-shots, deadline-truncated tails on a 2^14-repair tenant, a");
    println!("  starved admission gate, and a 1/2/8-thread transcript replay.\n");

    // Tenant workload: 4 000 clean keys plus 12 key-conflict pairs; the
    // query is a key lookup the planned certain path answers exactly.
    let (db, _sigma) = key_conflict_instance(4_000, 12, 2, 7);
    let create_body = format!(
        "{{\"db\": {}, \"constraints\": {}}}",
        Json::str(cqa_relation::save(&db).as_str()),
        Json::str("key T(K)\n")
    );
    let query_body = r#"{"query": "Q(y) :- T(5, y)"}"#;

    let handle = start(ServerConfig {
        max_sessions: 256,
        max_inflight: 128,
        ..ServerConfig::default()
    })
    .expect("start repaird");
    let addr = handle.addr();

    // Cold one-shots: connect, load the tenant, ask, tear down — per shot.
    let cold_shots = 24usize;
    let mut cold = Vec::new();
    for _ in 0..cold_shots {
        let (_, secs) = timed(|| {
            let mut client = F20Client::connect(addr);
            let (status, reply) = client.request("POST", "/sessions", &create_body);
            assert_eq!(status, 200, "{reply}");
            let id = f20_session_id(&reply);
            let (status, reply) =
                client.request("POST", &format!("/sessions/{id}/query"), query_body);
            assert_eq!(status, 200, "{reply}");
            assert!(!reply.contains("truncated"), "{reply}");
            let (status, _) = client.request("DELETE", &format!("/sessions/{id}"), "");
            assert_eq!(status, 200);
        });
        cold.push(secs);
    }

    // Multi-tenancy burst: 64 live sessions, one concurrent client each,
    // 16 queries per client — demonstrates concurrent session isolation
    // and that the gate drains back to zero afterwards.
    let tenants = 64usize;
    let per_client = 16usize;
    let mut ids = Vec::new();
    for _ in 0..tenants {
        let (status, reply) = f20_request(addr, "POST", "/sessions", &create_body);
        assert_eq!(status, 200, "{reply}");
        ids.push(f20_session_id(&reply));
    }
    let (tx, rx) = mpsc::channel::<usize>();
    let mut clients = ServiceGroup::new();
    for &id in &ids {
        let tx = tx.clone();
        let spawned = clients.spawn("f20-warm-client", move || {
            let mut client = F20Client::connect(addr);
            let mut served = 0usize;
            for _ in 0..per_client {
                let (status, reply) =
                    client.request("POST", &format!("/sessions/{id}/query"), query_body);
                assert_eq!(status, 200, "{reply}");
                served += 1;
            }
            tx.send(served).expect("report served count");
        });
        assert!(spawned, "could not spawn a warm client");
    }
    drop(tx);
    let (served, burst_secs) = timed(|| {
        assert!(clients.join_all().is_empty(), "a warm client panicked");
        rx.iter().sum::<usize>()
    });
    let (status, reply) = f20_request(addr, "GET", "/health", "");
    assert_eq!(status, 200, "{reply}");
    println!(
        "  multi-tenancy: {tenants} live sessions, {served} queries from {tenants} concurrent clients"
    );
    println!(
        "  burst wall time {:.2} s ({:.0} queries/s); drained after — health inflight 0: {}",
        burst_secs,
        served as f64 / burst_secs,
        reply.contains("\"inflight\":0")
    );

    // Session reuse, measured without queueing: one serial keep-alive
    // client against one live session, vs the serial cold one-shots above.
    let mut warm = Vec::new();
    let mut warm_client = F20Client::connect(addr);
    for _ in 0..32 {
        let (_, secs) = timed(|| {
            let (status, reply) =
                warm_client.request("POST", &format!("/sessions/{}/query", ids[0]), query_body);
            assert_eq!(status, 200, "{reply}");
        });
        warm.push(secs);
    }
    warm.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    cold.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let warm_p50 = f20_percentile(&warm, 0.50);
    let cold_p50 = f20_percentile(&cold, 0.50);
    println!(
        "  warm query     p50 {:>7.2} ms   p99 {:>7.2} ms  (serial, live session)",
        warm_p50 * 1e3,
        f20_percentile(&warm, 0.99) * 1e3
    );
    println!(
        "  cold one-shot  p50 {:>7.2} ms   (create + query + delete, {cold_shots} shots)",
        cold_p50 * 1e3
    );
    println!(
        "  session-reuse speedup (cold p50 / warm p50): {:.1}x; >= 5x: {}",
        cold_p50 / warm_p50,
        cold_p50 >= 5.0 * warm_p50
    );
    // Warm sessions ride the fleet-wide subplan cache. The key lookup above
    // is answered by the planner's polynomial path, so the demonstration
    // uses a small fold-class tenant: possible answers enumerate a 2^6
    // repair family, and the second ask replays it entirely from cache —
    // /health exposes the hit/miss counters it just accrued.
    let (small_db, _) = key_conflict_instance(200, 6, 2, 9);
    let small_body = format!(
        "{{\"db\": {}, \"constraints\": {}}}",
        Json::str(cqa_relation::save(&small_db).as_str()),
        Json::str("key T(K)\n")
    );
    let (status, reply) = f20_request(addr, "POST", "/sessions", &small_body);
    assert_eq!(status, 200, "{reply}");
    let fold_id = f20_session_id(&reply);
    let fold_body = r#"{"query": "Q(x) :- T(x, y)", "kind": "possible"}"#;
    for _ in 0..2 {
        let (status, reply) = f20_request(
            addr,
            "POST",
            &format!("/sessions/{fold_id}/query"),
            fold_body,
        );
        assert_eq!(status, 200, "{reply}");
    }
    let (status, _) = f20_request(addr, "DELETE", &format!("/sessions/{fold_id}"), "");
    assert_eq!(status, 200);
    let (status, reply) = f20_request(addr, "GET", "/health", "");
    assert_eq!(status, 200);
    let cache_json = reply
        .split("\"plan_cache\":")
        .nth(1)
        .and_then(|rest| rest.split('}').next())
        .map(|s| format!("{s}}}"))
        .unwrap_or_else(|| "missing".to_string());
    println!("  subplan cache after warm re-asks: {cache_json}");

    // Graceful degradation: a 2^14-repair tenant with a 60 ms deadline on
    // cardinality-class certain answers. Every reply must come back
    // promptly as a 200 whose body carries the deadline truncation; the
    // slack on the bound covers the expansion's post-deadline teardown
    // (dropping the expanded prefix), not open-ended computation.
    let (hard, _s) = key_conflict_instance(200, 14, 2, 3);
    let hard_body = format!(
        "{{\"db\": {}, \"constraints\": {}}}",
        Json::str(cqa_relation::save(&hard).as_str()),
        Json::str("key T(K)\n")
    );
    let (status, reply) = f20_request(addr, "POST", "/sessions", &hard_body);
    assert_eq!(status, 200, "{reply}");
    let hard_id = f20_session_id(&reply);
    let timeout_ms = 60u64;
    let deadline_query = format!(
        "{{\"query\": \"Q(x) :- T(x, y)\", \"class\": \"cardinality\", \"timeout_ms\": {timeout_ms}}}"
    );
    // 2 untimed warmups (first-touch lazy artifacts), then 56 timed
    // queries: with nearest-rank p99 that index is the second-largest
    // sample, so one noisy-neighbour scheduling outlier on a shared
    // single-core box doesn't define the tail.
    let mut tail = Vec::new();
    let mut tail_client = F20Client::connect(addr);
    for i in 0..58 {
        let (_, secs) = timed(|| {
            let (status, reply) = tail_client.request(
                "POST",
                &format!("/sessions/{hard_id}/query"),
                &deadline_query,
            );
            assert_eq!(status, 200, "{reply}");
            assert!(
                reply.contains("\"truncated\":{\"reason\":\"deadline\""),
                "{reply}"
            );
        });
        if i >= 2 {
            tail.push(secs);
        }
    }
    tail.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let tail_p99 = f20_percentile(&tail, 0.99);
    println!(
        "\n  graceful degradation: 2^14-repair tenant, timeout_ms = {timeout_ms}, 56 queries,"
    );
    println!(
        "  every reply a 200 with a deadline truncation: p50 {:.1} ms, p99 {:.1} ms;",
        f20_percentile(&tail, 0.50) * 1e3,
        tail_p99 * 1e3
    );
    println!(
        "  p99 within timeout + 200 ms teardown slack: {}",
        tail_p99 <= timeout_ms as f64 / 1e3 + 0.200
    );
    handle.shutdown();
    let _ = handle.join();

    // Admission control: a deliberately tiny gate (2 permits) against 10
    // simultaneous heavy queries. Overflow is an immediate 429 +
    // Retry-After — never a dropped connection — and every client is
    // served after backoff.
    let small = start(ServerConfig {
        max_inflight: 2,
        max_sessions: 64,
        ..ServerConfig::default()
    })
    .expect("start repaird");
    let addr2 = small.addr();
    let mut storm_ids = Vec::new();
    for _ in 0..10 {
        let (status, reply) = f20_request(addr2, "POST", "/sessions", &hard_body);
        assert_eq!(status, 200, "{reply}");
        storm_ids.push(f20_session_id(&reply));
    }
    let (tx, rx) = mpsc::channel::<u64>();
    let mut stormers = ServiceGroup::new();
    for &id in &storm_ids {
        let tx = tx.clone();
        let spawned = stormers.spawn("f20-storm-client", move || {
            let body = r#"{"query": "Q(x) :- T(x, y)", "class": "cardinality", "timeout_ms": 250}"#;
            // One keep-alive connection per client: a 429 must leave the
            // connection usable for the retry.
            let mut client = F20Client::connect(addr2);
            let mut refused = 0u64;
            loop {
                let (status, reply) =
                    client.request("POST", &format!("/sessions/{id}/query"), body);
                match status {
                    200 => break,
                    429 => {
                        assert!(reply.contains("retry_after"), "{reply}");
                        refused += 1;
                        std::thread::sleep(std::time::Duration::from_millis(40));
                    }
                    other => panic!("unexpected status {other}: {reply}"),
                }
            }
            tx.send(refused).expect("report refusals");
        });
        assert!(spawned, "could not spawn a storm client");
    }
    drop(tx);
    assert!(stormers.join_all().is_empty(), "a storm client panicked");
    let refused_per_client: Vec<u64> = rx.iter().collect();
    let refusals: u64 = refused_per_client.iter().sum();
    let (status, reply) = f20_request(addr2, "GET", "/health", "");
    assert_eq!(status, 200, "{reply}");
    println!("\n  admission control: 10 clients vs a 2-permit gate, {refusals} refusals;");
    println!(
        "  every client served after 429 + Retry-After backoff: {}",
        refused_per_client.len() == storm_ids.len() && refusals > 0
    );
    println!(
        "  gate drained — health reports inflight 0 and refused {refusals}: {}",
        reply.contains("\"inflight\":0") && reply.contains(&format!("\"refused\":{refusals}"))
    );
    small.shutdown();
    let _ = small.join();

    // Thread invariance: one fixed tenant script dispatched straight into
    // the request handler (no sockets), replayed at 1, 2 and 8 worker
    // threads. The transcript — statuses, bodies, truncation points, even
    // error replies — must be byte-identical.
    let script: Vec<(&str, String, String)> = vec![
        (
            "POST",
            "/sessions".to_string(),
            format!(
                "{{\"db\": {}, \"constraints\": {}}}",
                Json::str("@relation T(K, V)\n0, 1\n0, 2\n1, 1\n2, 5\n"),
                Json::str("key T(K)\n")
            ),
        ),
        (
            "POST",
            "/sessions/1/query".to_string(),
            r#"{"query": "Q(x) :- T(x, y)"}"#.to_string(),
        ),
        (
            "POST",
            "/sessions/1/repairs".to_string(),
            r#"{"class": "subset", "budget_steps": 2}"#.to_string(),
        ),
        (
            "POST",
            "/sessions/1/mutate".to_string(),
            r#"{"ops": [{"op": "insert", "relation": "T", "row": [1, 9]}, {"op": "delete", "tid": 4}]}"#
                .to_string(),
        ),
        (
            "POST",
            "/sessions/1/query".to_string(),
            r#"{"query": "Q(x) :- T(x, y)", "class": "cardinality", "budget_steps": 3}"#.to_string(),
        ),
        (
            "POST",
            "/sessions/1/query".to_string(),
            r#"{"query": "Q(x) :- T(x, y)", "kind": "possible"}"#.to_string(),
        ),
        (
            "POST",
            "/sessions/1/causes".to_string(),
            r#"{"query": "Q() :- T(1, y)"}"#.to_string(),
        ),
        ("DELETE", "/sessions/9".to_string(), String::new()),
    ];
    let replay = |threads: usize| {
        with_threads(threads, || {
            let state = ServerState {
                config: ServerConfig::default(),
                sessions: SessionStore::new(8),
                gate: AdmissionGate::new(8),
                stop: CancelToken::new(),
            };
            let slot = RwLock::new(None);
            script
                .iter()
                .map(|(method, path, body)| {
                    let req = Request {
                        method: (*method).to_string(),
                        path: path.clone(),
                        body: body.clone().into_bytes(),
                        close: false,
                    };
                    let reply = api::handle(&state, &req, &slot);
                    format!("{} {}", reply.status, reply.body)
                })
                .collect::<Vec<String>>()
        })
    };
    let t1 = replay(1);
    let identical = t1 == replay(2) && t1 == replay(8);
    let truncates = t1.concat().contains("truncated");
    println!(
        "\n  transcripts byte-identical at 1/2/8 threads (incl. truncation): {}",
        identical && truncates
    );
    println!();
}

/// A keep-alive client connection to repaird. Warm clients hold one of
/// these across queries (no per-request connect/accept cost); one-shot
/// callers build a fresh one per exchange.
struct F20Client {
    writer: std::net::TcpStream,
    reader: std::io::BufReader<std::net::TcpStream>,
}

impl F20Client {
    fn connect(addr: std::net::SocketAddr) -> F20Client {
        let writer = std::net::TcpStream::connect(addr).expect("connect");
        let _ = writer.set_nodelay(true);
        let reader = std::io::BufReader::new(writer.try_clone().expect("clone socket"));
        F20Client { writer, reader }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        use std::io::{BufRead, Read, Write};
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes()).expect("write head");
        self.writer.write_all(body.as_bytes()).expect("write body");
        let mut status_line = String::new();
        self.reader
            .read_line(&mut status_line)
            .expect("status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header line");
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .and_then(|v| v.parse().ok())
            {
                content_length = v;
            }
        }
        let mut reply = vec![0u8; content_length];
        self.reader.read_exact(&mut reply).expect("body");
        (status, String::from_utf8(reply).expect("utf8 body"))
    }
}

/// One HTTP request on a fresh loopback connection; returns status + body.
fn f20_request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    F20Client::connect(addr).request(method, path, body)
}

/// Pull the `"session":N` id out of a create reply.
fn f20_session_id(reply: &str) -> u64 {
    reply
        .split("\"session\":")
        .nth(1)
        .expect("session id in reply")
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric session id")
}

/// Nearest-rank percentile over an ascending-sorted sample.
fn f20_percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// F21: the repair-family subplan cache — the same UCQ folded over the
/// same 2^k repair family with sharing on vs off. The fold answers certain
/// *and* possible three times (a session re-asking), so with sharing on
/// only the first certain pass evaluates: every later pass — possible over
/// the identical views, and both re-asks — hits the cache on the
/// (query fingerprint, content fingerprint) key. Row equality is asserted
/// before any time is reported.
fn f21_plan_cache() {
    use cqa_core::{consistent_answers, possible_answers};

    println!("F21: cost-based planning — repair-family subplan sharing on vs off");
    println!("-------------------------------------------------------------------");
    println!("  5 000 clean keys + k conflict pairs (2^k S-repairs); certain +");
    println!("  possible for the same query, asked 3 times per run.\n");
    println!("  k  | repairs | off (ms) | on (ms) | speedup | equal | hits | misses");

    let q = UnionQuery::single(parse_query("Q(x) :- T(x, y)").unwrap());
    let class = RepairClass::Subset;
    let mut largest_speedup = 0.0f64;
    for k in [6usize, 8, 10] {
        let (db, sigma) = key_conflict_instance(5_000, k, 2, 21);
        let run = |on: bool| {
            cqa_query::reset_plan_cache();
            cqa_exec::with_plan_cache(on, || {
                timed(|| {
                    let mut last = None;
                    for _ in 0..3 {
                        let c = consistent_answers(&db, &sigma, &q, &class).unwrap();
                        let p = possible_answers(&db, &sigma, &q, &class).unwrap();
                        last = Some((c, p));
                    }
                    last.expect("three passes ran")
                })
            })
        };
        let (rows_off, t_off) = run(false);
        let (rows_on, t_on) = run(true);
        let stats = cqa_query::plan_cache_stats();
        let speedup = t_off / t_on;
        largest_speedup = speedup; // the last (largest) family is the gate
        println!(
            "  {:>2} | {:>7} | {:>8.1} | {:>7.1} | {:>6.1}x | {:>5} | {:>4} | {:>6}",
            k,
            1usize << k,
            t_off * 1e3,
            t_on * 1e3,
            speedup,
            rows_off == rows_on,
            stats.hits,
            stats.misses
        );
        assert!(rows_off == rows_on, "sharing changed answers at k={k}");
    }
    println!(
        "\n  sharing >= 3x at the largest family: {}\n",
        largest_speedup >= 3.0
    );
}
