#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqa-bench
//!
//! Workload generators and the experiment harness regenerating every
//! experiment in DESIGN.md (E-series: paper examples; F-series: scaling
//! shapes for the paper's complexity claims). See `src/bin/harness.rs` for
//! the printable tables and `benches/` for the Criterion versions.

pub mod rowstore;
pub mod workload;

pub use workload::{
    cfd_customers, dc_instance, f18_columnar, f18_data, key_conflict_instance, star_instance,
    university_sources, F18Data,
};

/// Wall-clock one closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Right-pad to a column width (tiny table helper for the harness).
pub fn pad(s: impl ToString, width: usize) -> String {
    let s = s.to_string();
    format!("{s:>width$}")
}
