//! The pre-PR-7 row-oriented engine, preserved as the F18 baseline.
//!
//! This is the storage model the workspace used before the dictionary-
//! encoded columnar rewrite: every tuple is an owned `Box<[Value]>`, every
//! string cell its own `Arc<str>` allocation (no sharing across rows —
//! mirroring a loader that allocates per parsed token), and joins key their
//! hash tables on full [`Value`]s rather than word-sized ids. F18 runs the
//! same workload through this store and through [`cqa_relation::Database`]
//! and reports the memory and throughput gap; answers are asserted equal
//! before any measurement.
//!
//! Only the operations F18 measures are implemented: FD-style self-joins,
//! comparison range scans, and a two-relation equi-join. Deliberately *not*
//! a second engine — a reference point.

use cqa_query::CmpOp;
use cqa_relation::{Tid, Tuple, Value};
use std::collections::{BTreeSet, HashMap};

/// One relation: insertion-ordered `(tid, row)` pairs.
pub struct RowRelation {
    name: String,
    rows: Vec<(Tid, Box<[Value]>)>,
}

/// A minimal row-oriented database: relations of boxed `Value` rows with
/// sequential tids, matching [`cqa_relation::Database`]'s tid assignment so
/// results compare 1:1.
#[derive(Default)]
pub struct RowDb {
    relations: Vec<RowRelation>,
    next_tid: u64,
}

impl RowDb {
    /// Empty database.
    pub fn new() -> RowDb {
        RowDb {
            relations: Vec::new(),
            next_tid: 1,
        }
    }

    /// Add a relation (name only; the row store is schema-less).
    pub fn create_relation(&mut self, name: &str) {
        self.relations.push(RowRelation {
            name: name.to_string(),
            rows: Vec::new(),
        });
    }

    fn relation(&self, name: &str) -> &RowRelation {
        self.relations
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("no relation {name}"))
    }

    /// Insert a row, returning its tid. Callers pass freshly-allocated
    /// values (see [`fresh`]) so the baseline pays the per-cell allocation
    /// the seed engine paid.
    pub fn insert(&mut self, name: &str, row: Vec<Value>) -> Tid {
        let tid = Tid(self.next_tid);
        self.next_tid += 1;
        let rel = self
            .relations
            .iter_mut()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("no relation {name}"));
        rel.rows.push((tid, row.into_boxed_slice()));
        tid
    }

    /// Release spare `Vec` capacity (mirrors
    /// [`cqa_relation::Database::shrink_to_fit`] so the memory comparison is
    /// fair to both engines).
    pub fn shrink_to_fit(&mut self) {
        for rel in &mut self.relations {
            rel.rows.shrink_to_fit();
        }
    }

    /// Estimated retained heap bytes, same analytic policy as
    /// [`cqa_relation::Database::heap_bytes`]: row boxes, per-cell string
    /// buffers (each cell owns its own `Arc` block), and the rows vectors.
    pub fn heap_bytes(&self) -> usize {
        let cell = |v: &Value| match v {
            Value::Str(s) => 16 + s.len(),
            _ => 0,
        };
        self.relations
            .iter()
            .map(|rel| {
                let boxes: usize = rel
                    .rows
                    .iter()
                    .map(|(_, row)| {
                        row.len() * std::mem::size_of::<Value>()
                            + row.iter().map(cell).sum::<usize>()
                    })
                    .sum();
                boxes + rel.rows.capacity() * std::mem::size_of::<(Tid, Box<[Value]>)>()
            })
            .sum()
    }

    /// Violations of the FD-shaped denial `R(.., g, .., x, ..), R(.., g,
    /// .., y, ..), x < y` (join on column `group_col`, compare column
    /// `cmp_col`): a Value-keyed hash join, nulls never joining or
    /// comparing.
    pub fn fd_violations(
        &self,
        name: &str,
        group_col: usize,
        cmp_col: usize,
    ) -> BTreeSet<BTreeSet<Tid>> {
        let rel = self.relation(name);
        let mut by_key: HashMap<&Value, Vec<(Tid, &[Value])>> = HashMap::new();
        for (tid, row) in &rel.rows {
            let key = &row[group_col];
            if !key.is_null() {
                by_key.entry(key).or_default().push((*tid, row));
            }
        }
        let mut out = BTreeSet::new();
        for (tid, row) in &rel.rows {
            let key = &row[group_col];
            if key.is_null() {
                continue;
            }
            let Some(bucket) = by_key.get(key) else {
                continue;
            };
            let x = &row[cmp_col];
            for (other, orow) in bucket {
                let y = &orow[cmp_col];
                if !x.is_null() && !y.is_null() && CmpOp::Lt.eval(x, y) {
                    out.insert(BTreeSet::from([*tid, *other]));
                }
            }
        }
        out
    }

    /// Violations of the range denial `R(..), col > bound`: a full scan
    /// comparing values, nulls never matching.
    pub fn range_violations(
        &self,
        name: &str,
        col: usize,
        bound: &Value,
    ) -> BTreeSet<BTreeSet<Tid>> {
        self.relation(name)
            .rows
            .iter()
            .filter(|(_, row)| {
                let v = &row[col];
                !v.is_null() && CmpOp::Gt.eval(v, bound)
            })
            .map(|(tid, _)| BTreeSet::from([*tid]))
            .collect()
    }

    /// The equi-join `R ⋈_{R.c1 = S.c2} S`, projected to `(side, col)`
    /// pairs (side 0 = left, 1 = right): a Value-keyed hash join.
    pub fn join(
        &self,
        left: &str,
        c1: usize,
        right: &str,
        c2: usize,
        project: &[(usize, usize)],
    ) -> BTreeSet<Tuple> {
        let mut by_key: HashMap<&Value, Vec<&[Value]>> = HashMap::new();
        for (_, row) in &self.relation(right).rows {
            let key = &row[c2];
            if !key.is_null() {
                by_key.entry(key).or_default().push(row);
            }
        }
        let mut out = BTreeSet::new();
        for (_, lrow) in &self.relation(left).rows {
            let key = &lrow[c1];
            if key.is_null() {
                continue;
            }
            let Some(bucket) = by_key.get(key) else {
                continue;
            };
            for rrow in bucket {
                let tuple = Tuple::new(project.iter().map(|&(side, col)| {
                    if side == 0 {
                        lrow[col].clone()
                    } else {
                        rrow[col].clone()
                    }
                }));
                out.insert(tuple);
            }
        }
        out
    }
}

/// Allocate a fresh `Value` for one cell the way the seed loader did: a
/// string cell gets its own `Arc<str>` buffer even when the content
/// repeats.
pub fn fresh(v: &Value) -> Value {
    match v {
        Value::Str(s) => Value::str(&**s),
        other => other.clone(),
    }
}

/// Load [`crate::workload::F18Data`] into the row store, paying one string
/// allocation per cell — the same insertion order (and therefore the same
/// tids) as [`crate::workload::f18_columnar`].
pub fn f18_rowdb(data: &crate::workload::F18Data) -> RowDb {
    let mut db = RowDb::new();
    db.create_relation("Orders");
    db.create_relation("Cities");
    for (oid, cust, city, status, amount) in &data.orders {
        db.insert(
            "Orders",
            vec![
                Value::Int(*oid),
                Value::str(cust),
                Value::str(city),
                Value::str(status),
                Value::Int(*amount),
            ],
        );
    }
    for (city, region) in &data.cities {
        db.insert("Cities", vec![Value::str(city), Value::str(region)]);
    }
    db
}
