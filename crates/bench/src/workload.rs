//! Workload generators for the F-series experiments (see DESIGN.md).
//!
//! All generators are deterministic given a seed, so benchmark runs and the
//! EXPERIMENTS.md tables are reproducible.

use cqa_constraints::{ConstraintSet, DenialConstraint, KeyConstraint};
use cqa_relation::{tuple, Database, RelationSchema};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `T(K, V)` with `n_clean` singleton key groups and `n_conflicts` key
/// groups of size `group_size` (≥ 2). The number of S-repairs is
/// `group_size ^ n_conflicts`.
pub fn key_conflict_instance(
    n_clean: usize,
    n_conflicts: usize,
    group_size: usize,
    seed: u64,
) -> (Database, ConstraintSet) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("T", ["K", "V"]))
        .unwrap();
    for i in 0..n_clean {
        db.insert("T", tuple![i as i64, rng.gen_range(0..1_000_000i64)])
            .unwrap();
    }
    for i in 0..n_conflicts {
        let k = (1_000_000 + i) as i64;
        for v in 0..group_size {
            db.insert("T", tuple![k, v as i64]).unwrap();
        }
    }
    let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
    (db, sigma)
}

/// The κ-scenario of Example 3.5 at scale: `R(A, B)` and `S(A)` over a
/// domain of `domain` constants, with the denial constraint
/// `¬∃x∃y (S(x) ∧ R(x, y) ∧ S(y))`. Violation density rises as the domain
/// shrinks relative to the tuple counts.
pub fn dc_instance(n_r: usize, n_s: usize, domain: usize, seed: u64) -> (Database, ConstraintSet) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("R", ["A", "B"]))
        .unwrap();
    db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
    for _ in 0..n_r {
        let a = rng.gen_range(0..domain) as i64;
        let b = rng.gen_range(0..domain) as i64;
        db.insert("R", tuple![a, b]).unwrap();
    }
    for _ in 0..n_s {
        let a = rng.gen_range(0..domain) as i64;
        db.insert("S", tuple![a]).unwrap();
    }
    let sigma =
        ConstraintSet::from_iter(
            [DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap()],
        );
    (db, sigma)
}

/// A "hub" instance whose Boolean query `∃x∃y (Hub(x) ∧ Spoke(x, y))` has
/// one counterfactual cause (the hub) and `width` half-responsible spokes;
/// contingency sets grow with `width`.
pub fn star_instance(width: usize) -> Database {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("Hub", ["A"]))
        .unwrap();
    db.create_relation(RelationSchema::new("Spoke", ["A", "B"]))
        .unwrap();
    db.insert("Hub", tuple![0]).unwrap();
    for i in 0..width {
        db.insert("Spoke", tuple![0, i as i64]).unwrap();
    }
    db
}

/// Scaled university sources for the integration experiment: `n` students
/// per university, every student with a specialization; `dirty` of the
/// student numbers are shared between the universities with different names
/// (global FD violations).
pub fn university_sources(n: usize, dirty: usize, seed: u64) -> Database {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::new();
    for (r, attrs) in [
        ("CUstds", ["Number", "Name"]),
        ("SpecCU", ["Number", "Field"]),
        ("OUstds", ["Number", "Name"]),
        ("SpecOU", ["Number", "Field"]),
    ] {
        db.create_relation(RelationSchema::new(r, attrs)).unwrap();
    }
    let fields = ["alg", "ai", "db", "cs", "hci"];
    for i in 0..n {
        let num = i as i64;
        db.insert("CUstds", tuple![num, format!("cu_student_{i}")])
            .unwrap();
        db.insert(
            "SpecCU",
            tuple![num, fields[rng.gen_range(0..fields.len())]],
        )
        .unwrap();
        let ou_num = (n + i) as i64;
        db.insert("OUstds", tuple![ou_num, format!("ou_student_{i}")])
            .unwrap();
        db.insert(
            "SpecOU",
            tuple![ou_num, fields[rng.gen_range(0..fields.len())]],
        )
        .unwrap();
    }
    for i in 0..dirty.min(n) {
        // Shared number, different name at OU.
        let num = i as i64;
        db.insert("OUstds", tuple![num, format!("clash_{i}")])
            .unwrap();
        db.insert(
            "SpecOU",
            tuple![num, fields[rng.gen_range(0..fields.len())]],
        )
        .unwrap();
    }
    db
}

/// The F18 dictionary/columnar workload, as raw rows so the same data can
/// be loaded into both engines (columnar [`Database`] and the
/// [`crate::rowstore::RowDb`] baseline).
///
/// `Orders(OID, Cust, City, Amount)` over small string pools — 200
/// customers, 50 cities — so string content repeats heavily (where
/// dictionary encoding pays off), plus `Cities(City, Region)` for the CQA
/// join. Each customer has a home city; a 1% dirty fraction of orders name
/// a different city, violating the FD `Cust → City`.
pub struct F18Data {
    /// `(oid, customer, city, status, amount)` rows.
    pub orders: Vec<(i64, String, String, String, i64)>,
    /// `(city, region)` rows.
    pub cities: Vec<(String, String)>,
}

/// Generate `n` order rows (deterministic in `seed`). The string columns are
/// long and heavily repeated — the shape dictionary encoding exists for: a
/// row store copies every occurrence, the dictionary stores each distinct
/// string once and every occurrence is a 4-byte id.
pub fn f18_data(n: usize, seed: u64) -> F18Data {
    let mut rng = SmallRng::seed_from_u64(seed);
    let customers: Vec<String> = (0..200)
        .map(|i| format!("customer_account_holder_{i:04}_primary_billing_contact_record"))
        .collect();
    let cities: Vec<String> = (0..50)
        .map(|i| format!("metropolitan_statistical_area_{i:03}_consolidated_district"))
        .collect();
    let statuses = [
        "pending_review_by_the_regional_fulfilment_operations_team",
        "confirmed_and_scheduled_for_dispatch_from_central_warehouse",
        "shipped_via_standard_ground_carrier_with_tracking_enabled",
        "delivered_and_signed_for_at_the_registered_street_address",
        "returned_to_sender_after_three_failed_delivery_attempts",
        "cancelled_at_customer_request_before_payment_settlement",
    ];
    let regions = ["north", "south", "east", "west", "centre"];
    let orders = (0..n)
        .map(|i| {
            let c = rng.gen_range(0..customers.len());
            // Home city is a function of the customer; 1% of orders are
            // dirty and point somewhere else.
            let city = if rng.gen_bool(0.01) {
                cities[rng.gen_range(0..cities.len())].clone()
            } else {
                cities[c % cities.len()].clone()
            };
            let status = statuses[rng.gen_range(0..statuses.len())].to_string();
            (
                i as i64,
                customers[c].clone(),
                city,
                status,
                rng.gen_range(0..10_000i64),
            )
        })
        .collect();
    let cities = cities
        .iter()
        .enumerate()
        .map(|(i, c)| (c.clone(), regions[i % regions.len()].to_string()))
        .collect();
    F18Data { orders, cities }
}

/// Load [`F18Data`] into the columnar engine with its two F18 constraints:
/// the FD-shaped denial on `Cust → City` and a comparison denial
/// `Amount > 9900`.
pub fn f18_columnar(data: &F18Data) -> (Database, ConstraintSet) {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new(
        "Orders",
        ["OID", "Cust", "City", "Status", "Amount"],
    ))
    .unwrap();
    db.create_relation(RelationSchema::new("Cities", ["City", "Region"]))
        .unwrap();
    for (oid, cust, city, status, amount) in &data.orders {
        db.insert(
            "Orders",
            tuple![*oid, cust.as_str(), city.as_str(), status.as_str(), *amount],
        )
        .unwrap();
    }
    for (city, region) in &data.cities {
        db.insert("Cities", tuple![city.as_str(), region.as_str()])
            .unwrap();
    }
    let sigma = ConstraintSet::from_iter([
        DenialConstraint::parse("fd", "Orders(o, c, x, s, a), Orders(p, c, y, t, b), x < y")
            .unwrap(),
        DenialConstraint::parse("cap", "Orders(o, c, x, s, a), a > 9900").unwrap(),
    ]);
    (db, sigma)
}

/// Customers for the CFD cleaning experiment: `n` tuples, a fraction of
/// which violate the paper's CFD `[CC = 44, Zip] → [Street]`.
pub fn cfd_customers(n: usize, dirty_rate: f64, seed: u64) -> Database {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.create_relation(RelationSchema::new(
        "Cust",
        ["CC", "AC", "Phone", "Name", "Street", "City", "Zip"],
    ))
    .unwrap();
    for i in 0..n {
        let zip = format!("Z{:04}", i / 2); // pairs share zips
        let street = if rng.gen_bool(dirty_rate) {
            format!("street_{}", rng.gen_range(0..1000))
        } else {
            format!("street_of_{zip}")
        };
        db.insert(
            "Cust",
            tuple![
                44,
                131,
                format!("555{i:05}"),
                format!("name{i}"),
                street,
                "EDI",
                zip
            ],
        )
        .unwrap();
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_conflict_counts() {
        let (db, sigma) = key_conflict_instance(10, 3, 2, 7);
        assert_eq!(db.total_tuples(), 16);
        assert!(!sigma.is_satisfied(&db).unwrap());
        let repairs = cqa_core::s_repairs(&db, &sigma).unwrap();
        assert_eq!(repairs.len(), 8); // 2^3
    }

    #[test]
    fn generators_are_deterministic() {
        let (a, _) = dc_instance(20, 10, 5, 42);
        let (b, _) = dc_instance(20, 10, 5, 42);
        assert!(a.same_content(&b));
        // A different seed produces a different instance.
        let (c, _) = dc_instance(20, 10, 5, 43);
        assert!(!a.same_content(&c));
    }

    #[test]
    fn star_instance_shape() {
        let db = star_instance(4);
        assert_eq!(db.relation("Hub").unwrap().len(), 1);
        assert_eq!(db.relation("Spoke").unwrap().len(), 4);
    }

    #[test]
    fn university_sources_have_conflicts() {
        let db = university_sources(5, 2, 1);
        assert_eq!(db.relation("CUstds").unwrap().len(), 5);
        assert_eq!(db.relation("OUstds").unwrap().len(), 7);
    }

    #[test]
    fn cfd_customers_dirty_rate() {
        let db = cfd_customers(20, 1.0, 3);
        assert_eq!(db.total_tuples(), 20);
        let cfd = cqa_constraints::ConditionalFd::new(
            "Cust",
            vec![("CC", Some(cqa_relation::Value::int(44))), ("Zip", None)],
            "Street",
            None,
        );
        assert!(!cfd.is_satisfied(&db).unwrap());
        let clean = cfd_customers(20, 0.0, 3);
        assert!(cfd.is_satisfied(&clean).unwrap());
    }
}
