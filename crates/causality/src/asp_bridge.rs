//! Cause and responsibility computation through repair programs
//! (§7, Example 7.2 of the paper).
//!
//! On top of the repair program of `κ(Q)` we add the paper's query rules
//!
//! ```text
//! ans(t)        :- P'(t, x̄, d).                       (one per predicate)
//! caucon(t, t') :- P'(t, x̄, d), P''(t', ȳ, d) [, t ≠ t'].
//! preresp(t, n) :- #count{t' : caucon(t, t')} = n.    (stratified count)
//! ```
//!
//! Causes are the brave consequences of `ans`; a cause's responsibility is
//! `1 / (1 + m)` where `m` is the minimum `preresp` count over the models
//! deleting it. Adding the weak constraints of Example 4.2 restricts the
//! models to C-repairs and yields the most responsible causes.

use crate::causes::Cause;
use crate::via_repairs::kappa;
use cqa_asp::{apply_count_rules, ins_pred, primed, AspRule, CountRule, RepairProgram};
use cqa_constraints::ConstraintSet;
use cqa_query::{Atom, CmpOp, Comparison, Term, UnionQuery};
use cqa_relation::{Database, RelationError, Tid};
use std::collections::{BTreeMap, BTreeSet};

/// Build the extended repair program of `κ(Q)` with `ans`/`caucon` rules and
/// the `preresp` count rule.
pub fn causality_program(
    db: &Database,
    query: &UnionQuery,
) -> Result<RepairProgram, RelationError> {
    let kappas = query
        .disjuncts
        .iter()
        .map(kappa)
        .collect::<Result<Vec<_>, _>>()?;
    let sigma = ConstraintSet::from_iter(kappas);
    let mut rp = RepairProgram::build(db, &sigma)?;

    // Predicates (relations) mentioned; add ans and caucon rules.
    let rels: Vec<(String, usize)> = rp
        .relations
        .iter()
        .filter_map(|r| db.relation(r).map(|rel| (r.clone(), rel.schema().arity())))
        .collect();

    let deleted_atom = |rp: &mut RepairProgram, rel: &str, arity: usize, tag: &str| -> Atom {
        let t = rp.program.vars.var(format!("tc_{tag}_{rel}"));
        let mut terms: Vec<Term> = vec![Term::Var(t)];
        for i in 0..arity {
            terms.push(Term::Var(
                rp.program.vars.var(format!("xc_{tag}_{rel}_{i}")),
            ));
        }
        terms.push(Term::Const(cqa_relation::Value::str("d")));
        Atom::new(primed(rel), terms)
    };

    for (rel, arity) in &rels {
        // ans(t) :- P'(t, x̄, d).
        let del = deleted_atom(&mut rp, rel, *arity, "ans");
        let t_var = del.terms[0].clone();
        rp.program.push(AspRule {
            head: vec![Atom::new("ans", vec![t_var])],
            pos: vec![del],
            neg: Vec::new(),
            comparisons: Vec::new(),
        });
    }
    for (rel_a, arity_a) in &rels {
        for (rel_b, arity_b) in &rels {
            let a = deleted_atom(&mut rp, rel_a, *arity_a, &format!("cc1_{rel_b}"));
            let b = deleted_atom(&mut rp, rel_b, *arity_b, &format!("cc2_{rel_a}"));
            let ta = a.terms[0].clone();
            let tb = b.terms[0].clone();
            let comparisons = vec![Comparison::new(ta.clone(), CmpOp::Ne, tb.clone())];
            rp.program.push(AspRule {
                head: vec![Atom::new("caucon", vec![ta, tb])],
                pos: vec![a, b],
                neg: Vec::new(),
                comparisons,
            });
        }
    }
    rp.program.counts.push(CountRule {
        head_predicate: "preresp".into(),
        source_predicate: "caucon".into(),
        group_positions: vec![0],
    });
    Ok(rp)
}

/// Causes and responsibilities computed by solving the causality program:
/// brave `ans` membership for causes, minimum `preresp` for responsibility.
pub fn causes_via_asp(db: &Database, query: &UnionQuery) -> Result<Vec<Cause>, RelationError> {
    let rp = causality_program(db, query)?;
    let g = rp.ground()?;
    let models = cqa_asp::stable_models(&g);

    // tid → (min contingency count, witnessing contingency tids).
    let mut best: BTreeMap<Tid, (usize, BTreeSet<Tid>)> = BTreeMap::new();
    for m in &models {
        // Deleted tids in this model (the model's cause + contingency pool).
        let mut deleted: BTreeSet<Tid> = BTreeSet::new();
        for &id in m {
            let atom = g.atom(id);
            if atom.predicate == "ans" {
                if let Some(t) = atom.args.at(0).as_i64() {
                    deleted.insert(Tid(t as u64));
                }
            }
        }
        if deleted.is_empty() {
            continue;
        }
        // preresp counts per tid, derived by the stratified count pass.
        let derived = apply_count_rules(&rp.program, &g, m);
        let mut counts: BTreeMap<Tid, usize> = deleted.iter().map(|&t| (t, 0)).collect();
        for atom in &derived {
            if atom.predicate == "preresp" {
                if let (Some(t), Some(n)) = (atom.args.at(0).as_i64(), atom.args.at(1).as_i64()) {
                    counts.insert(Tid(t as u64), n as usize);
                }
            }
        }
        for (&tid, &m_count) in &counts {
            let gamma: BTreeSet<Tid> = deleted.iter().copied().filter(|&t| t != tid).collect();
            debug_assert_eq!(gamma.len(), m_count);
            let better = best.get(&tid).is_none_or(|(old, _)| m_count < *old);
            if better {
                best.insert(tid, (m_count, gamma));
            }
        }
    }
    Ok(best
        .into_iter()
        .map(|(tid, (m_count, gamma))| Cause {
            tid,
            responsibility: 1.0 / (1.0 + m_count as f64),
            counterfactual: m_count == 0,
            min_contingency: gamma,
        })
        .collect())
}

/// Most responsible causes via weak constraints (C-repair models), the
/// paper's closing move in Example 7.2.
pub fn mracs_via_asp(db: &Database, query: &UnionQuery) -> Result<Vec<Cause>, RelationError> {
    let mut rp = causality_program(db, query)?;
    rp.add_c_repair_weak_constraints();
    let g = rp.ground()?;
    let models = cqa_asp::stable_models(&g);
    let (opt, _) = cqa_asp::optimal_among(&g, models);
    let mut out: BTreeMap<Tid, Cause> = BTreeMap::new();
    for m in &opt {
        let deleted: BTreeSet<Tid> = m
            .iter()
            .filter_map(|&id| {
                let atom = g.atom(id);
                (atom.predicate == "ans")
                    .then(|| atom.args.at(0).as_i64().map(|t| Tid(t as u64)))
                    .flatten()
            })
            .collect();
        for &tid in &deleted {
            let gamma: BTreeSet<Tid> = deleted.iter().copied().filter(|&t| t != tid).collect();
            out.entry(tid).or_insert_with(|| Cause {
                tid,
                responsibility: 1.0 / (1.0 + gamma.len() as f64),
                counterfactual: gamma.is_empty(),
                min_contingency: gamma,
            });
        }
    }
    let _ = ins_pred("unused"); // (insertions cannot occur for κ(Q) programs)
    Ok(out.into_values().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causes::actual_causes;
    use cqa_query::parse_query;
    use cqa_relation::{tuple, RelationSchema};

    fn example_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        db.insert("R", tuple!["a4", "a3"]).unwrap(); // ι1
        db.insert("R", tuple!["a2", "a1"]).unwrap(); // ι2
        db.insert("R", tuple!["a3", "a3"]).unwrap(); // ι3
        db.insert("S", tuple!["a4"]).unwrap(); // ι4
        db.insert("S", tuple!["a2"]).unwrap(); // ι5
        db.insert("S", tuple!["a3"]).unwrap(); // ι6
        db
    }

    fn q() -> UnionQuery {
        UnionQuery::single(parse_query("Q() :- S(x), R(x, y), S(y)").unwrap())
    }

    #[test]
    fn example_7_2_asp_causes_match_direct() {
        let db = example_db();
        let via_asp = causes_via_asp(&db, &q()).unwrap();
        let direct = actual_causes(&db, &q());
        let norm = |cs: &[Cause]| -> Vec<(Tid, String)> {
            let mut v: Vec<_> = cs
                .iter()
                .map(|c| (c.tid, format!("{:.4}", c.responsibility)))
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm(&via_asp), norm(&direct));
    }

    #[test]
    fn example_7_2_caucon_pairs_present() {
        // From model M2 (repair D2 deleting {ι1, ι3}) the paper reads off
        // CauCon(ι1, ι3) and CauCon(ι3, ι1).
        let db = example_db();
        let rp = causality_program(&db, &q()).unwrap();
        let g = rp.ground().unwrap();
        let models = cqa_asp::stable_models(&g);
        let caucon_sets: Vec<BTreeSet<(i64, i64)>> = models
            .iter()
            .map(|m| {
                m.iter()
                    .map(|&id| g.atom(id))
                    .filter(|a| a.predicate == "caucon")
                    .map(|a| {
                        (
                            a.args.at(0).as_i64().unwrap(),
                            a.args.at(1).as_i64().unwrap(),
                        )
                    })
                    .collect()
            })
            .collect();
        assert!(caucon_sets
            .iter()
            .any(|s| s.contains(&(1, 3)) && s.contains(&(3, 1)) && s.len() == 2));
    }

    #[test]
    fn mracs_via_asp_match_example_7_1() {
        let db = example_db();
        let mracs = mracs_via_asp(&db, &q()).unwrap();
        assert_eq!(mracs.len(), 1);
        assert_eq!(mracs[0].tid, Tid(6));
        assert!(mracs[0].counterfactual);
    }

    #[test]
    fn false_query_no_asp_causes() {
        let mut db = example_db();
        db.delete(Tid(6)).unwrap();
        assert!(causes_via_asp(&db, &q()).unwrap().is_empty());
        assert!(mracs_via_asp(&db, &q()).unwrap().is_empty());
    }
}
