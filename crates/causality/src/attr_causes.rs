//! Attribute-level causes (§7.1; Example 7.3), via the attribute-based null
//! repairs of §4.3.
//!
//! For a Boolean CQ `Q` true in `D`, the minimal attribute repairs of `D`
//! w.r.t. `κ(Q)` are sets of cell changes; each change set `{c} ∪ Γ`
//! identifies the cell `c` as an actual cause with contingency set Γ (of
//! cells). Responsibility is `1/(1 + |Γ|)` for the smallest such Γ.

use cqa_constraints::ConstraintSet;
use cqa_core::attr_repair::{attribute_repairs, CellChange};
use cqa_query::UnionQuery;
use cqa_relation::{Database, RelationError};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An attribute-level actual cause.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrCause {
    /// The causing cell.
    pub cell: CellChange,
    /// `1 / (1 + |Γ|)` for a smallest cell-contingency set.
    pub responsibility: f64,
    /// One smallest contingency set of cells.
    pub min_contingency: BTreeSet<CellChange>,
    /// Counterfactual (`Γ = ∅`)?
    pub counterfactual: bool,
}

impl fmt::Display for AttrCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (ρ = {})", self.cell, self.responsibility)
    }
}

/// Attribute-level actual causes of a Boolean UCQ being true in `db`.
pub fn attribute_causes(
    db: &Database,
    query: &UnionQuery,
) -> Result<Vec<AttrCause>, RelationError> {
    let kappas = query
        .disjuncts
        .iter()
        .map(crate::via_repairs::kappa)
        .collect::<Result<Vec<_>, _>>()?;
    let sigma = ConstraintSet::from_iter(kappas);
    let repairs = attribute_repairs(db, &sigma)?;
    let mut best: BTreeMap<CellChange, BTreeSet<CellChange>> = BTreeMap::new();
    for r in &repairs {
        for &cell in &r.changes {
            let mut gamma = r.changes.clone();
            gamma.remove(&cell);
            let better = best.get(&cell).is_none_or(|old| gamma.len() < old.len());
            if better {
                best.insert(cell, gamma);
            }
        }
    }
    Ok(best
        .into_iter()
        .map(|(cell, gamma)| AttrCause {
            cell,
            responsibility: 1.0 / (1.0 + gamma.len() as f64),
            counterfactual: gamma.is_empty(),
            min_contingency: gamma,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::parse_query;
    use cqa_relation::{tuple, RelationSchema, Tid};

    fn example_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        db.insert("R", tuple!["a4", "a3"]).unwrap(); // ι1
        db.insert("R", tuple!["a2", "a1"]).unwrap(); // ι2
        db.insert("R", tuple!["a3", "a3"]).unwrap(); // ι3
        db.insert("S", tuple!["a4"]).unwrap(); // ι4
        db.insert("S", tuple!["a2"]).unwrap(); // ι5
        db.insert("S", tuple!["a3"]).unwrap(); // ι6
        db
    }

    fn q() -> UnionQuery {
        UnionQuery::single(parse_query("Q() :- S(x), R(x, y), S(y)").unwrap())
    }

    #[test]
    fn example_7_3_attribute_causes() {
        let db = example_db();
        let causes = attribute_causes(&db, &q()).unwrap();
        let find = |tid: u64, pos: usize| {
            causes.iter().find(|c| {
                c.cell
                    == CellChange {
                        tid: Tid(tid),
                        position: pos,
                    }
            })
        };
        // ι6[1] (paper notation; 0-based position 0) is a counterfactual
        // cause.
        let i6 = find(6, 0).expect("ι6[1] is a cause");
        assert!(i6.counterfactual);
        assert_eq!(i6.responsibility, 1.0);
        // ι1[2] is an actual cause with a singleton contingency (the paper
        // exhibits {ι3[2]}).
        let i1 = find(1, 1).expect("ι1[2] is a cause");
        assert!(!i1.counterfactual);
        assert_eq!(i1.responsibility, 0.5);
        // And symmetrically ι3[2].
        let i3 = find(3, 1).expect("ι3[2] is a cause");
        assert_eq!(i3.responsibility, 0.5);
        // ι2's cells cause nothing.
        assert!(find(2, 0).is_none());
        assert!(find(2, 1).is_none());
    }

    #[test]
    fn false_query_has_no_attribute_causes() {
        let mut db = example_db();
        db.delete(Tid(6)).unwrap();
        let causes = attribute_causes(&db, &q()).unwrap();
        assert!(causes.is_empty());
    }

    #[test]
    fn display_uses_paper_notation() {
        let db = example_db();
        let causes = attribute_causes(&db, &q()).unwrap();
        let i6 = causes.iter().find(|c| c.cell.tid == Tid(6)).unwrap();
        assert!(i6.to_string().starts_with("ι6[1]"));
    }
}
