//! Actual causes, contingency sets and responsibility for query answers
//! (§7 of the paper; Meliou et al. \[91\], Bertossi–Salimi \[26\]).
//!
//! For a Boolean UCQ `Q` true in `D`:
//!
//! * τ ∈ D is a **counterfactual cause** if `D ∖ {τ} ⊭ Q`;
//! * τ is an **actual cause** if some contingency set Γ makes it
//!   counterfactual in `D ∖ Γ`;
//! * its **responsibility** is `1 / (1 + |Γ|)` for the smallest such Γ.
//!
//! The implementation works on the *support hyper-graph*: each witness of
//! `Q` contributes its matched tid-set as a hyper-edge (the exact dual of
//! the conflict hyper-graph of the DC `κ(Q) = ¬Q`). With superset edges
//! dropped, every vertex of an edge is an actual cause (the poly-time result
//! for CQs/UCQs the paper cites), and responsibility is computed by a
//! branch-and-bound minimum hitting set through the candidate tuple — the
//! `FP^NP(log n)`-flavoured part.

// audit:exponential — contingency-set search per candidate cause; every search loop must thread a Budget.
use cqa_constraints::{ConflictComponents, ConflictHypergraph};
use cqa_exec::{Budget, Outcome};
use cqa_query::{witnesses, NullSemantics, UnionQuery};
use cqa_relation::{Database, DeltaView, Facts, Tid};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// An actual cause for a query answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Cause {
    /// The causing tuple.
    pub tid: Tid,
    /// `1 / (1 + |Γ|)` for a smallest contingency set Γ.
    pub responsibility: f64,
    /// One smallest contingency set.
    pub min_contingency: BTreeSet<Tid>,
    /// Is it a counterfactual cause (`Γ = ∅`)?
    pub counterfactual: bool,
}

impl fmt::Display for Cause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (ρ = {}", self.tid, self.responsibility)?;
        if self.counterfactual {
            write!(f, ", counterfactual")?;
        }
        if !self.min_contingency.is_empty() {
            write!(f, ", Γ = {{")?;
            for (i, t) in self.min_contingency.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, ")")
    }
}

/// The support hyper-graph of a Boolean UCQ: one edge per witness (matched
/// tid-set), superset edges dropped.
pub fn support_hypergraph<F: Facts + ?Sized>(facts: &F, query: &UnionQuery) -> ConflictHypergraph {
    let mut edges: Vec<BTreeSet<Tid>> = Vec::new();
    for cq in &query.disjuncts {
        for w in witnesses(facts, cq, NullSemantics::Structural) {
            edges.push(w.tids.into_iter().collect());
        }
    }
    ConflictHypergraph::new(facts.visible_tids(), edges)
}

/// All actual causes of a Boolean UCQ being true in `db`, with
/// responsibilities and minimum contingency sets. Empty if `Q` is false.
///
/// For a non-Boolean query and a specific answer `ā`, substitute the answer
/// constants into the head first (causes are defined per answer).
///
/// ```
/// use cqa_relation::{tuple, Database, RelationSchema, Tid};
/// use cqa_query::{parse_query, UnionQuery};
///
/// let mut db = Database::new();
/// db.create_relation(RelationSchema::new("P", ["A"]))?;
/// db.insert("P", tuple!["a"])?; // ι1
/// db.insert("P", tuple!["b"])?; // ι2
/// let q = UnionQuery::single(parse_query("Q() :- P(x)")?);
///
/// // Two independent witnesses: each tuple is an actual cause with ρ = ½.
/// let causes = cqa_causality::actual_causes(&db, &q);
/// assert_eq!(causes.len(), 2);
/// assert!(causes.iter().all(|c| c.responsibility == 0.5));
/// # Ok::<(), cqa_relation::RelationError>(())
/// ```
pub fn actual_causes<F: Facts + ?Sized>(facts: &F, query: &UnionQuery) -> Vec<Cause> {
    actual_causes_budgeted(facts, query, &Budget::unlimited()).into_value()
}

/// Budget-aware [`actual_causes`].
///
/// One step is charged per candidate tuple, one item per cause emitted, and
/// the nested minimum-hitting-set searches share the same budget. A
/// truncated result is a *sound subset* of the actual causes: every listed
/// tuple really is a cause and its contingency set is a genuine witness,
/// but (a) further causes may have been skipped and (b) a contingency set
/// found after the budget latched may be larger than minimum, so the
/// reported responsibility is then a **lower bound**. Under a step or item
/// budget candidates are processed sequentially in tid order, so the
/// truncated value is independent of the thread count.
pub fn actual_causes_budgeted<F: Facts + ?Sized>(
    facts: &F,
    query: &UnionQuery,
    budget: &Budget,
) -> Outcome<Vec<Cause>> {
    let graph = support_hypergraph(facts, query);
    if graph.edges.is_empty() {
        return budget.outcome_with(Vec::new(), 0); // Q false: no causes
    }
    // Every vertex of the (antichain) edge set is an actual cause, and each
    // candidate's responsibility (the FP^NP(log n)-flavoured part) only
    // reads the shared graph — compute them in parallel, in candidate
    // order. The nested hitting-set search inside runs inline on its
    // worker (`cqa-exec` reports 1 thread inside the pool).
    let candidates: Vec<Tid> = graph
        .edges
        .iter()
        .flatten()
        .copied()
        .collect::<BTreeSet<Tid>>()
        .into_iter()
        .collect();
    // Responsibility is component-local (§4.1 locality dual): compute the
    // shared cross-component context once, not per candidate.
    let ctx = CompCtx::build(&graph, budget);
    let compute = |tid: Tid| {
        let (rho, gamma) = match &ctx {
            Some(ctx) => responsibility_factored(ctx, tid, budget),
            None => responsibility_in_graph_budgeted(&graph, tid, budget),
        };
        debug_assert!(rho > 0.0);
        Cause {
            tid,
            responsibility: rho,
            counterfactual: gamma.is_empty(),
            min_contingency: gamma,
        }
    };
    let causes: Vec<Cause> = if budget.forces_sequential() || cqa_exec::threads() <= 1 {
        let mut out = Vec::new();
        for &tid in &candidates {
            if !budget.tick() {
                break;
            }
            out.push(compute(tid));
            if !budget.charge_item() {
                break;
            }
        }
        out
    } else {
        cqa_exec::par_map(&candidates, |&tid| {
            if !budget.tick() {
                return None;
            }
            let c = compute(tid);
            let _ = budget.charge_item();
            Some(c)
        })
        .into_iter()
        .flatten()
        .collect()
    };
    let explored = causes.len() as u64;
    budget.outcome_with(causes, explored)
}

/// The responsibility of `tid` (0.0 when it is not an actual cause), with a
/// witnessing minimum contingency set.
pub fn responsibility<F: Facts + ?Sized>(
    facts: &F,
    query: &UnionQuery,
    tid: Tid,
) -> (f64, BTreeSet<Tid>) {
    let graph = support_hypergraph(facts, query);
    if graph.edges.is_empty() || !graph.edges.iter().any(|e| e.contains(&tid)) {
        return (0.0, BTreeSet::new());
    }
    match CompCtx::build(&graph, &Budget::unlimited()) {
        Some(ctx) => responsibility_factored(&ctx, tid, &Budget::unlimited()),
        None => responsibility_in_graph(&graph, tid),
    }
}

/// Shared cross-component context for the factored responsibility path:
/// the component decomposition of the support hyper-graph, a tid → component
/// index, and one **minimum** hitting set per component. A candidate's
/// global contingency set is its component-local optimum plus every *other*
/// component's fixed minimum — those minima do not depend on the candidate,
/// so they are computed once per graph and shared by all candidates.
struct CompCtx {
    components: Arc<ConflictComponents>,
    index: BTreeMap<Tid, usize>,
    minima: Vec<BTreeSet<Tid>>,
}

impl CompCtx {
    /// `None` when the graph has fewer than two components (the
    /// factorization would be the identity).
    fn build(graph: &ConflictHypergraph, budget: &Budget) -> Option<CompCtx> {
        let components = graph.components();
        if components.components.len() < 2 {
            return None;
        }
        let minimum = |c: &cqa_constraints::ComponentGraph| {
            c.graph().minimum_hitting_set_budgeted(budget).into_value()
        };
        let minima: Vec<BTreeSet<Tid>> = if budget.forces_sequential() || cqa_exec::threads() <= 1 {
            components.components.iter().map(minimum).collect()
        } else {
            cqa_exec::par_map(&components.components, minimum)
        };
        let index = components.component_index();
        Some(CompCtx {
            components,
            index,
            minima,
        })
    }
}

/// Component-local [`responsibility_in_graph_budgeted`]: the contingency
/// search for `tid` runs inside its own conflict component only. Supports
/// in other components are hit by their fixed shared minima from
/// [`CompCtx`] — the reported ρ equals the monolithic search's (the global
/// minimum splits as local minimum + Σ other components' minima), though
/// the Γ *witness* may be a different, equally small set.
fn responsibility_factored(ctx: &CompCtx, tid: Tid, budget: &Budget) -> (f64, BTreeSet<Tid>) {
    let Some(&comp) = ctx.index.get(&tid) else {
        // Not on any support edge: not a cause.
        return (0.0, BTreeSet::new());
    };
    let local = ctx.components.components[comp].graph();
    let others: Vec<&BTreeSet<Tid>> = local.edges.iter().filter(|e| !e.contains(&tid)).collect();
    let mut best: Option<BTreeSet<Tid>> = None;
    for e in local.edges.iter().filter(|e| e.contains(&tid)) {
        if best.is_some() && budget.exhausted() {
            break;
        }
        let mut forbidden = e.clone();
        forbidden.remove(&tid);
        // Other components' supports are disjoint from `forbidden`, so only
        // the local ones can become infeasible.
        let mut reduced: Vec<BTreeSet<Tid>> = Vec::with_capacity(others.len());
        let mut feasible = true;
        for f in &others {
            let r: BTreeSet<Tid> = f.difference(&forbidden).copied().collect();
            if r.is_empty() {
                feasible = false;
                break;
            }
            reduced.push(r);
        }
        if !feasible {
            continue;
        }
        let sub = ConflictHypergraph::new(local.nodes.clone(), reduced);
        let gamma = sub.minimum_hitting_set_budgeted(budget).into_value();
        if best.as_ref().is_none_or(|b| gamma.len() < b.len()) {
            best = Some(gamma);
        }
    }
    match best {
        Some(mut gamma) => {
            for (d, h) in ctx.minima.iter().enumerate() {
                if d != comp {
                    gamma.extend(h.iter().copied());
                }
            }
            let rho = 1.0 / (1.0 + gamma.len() as f64);
            (rho, gamma)
        }
        None => (0.0, BTreeSet::new()),
    }
}

/// Smallest contingency set for `tid`.
///
/// Γ must (a) break every support not containing `tid` — otherwise `Q`
/// survives `D ∖ (Γ ∪ {τ})` — while (b) leaving some support `e ∋ τ`
/// untouched apart from τ itself, otherwise `Q` is already false in
/// `D ∖ Γ`. So: for each candidate private support `e ∋ τ`, forbid the
/// vertices of `e ∖ {τ}` and hit the remaining supports minimally; take the
/// best `e`. (Equivalently: ρ(τ) = 1 / min{|H| : H minimal hitting set of
/// the supports with τ ∈ H} — the S-repair connection of §7.)
fn responsibility_in_graph(graph: &ConflictHypergraph, tid: Tid) -> (f64, BTreeSet<Tid>) {
    responsibility_in_graph_budgeted(graph, tid, &Budget::unlimited())
}

fn responsibility_in_graph_budgeted(
    graph: &ConflictHypergraph,
    tid: Tid,
    budget: &Budget,
) -> (f64, BTreeSet<Tid>) {
    let others: Vec<&BTreeSet<Tid>> = graph.edges.iter().filter(|e| !e.contains(&tid)).collect();
    let mut best: Option<BTreeSet<Tid>> = None;
    for e in graph.edges.iter().filter(|e| e.contains(&tid)) {
        // Once latched, remaining private supports are skipped and the
        // inner searches fall back to greedy witnesses: `best` stays a
        // valid contingency set, possibly above minimum size.
        if best.is_some() && budget.exhausted() {
            break;
        }
        let mut forbidden = e.clone();
        forbidden.remove(&tid);
        // Γ may not use `forbidden` vertices; an edge losing all its
        // vertices makes this private support infeasible.
        let mut reduced: Vec<BTreeSet<Tid>> = Vec::with_capacity(others.len());
        let mut feasible = true;
        for f in &others {
            let r: BTreeSet<Tid> = f.difference(&forbidden).copied().collect();
            if r.is_empty() {
                feasible = false;
                break;
            }
            reduced.push(r);
        }
        if !feasible {
            continue;
        }
        let sub = ConflictHypergraph::new(graph.nodes.clone(), reduced);
        let gamma = sub.minimum_hitting_set_budgeted(budget).into_value();
        if best.as_ref().is_none_or(|b| gamma.len() < b.len()) {
            best = Some(gamma);
        }
    }
    match best {
        Some(gamma) => {
            let rho = 1.0 / (1.0 + gamma.len() as f64);
            (rho, gamma)
        }
        None => (0.0, BTreeSet::new()),
    }
}

/// The most responsible actual causes (MRACs): causes of maximum
/// responsibility. Via the C-repair connection, these are the tuples of the
/// minimum hitting sets of the support hyper-graph.
pub fn most_responsible_causes<F: Facts + ?Sized>(facts: &F, query: &UnionQuery) -> Vec<Cause> {
    let causes = actual_causes(facts, query);
    let Some(max) = causes
        .iter()
        .map(|c| c.responsibility)
        .max_by(f64::total_cmp)
    else {
        return Vec::new();
    };
    causes
        .into_iter()
        .filter(|c| c.responsibility == max)
        .collect()
}

/// Generic causality for any *monotone* Boolean query given as a closure
/// (e.g. a Datalog query: materialize and test). Breadth-first search over
/// contingency sets by size — exponential, as expected for Datalog causality
/// (the paper notes cause computation is NP-complete there).
///
/// `max_contingency` bounds `|Γ|`; `None` searches up to `|D| − 1`.
pub fn actual_causes_monotone(
    db: &Database,
    holds: &dyn Fn(&dyn Facts) -> bool,
    max_contingency: Option<usize>,
) -> Vec<Cause> {
    actual_causes_monotone_budgeted(db, holds, max_contingency, &Budget::unlimited()).into_value()
}

/// Budget-aware [`actual_causes_monotone`]: one step per query probe. The
/// search is sequential and visits candidates in tid order and contingency
/// sets smallest-first, so a truncated result is a sound subset of the
/// causes — each listed cause was fully verified, with a genuinely minimum
/// contingency set, before the budget latched — and is deterministic for
/// step/item budgets.
pub fn actual_causes_monotone_budgeted(
    db: &Database,
    holds: &dyn Fn(&dyn Facts) -> bool,
    max_contingency: Option<usize>,
    budget: &Budget,
) -> Outcome<Vec<Cause>> {
    if !budget.tick() || !holds(db) {
        return budget.outcome_with(Vec::new(), 0);
    }
    let tids: Vec<Tid> = db.tids().into_iter().collect();
    let cap = max_contingency.unwrap_or(tids.len().saturating_sub(1));

    /// Visit every `k`-subset of `pool[start..]`; `visit` returns `true` to
    /// stop early (a smallest contingency set was found).
    fn combos(
        pool: &[Tid],
        k: usize,
        start: usize,
        cur: &mut Vec<Tid>,
        visit: &mut dyn FnMut(&[Tid]) -> bool,
    ) -> bool {
        if cur.len() == k {
            return visit(cur);
        }
        for i in start..pool.len() {
            cur.push(pool[i]);
            if combos(pool, k, i + 1, cur, visit) {
                return true;
            }
            cur.pop();
        }
        false
    }

    // Probe `D ∖ Γ` through a zero-clone deletion view over `db`; the
    // exponentially many probes never materialize an instance.
    let without = |excluded: &BTreeSet<Tid>| -> bool { holds(&DeltaView::new(db, excluded, &[])) };

    let mut out = Vec::new();
    'candidates: for &tid in &tids {
        let others: Vec<Tid> = tids.iter().copied().filter(|&t| t != tid).collect();
        'sizes: for k in 0..=cap.min(others.len()) {
            let mut cur = Vec::with_capacity(k);
            let mut found: Option<BTreeSet<Tid>> = None;
            combos(&others, k, 0, &mut cur, &mut |gamma_slice| {
                // `true` stops the enumeration; with `found` still `None`
                // the exhaustion check below abandons this candidate.
                if !budget.tick() {
                    return true;
                }
                let gamma: BTreeSet<Tid> = gamma_slice.iter().copied().collect();
                if !without(&gamma) {
                    return false; // (b) fails: Q must survive D ∖ Γ
                }
                let mut with_tid = gamma.clone();
                with_tid.insert(tid);
                if without(&with_tid) {
                    return false; // (d) fails: removing τ must kill Q
                }
                found = Some(gamma);
                true
            });
            if let Some(gamma) = found {
                out.push(Cause {
                    tid,
                    responsibility: 1.0 / (1.0 + k as f64),
                    counterfactual: k == 0,
                    min_contingency: gamma,
                });
                let _ = budget.charge_item();
                break 'sizes;
            }
            if budget.exhausted() {
                break 'candidates;
            }
        }
    }
    let explored = out.len() as u64;
    budget.outcome_with(out, explored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::{parse_query, UnionQuery};
    use cqa_relation::{tuple, RelationSchema};

    /// Example 3.5/7.1's instance.
    fn example_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        db.insert("R", tuple!["a4", "a3"]).unwrap(); // ι1
        db.insert("R", tuple!["a2", "a1"]).unwrap(); // ι2
        db.insert("R", tuple!["a3", "a3"]).unwrap(); // ι3
        db.insert("S", tuple!["a4"]).unwrap(); // ι4
        db.insert("S", tuple!["a2"]).unwrap(); // ι5
        db.insert("S", tuple!["a3"]).unwrap(); // ι6
        db
    }

    fn q() -> UnionQuery {
        UnionQuery::single(parse_query("Q() :- S(x), R(x, y), S(y)").unwrap())
    }

    #[test]
    fn example_7_1_causes_and_responsibilities() {
        let db = example_db();
        let causes = actual_causes(&db, &q());
        let by_tid = |t: u64| causes.iter().find(|c| c.tid == Tid(t));
        // S(a3) = ι6 is a counterfactual cause with ρ = 1.
        let i6 = by_tid(6).expect("ι6 is a cause");
        assert!(i6.counterfactual);
        assert_eq!(i6.responsibility, 1.0);
        // R(a4, a3) = ι1, R(a3, a3) = ι3, S(a4) = ι4: actual causes, ρ = ½.
        for t in [1, 3, 4] {
            let c = by_tid(t).unwrap_or_else(|| panic!("ι{t} should be a cause"));
            assert!(!c.counterfactual);
            assert_eq!(c.responsibility, 0.5, "ι{t}");
            assert_eq!(c.min_contingency.len(), 1);
        }
        // ι2 and ι5 are not causes.
        assert!(by_tid(2).is_none());
        assert!(by_tid(5).is_none());
        assert_eq!(causes.len(), 4);
    }

    #[test]
    fn example_7_1_contingency_sets() {
        let db = example_db();
        let causes = actual_causes(&db, &q());
        let i1 = causes.iter().find(|c| c.tid == Tid(1)).unwrap();
        // The paper: R(a4, a3) has contingency set {R(a3, a3)} = {ι3} — or
        // symmetric alternatives through the S tuples; the minimum size is 1.
        assert_eq!(i1.min_contingency.len(), 1);
    }

    #[test]
    fn mrac_is_the_counterfactual_cause() {
        let db = example_db();
        let mracs = most_responsible_causes(&db, &q());
        assert_eq!(mracs.len(), 1);
        assert_eq!(mracs[0].tid, Tid(6));
    }

    #[test]
    fn false_query_has_no_causes() {
        let mut db = example_db();
        db.delete(Tid(6)).unwrap();
        assert!(actual_causes(&db, &q()).is_empty());
        assert_eq!(responsibility(&db, &q(), Tid(1)).0, 0.0);
    }

    #[test]
    fn non_cause_has_zero_responsibility() {
        let db = example_db();
        assert_eq!(responsibility(&db, &q(), Tid(2)).0, 0.0);
        let (rho, gamma) = responsibility(&db, &q(), Tid(6));
        assert_eq!(rho, 1.0);
        assert!(gamma.is_empty());
    }

    #[test]
    fn ucq_causes_union_supports() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("P", ["A"])).unwrap();
        db.create_relation(RelationSchema::new("Q", ["A"])).unwrap();
        db.insert("P", tuple!["a"]).unwrap(); // ι1
        db.insert("Q", tuple!["b"]).unwrap(); // ι2
        let u = cqa_query::parse_ucq("Ans() :- P(x)\nAns() :- Q(x)").unwrap();
        let causes = actual_causes(&db, &u);
        // Both are causes with ρ = 1/2 (delete the other first).
        assert_eq!(causes.len(), 2);
        assert!(causes.iter().all(|c| c.responsibility == 0.5));
    }

    #[test]
    fn monotone_generic_agrees_with_hypergraph_path() {
        let db = example_db();
        let query = q();
        let generic = actual_causes_monotone(
            &db,
            &|d: &dyn Facts| cqa_query::holds_ucq(d, &query, NullSemantics::Structural),
            None,
        );
        let fast = actual_causes(&db, &query);
        let gs: BTreeSet<(Tid, String)> = generic
            .iter()
            .map(|c| (c.tid, format!("{:.3}", c.responsibility)))
            .collect();
        let fs: BTreeSet<(Tid, String)> = fast
            .iter()
            .map(|c| (c.tid, format!("{:.3}", c.responsibility)))
            .collect();
        assert_eq!(gs, fs);
    }

    #[test]
    fn budgeted_causes_exact_with_ample_budget() {
        let db = example_db();
        let outcome = actual_causes_budgeted(&db, &q(), &Budget::steps(1_000_000));
        assert!(outcome.is_exact());
        let exact = actual_causes(&db, &q());
        assert_eq!(outcome.value().len(), exact.len());
    }

    #[test]
    fn budgeted_causes_truncate_to_sound_subset() {
        let db = example_db();
        let exact = actual_causes(&db, &q());
        // A two-step budget: at most the first candidates get processed.
        let outcome = actual_causes_budgeted(&db, &q(), &Budget::steps(2));
        assert!(outcome.is_truncated());
        for c in outcome.value() {
            let reference = exact
                .iter()
                .find(|e| e.tid == c.tid)
                .expect("truncated cause must be a real cause");
            // Responsibility under truncation is a lower bound.
            assert!(c.responsibility <= reference.responsibility + 1e-9);
        }
    }

    #[test]
    fn budgeted_monotone_causes_are_verified() {
        let db = example_db();
        let query = q();
        let holds = |d: &dyn Facts| cqa_query::holds_ucq(d, &query, NullSemantics::Structural);
        let exact = actual_causes_monotone(&db, &holds, None);
        let outcome = actual_causes_monotone_budgeted(&db, &holds, None, &Budget::steps(10));
        assert!(outcome.is_truncated());
        for c in outcome.value() {
            let reference = exact.iter().find(|e| e.tid == c.tid).expect("real cause");
            assert_eq!(c.responsibility, reference.responsibility);
        }
    }

    #[test]
    fn multi_component_responsibilities_match_the_monolithic_search() {
        // Example 7.1's support component {ι1, ι3, ι4, ι6} plus a disjoint
        // joint witness {ι7, ι8} from a second disjunct: two components.
        let mut db = example_db();
        db.create_relation(RelationSchema::new("U", ["A"])).unwrap();
        db.create_relation(RelationSchema::new("V", ["A"])).unwrap();
        db.insert("U", tuple!["e"]).unwrap(); // ι7
        db.insert("V", tuple!["e"]).unwrap(); // ι8
        let u = cqa_query::parse_ucq("Q() :- S(x), R(x, y), S(y)\nQ() :- U(x), V(x)").unwrap();
        let graph = support_hypergraph(&db, &u);
        assert_eq!(graph.components().components.len(), 2);
        let causes = actual_causes(&db, &u);
        let by_tid = |t: u64| {
            causes
                .iter()
                .find(|c| c.tid == Tid(t))
                .unwrap_or_else(|| panic!("ι{t} should be a cause"))
        };
        // ι6 was counterfactual in Example 7.1; the second component now
        // also needs breaking, so ρ drops to ½ — likewise for ι7/ι8, whose
        // contingency must break the first component (delete ι6).
        for t in [6, 7, 8] {
            assert_eq!(by_tid(t).responsibility, 0.5, "ι{t}");
        }
        for t in [1, 3, 4] {
            assert_eq!(by_tid(t).responsibility, 1.0 / 3.0, "ι{t}");
        }
        assert_eq!(causes.len(), 6);
        for c in &causes {
            // Monolithic reference search on the same graph: equal ρ and
            // |Γ| (the Γ witness itself may legitimately differ).
            let (rho, gamma) = responsibility_in_graph(&graph, c.tid);
            assert_eq!(c.responsibility, rho, "ι{}", c.tid.0);
            assert_eq!(c.min_contingency.len(), gamma.len(), "ι{}", c.tid.0);
            // The factored Γ is a genuine contingency witness: Q survives
            // D ∖ Γ and dies in D ∖ (Γ ∪ {τ}).
            let holds = |excluded: &BTreeSet<Tid>| {
                cqa_query::holds_ucq(
                    &DeltaView::new(&db, excluded, &[]),
                    &u,
                    NullSemantics::Structural,
                )
            };
            assert!(holds(&c.min_contingency), "ι{}", c.tid.0);
            let mut with_tid = c.min_contingency.clone();
            with_tid.insert(c.tid);
            assert!(!holds(&with_tid), "ι{}", c.tid.0);
        }
    }

    #[test]
    fn datalog_style_causality_via_generic_path() {
        // Reachability 1→3 over edges; each edge on the unique path is a
        // counterfactual cause.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("E", ["From", "To"]))
            .unwrap();
        db.insert("E", tuple![1, 2]).unwrap();
        db.insert("E", tuple![2, 3]).unwrap();
        db.insert("E", tuple![9, 9]).unwrap(); // irrelevant
        let program =
            cqa_query::parse_program("Path(x, y) :- E(x, y).\nPath(x, z) :- E(x, y), Path(y, z).")
                .unwrap();
        let goal = parse_query("Q() :- Path(1, 3)").unwrap();
        let holds = |d: &dyn Facts| {
            // Datalog evaluation wants an owned instance: snapshot the view.
            let out = program.evaluate(&d.snapshot()).unwrap();
            cqa_query::holds(&out, &goal, NullSemantics::Structural)
        };
        let causes = actual_causes_monotone(&db, &holds, None);
        assert_eq!(causes.len(), 2);
        assert!(causes.iter().all(|c| c.counterfactual));
    }
}
