//! Causal effect — the alternative to responsibility the paper points to at
//! the end of §7.2 (Salimi–Bertossi–Suciu–Van den Broeck \[102\]).
//!
//! Endogenous tuples become independent Bernoulli(½) events; the **causal
//! effect** of τ on a Boolean monotone query `Q` is the difference of
//! interventional probabilities
//!
//! `CE(τ) = P(Q | do(τ in)) − P(Q | do(τ out))`
//!
//! over the induced distribution of subinstances. Exogenous tuples are
//! always present. Computation is exact by enumeration over the endogenous
//! tuples *relevant to the query's support hyper-graph* (the others cancel),
//! which keeps the 2ⁿ manageable for the instance sizes of the paper's
//! examples.

use crate::causes::support_hypergraph;
use cqa_query::UnionQuery;
use cqa_relation::{Database, Tid};
use std::collections::BTreeSet;

/// The causal effect of `tid` on the Boolean UCQ `query`, with
/// `endogenous` tuples probabilistic and everything else exogenous
/// (always in). `None` if `tid` is not endogenous.
pub fn causal_effect(
    db: &Database,
    query: &UnionQuery,
    endogenous: &BTreeSet<Tid>,
    tid: Tid,
) -> Option<f64> {
    if !endogenous.contains(&tid) {
        return None;
    }
    // Supports of Q over the *full* instance; monotonicity makes the truth
    // of Q in a subinstance equivalent to one support surviving.
    let graph = support_hypergraph(db, query);
    // Only endogenous tuples on some support matter; others split both
    // probabilities identically and cancel.
    let relevant: Vec<Tid> = endogenous
        .iter()
        .copied()
        .filter(|t| *t != tid && graph.edges.iter().any(|e| e.contains(t)))
        .collect();
    let n = relevant.len();
    assert!(
        n <= 24,
        "causal effect enumeration capped at 24 relevant tuples"
    );

    let prob_with = |tid_in: bool| -> f64 {
        let mut sat = 0u64;
        for mask in 0u64..(1 << n) {
            let mut present: BTreeSet<Tid> = relevant
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, t)| *t)
                .collect();
            if tid_in {
                present.insert(tid);
            }
            // Q true iff some support's endogenous part ⊆ present (its
            // exogenous part is always in).
            let holds = graph.edges.iter().any(|e| {
                e.iter()
                    .all(|t| !endogenous.contains(t) || present.contains(t))
            });
            if holds {
                sat += 1;
            }
        }
        sat as f64 / (1u64 << n) as f64
    };

    Some(prob_with(true) - prob_with(false))
}

/// Causal effects of every endogenous tuple, sorted descending.
pub fn causal_effects(
    db: &Database,
    query: &UnionQuery,
    endogenous: &BTreeSet<Tid>,
) -> Vec<(Tid, f64)> {
    let mut out: Vec<(Tid, f64)> = endogenous
        .iter()
        .filter_map(|&t| causal_effect(db, query, endogenous, t).map(|e| (t, e)))
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::parse_query;
    use cqa_relation::{tuple, RelationSchema};

    /// Example 3.5's instance; all tuples endogenous.
    fn example() -> (Database, UnionQuery, BTreeSet<Tid>) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        db.insert("R", tuple!["a4", "a3"]).unwrap(); // ι1
        db.insert("R", tuple!["a2", "a1"]).unwrap(); // ι2
        db.insert("R", tuple!["a3", "a3"]).unwrap(); // ι3
        db.insert("S", tuple!["a4"]).unwrap(); // ι4
        db.insert("S", tuple!["a2"]).unwrap(); // ι5
        db.insert("S", tuple!["a3"]).unwrap(); // ι6
        let q = UnionQuery::single(parse_query("Q() :- S(x), R(x, y), S(y)").unwrap());
        let endo = db.tids();
        (db, q, endo)
    }

    #[test]
    fn counterfactual_cause_has_the_largest_effect() {
        let (db, q, endo) = example();
        let effects = causal_effects(&db, &q, &endo);
        // ι6 participates in every support: largest causal effect.
        assert_eq!(effects[0].0, Tid(6));
        // Non-causes (ι2, ι5) have zero effect.
        let eff = |t: u64| effects.iter().find(|(x, _)| *x == Tid(t)).unwrap().1;
        assert_eq!(eff(2), 0.0);
        assert_eq!(eff(5), 0.0);
        // Actual causes have strictly positive effect, smaller than ι6's.
        for t in [1u64, 3, 4] {
            assert!(eff(t) > 0.0);
            assert!(eff(t) < eff(6));
        }
    }

    #[test]
    fn effect_values_match_hand_computation() {
        // Single support {h, s}: CE(h) = P(s in) = 1/2.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("H", ["A"])).unwrap();
        db.create_relation(RelationSchema::new("S", ["A", "B"]))
            .unwrap();
        db.insert("H", tuple![0]).unwrap();
        db.insert("S", tuple![0, 1]).unwrap();
        let q = UnionQuery::single(parse_query("Q() :- H(x), S(x, y)").unwrap());
        let endo = db.tids();
        assert_eq!(causal_effect(&db, &q, &endo, Tid(1)), Some(0.5));
        assert_eq!(causal_effect(&db, &q, &endo, Tid(2)), Some(0.5));
    }

    #[test]
    fn exogenous_tuples_boost_certainty() {
        // Same shape but S exogenous: CE(h) = 1 (h alone decides Q).
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("H", ["A"])).unwrap();
        db.create_relation(RelationSchema::new("S", ["A", "B"]))
            .unwrap();
        db.insert("H", tuple![0]).unwrap();
        db.insert("S", tuple![0, 1]).unwrap();
        let q = UnionQuery::single(parse_query("Q() :- H(x), S(x, y)").unwrap());
        let endo: BTreeSet<Tid> = [Tid(1)].into();
        assert_eq!(causal_effect(&db, &q, &endo, Tid(1)), Some(1.0));
        assert_eq!(causal_effect(&db, &q, &endo, Tid(2)), None); // exogenous
    }

    #[test]
    fn disjunctive_supports_dilute_effect() {
        // Two independent supports: removing one leaves the other.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("P", ["A"])).unwrap();
        db.insert("P", tuple![1]).unwrap();
        db.insert("P", tuple![2]).unwrap();
        let q = UnionQuery::single(parse_query("Q() :- P(x)").unwrap());
        let endo = db.tids();
        // CE = P(Q | t in) − P(Q | t out) = 1 − 1/2 = 1/2.
        assert_eq!(causal_effect(&db, &q, &endo, Tid(1)), Some(0.5));
    }

    #[test]
    fn false_query_zero_effects() {
        let (mut db, q, _) = example();
        db.delete(Tid(6)).unwrap();
        let endo = db.tids();
        let effects = causal_effects(&db, &q, &endo);
        assert!(effects.iter().all(|(_, e)| *e == 0.0));
    }
}
