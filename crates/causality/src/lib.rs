#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqa-causality
//!
//! Causality in databases (§7 of the paper): counterfactual and actual
//! causes, contingency sets, responsibility and most-responsible causes —
//! implemented three ways and cross-checked:
//!
//! * [`causes`] — directly, on the support hyper-graph of the query (with a
//!   generic monotone-query fallback for Datalog-style queries);
//! * [`via_repairs`] — through S-/C-repairs of the denial constraint
//!   `κ(Q) = ¬Q` (Bertossi–Salimi \[26\]);
//! * [`asp_bridge`] — through extended repair programs with `ans`/`caucon`
//!   rules and stratified `#count` (Example 7.2).
//!
//! Plus [`attr_causes`] for attribute-level causes (§7.1, via attribute
//! repairs) and [`under_ics`] for causality under integrity constraints
//! (§7.2, Example 7.4).

pub mod asp_bridge;
pub mod attr_causes;
pub mod causes;
pub mod effect;
pub mod under_ics;
pub mod via_repairs;

pub use asp_bridge::{causality_program, causes_via_asp, mracs_via_asp};
pub use attr_causes::{attribute_causes, AttrCause};
pub use causes::{
    actual_causes, actual_causes_budgeted, actual_causes_monotone, actual_causes_monotone_budgeted,
    most_responsible_causes, responsibility, support_hypergraph, Cause,
};
pub use effect::{causal_effect, causal_effects};
pub use under_ics::causes_under_ics;
pub use via_repairs::{causes_via_repairs, kappa, mracs_via_c_repairs, repairs_from_causes};
