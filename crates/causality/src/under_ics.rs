//! Causality under integrity constraints (§7.2; Example 7.4).
//!
//! With a constraint set Σ that `D` satisfies, a contingency set Γ for a
//! candidate cause τ must keep Σ satisfied on the way: τ is an actual cause
//! for the Boolean monotone query `Q` under Σ iff there is Γ ⊆ D ∖ {τ} with
//!
//! (a) `D ∖ Γ ⊨ Σ`   (b) `D ∖ Γ ⊨ Q`
//! (c) `D ∖ (Γ ∪ {τ}) ⊨ Σ`   (d) `D ∖ (Γ ∪ {τ}) ⊭ Q`.
//!
//! The search is breadth-first over |Γ| (so the first hit per τ is a minimum
//! contingency set, giving the responsibility `ρ^{Q,Σ}` directly). Deciding
//! causality under ICs is NP-complete even for CQs + one IND \[27\], so an
//! exponential search with pruning is the honest algorithm here.

use crate::causes::Cause;
use cqa_constraints::ConstraintSet;
use cqa_query::{holds_ucq, NullSemantics, UnionQuery};
use cqa_relation::{Database, RelationError, Tid};
use std::collections::BTreeSet;

/// Actual causes of a Boolean UCQ under Σ, with responsibilities.
///
/// Requires `D ⊨ Σ` (errors otherwise). `max_contingency` bounds `|Γ|`
/// (`None`: up to `|D| − 1`).
pub fn causes_under_ics(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    max_contingency: Option<usize>,
) -> Result<Vec<Cause>, RelationError> {
    if !sigma.is_satisfied(db)? {
        return Err(RelationError::Parse(
            "causality under ICs requires D ⊨ Σ".into(),
        ));
    }
    if !holds_ucq(db, query, NullSemantics::Structural) {
        return Ok(Vec::new());
    }
    let tids: Vec<Tid> = db.tids().into_iter().collect();
    let cap = max_contingency.unwrap_or(tids.len().saturating_sub(1));

    let keep = |excluded: &BTreeSet<Tid>| -> Database {
        let kept: BTreeSet<Tid> = tids
            .iter()
            .copied()
            .filter(|t| !excluded.contains(t))
            .collect();
        db.restricted_to(&kept)
    };

    let mut out = Vec::new();
    for &tid in &tids {
        let others: Vec<Tid> = tids.iter().copied().filter(|&t| t != tid).collect();
        let mut found: Option<BTreeSet<Tid>> = None;
        'sizes: for k in 0..=cap.min(others.len()) {
            let mut cur: Vec<Tid> = Vec::with_capacity(k);
            if search(
                db, sigma, query, &keep, tid, &others, k, 0, &mut cur, &mut found,
            )? {
                break 'sizes;
            }
        }
        if let Some(gamma) = found {
            out.push(Cause {
                tid,
                responsibility: 1.0 / (1.0 + gamma.len() as f64),
                counterfactual: gamma.is_empty(),
                min_contingency: gamma,
            });
        }
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn search(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    keep: &dyn Fn(&BTreeSet<Tid>) -> Database,
    tid: Tid,
    others: &[Tid],
    k: usize,
    start: usize,
    cur: &mut Vec<Tid>,
    found: &mut Option<BTreeSet<Tid>>,
) -> Result<bool, RelationError> {
    if cur.len() == k {
        let gamma: BTreeSet<Tid> = cur.iter().copied().collect();
        let d_gamma = keep(&gamma);
        // (a) and (b).
        if !sigma.is_satisfied(&d_gamma)? || !holds_ucq(&d_gamma, query, NullSemantics::Structural)
        {
            return Ok(false);
        }
        let mut with_tid = gamma.clone();
        with_tid.insert(tid);
        let d_both = keep(&with_tid);
        // (c) and (d).
        if sigma.is_satisfied(&d_both)? && !holds_ucq(&d_both, query, NullSemantics::Structural) {
            *found = Some(gamma);
            return Ok(true);
        }
        return Ok(false);
    }
    for i in start..others.len() {
        cur.push(others[i]);
        let hit = search(db, sigma, query, keep, tid, others, k, i + 1, cur, found)?;
        cur.pop();
        if hit {
            return Ok(true);
        }
    }
    let _ = db;
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::Tgd;
    use cqa_query::{parse_query, UnionQuery};
    use cqa_relation::{tuple, RelationSchema};

    /// The Dep/Course instance of Example 7.4.
    /// tids: ι1..ι3 = Dep rows, ι4..ι8 = Course rows.
    fn example_7_4() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Dep", ["DName", "TStaff"]))
            .unwrap();
        db.create_relation(RelationSchema::new("Course", ["CName", "TStaff", "DName"]))
            .unwrap();
        db.insert("Dep", tuple!["Computing", "John"]).unwrap(); // ι1
        db.insert("Dep", tuple!["Philosophy", "Patrick"]).unwrap(); // ι2
        db.insert("Dep", tuple!["Math", "Kevin"]).unwrap(); // ι3
        db.insert("Course", tuple!["COM08", "John", "Computing"])
            .unwrap(); // ι4
        db.insert("Course", tuple!["Math01", "Kevin", "Math"])
            .unwrap(); // ι5
        db.insert("Course", tuple!["HIST02", "Patrick", "Philosophy"])
            .unwrap(); // ι6
        db.insert("Course", tuple!["Math08", "Eli", "Math"])
            .unwrap(); // ι7
        db.insert("Course", tuple!["COM01", "John", "Computing"])
            .unwrap(); // ι8
        db
    }

    fn psi() -> ConstraintSet {
        // ψ: ∀x∀y (Dep(x, y) → ∃u Course(u, y, x))
        ConstraintSet::from_iter([Tgd::parse("psi", "Course(u, y, x) :- Dep(x, y)").unwrap()])
    }

    /// Query (A) instantiated with the answer John.
    fn q_a() -> UnionQuery {
        UnionQuery::single(parse_query("Q() :- Dep(y, 'John'), Course(z, 'John', y)").unwrap())
    }

    /// Query (B): ∃y Dep(y, John).
    fn q_b() -> UnionQuery {
        UnionQuery::single(parse_query("Q() :- Dep(y, 'John')").unwrap())
    }

    /// Query (C): ∃y∃z Course(z, John, y).
    fn q_c() -> UnionQuery {
        UnionQuery::single(parse_query("Q() :- Course(z, 'John', y)").unwrap())
    }

    fn rho(causes: &[Cause], tid: u64) -> f64 {
        causes
            .iter()
            .find(|c| c.tid == Tid(tid))
            .map(|c| c.responsibility)
            .unwrap_or(0.0)
    }

    #[test]
    fn query_a_without_constraints() {
        let db = example_7_4();
        let causes = causes_under_ics(&db, &ConstraintSet::new(), &q_a(), None).unwrap();
        assert_eq!(rho(&causes, 1), 1.0); // ι1 counterfactual
        assert_eq!(rho(&causes, 4), 0.5); // ι4 with Γ = {ι8}
        assert_eq!(rho(&causes, 8), 0.5); // ι8 with Γ = {ι4}
        assert_eq!(causes.len(), 3);
    }

    #[test]
    fn query_a_under_psi_drops_course_causes() {
        let db = example_7_4();
        assert!(psi().is_satisfied(&db).unwrap());
        let causes = causes_under_ics(&db, &psi(), &q_a(), None).unwrap();
        assert_eq!(rho(&causes, 1), 1.0); // ι1 still counterfactual
        assert_eq!(rho(&causes, 4), 0.0); // ι4 no longer a cause
        assert_eq!(rho(&causes, 8), 0.0); // ι8 no longer a cause
        assert_eq!(causes.len(), 1);
    }

    #[test]
    fn query_b_under_psi_matches_query_a() {
        // Q ≡_ψ Q₁: same causes, same responsibilities.
        let db = example_7_4();
        let a = causes_under_ics(&db, &psi(), &q_a(), None).unwrap();
        let b = causes_under_ics(&db, &psi(), &q_b(), None).unwrap();
        let norm = |cs: &[Cause]| -> Vec<(Tid, String)> {
            let mut v: Vec<_> = cs
                .iter()
                .map(|c| (c.tid, format!("{:.4}", c.responsibility)))
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm(&a), norm(&b));
    }

    #[test]
    fn query_c_responsibilities_decrease_under_psi() {
        let db = example_7_4();
        // Without ψ: ι4 and ι8 are causes with ρ = ½; ι1 is not a cause.
        let plain = causes_under_ics(&db, &ConstraintSet::new(), &q_c(), None).unwrap();
        assert_eq!(rho(&plain, 4), 0.5);
        assert_eq!(rho(&plain, 8), 0.5);
        assert_eq!(rho(&plain, 1), 0.0);
        // Under ψ: still causes, but the smallest contingency sets must now
        // include ι1 (deleting both courses without deleting the Dep row
        // would violate ψ): ρ drops to ⅓.
        let under = causes_under_ics(&db, &psi(), &q_c(), None).unwrap();
        assert_eq!(rho(&under, 4), 1.0 / 3.0);
        assert_eq!(rho(&under, 8), 1.0 / 3.0);
        assert_eq!(rho(&under, 1), 0.0); // ι1 affects ρ but is not a cause
                                         // Check the witnessing contingency sets contain ι1.
        for t in [4u64, 8u64] {
            let c = under.iter().find(|c| c.tid == Tid(t)).unwrap();
            assert!(
                c.min_contingency.contains(&Tid(1)),
                "Γ for ι{t} includes ι1"
            );
            assert_eq!(c.min_contingency.len(), 2);
        }
    }

    #[test]
    fn inconsistent_start_is_rejected() {
        let mut db = example_7_4();
        db.delete(Tid(4)).unwrap();
        db.delete(Tid(8)).unwrap();
        // Now Dep(Computing, John) has no course: D ⊭ ψ.
        assert!(causes_under_ics(&db, &psi(), &q_b(), None).is_err());
    }

    #[test]
    fn false_query_has_no_causes() {
        let db = example_7_4();
        let q = UnionQuery::single(parse_query("Q() :- Dep(y, 'Nobody')").unwrap());
        assert!(causes_under_ics(&db, &psi(), &q, None).unwrap().is_empty());
    }
}
