//! The causality ↔ repair connection of §7 (Bertossi–Salimi \[26\]).
//!
//! For a Boolean CQ `Q` true in `D`, consider the denial constraint
//! `κ(Q) = ¬Q`. Then:
//!
//! * τ is an actual cause with ⊆-minimal contingency set Γ **iff**
//!   `D ∖ (Γ ∪ {τ})` is an S-repair of `D` w.r.t. `κ(Q)`;
//! * τ is a cause with *minimum-cardinality* contingency set Γ (hence an
//!   MRAC) **iff** `D ∖ (Γ ∪ {τ})` is a C-repair.
//!
//! This module computes causes by literally running the repair engine on
//! `κ(Q)` — an executable proof of the correspondence, cross-checked against
//! the direct implementation in [`crate::causes`].

use crate::causes::Cause;
use cqa_constraints::{ConstraintSet, DenialConstraint};
use cqa_query::{ConjunctiveQuery, UnionQuery};
use cqa_relation::{Database, RelationError, Tid};
use std::collections::{BTreeMap, BTreeSet};

/// The denial constraint `κ(Q) = ¬Q` of a Boolean CQ.
pub fn kappa(query: &ConjunctiveQuery) -> Result<DenialConstraint, RelationError> {
    if !query.is_boolean() {
        return Err(RelationError::Parse(
            "κ(Q) is defined for Boolean queries".into(),
        ));
    }
    let mut body = query.clone();
    body.negated.clear(); // κ is built from the positive part
    DenialConstraint::new("kappa(Q)", body)
}

/// Actual causes of a Boolean UCQ computed through S-/C-repairs of `κ(Q)`.
pub fn causes_via_repairs(db: &Database, query: &UnionQuery) -> Result<Vec<Cause>, RelationError> {
    let sigma = ConstraintSet::from_iter(
        query
            .disjuncts
            .iter()
            .map(kappa)
            .collect::<Result<Vec<_>, _>>()?,
    );
    let repairs = cqa_core::s_repairs(db, &sigma)?;
    // Every S-repair is deletion-only here (κ is a DC).
    let mut best: BTreeMap<Tid, BTreeSet<Tid>> = BTreeMap::new();
    for r in &repairs {
        for &tid in &r.deleted {
            let mut gamma = r.deleted.clone();
            gamma.remove(&tid);
            let better = match best.get(&tid) {
                None => true,
                Some(old) => gamma.len() < old.len(),
            };
            if better {
                best.insert(tid, gamma);
            }
        }
    }
    Ok(best
        .into_iter()
        .map(|(tid, gamma)| Cause {
            tid,
            responsibility: 1.0 / (1.0 + gamma.len() as f64),
            counterfactual: gamma.is_empty(),
            min_contingency: gamma,
        })
        .collect())
}

/// MRACs via C-repairs of `κ(Q)`: the tuples deleted by some C-repair.
pub fn mracs_via_c_repairs(db: &Database, query: &UnionQuery) -> Result<Vec<Cause>, RelationError> {
    let sigma = ConstraintSet::from_iter(
        query
            .disjuncts
            .iter()
            .map(kappa)
            .collect::<Result<Vec<_>, _>>()?,
    );
    let crepairs = cqa_core::c_repairs(db, &sigma)?;
    if crepairs.first().is_none_or(|r| r.delta_size() == 0) {
        return Ok(Vec::new()); // consistent w.r.t. κ(Q) ⇒ Q false
    }
    let mut out: BTreeMap<Tid, Cause> = BTreeMap::new();
    for r in &crepairs {
        for &tid in &r.deleted {
            let mut gamma = r.deleted.clone();
            gamma.remove(&tid);
            out.entry(tid).or_insert_with(|| Cause {
                tid,
                responsibility: 1.0 / (1.0 + gamma.len() as f64),
                counterfactual: gamma.is_empty(),
                min_contingency: gamma,
            });
        }
    }
    Ok(out.into_values().collect())
}

/// The converse direction: read repairs of `κ(Q)` off causes and their
/// contingency sets — `D ∖ (Γ ∪ {τ})` for each cause. Returns the kept-tid
/// sets; used by tests to certify the bijection.
pub fn repairs_from_causes(db: &Database, causes: &[Cause]) -> Vec<BTreeSet<Tid>> {
    let all = db.tids();
    let mut out: BTreeSet<BTreeSet<Tid>> = BTreeSet::new();
    for c in causes {
        let mut removed = c.min_contingency.clone();
        removed.insert(c.tid);
        out.insert(all.difference(&removed).copied().collect());
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causes::actual_causes;
    use cqa_query::parse_query;
    use cqa_relation::{tuple, RelationSchema};

    fn example_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        db.insert("R", tuple!["a4", "a3"]).unwrap();
        db.insert("R", tuple!["a2", "a1"]).unwrap();
        db.insert("R", tuple!["a3", "a3"]).unwrap();
        db.insert("S", tuple!["a4"]).unwrap();
        db.insert("S", tuple!["a2"]).unwrap();
        db.insert("S", tuple!["a3"]).unwrap();
        db
    }

    fn q() -> UnionQuery {
        UnionQuery::single(parse_query("Q() :- S(x), R(x, y), S(y)").unwrap())
    }

    #[test]
    fn repair_path_agrees_with_direct_path() {
        let db = example_db();
        let via = causes_via_repairs(&db, &q()).unwrap();
        let direct = actual_causes(&db, &q());
        let norm = |cs: &[Cause]| -> Vec<(Tid, String)> {
            let mut v: Vec<(Tid, String)> = cs
                .iter()
                .map(|c| (c.tid, format!("{:.4}", c.responsibility)))
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm(&via), norm(&direct));
    }

    #[test]
    fn mracs_match_example_7_1() {
        let db = example_db();
        let mracs = mracs_via_c_repairs(&db, &q()).unwrap();
        assert_eq!(mracs.len(), 1);
        assert_eq!(mracs[0].tid, Tid(6));
        assert_eq!(mracs[0].responsibility, 1.0);
    }

    #[test]
    fn causes_reconstruct_s_repairs() {
        let db = example_db();
        let sigma = ConstraintSet::from_iter([kappa(&q().disjuncts[0]).unwrap()]);
        let repairs: BTreeSet<BTreeSet<Tid>> = cqa_core::s_repairs(&db, &sigma)
            .unwrap()
            .into_iter()
            .map(|r| db.tids().difference(&r.deleted).copied().collect())
            .collect();
        // Causes with ⊆-minimal contingency sets induce repairs. Our Cause
        // structs carry *minimum-cardinality* contingency sets, which are in
        // particular ⊆-minimal, so each induced instance is an S-repair.
        let causes = causes_via_repairs(&db, &q()).unwrap();
        for kept in repairs_from_causes(&db, &causes) {
            assert!(repairs.contains(&kept), "induced instance is an S-repair");
        }
    }

    #[test]
    fn false_query_yields_nothing() {
        let mut db = example_db();
        db.delete(Tid(6)).unwrap();
        assert!(causes_via_repairs(&db, &q()).unwrap().is_empty());
        assert!(mracs_via_c_repairs(&db, &q()).unwrap().is_empty());
    }

    #[test]
    fn kappa_rejects_non_boolean() {
        let nq = parse_query("Q(x) :- S(x)").unwrap();
        assert!(kappa(&nq).is_err());
    }
}
