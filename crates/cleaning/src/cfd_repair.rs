//! Cost-based CFD/FD cleaning by value modification (§6 of the paper;
//! Bohannon et al. \[31\], Fan et al. \[58\]).
//!
//! Violations are resolved by *changing attribute values* rather than
//! deleting tuples:
//!
//! * a single-tuple CFD violation (constant RHS pattern) is fixed by setting
//!   the RHS attribute to the pattern constant;
//! * a pair violation (two tuples agreeing on the LHS but differing on the
//!   RHS) is fixed by overwriting one side's RHS with the other's, choosing
//!   the direction of least cost under the [`CostModel`];
//! * if an attribute has been "churned" too often (evidence of an
//!   irreparable conflict), it is set to `NULL`, which satisfies no further
//!   pattern and ends the churn — the standard escape hatch of value-based
//!   cleaners.
//!
//! This is a *heuristic* cleaner (minimum-cost repair is NP-hard, as \[31\]
//! shows); it terminates and produces a consistent instance, reporting the
//! changes and their total cost.

use crate::cost::CostModel;
use cqa_constraints::{ConditionalFd, FunctionalDependency, Pattern};
use cqa_relation::{Database, RelationError, Tid, Value};
use std::collections::BTreeMap;
use std::fmt;

/// The constraints a cleaner run enforces.
#[derive(Debug, Clone, Default)]
pub struct CleaningSpec {
    /// Plain FDs.
    pub fds: Vec<FunctionalDependency>,
    /// Conditional FDs.
    pub cfds: Vec<ConditionalFd>,
}

impl CleaningSpec {
    /// Empty spec.
    pub fn new() -> CleaningSpec {
        CleaningSpec::default()
    }

    /// Add an FD.
    pub fn with_fd(mut self, fd: FunctionalDependency) -> CleaningSpec {
        self.fds.push(fd);
        self
    }

    /// Add a CFD.
    pub fn with_cfd(mut self, cfd: ConditionalFd) -> CleaningSpec {
        self.cfds.push(cfd);
        self
    }

    /// Is the instance clean w.r.t. the spec?
    pub fn is_clean(&self, db: &Database) -> Result<bool, RelationError> {
        for fd in &self.fds {
            if !fd.is_satisfied(db)? {
                return Ok(false);
            }
        }
        for cfd in &self.cfds {
            if !cfd.is_satisfied(db)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// One applied fix.
#[derive(Debug, Clone, PartialEq)]
pub struct Fix {
    /// Tuple changed.
    pub tid: Tid,
    /// Attribute position changed.
    pub position: usize,
    /// Old value.
    pub old: Value,
    /// New value.
    pub new: Value,
    /// Cost charged.
    pub cost: f64,
}

impl fmt::Display for Fix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} -> {} (cost {:.3})",
            self.tid,
            self.position + 1,
            self.old.render(),
            self.new.render(),
            self.cost
        )
    }
}

/// The result of a cleaning run.
#[derive(Debug, Clone)]
pub struct CleaningResult {
    /// The cleaned instance.
    pub db: Database,
    /// Applied fixes, in order.
    pub fixes: Vec<Fix>,
    /// Total cost.
    pub total_cost: f64,
    /// Rounds of the fix-point loop.
    pub rounds: usize,
}

/// Run the cleaner. `cost` applies to every relation (per-position weights).
pub fn clean(
    db: &Database,
    spec: &CleaningSpec,
    cost: &CostModel,
) -> Result<CleaningResult, RelationError> {
    const MAX_ROUNDS: usize = 64;
    const MAX_CHURN: usize = 3;

    let mut current = db.clone();
    let mut fixes: Vec<Fix> = Vec::new();
    let mut churn: BTreeMap<(Tid, usize), usize> = BTreeMap::new();
    let mut rounds = 0;

    loop {
        rounds += 1;
        if rounds > MAX_ROUNDS {
            return Err(RelationError::Parse(
                "cleaner did not converge (churn guard exhausted)".into(),
            ));
        }
        let mut applied = false;

        // Single-tuple CFD violations first: forced by the pattern constant.
        for cfd in &spec.cfds {
            if let Pattern::Const(target) = &cfd.rhs_pattern {
                let rel = current.require_relation(&cfd.relation)?;
                let rhs_pos = rel.schema().require_position(&cfd.rhs)?;
                for viol in cfd.violations(&current)? {
                    for tid in viol {
                        let Some((_, tuple)) = current.get(tid) else {
                            continue;
                        };
                        let old = tuple.at(rhs_pos).clone();
                        if &old == target {
                            continue;
                        }
                        let new = bump_churn(&mut churn, tid, rhs_pos, MAX_CHURN, target.clone());
                        apply_fix(&mut current, &mut fixes, cost, tid, rhs_pos, old, new)?;
                        applied = true;
                    }
                }
            }
        }

        // Pair violations: FDs and wildcard-RHS CFDs.
        let mut pair_jobs: Vec<(String, usize, Tid, Tid)> = Vec::new();
        for fd in &spec.fds {
            let rel = current.require_relation(&fd.relation)?;
            let schema = rel.schema().clone();
            for rhs in &fd.rhs {
                let rhs_pos = schema.require_position(rhs)?;
                let single = FunctionalDependency::new(
                    fd.relation.clone(),
                    fd.lhs.clone(),
                    vec![rhs.clone()],
                );
                for viol in single.violations(&current)? {
                    let pair: Vec<Tid> = viol.into_iter().collect();
                    if let [a, b] = pair[..] {
                        pair_jobs.push((fd.relation.clone(), rhs_pos, a, b));
                    }
                }
            }
        }
        for cfd in &spec.cfds {
            if cfd.rhs_pattern == Pattern::Wildcard {
                let rel = current.require_relation(&cfd.relation)?;
                let rhs_pos = rel.schema().require_position(&cfd.rhs)?;
                for viol in cfd.violations(&current)? {
                    let pair: Vec<Tid> = viol.into_iter().collect();
                    if let [a, b] = pair[..] {
                        pair_jobs.push((cfd.relation.clone(), rhs_pos, a, b));
                    }
                }
            }
        }
        for (_, rhs_pos, a, b) in pair_jobs {
            let (Some((_, ta)), Some((_, tb))) = (current.get(a), current.get(b)) else {
                continue;
            };
            let va = ta.at(rhs_pos).clone();
            let vb = tb.at(rhs_pos).clone();
            if va == vb {
                continue; // already resolved this round
            }
            // Overwrite the cheaper direction.
            let cost_a_to_b = cost.change_cost(rhs_pos, &va, &vb);
            let cost_b_to_a = cost.change_cost(rhs_pos, &vb, &va);
            let (tid, old, new) = if cost_a_to_b <= cost_b_to_a {
                (a, va, vb)
            } else {
                (b, vb, va)
            };
            let new = bump_churn(&mut churn, tid, rhs_pos, MAX_CHURN, new);
            apply_fix(&mut current, &mut fixes, cost, tid, rhs_pos, old, new)?;
            applied = true;
        }

        if !applied {
            break;
        }
    }

    debug_assert!(spec.is_clean(&current)?);
    let total_cost = fixes.iter().map(|f| f.cost).sum();
    Ok(CleaningResult {
        db: current,
        fixes,
        total_cost,
        rounds,
    })
}

/// Escalate to NULL after too many rewrites of the same cell.
fn bump_churn(
    churn: &mut BTreeMap<(Tid, usize), usize>,
    tid: Tid,
    position: usize,
    max: usize,
    proposed: Value,
) -> Value {
    let n = churn.entry((tid, position)).or_insert(0);
    *n += 1;
    if *n > max {
        Value::NULL
    } else {
        proposed
    }
}

fn apply_fix(
    db: &mut Database,
    fixes: &mut Vec<Fix>,
    cost: &CostModel,
    tid: Tid,
    position: usize,
    old: Value,
    new: Value,
) -> Result<(), RelationError> {
    let c = cost.change_cost(position, &old, &new);
    db.update_value(tid, position, new.clone())?;
    fixes.push(Fix {
        tid,
        position,
        old,
        new,
        cost: c,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relation::{tuple, RelationSchema};

    /// The customer table from §6 of the paper.
    fn customer_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "Cust",
            ["CC", "AC", "Phone", "Name", "Street", "City", "Zip"],
        ))
        .unwrap();
        db.insert(
            "Cust",
            tuple![44, 131, "1234567", "mike", "mayfield", "NYC", "EH4 8LE"],
        )
        .unwrap();
        db.insert(
            "Cust",
            tuple![44, 131, "3456789", "rick", "crichton", "NYC", "EH4 8LE"],
        )
        .unwrap();
        db.insert(
            "Cust",
            tuple![1, 908, "3456789", "joe", "mtn ave", "NYC", "07974"],
        )
        .unwrap();
        db
    }

    fn paper_cfd() -> ConditionalFd {
        ConditionalFd::new(
            "Cust",
            vec![("CC", Some(Value::int(44))), ("Zip", None)],
            "Street",
            None,
        )
    }

    #[test]
    fn section_6_cfd_cleaning() {
        let db = customer_db();
        let spec = CleaningSpec::new().with_cfd(paper_cfd());
        assert!(!spec.is_clean(&db).unwrap());
        let result = clean(&db, &spec, &CostModel::uniform()).unwrap();
        assert!(spec.is_clean(&result.db).unwrap());
        assert_eq!(result.fixes.len(), 1);
        // The street of one of the two UK tuples was harmonized.
        let rel = result.db.relation("Cust").unwrap();
        let streets: Vec<String> = rel
            .tuples()
            .filter(|t| t.at(0) == &Value::int(44))
            .map(|t| t.at(4).render().into_owned())
            .collect();
        assert_eq!(streets[0], streets[1]);
        assert!(result.total_cost > 0.0);
    }

    #[test]
    fn constant_rhs_cfd_forces_value() {
        let db = customer_db();
        let cfd = ConditionalFd::new(
            "Cust",
            vec![("CC", Some(Value::int(44)))],
            "City",
            Some(Value::str("EDI")),
        );
        let spec = CleaningSpec::new().with_cfd(cfd);
        let result = clean(&db, &spec, &CostModel::uniform()).unwrap();
        let rel = result.db.relation("Cust").unwrap();
        assert!(rel
            .tuples()
            .filter(|t| t.at(0) == &Value::int(44))
            .all(|t| t.at(5) == &Value::str("EDI")));
        // The US tuple keeps NYC.
        assert!(rel
            .tuples()
            .any(|t| t.at(0) == &Value::int(1) && t.at(5) == &Value::str("NYC")));
        assert_eq!(result.fixes.len(), 2);
    }

    #[test]
    fn fd_cleaning_merges_groups() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        db.insert("T", tuple![1, "aaa"]).unwrap();
        db.insert("T", tuple![1, "aab"]).unwrap();
        db.insert("T", tuple![2, "zzz"]).unwrap();
        let spec = CleaningSpec::new().with_fd(FunctionalDependency::new("T", ["K"], ["V"]));
        let result = clean(&db, &spec, &CostModel::uniform()).unwrap();
        assert!(spec.is_clean(&result.db).unwrap());
        // One of the group-1 values was overwritten; group 2 untouched.
        assert!(result.db.relation("T").unwrap().contains(&tuple![2, "zzz"]));
    }

    #[test]
    fn clean_instance_needs_no_fixes() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        db.insert("T", tuple![1, "a"]).unwrap();
        let spec = CleaningSpec::new().with_fd(FunctionalDependency::new("T", ["K"], ["V"]));
        let result = clean(&db, &spec, &CostModel::uniform()).unwrap();
        assert!(result.fixes.is_empty());
        assert_eq!(result.total_cost, 0.0);
        assert!(result.db.same_content(&db));
    }

    #[test]
    fn conflicting_constant_cfds_escalate_to_null() {
        // Two CFDs demand different constants for the same cell: the cleaner
        // churns, then nulls the cell and terminates.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        db.insert("T", tuple![1, "x"]).unwrap();
        let spec = CleaningSpec::new()
            .with_cfd(ConditionalFd::new(
                "T",
                vec![("K", Some(Value::int(1)))],
                "V",
                Some(Value::str("a")),
            ))
            .with_cfd(ConditionalFd::new(
                "T",
                vec![("K", Some(Value::int(1)))],
                "V",
                Some(Value::str("b")),
            ));
        let result = clean(&db, &spec, &CostModel::uniform()).unwrap();
        let (_, t) = result.db.get(Tid(1)).unwrap();
        assert!(t.at(1).is_null());
        assert!(spec.is_clean(&result.db).unwrap());
    }

    #[test]
    fn cost_weights_steer_direction() {
        // Changing position 1 of tuple with the longer string is cheaper
        // per-character; with heavy weights we can force the direction.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        db.insert("T", tuple![1, "keepme"]).unwrap();
        db.insert("T", tuple![1, "other"]).unwrap();
        let spec = CleaningSpec::new().with_fd(FunctionalDependency::new("T", ["K"], ["V"]));
        let result = clean(&db, &spec, &CostModel::uniform()).unwrap();
        // Whatever direction, the result agrees on V and is clean.
        let vals: Vec<_> = result.db.relation("T").unwrap().tuples().collect();
        assert_eq!(vals.len(), 1); // both rows converged to the same content
    }
}
