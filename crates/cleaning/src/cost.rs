//! Cost model for value-modification cleaning (after Bohannon et al. \[31\]).
//!
//! Each cell change has a cost: a per-attribute weight times a distance
//! between the old and the new value. The cleaner of
//! [`crate::cfd_repair`] greedily minimizes total cost.

use cqa_relation::Value;

/// Distance between two values in `\[0, 1\]`.
///
/// * equal values: 0;
/// * numeric pairs: normalized absolute difference (`|a−b| / (|a|+|b|)`,
///   0 when both are 0);
/// * string pairs: normalized Levenshtein distance;
/// * anything else (type mismatch, nulls): 1.
pub fn value_distance(a: &Value, b: &Value) -> f64 {
    if a == b {
        return 0.0;
    }
    if a.is_null() || b.is_null() {
        return 1.0;
    }
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => {
            let denom = x.abs() + y.abs();
            if denom == 0.0 {
                0.0
            } else {
                ((x - y).abs() / denom).min(1.0)
            }
        }
        _ => match (a.as_str(), b.as_str()) {
            (Some(x), Some(y)) => {
                let max_len = x.chars().count().max(y.chars().count());
                if max_len == 0 {
                    0.0
                } else {
                    levenshtein(x, y) as f64 / max_len as f64
                }
            }
            _ => 1.0,
        },
    }
}

/// Levenshtein edit distance (two-row dynamic programming).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr: Vec<usize> = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            curr[j + 1] = sub.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Normalized string similarity in `\[0, 1\]` (1 = identical).
pub fn similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Per-attribute change weights for one relation; defaults to 1.0.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    weights: Vec<(usize, f64)>,
}

impl CostModel {
    /// Uniform weights.
    pub fn uniform() -> CostModel {
        CostModel::default()
    }

    /// Set the weight of attribute `position`.
    pub fn with_weight(mut self, position: usize, weight: f64) -> CostModel {
        self.weights.retain(|(p, _)| *p != position);
        self.weights.push((position, weight));
        self
    }

    /// Weight of attribute `position`.
    pub fn weight(&self, position: usize) -> f64 {
        self.weights
            .iter()
            .find(|(p, _)| *p == position)
            .map(|(_, w)| *w)
            .unwrap_or(1.0)
    }

    /// Cost of changing `old` to `new` at `position`.
    pub fn change_cost(&self, position: usize, old: &Value, new: &Value) -> f64 {
        self.weight(position) * value_distance(old, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("mayfield", "mayfield"), 0);
        assert_eq!(levenshtein("crichton", "crichtons"), 1);
    }

    #[test]
    fn distances_are_normalized() {
        assert_eq!(value_distance(&Value::str("a"), &Value::str("a")), 0.0);
        assert_eq!(value_distance(&Value::str("a"), &Value::str("b")), 1.0);
        let d = value_distance(&Value::str("mayfield"), &Value::str("mayfair"));
        assert!(d > 0.0 && d < 1.0);
        assert_eq!(value_distance(&Value::int(10), &Value::int(10)), 0.0);
        assert!(value_distance(&Value::int(10), &Value::int(11)) < 0.1);
        assert_eq!(value_distance(&Value::NULL, &Value::str("x")), 1.0);
        assert_eq!(value_distance(&Value::int(1), &Value::str("1")), 1.0);
    }

    #[test]
    fn similarity_complements_distance() {
        assert_eq!(similarity("abc", "abc"), 1.0);
        assert_eq!(similarity("", ""), 1.0);
        assert!(similarity("john smith", "jon smith") > 0.8);
        assert!(similarity("alice", "bob") < 0.4);
    }

    #[test]
    fn cost_model_weights() {
        let m = CostModel::uniform().with_weight(2, 5.0);
        assert_eq!(m.weight(0), 1.0);
        assert_eq!(m.weight(2), 5.0);
        let c = m.change_cost(2, &Value::str("a"), &Value::str("b"));
        assert_eq!(c, 5.0);
        // Overwriting a weight replaces it.
        let m = m.with_weight(2, 2.0);
        assert_eq!(m.weight(2), 2.0);
    }
}
