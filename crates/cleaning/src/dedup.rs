//! Entity resolution / duplicate detection with matching dependencies
//! (§6 of the paper; Fan et al. \[59\], Bertossi et al. \[28, 34, 35\]).
//!
//! A **matching dependency** (MD) says: if two tuples are *similar* on some
//! attributes (similarity above a threshold), then their identifier
//! attributes should be **identified** (merged). The resolver:
//!
//! 1. finds all pairs similar under some MD,
//! 2. clusters them with union–find (transitivity of identification),
//! 3. merges each cluster into a single tuple, resolving each attribute by
//!    majority (ties: lexicographically smallest non-null value).

use crate::cost::similarity;
use cqa_relation::{Database, RelationError, Tid, Tuple, Value};
use std::collections::BTreeMap;

/// A matching dependency on one relation.
#[derive(Debug, Clone)]
pub struct MatchingDependency {
    /// Relation to deduplicate.
    pub relation: String,
    /// `(attribute, minimum similarity)` pairs that must all hold for two
    /// tuples to match.
    pub similar_on: Vec<(String, f64)>,
}

impl MatchingDependency {
    /// Build an MD.
    pub fn new<S: Into<String>>(
        relation: impl Into<String>,
        similar_on: impl IntoIterator<Item = (S, f64)>,
    ) -> MatchingDependency {
        MatchingDependency {
            relation: relation.into(),
            similar_on: similar_on.into_iter().map(|(a, t)| (a.into(), t)).collect(),
        }
    }

    fn matches(&self, positions: &[usize], a: &Tuple, b: &Tuple) -> bool {
        positions
            .iter()
            .zip(&self.similar_on)
            .all(|(&p, (_, thr))| {
                let (va, vb) = (a.at(p), b.at(p));
                if va.is_null() || vb.is_null() {
                    return false;
                }
                if va == vb {
                    return true;
                }
                match (va.as_str(), vb.as_str()) {
                    (Some(x), Some(y)) => similarity(x, y) >= *thr,
                    _ => false,
                }
            })
    }
}

/// Union–find over tid indices.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let root = self.find(self.parent[i]);
            self.parent[i] = root;
        }
        self.parent[i]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

/// The result of deduplication.
#[derive(Debug, Clone)]
pub struct DedupResult {
    /// The deduplicated instance (merged tuples get fresh tids).
    pub db: Database,
    /// The clusters found: each is the list of original tids merged.
    pub clusters: Vec<Vec<Tid>>,
}

/// Deduplicate `db` under the given MDs.
pub fn deduplicate(
    db: &Database,
    mds: &[MatchingDependency],
) -> Result<DedupResult, RelationError> {
    let mut result = db.clone();
    let mut all_clusters = Vec::new();

    // Group MDs by relation.
    let mut by_rel: BTreeMap<&str, Vec<&MatchingDependency>> = BTreeMap::new();
    for md in mds {
        by_rel.entry(md.relation.as_str()).or_default().push(md);
    }

    for (rel_name, rel_mds) in by_rel {
        let rel = db.require_relation(rel_name)?;
        let schema = rel.schema().clone();
        let entries: Vec<(Tid, Tuple)> = rel.iter().map(|(t, tp)| (t, tp.clone())).collect();
        let n = entries.len();
        let mut dsu = Dsu::new(n);
        for md in &rel_mds {
            let positions: Vec<usize> = md
                .similar_on
                .iter()
                .map(|(a, _)| schema.require_position(a))
                .collect::<Result<_, _>>()?;
            for i in 0..n {
                for j in i + 1..n {
                    if md.matches(&positions, &entries[i].1, &entries[j].1) {
                        dsu.union(i, j);
                    }
                }
            }
        }
        // Collect clusters of size ≥ 2 and merge them.
        let mut clusters: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..n {
            let root = dsu.find(i);
            clusters.entry(root).or_default().push(i);
        }
        for members in clusters.into_values().filter(|m| m.len() >= 2) {
            let merged = merge_tuples(members.iter().map(|&i| &entries[i].1));
            let tids: Vec<Tid> = members.iter().map(|&i| entries[i].0).collect();
            for &tid in &tids {
                let _ = result.delete(tid);
            }
            result.insert(rel_name, merged)?;
            all_clusters.push(tids);
        }
    }

    Ok(DedupResult {
        db: result,
        clusters: all_clusters,
    })
}

/// Resolve each attribute by majority vote; ties break to the smallest
/// non-null value; all-null positions stay null.
fn merge_tuples<'a>(tuples: impl Iterator<Item = &'a Tuple>) -> Tuple {
    let tuples: Vec<&Tuple> = tuples.collect();
    let arity = tuples[0].arity();
    let mut out: Vec<Value> = Vec::with_capacity(arity);
    for p in 0..arity {
        let mut counts: BTreeMap<&Value, usize> = BTreeMap::new();
        for t in &tuples {
            let v = t.at(p);
            if !v.is_null() {
                *counts.entry(v).or_default() += 1;
            }
        }
        let winner = counts
            .iter()
            .max_by_key(|(v, c)| (**c, std::cmp::Reverse(*v)))
            .map(|(v, _)| (*v).clone())
            .unwrap_or(Value::NULL);
        out.push(winner);
    }
    Tuple::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relation::{tuple, RelationSchema};

    fn people_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("People", ["Name", "Phone", "City"]))
            .unwrap();
        db.insert("People", tuple!["john smith", "555-1234", "NYC"])
            .unwrap();
        db.insert("People", tuple!["jon smith", "555-1234", "NYC"])
            .unwrap();
        db.insert("People", tuple!["john smith", "555-1234", "Boston"])
            .unwrap();
        db.insert("People", tuple!["alice jones", "555-9999", "NYC"])
            .unwrap();
        db
    }

    #[test]
    fn near_duplicates_merge() {
        let db = people_db();
        let md = MatchingDependency::new("People", [("Name", 0.8), ("Phone", 1.0)]);
        let result = deduplicate(&db, &[md]).unwrap();
        assert_eq!(result.clusters.len(), 1);
        assert_eq!(result.clusters[0].len(), 3);
        let rel = result.db.relation("People").unwrap();
        assert_eq!(rel.len(), 2); // merged trio + alice
                                  // Majority voting picked the dominant spelling and city.
        assert!(rel.contains(&tuple!["john smith", "555-1234", "NYC"]));
        assert!(rel.contains(&tuple!["alice jones", "555-9999", "NYC"]));
    }

    #[test]
    fn threshold_controls_matching() {
        let db = people_db();
        // Exact-match-only MD: only identical names merge.
        let md = MatchingDependency::new("People", [("Name", 1.0), ("Phone", 1.0)]);
        let result = deduplicate(&db, &[md]).unwrap();
        // "john smith" x2 merge; "jon smith" and alice stay.
        assert_eq!(result.clusters.len(), 1);
        assert_eq!(result.clusters[0].len(), 2);
        assert_eq!(result.db.relation("People").unwrap().len(), 3);
    }

    #[test]
    fn transitivity_through_union_find() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["N"])).unwrap();
        // a~b and b~c but a~c is below threshold: they still cluster.
        db.insert("R", tuple!["abcde"]).unwrap();
        db.insert("R", tuple!["abcdX"]).unwrap();
        db.insert("R", tuple!["abcXX"]).unwrap();
        let md = MatchingDependency::new("R", [("N", 0.8)]);
        let result = deduplicate(&db, &[md]).unwrap();
        assert_eq!(result.clusters.len(), 1);
        assert_eq!(result.clusters[0].len(), 3);
        assert_eq!(result.db.relation("R").unwrap().len(), 1);
    }

    #[test]
    fn nulls_never_match() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["N"])).unwrap();
        db.insert("R", Tuple::new(vec![Value::NULL])).unwrap();
        db.insert("R", Tuple::new(vec![Value::NULL])).unwrap();
        let md = MatchingDependency::new("R", [("N", 0.5)]);
        let result = deduplicate(&db, &[md]).unwrap();
        assert!(result.clusters.is_empty());
    }

    #[test]
    fn no_duplicates_is_identity() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["N"])).unwrap();
        db.insert("R", tuple!["alpha"]).unwrap();
        db.insert("R", tuple!["omega"]).unwrap();
        let md = MatchingDependency::new("R", [("N", 0.9)]);
        let result = deduplicate(&db, &[md]).unwrap();
        assert!(result.clusters.is_empty());
        assert!(result.db.same_content(&db));
    }
}
