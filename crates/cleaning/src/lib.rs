#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqa-cleaning
//!
//! Data cleaning (§6 of the paper): the notion of repair applied to data
//! quality.
//!
//! * [`cfd_repair`] — cost-based value-modification cleaning for FDs and
//!   conditional FDs (the Bohannon-et-al. \[31\] / Fan-et-al. \[58\] line).
//! * [`cost`] — the cost model: per-attribute weights × value distance
//!   (normalized numeric / Levenshtein).
//! * [`dedup`] — entity resolution with matching dependencies (similarity →
//!   identification, union–find clustering, majority merge).
//! * [`numeric`] — numerical attribute repairs under aggregate (SUM)
//!   constraints with minimal L1 change (§4, \[20, 62\]).
//! * [`quality`] — quality query answering: certain answers over repairs,
//!   plus the "true in most repairs" threshold weakening the paper suggests.

pub mod cfd_repair;
pub mod cost;
pub mod dedup;
pub mod numeric;
pub mod quality;

pub use cfd_repair::{clean, CleaningResult, CleaningSpec, Fix};
pub use cost::{levenshtein, similarity, value_distance, CostModel};
pub use dedup::{deduplicate, DedupResult, MatchingDependency};
pub use numeric::{
    is_satisfied as numeric_is_satisfied, numeric_repair, NumericConstraint, NumericRepair,
    SumBound,
};
pub use quality::{quality_answers, quality_answers_with_threshold};
