//! Numerical attribute repairs under aggregate constraints (§4 of the
//! paper: "attribute-based repairs of databases with numerical values,
//! numerical queries, and subject to numerical constraints … opens
//! completely new research challenges" — Bertossi et al. \[20\], Flesca et
//! al. \[62\]).
//!
//! Supported constraints bound a column aggregate: `SUM(R.A) ≤ c`,
//! `SUM(R.A) ≥ c`, and per-group variants `SUM(R.A | group by G) ≤ c`. A
//! repair changes numeric cell values (never tuples) and is measured by the
//! **L1 distance** `Σ |old − new|`; the repairs produced here achieve the
//! provably minimal distance (`|excess|`), choosing the canonical
//! distribution that touches the fewest cells (reduce the largest values
//! first for ≤, raise the largest value for ≥, with an optional floor).

use crate::cfd_repair::Fix;
use cqa_relation::{Database, RelationError, Tid, Value};
use std::fmt;

/// A bound on a column sum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SumBound {
    /// `SUM(attr) ≤ c`.
    AtMost(f64),
    /// `SUM(attr) ≥ c`.
    AtLeast(f64),
}

/// An aggregate constraint on one numeric column, optionally per-group.
#[derive(Debug, Clone)]
pub struct NumericConstraint {
    /// Relation name.
    pub relation: String,
    /// Aggregated attribute name.
    pub attr: String,
    /// Group-by attribute (None = whole relation).
    pub group_by: Option<String>,
    /// The bound.
    pub bound: SumBound,
    /// Values may not be driven below this floor (e.g. `0.0` for
    /// quantities). `None` = unbounded below.
    pub floor: Option<f64>,
}

impl NumericConstraint {
    /// `SUM(relation.attr) ≤ c`, non-negative values.
    pub fn sum_at_most(relation: impl Into<String>, attr: impl Into<String>, c: f64) -> Self {
        NumericConstraint {
            relation: relation.into(),
            attr: attr.into(),
            group_by: None,
            bound: SumBound::AtMost(c),
            floor: Some(0.0),
        }
    }

    /// `SUM(relation.attr) ≥ c`.
    pub fn sum_at_least(relation: impl Into<String>, attr: impl Into<String>, c: f64) -> Self {
        NumericConstraint {
            relation: relation.into(),
            attr: attr.into(),
            group_by: None,
            bound: SumBound::AtLeast(c),
            floor: Some(0.0),
        }
    }

    /// Group the constraint by an attribute.
    pub fn per_group(mut self, group_attr: impl Into<String>) -> Self {
        self.group_by = Some(group_attr.into());
        self
    }
}

impl fmt::Display for NumericConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (op, c) = match self.bound {
            SumBound::AtMost(c) => ("<=", c),
            SumBound::AtLeast(c) => (">=", c),
        };
        match &self.group_by {
            Some(g) => write!(
                f,
                "SUM({}.{}) {op} {c} group by {g}",
                self.relation, self.attr
            ),
            None => write!(f, "SUM({}.{}) {op} {c}", self.relation, self.attr),
        }
    }
}

/// The result of a numerical repair.
#[derive(Debug, Clone)]
pub struct NumericRepair {
    /// The repaired instance.
    pub db: Database,
    /// Applied cell changes.
    pub fixes: Vec<Fix>,
    /// Total L1 distance `Σ |old − new|`.
    pub l1_distance: f64,
}

/// Is the constraint satisfied (within `1e-9`)?
pub fn is_satisfied(db: &Database, c: &NumericConstraint) -> Result<bool, RelationError> {
    for (_, total) in group_sums(db, c)? {
        match c.bound {
            SumBound::AtMost(b) if total > b + 1e-9 => return Ok(false),
            SumBound::AtLeast(b) if total < b - 1e-9 => return Ok(false),
            _ => {}
        }
    }
    Ok(true)
}

type Groups = Vec<(Vec<(Tid, f64)>, f64)>;

fn group_sums(db: &Database, c: &NumericConstraint) -> Result<Groups, RelationError> {
    let rel = db.require_relation(&c.relation)?;
    let attr_pos = rel.schema().require_position(&c.attr)?;
    let group_pos = match &c.group_by {
        Some(g) => Some(rel.schema().require_position(g)?),
        None => None,
    };
    let mut groups: std::collections::BTreeMap<Option<Value>, Vec<(Tid, f64)>> =
        std::collections::BTreeMap::new();
    for (tid, t) in rel.iter() {
        let Some(v) = t.at(attr_pos).as_f64() else {
            continue; // non-numeric and null cells do not participate
        };
        let key = group_pos.map(|p| t.at(p).clone());
        groups.entry(key).or_default().push((tid, v));
    }
    Ok(groups
        .into_values()
        .map(|members| {
            let total: f64 = members.iter().map(|(_, v)| v).sum();
            (members, total)
        })
        .collect())
}

/// Repair `db` to satisfy `c` with minimal L1 change.
///
/// For `≤ c`, the excess is removed from the largest values first (fewest
/// cells touched; the floor caps how much each cell can absorb). For `≥ c`
/// the deficit is added to the largest value (one cell). Errors if the
/// floor makes the bound unreachable.
pub fn numeric_repair(
    db: &Database,
    c: &NumericConstraint,
) -> Result<NumericRepair, RelationError> {
    let rel = db.require_relation(&c.relation)?;
    let attr_pos = rel.schema().require_position(&c.attr)?;
    let mut out = db.clone();
    let mut fixes: Vec<Fix> = Vec::new();
    let mut distance = 0.0;

    for (mut members, total) in group_sums(db, c)? {
        match c.bound {
            SumBound::AtMost(bound) => {
                let mut excess = total - bound;
                if excess <= 1e-9 {
                    continue;
                }
                // Largest first.
                members.sort_by(|a, b| b.1.total_cmp(&a.1));
                for (tid, old) in members {
                    if excess <= 1e-9 {
                        break;
                    }
                    let floor = c.floor.unwrap_or(f64::NEG_INFINITY);
                    let reducible = (old - floor).max(0.0);
                    let delta = reducible.min(excess);
                    if delta <= 0.0 {
                        continue;
                    }
                    let new = old - delta;
                    apply(&mut out, &mut fixes, tid, attr_pos, old, new)?;
                    distance += delta;
                    excess -= delta;
                }
                if excess > 1e-9 {
                    return Err(RelationError::Parse(format!(
                        "constraint `{c}` unreachable: floor prevents removing the excess"
                    )));
                }
            }
            SumBound::AtLeast(bound) => {
                let deficit = bound - total;
                if deficit <= 1e-9 {
                    continue;
                }
                // Raise the largest value (a single-cell, L1-minimal fix).
                members.sort_by(|a, b| b.1.total_cmp(&a.1));
                let Some(&(tid, old)) = members.first() else {
                    return Err(RelationError::Parse(format!(
                        "constraint `{c}` unreachable: no numeric cells in group"
                    )));
                };
                apply(&mut out, &mut fixes, tid, attr_pos, old, old + deficit)?;
                distance += deficit;
            }
        }
    }
    debug_assert!(is_satisfied(&out, c)?);
    Ok(NumericRepair {
        db: out,
        fixes,
        l1_distance: distance,
    })
}

fn apply(
    db: &mut Database,
    fixes: &mut Vec<Fix>,
    tid: Tid,
    position: usize,
    old: f64,
    new: f64,
) -> Result<(), RelationError> {
    let new_val = if new.fract() == 0.0 && new.abs() < i64::MAX as f64 {
        Value::Int(new as i64)
    } else {
        Value::Float(new)
    };
    let old_val = db
        .get(tid)
        .map(|(_, t)| t.at(position).clone())
        .unwrap_or(Value::Float(old));
    db.update_value(tid, position, new_val.clone())?;
    fixes.push(Fix {
        tid,
        position,
        old: old_val,
        new: new_val,
        cost: (new - old).abs(),
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relation::{tuple, RelationSchema};

    fn budget_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Budget", ["Dept", "Amount"]))
            .unwrap();
        db.insert("Budget", tuple!["cs", 700]).unwrap();
        db.insert("Budget", tuple!["math", 300]).unwrap();
        db.insert("Budget", tuple!["phil", 200]).unwrap();
        db
    }

    #[test]
    fn sum_at_most_reduces_largest_first() {
        let db = budget_db();
        let c = NumericConstraint::sum_at_most("Budget", "Amount", 1000.0);
        assert!(!is_satisfied(&db, &c).unwrap());
        let r = numeric_repair(&db, &c).unwrap();
        assert!(is_satisfied(&r.db, &c).unwrap());
        assert_eq!(r.l1_distance, 200.0); // minimal: remove exactly the excess
        assert_eq!(r.fixes.len(), 1); // the 700 cell absorbs it all
        assert_eq!(r.fixes[0].new, Value::Int(500));
    }

    #[test]
    fn sum_at_least_raises_one_cell() {
        let db = budget_db();
        let c = NumericConstraint::sum_at_least("Budget", "Amount", 1500.0);
        let r = numeric_repair(&db, &c).unwrap();
        assert!(is_satisfied(&r.db, &c).unwrap());
        assert_eq!(r.l1_distance, 300.0);
        assert_eq!(r.fixes.len(), 1);
    }

    #[test]
    fn satisfied_constraint_is_untouched() {
        let db = budget_db();
        let c = NumericConstraint::sum_at_most("Budget", "Amount", 2000.0);
        let r = numeric_repair(&db, &c).unwrap();
        assert!(r.fixes.is_empty());
        assert_eq!(r.l1_distance, 0.0);
        assert!(r.db.same_content(&db));
    }

    #[test]
    fn excess_spills_across_cells_respecting_floor() {
        let db = budget_db();
        let c = NumericConstraint::sum_at_most("Budget", "Amount", 100.0);
        let r = numeric_repair(&db, &c).unwrap();
        assert!(is_satisfied(&r.db, &c).unwrap());
        assert_eq!(r.l1_distance, 1100.0);
        assert!(r.fixes.len() >= 2); // 700 floored at 0, more cells needed
                                     // No value went negative.
        for t in r.db.relation("Budget").unwrap().tuples() {
            assert!(t.at(1).as_f64().unwrap() >= 0.0);
        }
    }

    #[test]
    fn unreachable_bound_is_an_error() {
        let db = budget_db();
        let c = NumericConstraint::sum_at_most("Budget", "Amount", -5.0);
        assert!(numeric_repair(&db, &c).is_err());
    }

    #[test]
    fn per_group_constraints() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Sales", ["Region", "Amount"]))
            .unwrap();
        db.insert("Sales", tuple!["east", 80]).unwrap();
        db.insert("Sales", tuple!["east", 40]).unwrap();
        db.insert("Sales", tuple!["west", 30]).unwrap();
        let c = NumericConstraint::sum_at_most("Sales", "Amount", 100.0).per_group("Region");
        assert!(!is_satisfied(&db, &c).unwrap());
        let r = numeric_repair(&db, &c).unwrap();
        assert!(is_satisfied(&r.db, &c).unwrap());
        // Only the east group changed; west untouched.
        assert_eq!(r.l1_distance, 20.0);
        assert!(r
            .db
            .relation("Sales")
            .unwrap()
            .contains(&tuple!["west", 30]));
    }

    #[test]
    fn nulls_and_non_numerics_are_skipped() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("M", ["A"])).unwrap();
        db.insert("M", tuple![100]).unwrap();
        db.insert("M", Tuple::new(vec![Value::NULL])).unwrap();
        let c = NumericConstraint::sum_at_most("M", "A", 50.0);
        let r = numeric_repair(&db, &c).unwrap();
        assert_eq!(r.l1_distance, 50.0);
        assert_eq!(r.fixes.len(), 1);
    }

    use cqa_relation::Tuple;
}
