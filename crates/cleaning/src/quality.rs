//! Quality query answering (§6 of the paper; Bertossi–Rizzolo–Lei \[22, 23\]).
//!
//! When quality concerns are expressed as constraints, the *quality answers*
//! to a query are the answers that persist under the (possibly virtual)
//! quality-restoring repairs — the natural generalization of consistent
//! answers. Two flavours are provided, matching the paper's discussion:
//!
//! * the **certain** semantics over all minimal repairs of a chosen class
//!   (delegating to `cqa-core`);
//! * a relaxed **majority/threshold** semantics, keeping answers true in at
//!   least a fraction of the repairs — the "what is true in most repairs"
//!   weakening the paper suggests for data-cleaning practice.

use cqa_constraints::ConstraintSet;
use cqa_core::{repairs_of, RepairClass};
use cqa_query::{eval_ucq, NullSemantics, UnionQuery};
use cqa_relation::{Database, RelationError, Tuple};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Certain quality answers: answers true in every repair of the class.
pub fn quality_answers(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    class: &RepairClass,
) -> Result<BTreeSet<Tuple>, RelationError> {
    cqa_core::consistent_answers(db, sigma, query, class)
}

/// Threshold semantics: answers true in at least `fraction` (0, 1] of the
/// repairs, with the fraction each answer achieved.
pub fn quality_answers_with_threshold(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    class: &RepairClass,
    fraction: f64,
) -> Result<Vec<(Tuple, f64)>, RelationError> {
    let repairs = repairs_of(db, sigma, class)?;
    if repairs.is_empty() {
        return Ok(Vec::new());
    }
    let mut votes: BTreeMap<Tuple, usize> = BTreeMap::new();
    for inst in &repairs {
        for t in eval_ucq(inst, query, NullSemantics::Sql) {
            if !t.has_null() {
                *votes.entry(t).or_default() += 1;
            }
        }
    }
    let n = repairs.len() as f64;
    Ok(votes
        .into_iter()
        .map(|(t, v)| (t, v as f64 / n))
        .filter(|(_, f)| *f >= fraction)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::KeyConstraint;
    use cqa_query::parse_query;
    use cqa_relation::{tuple, RelationSchema};

    fn db() -> (Database, ConstraintSet) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Emp", ["Name", "Salary"]))
            .unwrap();
        db.insert("Emp", tuple!["page", 5000]).unwrap();
        db.insert("Emp", tuple!["page", 8000]).unwrap();
        db.insert("Emp", tuple!["page", 8000]).unwrap(); // dedup: still 2 rows
        db.insert("Emp", tuple!["smith", 3000]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("Emp", ["Name"])]);
        (db, sigma)
    }

    #[test]
    fn certain_quality_answers_match_cqa() {
        let (db, sigma) = db();
        let q = UnionQuery::single(parse_query("Q(x, y) :- Emp(x, y)").unwrap());
        let ans = quality_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap();
        assert_eq!(ans, [tuple!["smith", 3000]].into());
    }

    #[test]
    fn threshold_recovers_majority_values() {
        let (db, sigma) = db();
        let q = UnionQuery::single(parse_query("Q(x, y) :- Emp(x, y)").unwrap());
        // Two repairs: {5000} or {8000} for page. Each page-row is true in
        // half the repairs.
        let half =
            quality_answers_with_threshold(&db, &sigma, &q, &RepairClass::Subset, 0.5).unwrap();
        assert!(half
            .iter()
            .any(|(t, f)| t == &tuple!["page", 5000] && *f == 0.5));
        assert!(half
            .iter()
            .any(|(t, f)| t == &tuple!["page", 8000] && *f == 0.5));
        assert!(half
            .iter()
            .any(|(t, f)| t == &tuple!["smith", 3000] && *f == 1.0));
        // Raising the threshold to 1.0 leaves only the certain answers.
        let all =
            quality_answers_with_threshold(&db, &sigma, &q, &RepairClass::Subset, 1.0).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, tuple!["smith", 3000]);
    }

    #[test]
    fn threshold_zero_point_epsilon_is_possible_answers() {
        let (db, sigma) = db();
        let q = UnionQuery::single(parse_query("Q(x) :- Emp(x, y)").unwrap());
        let some =
            quality_answers_with_threshold(&db, &sigma, &q, &RepairClass::Subset, 0.01).unwrap();
        let names: BTreeSet<Tuple> = some.into_iter().map(|(t, _)| t).collect();
        let possible = cqa_core::possible_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap();
        assert_eq!(names, possible);
    }
}
