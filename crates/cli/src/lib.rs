#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Untrusted input must never panic the process: unwraps/expects are banned
// outside tests (allow-listed per site where an invariant is locally proven).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! `repairctl` — command-line repairs and consistent query answering.
//!
//! Databases are text files in the `cqa-relation` codec format; constraint
//! sets use the `cqa-constraints` Σ-file format. Run `repairctl help` for
//! the command reference. The dispatcher lives in a library so the test
//! suite can drive it end-to-end without spawning processes.

use cqa_analysis::{DiagCode, Diagnostic};
use cqa_constraints::{parse_constraints, ConstraintSet};
use cqa_core::{RepairClass, Strategy};
use cqa_exec::{Budget, Limits, Outcome};
use cqa_query::{parse_query, UnionQuery};
use cqa_relation::Database;
use std::fmt::Write as _;
use std::sync::Arc;

/// Parsed command-line options: positionals and `--flag [value]` pairs.
struct Opts {
    flags: Vec<(String, Option<String>)>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut flags = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it
                    .peek()
                    .filter(|v| !v.starts_with("--"))
                    .map(|v| (*v).clone());
                if value.is_some() {
                    it.next();
                }
                flags.push((name.to_string(), value));
            } else {
                // Positional arguments are currently unused; tolerate them
                // so `repairctl cqa extra` degrades gracefully.
            }
        }
        Opts { flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.flag(name)
            .ok_or_else(|| format!("missing required option --{name} <value>"))
    }
}

/// Render a user-input failure through the shared diagnostic machinery
/// (`error[E001] invalid-input: …` with the offending file or flag as
/// source context), so bad input is *reported* — uniformly with the
/// `analyze` lints — and the process exits nonzero instead of panicking.
fn input_error(message: impl Into<String>, context: &str) -> String {
    Diagnostic::new(DiagCode::InvalidInput, message)
        .with_context(context)
        .to_string()
}

fn load_db(opts: &Opts) -> Result<Database, String> {
    let path = opts.require("db")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| input_error(format!("reading: {e}"), path))?;
    cqa_relation::load(&text).map_err(|e| input_error(e.to_string(), path))
}

fn load_sigma(opts: &Opts) -> Result<ConstraintSet, String> {
    let path = opts.require("constraints")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| input_error(format!("reading: {e}"), path))?;
    parse_constraints(&text).map_err(|e| input_error(e.to_string(), path))
}

fn load_query(opts: &Opts) -> Result<UnionQuery, String> {
    let q = opts.require("query")?;
    parse_query(q)
        .map(UnionQuery::single)
        .map_err(|e| input_error(e.to_string(), &format!("--query {q}")))
}

/// Parse one optional non-negative integer flag.
fn u64_flag(opts: &Opts, name: &str) -> Result<Option<u64>, String> {
    if !opts.has(name) {
        return Ok(None);
    }
    let v = opts.require(name)?;
    v.parse::<u64>().map(Some).map_err(|_| {
        input_error(
            format!("expected a non-negative integer, got `{v}`"),
            &format!("--{name}"),
        )
    })
}

/// Build the execution [`Budget`] from the global flags. With no flag set,
/// `CQA_BUDGET_STEPS` (if present) applies; otherwise the budget is
/// unlimited and every budgeted path reduces to the exact one.
fn budget_from(opts: &Opts) -> Result<Budget, String> {
    let limits = Limits {
        deadline_ms: u64_flag(opts, "timeout-ms")?,
        steps: u64_flag(opts, "budget-steps")?,
        items: u64_flag(opts, "max-repairs")?,
    };
    if limits.is_unlimited() {
        Ok(Budget::from_env().unwrap_or_else(Budget::unlimited))
    } else {
        Ok(Budget::new(limits))
    }
}

/// Report a truncated outcome. Exact outcomes print nothing, so with an
/// ample (or absent) budget the output is byte-identical to the
/// unbudgeted run — the determinism suites rely on this.
fn note_truncation<T>(out: &mut String, outcome: &Outcome<T>) {
    if let Some((reason, explored)) = outcome.truncation() {
        let _ = writeln!(out, "truncated: {reason} (explored {explored})");
    }
}

fn repair_class(opts: &Opts) -> Result<RepairClass, String> {
    match opts.flag("class").unwrap_or("subset") {
        "subset" | "s" => Ok(RepairClass::Subset),
        "cardinality" | "c" => Ok(RepairClass::Cardinality),
        "attribute" | "attr" => Ok(RepairClass::AttributeNull),
        "deletions" => Ok(RepairClass::SubsetDeletionsOnly),
        other => Err(format!(
            "unknown repair class `{other}` (use subset|cardinality|attribute|deletions)"
        )),
    }
}

/// Run a command; returns the process exit code. All output goes to `out`.
pub fn run(args: &[String], out: &mut String) -> Result<i32, String> {
    let Some((cmd, rest)) = args.split_first() else {
        out.push_str(HELP);
        return Ok(2);
    };
    let opts = Opts::parse(rest);
    // `--threads N` is accepted by every subcommand: it configures the
    // global `cqa-exec` pool (N = 1 forces the exact sequential code
    // paths). Without the flag the `CQA_THREADS` environment variable, and
    // then the detected core count, apply.
    if opts.has("threads") {
        let n: usize = opts
            .require("threads")?
            .parse()
            .map_err(|_| "--threads expects a positive number".to_string())?;
        if n == 0 {
            return Err("--threads expects a positive number".into());
        }
        cqa_exec::set_threads(n);
    }
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            out.push_str(HELP);
            Ok(0)
        }
        "analyze" => cmd_analyze(&opts, out),
        "audit" => cmd_audit(&opts, out),
        "check" => cmd_check(&opts, out),
        "repairs" => cmd_repairs(&opts, out),
        "cqa" => cmd_cqa(&opts, out),
        "causes" => cmd_causes(&opts, out),
        "measure" => cmd_measure(&opts, out),
        "clean" => cmd_clean(&opts, out),
        "asp" => cmd_asp(&opts, out),
        "serve" => cmd_serve(&opts, out),
        "sql" => cmd_sql(&opts, out),
        other => Err(format!("unknown command `{other}`; see `repairctl help`")),
    }
}

const HELP: &str = "\
repairctl — database repairs and consistent query answering

USAGE:
  repairctl <command> --db <file.idb> [--constraints <sigma.txt>] [options]

GLOBAL OPTIONS:
  --threads N      worker threads for repair enumeration / CQA / hitting-set
                   search (1 = sequential; default: $CQA_THREADS, else cores)
  --timeout-ms N   wall-clock budget; on expiry the command reports a sound
                   partial (anytime) result flagged by a `truncated:` line.
                   N = 0 truncates *immediately* (it is not \"unlimited\"):
                   enumeration-backed paths return their sound seed
                   approximation, while polynomial paths (FO rewriting)
                   still answer exactly — they are budget-exempt
  --budget-steps N logical-step budget — deterministic: the same N truncates
                   at the same point at any thread count
                   (default: $CQA_BUDGET_STEPS, else unlimited)
  --max-repairs N  stop after N repairs / models have been enumerated

  Budgets apply to the exponential commands (repairs, cqa, causes, asp).
  Exceeding one is not an error: certain answers degrade to a sound
  under-approximation, possible answers to an over-approximation, repair
  lists to a verified subset.

COMMANDS:
  analyze   [--program F.asp] [--constraints F [--db F]] [--query \"…\"]
            [--catalog] [--components] [--plan] [--deny]
                                            static analysis & diagnostics:
                                            classification (stratified /
                                            head-cycle-free / full), strata,
                                            grounding estimate, lints;
                                            with --query + keys-only
                                            --constraints + --db, reports the
                                            CQA dichotomy (Q003 FO-rewritable
                                            / Q004 coNP witness);
                                            --components adds the conflict-
                                            component histogram, frozen-core
                                            fraction and product-size savings;
                                            --plan (with --query + --db) prints
                                            the cost-based join order, per-step
                                            cardinality estimates, and the
                                            subplan-cache hit/miss counters
  audit     [--root DIR] [--baseline F] [--deny] [--print-baseline]
                                            L-series workspace invariant
                                            lints over this repository's own
                                            sources (L001 hash-order leak,
                                            L002 unbudgeted exponential path,
                                            L003 panic surface, L004 ad-hoc
                                            parallelism, L005 ambient clock/
                                            env, L006 unsafe); baseline
                                            defaults to <root>/audit.baseline
  check     --db F --constraints F          consistency + violation report
  repairs   --db F --constraints F          enumerate repairs
            [--class subset|cardinality|attribute|deletions] [--limit N]
  cqa       --db F --constraints F --query \"Q(x) :- R(x, y)\"
            [--class …] [--possible]        consistent (or possible) answers
  causes    --db F --query \"Q() :- …\"       causes + responsibilities
  measure   --db F --constraints F          inconsistency degree / core gap
  clean     --db F --constraints F [--out F] cost-based FD/CFD cleaning
  asp       --db F --constraints F [--c-repairs]
                                            repair program + stable models
  serve     [--port N] [--host H] [--max-inflight N] [--max-sessions N]
            [--default-timeout-ms N] [--max-timeout-ms N]
                                            run repaird, the multi-tenant CQA
                                            server (HTTP/1.1 + JSON over
                                            loopback by default; port 0 picks
                                            a free port, printed on stdout);
                                            blocks until POST /shutdown;
                                            per-request budgets honour the
                                            same truncation contract as the
                                            one-shot commands
  sql       --db F --constraints F --query … print the certain FO rewriting
                                            as a DBMS-ready SQL statement
  help                                       this text

EXIT CODES (analyze, audit):
  0  clean, or only info/warning diagnostics without --deny
  1  an error-severity diagnostic fired; with --deny, any diagnostic at
     warning or above (audit: any unbaselined finding or stale baseline
     entry) — this is the CI gate
  2  usage or input error (bad flags, unreadable files, parse failures)
  Other commands keep their documented meanings (e.g. `check` exits 1 on an
  inconsistent instance); usage/input errors are always exit 2.

FILES:
  databases:   @relation R(A, B) headers + one tuple per line
  constraints: key/fd/dc/tgd/cfd lines (see cqa-constraints docs)
";

fn cmd_analyze(opts: &Opts, out: &mut String) -> Result<i32, String> {
    use cqa_analysis::{DiagCode, Diagnostic};

    if opts.has("catalog") {
        let _ = writeln!(out, "diagnostic code catalog:");
        for code in DiagCode::ALL {
            let _ = writeln!(
                out,
                "  {} {:<26} [{}] {}",
                code.code(),
                code.name(),
                code.default_severity(),
                code.summary()
            );
        }
        return Ok(0);
    }

    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut analyzed_anything = false;
    let mut sigma_db: Option<(ConstraintSet, Option<Database>)> = None;

    // ASP program analysis (classification, strata, grounding estimate).
    if let Some(path) = opts.flag("program") {
        analyzed_anything = true;
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let program = cqa_asp::parse_asp(&text).map_err(|e| format!("{path}: {e}"))?;
        let analysis = cqa_asp::analyze_program(&program);
        let _ = writeln!(out, "program: {path}");
        let _ = writeln!(
            out,
            "  {} rules, {} weak constraint(s)",
            program.rules.len(),
            program.weak.len()
        );
        let _ = writeln!(out, "  {}", analysis.classification_line());
        if let Err(d) = program.check_safety() {
            diagnostics.push(d);
        }
        diagnostics.extend(analysis.diagnostics);
    }

    // Constraint-set lints (schema-aware when --db is given).
    if opts.has("constraints") {
        analyzed_anything = true;
        let sigma = load_sigma(opts)?;
        let db = if opts.has("db") {
            Some(load_db(opts)?)
        } else {
            None
        };
        let _ = writeln!(
            out,
            "constraints: {} constraint(s)",
            sigma.constraints.len()
        );
        diagnostics.extend(cqa_analysis::lint_constraints(&sigma, db.as_ref()));

        // Conflict-component factorization report (needs the instance).
        if opts.has("components") {
            let Some(db) = db.as_ref() else {
                return Err("--components needs --db <file> to build the conflict graph".into());
            };
            let budget = budget_from(opts)?;
            let graph = sigma.conflict_hypergraph(db).map_err(|e| e.to_string())?;
            let components = graph.components();
            let conflicted: usize = components.components.iter().map(|c| c.node_count()).sum();
            let total = db.tids().len();
            let core = components.frozen_core.len();
            let _ = writeln!(
                out,
                "conflict components: {} ({} conflicted tuple(s); frozen core {}/{} = {:.1}%)",
                components.components.len(),
                conflicted,
                core,
                total,
                if total == 0 {
                    100.0
                } else {
                    100.0 * core as f64 / total as f64
                },
            );
            // Component-size histogram (tuples per component).
            let mut histogram: std::collections::BTreeMap<usize, usize> =
                std::collections::BTreeMap::new();
            for c in &components.components {
                *histogram.entry(c.node_count()).or_default() += 1;
            }
            for (size, count) in &histogram {
                let _ = writeln!(out, "  {count} component(s) of {size} tuple(s)");
            }
            // Estimated product-size savings: enumerate the per-component
            // S-repair families (budgeted) and compare Σ against ∏.
            let families = components.minimal_hitting_sets_factored(&budget);
            note_truncation(out, &families);
            let families = families.into_value();
            let factored = families.factored_len();
            let product = families.product_len();
            let product_str = match product {
                Some(p) => p.to_string(),
                None => "> usize::MAX".to_string(),
            };
            let savings = match product {
                Some(p) if factored > 0 => format!("{:.1}×", p as f64 / factored as f64),
                _ => "∞".to_string(),
            };
            let _ = writeln!(
                out,
                "  repair families: {factored} component-local vs {product_str} \
                 cross-product (estimated savings {savings})",
            );
            if components.components.len() >= 2 {
                diagnostics.push(Diagnostic::new(
                    DiagCode::ConflictComponents,
                    format!(
                        "repair search factorizes over {} independent components \
                         (largest: {} tuples)",
                        components.components.len(),
                        components.largest_component(),
                    ),
                ));
            }
        }
        sigma_db = Some((sigma, db));
    }

    // Query lints, plus — when Σ is keys-only and the schema is at hand —
    // the Koutris–Wijsen dichotomy verdict (Q003/Q004).
    if let Some(q) = opts.flag("query") {
        analyzed_anything = true;
        match parse_query(q) {
            Ok(cq) => {
                diagnostics.extend(cqa_analysis::lint_query(&cq));
                if let Some((sigma, Some(db))) = &sigma_db {
                    if let Some(keys) = keys_only(db, sigma) {
                        diagnostics.extend(cqa_core::rewrite::keys::rewritability_diagnostic(
                            &cq, &keys,
                        ));
                    }
                }
                // Cost-based plan report: the chosen join order with its
                // per-step cardinality estimates, plus the subplan-cache
                // counters that govern repair-family sharing.
                if opts.has("plan") {
                    let db_owned;
                    let db = match &sigma_db {
                        Some((_, Some(db))) => db,
                        _ if opts.has("db") => {
                            db_owned = load_db(opts)?;
                            &db_owned
                        }
                        _ => {
                            return Err(
                                "--plan needs --db <file> for cardinality statistics".into()
                            );
                        }
                    };
                    let plan = cqa_query::plan::explain(db, &cq);
                    let _ = writeln!(out, "join order: {}", plan.describe());
                    for step in &plan.steps {
                        let _ = writeln!(
                            out,
                            "  atom {}: {:<16} ~{} row(s) via {}",
                            step.atom,
                            step.relation,
                            step.estimate,
                            if step.indexed { "index probe" } else { "scan" },
                        );
                    }
                    let _ = writeln!(out, "  estimated witnesses: {}", plan.estimated_witnesses());
                    let stats = cqa_query::plan_cache_stats();
                    let _ = writeln!(
                        out,
                        "subplan cache: {} (hits {}, misses {}, entries {})",
                        if cqa_exec::plan_cache_enabled() {
                            "enabled"
                        } else {
                            "disabled"
                        },
                        stats.hits,
                        stats.misses,
                        stats.entries,
                    );
                }
            }
            Err(e) => return Err(input_error(e.to_string(), &format!("--query {q}"))),
        }
    }

    if !analyzed_anything {
        return Err(
            "analyze needs at least one of --program, --constraints, --query (or --catalog)".into(),
        );
    }

    if diagnostics.is_empty() {
        let _ = writeln!(out, "no diagnostics");
        return Ok(0);
    }
    let _ = writeln!(out, "{} diagnostic(s):", diagnostics.len());
    let mut worst_is_error = false;
    let mut any_deniable = false;
    for d in &diagnostics {
        worst_is_error |= d.is_error();
        any_deniable |= d.severity >= cqa_analysis::Severity::Warning;
        let _ = writeln!(out, "{d}");
    }
    // Exit semantics (documented under EXIT CODES in `--help`): errors
    // always fail; with --deny, warnings fail too, so CI can gate on lints.
    Ok(if worst_is_error || (opts.has("deny") && any_deniable) {
        1
    } else {
        0
    })
}

/// Σ as key positions, if it consists solely of key constraints (at most
/// one per relation) whose attributes resolve against the schema.
fn keys_only(
    db: &Database,
    sigma: &ConstraintSet,
) -> Option<cqa_core::rewrite::keys::KeyPositions> {
    let mut keys = cqa_core::rewrite::keys::KeyPositions::new();
    for c in &sigma.constraints {
        let cqa_constraints::Constraint::Key(k) = c else {
            return None;
        };
        let schema = db.relation(&k.relation)?.schema().clone();
        let positions = schema.positions_of(k.key.iter().map(String::as_str)).ok()?;
        if keys.insert(k.relation.clone(), positions).is_some() {
            return None; // two keys on one relation: outside the dichotomy
        }
    }
    Some(keys)
}

/// `repairctl audit` — run the L-series workspace lints (see `cqa-audit`)
/// and match the result against the checked-in baseline.
fn cmd_audit(opts: &Opts, out: &mut String) -> Result<i32, String> {
    use std::path::PathBuf;

    // Workspace root: --root, else the current directory, else (when the
    // binary runs from somewhere else entirely, e.g. `cargo run` out of a
    // subdirectory) the compile-time workspace location.
    let root: PathBuf = match opts.flag("root") {
        Some(dir) => PathBuf::from(dir),
        None => {
            let cwd = PathBuf::from(".");
            if cwd.join("crates").is_dir() {
                cwd
            } else {
                PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
            }
        }
    };
    if !root.join("crates").is_dir() {
        return Err(input_error(
            "not a workspace root (no crates/ directory); pass --root <dir>",
            &root.display().to_string(),
        ));
    }

    let report = cqa_audit::audit_workspace(&root)
        .map_err(|e| input_error(e, &root.display().to_string()))?;

    if opts.has("print-baseline") {
        out.push_str(&cqa_audit::Baseline::render(&report.findings));
        return Ok(0);
    }

    let baseline_path: PathBuf = match opts.flag("baseline") {
        Some(p) => PathBuf::from(p),
        None => root.join("audit.baseline"),
    };
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => cqa_audit::Baseline::parse(&text)
            .map_err(|e| input_error(e, &baseline_path.display().to_string()))?,
        // A missing *default* baseline means "empty"; a missing explicit
        // --baseline is a user error.
        Err(e) if opts.has("baseline") => {
            return Err(input_error(
                format!("reading: {e}"),
                &baseline_path.display().to_string(),
            ));
        }
        Err(_) => cqa_audit::Baseline::default(),
    };
    let outcome = baseline.apply(report.findings);

    let _ = writeln!(
        out,
        "audited {} file(s), {} KiB: {} finding(s) ({} suppressed by baseline, {} stale entr{})",
        report.files,
        report.bytes / 1024,
        outcome.active.len(),
        outcome.suppressed,
        outcome.stale.len(),
        if outcome.stale.len() == 1 { "y" } else { "ies" },
    );
    let mut worst_is_error = false;
    for f in &outcome.active {
        let d = f.to_diagnostic();
        worst_is_error |= d.is_error();
        let _ = writeln!(out, "{d}");
    }
    for s in &outcome.stale {
        let _ = writeln!(out, "stale: {s}");
    }
    let deny_hit = opts.has("deny") && (!outcome.active.is_empty() || !outcome.stale.is_empty());
    Ok(if worst_is_error || deny_hit { 1 } else { 0 })
}

fn cmd_check(opts: &Opts, out: &mut String) -> Result<i32, String> {
    let db = load_db(opts)?;
    let sigma = load_sigma(opts)?;
    let ok = sigma.is_satisfied(&db).map_err(|e| e.to_string())?;
    let _ = writeln!(out, "consistent: {ok}");
    if !ok {
        let denial = sigma.denial_violations(&db).map_err(|e| e.to_string())?;
        let tgd = sigma.tgd_violations(&db);
        let _ = writeln!(out, "denial-class violations: {}", denial.len());
        for v in denial.iter().take(20) {
            let tids: Vec<String> = v.iter().map(|t| t.to_string()).collect();
            let _ = writeln!(out, "  {{{}}}", tids.join(", "));
        }
        let _ = writeln!(out, "tgd violations: {}", tgd.len());
        return Ok(1);
    }
    Ok(0)
}

fn cmd_repairs(opts: &Opts, out: &mut String) -> Result<i32, String> {
    let db = load_db(opts)?;
    let sigma = load_sigma(opts)?;
    let class = repair_class(opts)?;
    let budget = budget_from(opts)?;
    let limit: Option<usize> = match opts.flag("limit") {
        Some(n) => Some(
            n.parse()
                .map_err(|_| "--limit expects a number".to_string())?,
        ),
        None => None,
    };
    match class {
        RepairClass::AttributeNull => {
            // Attribute repairs are computed in polynomial time; no budget
            // is needed and the result is always exact.
            let repairs = cqa_core::attribute_repairs(&db, &sigma).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "{} attribute repairs", repairs.len());
            for r in repairs.iter().take(limit.unwrap_or(usize::MAX)) {
                let _ = writeln!(out, "  {r}");
            }
        }
        RepairClass::Cardinality => {
            let base = Arc::new(db);
            let repairs = cqa_core::c_repairs_budgeted(
                &base,
                &sigma,
                &cqa_core::RepairOptions::default(),
                &budget,
            )
            .map_err(|e| e.to_string())?;
            note_truncation(out, &repairs);
            let repairs = repairs.into_value();
            let _ = writeln!(out, "{} C-repairs", repairs.len());
            for r in repairs.iter().take(limit.unwrap_or(usize::MAX)) {
                let _ = writeln!(out, "  {r}");
            }
        }
        _ => {
            let options = cqa_core::RepairOptions {
                limit,
                allow_insertions: !matches!(class, RepairClass::SubsetDeletionsOnly),
                ..Default::default()
            };
            let base = Arc::new(db);
            let repairs = cqa_core::s_repairs_budgeted(&base, &sigma, &options, &budget)
                .map_err(|e| e.to_string())?;
            note_truncation(out, &repairs);
            let repairs = repairs.into_value();
            let _ = writeln!(out, "{} S-repairs", repairs.len());
            for r in &repairs {
                let _ = writeln!(out, "  {r}");
            }
        }
    }
    Ok(0)
}

fn cmd_cqa(opts: &Opts, out: &mut String) -> Result<i32, String> {
    let db = load_db(opts)?;
    let sigma = load_sigma(opts)?;
    let query = load_query(opts)?;
    let class = repair_class(opts)?;
    let budget = budget_from(opts)?;
    if opts.has("possible") {
        let answers = cqa_core::possible_answers_budgeted(&db, &sigma, &query, &class, &budget)
            .map_err(|e| e.to_string())?;
        note_truncation(out, &answers);
        let answers = answers.into_value();
        let _ = writeln!(out, "{} possible answers", answers.len());
        for t in &answers {
            let _ = writeln!(out, "  {t}");
        }
        return Ok(0);
    }
    // The planner reports its strategy for the default class.
    if matches!(class, RepairClass::Subset) {
        let planned = cqa_core::answer_consistently_budgeted(&db, &sigma, &query, &budget)
            .map_err(|e| e.to_string())?;
        note_truncation(out, &planned);
        let planned = planned.into_value();
        let strategy = match &planned.strategy {
            Strategy::FoRewriting => "FO rewriting (no repairs materialized)".to_string(),
            Strategy::DirectEvaluation => "direct evaluation (instance consistent)".to_string(),
            Strategy::RepairEnumeration { reason } => {
                format!("repair enumeration ({reason})")
            }
            Strategy::FactoredEnumeration {
                reason,
                factorization,
            } => {
                let product = match factorization.product_repairs {
                    Some(p) => p.to_string(),
                    None => "> usize::MAX".to_string(),
                };
                format!(
                    "factored repair enumeration over {} conflict components \
                     ({}; folded {} component-local repairs, not {})",
                    factorization.components, reason, factorization.factored_repairs, product,
                )
            }
        };
        let _ = writeln!(out, "strategy: {strategy}");
        for d in &planned.diagnostics {
            let _ = writeln!(out, "note: {d}");
        }
        let _ = writeln!(out, "{} consistent answers", planned.answers.len());
        for t in &planned.answers {
            let _ = writeln!(out, "  {t}");
        }
    } else {
        let answers = cqa_core::consistent_answers_budgeted(&db, &sigma, &query, &class, &budget)
            .map_err(|e| e.to_string())?;
        note_truncation(out, &answers);
        let answers = answers.into_value();
        let _ = writeln!(out, "{} consistent answers", answers.len());
        for t in &answers {
            let _ = writeln!(out, "  {t}");
        }
    }
    Ok(0)
}

fn cmd_causes(opts: &Opts, out: &mut String) -> Result<i32, String> {
    let db = load_db(opts)?;
    let query = load_query(opts)?;
    let budget = budget_from(opts)?;
    if query.disjuncts.iter().any(|q| !q.is_boolean()) {
        return Err("causes are computed for Boolean queries; bind the answer constants".into());
    }
    let causes = cqa_causality::actual_causes_budgeted(&db, &query, &budget);
    note_truncation(out, &causes);
    let truncated = causes.is_truncated();
    let causes = causes.into_value();
    if causes.is_empty() {
        let _ = writeln!(
            out,
            "{}",
            if truncated {
                "no causes found within budget"
            } else {
                "query is false: no causes"
            }
        );
        return Ok(1);
    }
    let _ = writeln!(out, "{} actual causes", causes.len());
    for c in &causes {
        // Causes come from the support hypergraph of this very instance,
        // but print defensively: an unknown tid is reported, not a panic.
        match db.get(c.tid) {
            Some((rel, tuple)) => {
                let _ = writeln!(out, "  {} = {rel}{tuple}  {c}", c.tid);
            }
            None => {
                let _ = writeln!(out, "  {} = <tuple not in instance>  {c}", c.tid);
            }
        }
    }
    Ok(0)
}

fn cmd_measure(opts: &Opts, out: &mut String) -> Result<i32, String> {
    let db = load_db(opts)?;
    let sigma = load_sigma(opts)?;
    let degree = cqa_core::inconsistency_degree(&db, &sigma).map_err(|e| e.to_string())?;
    let gap = cqa_core::core_gap(&db, &sigma).map_err(|e| e.to_string())?;
    let _ = writeln!(out, "tuples: {}", db.total_tuples());
    let _ = writeln!(out, "inconsistency degree (C-repair): {degree:.4}");
    let _ = writeln!(out, "core gap (S-repairs): {gap:.4}");
    Ok(0)
}

fn cmd_clean(opts: &Opts, out: &mut String) -> Result<i32, String> {
    let db = load_db(opts)?;
    let sigma = load_sigma(opts)?;
    let mut spec = cqa_cleaning::CleaningSpec::new();
    for c in &sigma.constraints {
        match c {
            cqa_constraints::Constraint::Fd(fd) => spec.fds.push(fd.clone()),
            cqa_constraints::Constraint::Cfd(cfd) => spec.cfds.push(cfd.clone()),
            cqa_constraints::Constraint::Key(k) => {
                let schema = db
                    .require_relation(&k.relation)
                    .map_err(|e| e.to_string())?
                    .schema()
                    .clone();
                spec.fds.push(k.to_fd(&schema));
            }
            other => {
                return Err(format!(
                    "the cleaner handles FDs/keys/CFDs only; Σ contains: {other}"
                ))
            }
        }
    }
    let result = cqa_cleaning::clean(&db, &spec, &cqa_cleaning::CostModel::uniform())
        .map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "{} fixes, total cost {:.3}, {} round(s)",
        result.fixes.len(),
        result.total_cost,
        result.rounds
    );
    for f in &result.fixes {
        let _ = writeln!(out, "  {f}");
    }
    if let Some(path) = opts.flag("out") {
        std::fs::write(path, cqa_relation::save(&result.db))
            .map_err(|e| format!("writing {path}: {e}"))?;
        let _ = writeln!(out, "cleaned instance written to {path}");
    }
    Ok(0)
}

fn cmd_sql(opts: &Opts, out: &mut String) -> Result<i32, String> {
    use cqa_core::rewrite::keys::KeyPositions;
    let db = load_db(opts)?;
    let sigma = load_sigma(opts)?;
    let query = load_query(opts)?;
    let [cq] = &query.disjuncts[..] else {
        return Err("sql rendering needs a single conjunctive query".into());
    };
    // Keys-only Σ → attack-graph rewriting → SQL.
    let mut keys = KeyPositions::new();
    for c in &sigma.constraints {
        let cqa_constraints::Constraint::Key(k) = c else {
            return Err("sql rendering supports key-only constraint sets".into());
        };
        let schema = db
            .require_relation(&k.relation)
            .map_err(|e| e.to_string())?
            .schema()
            .clone();
        let positions = schema
            .positions_of(k.key.iter().map(String::as_str))
            .map_err(|e| e.to_string())?;
        keys.insert(k.relation.clone(), positions);
    }
    let fo = cqa_core::rewrite_key_query(cq, &keys).map_err(|e| e.to_string())?;
    let sql = cqa_query::fo_to_sql(&fo, &db).map_err(|e| e.to_string())?;
    let _ = writeln!(out, "{sql}");
    Ok(0)
}

/// `repairctl serve`: run `repaird`, the multi-tenant CQA server, until a
/// client posts `/shutdown`.
///
/// The listening line goes straight to stdout (not the buffered `out`):
/// callers scripting the server need the bound address *before* the
/// process blocks in the serve loop.
fn cmd_serve(opts: &Opts, out: &mut String) -> Result<i32, String> {
    let defaults = cqa_server::ServerConfig::default();
    let port = match u64_flag(opts, "port")? {
        Some(p) => {
            u16::try_from(p).map_err(|_| input_error(format!("port {p} out of range"), "--port"))?
        }
        None => defaults.port,
    };
    let usize_flag = |name: &str, fallback: usize| -> Result<usize, String> {
        match u64_flag(opts, name)? {
            Some(v) => usize::try_from(v)
                .map_err(|_| input_error(format!("{v} out of range"), &format!("--{name}"))),
            None => Ok(fallback),
        }
    };
    let config = cqa_server::ServerConfig {
        host: opts
            .flag("host")
            .unwrap_or(defaults.host.as_str())
            .to_string(),
        port,
        max_inflight: usize_flag("max-inflight", defaults.max_inflight)?,
        max_sessions: usize_flag("max-sessions", defaults.max_sessions)?,
        default_timeout_ms: u64_flag(opts, "default-timeout-ms")?,
        max_timeout_ms: u64_flag(opts, "max-timeout-ms")?.unwrap_or(defaults.max_timeout_ms),
        max_body_bytes: defaults.max_body_bytes,
    };
    let handle = cqa_server::start(config).map_err(|e| input_error(e, "serve"))?;
    println!("repaird listening on {}", handle.addr());
    let dropped = handle.join();
    let _ = writeln!(out, "repaird stopped ({dropped} sessions dropped)");
    Ok(0)
}

fn cmd_asp(opts: &Opts, out: &mut String) -> Result<i32, String> {
    let db = load_db(opts)?;
    let sigma = load_sigma(opts)?;
    let budget = budget_from(opts)?;
    let mut rp = cqa_asp::RepairProgram::build(&db, &sigma).map_err(|e| e.to_string())?;
    if opts.has("c-repairs") {
        rp.add_c_repair_weak_constraints();
    }
    let _ = writeln!(out, "% generated repair program\n{}", rp.program);
    let models = if opts.has("c-repairs") {
        rp.c_repair_models_budgeted(&budget)
            .map_err(|e| e.to_string())?
    } else {
        rp.s_repair_models_budgeted(&budget)
            .map_err(|e| e.to_string())?
    };
    // Output is an ASP document: keep the status line a comment.
    if let Some((reason, explored)) = models.truncation() {
        let _ = writeln!(out, "% truncated: {reason} (explored {explored})");
    }
    let models = models.into_value();
    let _ = writeln!(out, "% {} repair model(s)", models.len());
    for m in &models {
        let deleted: Vec<String> = m.deleted.iter().map(|t| t.to_string()).collect();
        let inserted: Vec<String> = m.inserted.iter().map(|(r, t)| format!("+{r}{t}")).collect();
        let _ = writeln!(
            out,
            "%   delete {{{}}} {}",
            deleted.join(", "),
            inserted.join(" ")
        );
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_files(dir: &std::path::Path) -> (String, String) {
        let db_path = dir.join("emp.idb");
        let sigma_path = dir.join("sigma.txt");
        std::fs::write(
            &db_path,
            "@relation Employee(Name, Salary)\n\
             'page', 5000\n\
             'page', 8000\n\
             'smith', 3000\n",
        )
        .unwrap();
        std::fs::write(&sigma_path, "key Employee(Name)\n").unwrap();
        (
            db_path.to_string_lossy().into_owned(),
            sigma_path.to_string_lossy().into_owned(),
        )
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("repairctl-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_cmd(args: &[&str]) -> (i32, String) {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = String::new();
        let code = run(&args, &mut out).unwrap();
        (code, out)
    }

    #[test]
    fn check_reports_inconsistency() {
        let dir = tmpdir("check");
        let (db, sigma) = write_files(&dir);
        let (code, out) = run_cmd(&["check", "--db", &db, "--constraints", &sigma]);
        assert_eq!(code, 1);
        assert!(out.contains("consistent: false"));
        assert!(out.contains("denial-class violations: 1"));
    }

    #[test]
    fn repairs_listing() {
        let dir = tmpdir("repairs");
        let (db, sigma) = write_files(&dir);
        let (code, out) = run_cmd(&["repairs", "--db", &db, "--constraints", &sigma]);
        assert_eq!(code, 0);
        assert!(out.contains("2 S-repairs"));
        assert!(out.contains("- Employee(page, 5000)") || out.contains("- Employee(page, 8000)"));
    }

    #[test]
    fn cqa_uses_rewriting_strategy() {
        let dir = tmpdir("cqa");
        let (db, sigma) = write_files(&dir);
        let (code, out) = run_cmd(&[
            "cqa",
            "--db",
            &db,
            "--constraints",
            &sigma,
            "--query",
            "Q(x, y) :- Employee(x, y)",
        ]);
        assert_eq!(code, 0);
        assert!(out.contains("strategy: FO rewriting"), "{out}");
        assert!(out.contains("(smith, 3000)"));
        assert!(!out.contains("(page, 5000)"));
    }

    #[test]
    fn possible_answers_flag() {
        let dir = tmpdir("poss");
        let (db, sigma) = write_files(&dir);
        let (_, out) = run_cmd(&[
            "cqa",
            "--db",
            &db,
            "--constraints",
            &sigma,
            "--query",
            "Q(y) :- Employee('page', y)",
            "--possible",
        ]);
        assert!(out.contains("2 possible answers"));
    }

    #[test]
    fn causes_command() {
        let dir = tmpdir("causes");
        let (db, _) = write_files(&dir);
        let (code, out) = run_cmd(&[
            "causes",
            "--db",
            &db,
            "--query",
            "Q() :- Employee(x, y), Employee(x, z), y != z",
        ]);
        assert_eq!(code, 0);
        assert!(out.contains("2 actual causes"));
        assert!(out.contains("ρ = 1")); // both are counterfactual here
    }

    #[test]
    fn measure_and_asp() {
        let dir = tmpdir("measure");
        let (db, sigma) = write_files(&dir);
        let (_, out) = run_cmd(&["measure", "--db", &db, "--constraints", &sigma]);
        assert!(out.contains("inconsistency degree"));
        let (_, asp_out) = run_cmd(&["asp", "--db", &db, "--constraints", &sigma]);
        assert!(asp_out.contains("% 2 repair model(s)"), "{asp_out}");
        let (_, c_out) = run_cmd(&["asp", "--db", &db, "--constraints", &sigma, "--c-repairs"]);
        assert!(c_out.contains("repair model(s)"));
    }

    #[test]
    fn clean_writes_output_file() {
        let dir = tmpdir("clean");
        let (db, sigma) = write_files(&dir);
        let out_path = dir.join("cleaned.idb").to_string_lossy().into_owned();
        let (code, out) = run_cmd(&[
            "clean",
            "--db",
            &db,
            "--constraints",
            &sigma,
            "--out",
            &out_path,
        ]);
        assert_eq!(code, 0);
        assert!(out.contains("fixes"));
        let cleaned = cqa_relation::load(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        let spec_sigma = parse_constraints("key Employee(Name)").unwrap();
        assert!(spec_sigma.is_satisfied(&cleaned).unwrap());
    }

    #[test]
    fn sql_command_renders_rewriting() {
        let dir = tmpdir("sql");
        let (db, sigma) = write_files(&dir);
        let (code, out) = run_cmd(&[
            "sql",
            "--db",
            &db,
            "--constraints",
            &sigma,
            "--query",
            "Q(x, y) :- Employee(x, y)",
        ]);
        assert_eq!(code, 0);
        assert!(out.starts_with("SELECT DISTINCT"), "{out}");
        assert!(out.contains("NOT EXISTS"), "{out}");
    }

    #[test]
    fn analyze_catalog_documents_every_code() {
        let (code, out) = run_cmd(&["analyze", "--catalog"]);
        assert_eq!(code, 0);
        for c in [
            "A001", "A002", "A003", "A004", "A005", "A006", "G001", "C001", "C002", "C003", "C004",
            "C005", "C006", "Q001", "Q002", "Q003", "Q004", "L001", "L002", "L003", "L004", "L005",
            "L006", "E001",
        ] {
            assert!(out.contains(c), "catalog missing {c}:\n{out}");
        }
    }

    #[test]
    fn analyze_reports_fo_rewritable_dichotomy() {
        let dir = tmpdir("dichotomy-ptime");
        let (db, sigma) = write_files(&dir);
        let (code, out) = run_cmd(&[
            "analyze",
            "--db",
            &db,
            "--constraints",
            &sigma,
            "--query",
            "Q(x, y) :- Employee(x, y)",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("Q003"), "{out}");
        assert!(out.contains("FO-rewritable"), "{out}");
    }

    #[test]
    fn analyze_plan_prints_join_order_and_cache_counters() {
        let dir = tmpdir("analyze-plan");
        let (db, sigma) = write_files(&dir);
        let (code, out) = run_cmd(&[
            "analyze",
            "--db",
            &db,
            "--constraints",
            &sigma,
            "--query",
            "Q(x, y) :- Employee(x, y)",
            "--plan",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("join order: Employee"), "{out}");
        assert!(out.contains("estimated witnesses:"), "{out}");
        assert!(out.contains("subplan cache:"), "{out}");
        assert!(out.contains("hits"), "{out}");

        // Without --db the flag is an input error, not a panic.
        let args: Vec<String> = ["analyze", "--query", "Q(x) :- R(x)", "--plan"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run(&args, &mut String::new()).unwrap_err();
        assert!(err.contains("--plan needs --db"), "{err}");
    }

    #[test]
    fn analyze_reports_conp_witness_pair() {
        let dir = tmpdir("dichotomy-conp");
        let db_path = dir.join("rs.idb");
        let sigma_path = dir.join("rs-sigma.txt");
        std::fs::write(
            &db_path,
            "@relation R(A, B)\n1, 2\n@relation S(A, B)\n2, 1\n",
        )
        .unwrap();
        std::fs::write(&sigma_path, "key R(A)\nkey S(A)\n").unwrap();
        let (code, out) = run_cmd(&[
            "analyze",
            "--db",
            &db_path.to_string_lossy(),
            "--constraints",
            &sigma_path.to_string_lossy(),
            "--query",
            "Q() :- R(x, y), S(y, x)",
        ]);
        assert_eq!(code, 0, "{out}"); // Q004 is informational
        assert!(out.contains("Q004"), "{out}");
        assert!(out.contains("coNP-complete"), "{out}");
        assert!(out.contains("attack each"), "{out}");
    }

    #[test]
    fn analyze_deny_turns_warnings_into_exit_1() {
        let dir = tmpdir("deny");
        let path = dir.join("dup.asp");
        // A004 duplicate-rule is a warning: exit 0 normally, 1 under --deny.
        std::fs::write(&path, "p(x) :- r(x).\np(x) :- r(x).\nr(1).\n").unwrap();
        let p = path.to_string_lossy();
        let (code, out) = run_cmd(&["analyze", "--program", &p]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("A004"), "{out}");
        let (code, _) = run_cmd(&["analyze", "--program", &p, "--deny"]);
        assert_eq!(code, 1);
    }

    /// A miniature workspace for `audit` tests: one crate with an L006 hit.
    fn write_mini_workspace(dir: &std::path::Path) -> String {
        let src = dir.join("crates/x/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            src.join("lib.rs"),
            "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        )
        .unwrap();
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn audit_finds_unsafe_and_baseline_absorbs_it() {
        let dir = tmpdir("audit");
        let root = write_mini_workspace(&dir);
        // Unbaselined: L006 is error severity → exit 1 even without --deny.
        let (code, out) = run_cmd(&["audit", "--root", &root]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("L006"), "{out}");
        assert!(out.contains("crates/x/src/lib.rs:1"), "{out}");
        // A justified baseline entry absorbs it.
        let baseline = dir.join("audit.baseline");
        std::fs::write(&baseline, "L006 crates/x/src/lib.rs f 1 -- test fixture\n").unwrap();
        let (code, out) = run_cmd(&[
            "audit",
            "--root",
            &root,
            "--baseline",
            &baseline.to_string_lossy(),
            "--deny",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("1 suppressed"), "{out}");
    }

    #[test]
    fn audit_deny_fails_on_stale_baseline_entries() {
        let dir = tmpdir("audit-stale");
        let root = write_mini_workspace(&dir);
        let baseline = dir.join("stale.baseline");
        std::fs::write(
            &baseline,
            "L006 crates/x/src/lib.rs f 1 -- test fixture\n\
             L004 crates/gone/src/lib.rs <module> 1 -- no longer exists\n",
        )
        .unwrap();
        let b = baseline.to_string_lossy();
        let (code, out) = run_cmd(&["audit", "--root", &root, "--baseline", &b]);
        assert_eq!(code, 0, "{out}"); // stale is only fatal under --deny
        assert!(out.contains("stale"), "{out}");
        let (code, _) = run_cmd(&["audit", "--root", &root, "--baseline", &b, "--deny"]);
        assert_eq!(code, 1);
    }

    #[test]
    fn audit_print_baseline_emits_template() {
        let dir = tmpdir("audit-print");
        let root = write_mini_workspace(&dir);
        let (code, out) = run_cmd(&["audit", "--root", &root, "--print-baseline"]);
        assert_eq!(code, 0, "{out}");
        assert!(
            out.contains("L006 crates/x/src/lib.rs f 1 -- TODO: justify"),
            "{out}"
        );
    }

    #[test]
    fn audit_on_this_workspace_is_clean_under_deny() {
        // The real gate CI runs; the audit crate's self_audit test covers the
        // same ground, but this exercises it end-to-end through the CLI.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let (code, out) = run_cmd(&["audit", "--root", &root.to_string_lossy(), "--deny"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("0 finding(s)"), "{out}");
    }

    /// Two independent key groups + a clean row: 2 components, 4-repair
    /// product vs 4 component-local repairs.
    fn write_two_component_files(dir: &std::path::Path) -> (String, String) {
        let db_path = dir.join("emp2.idb");
        let sigma_path = dir.join("sigma.txt");
        std::fs::write(
            &db_path,
            "@relation Employee(Name, Salary)\n\
             'page', 5000\n\
             'page', 8000\n\
             'miller', 1000\n\
             'miller', 2000\n\
             'smith', 3000\n",
        )
        .unwrap();
        std::fs::write(&sigma_path, "key Employee(Name)\n").unwrap();
        (
            db_path.to_string_lossy().into_owned(),
            sigma_path.to_string_lossy().into_owned(),
        )
    }

    #[test]
    fn analyze_components_reports_the_factorization() {
        let dir = tmpdir("analyze-components");
        let (db, sigma) = write_two_component_files(&dir);
        let (code, out) = run_cmd(&[
            "analyze",
            "--constraints",
            &sigma,
            "--db",
            &db,
            "--components",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(
            out.contains("conflict components: 2 (4 conflicted tuple(s); frozen core 1/5 = 20.0%)"),
            "{out}"
        );
        assert!(out.contains("2 component(s) of 2 tuple(s)"), "{out}");
        assert!(
            out.contains("repair families: 4 component-local vs 4 cross-product"),
            "{out}"
        );
        assert!(out.contains("[A006] conflict-components"), "{out}");
    }

    #[test]
    fn analyze_components_requires_a_database() {
        let dir = tmpdir("analyze-components-nodb");
        let (_, sigma) = write_two_component_files(&dir);
        let args: Vec<String> = ["analyze", "--constraints", &sigma, "--components"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = String::new();
        let err = run(&args, &mut out).unwrap_err();
        assert!(err.contains("--components needs --db"), "{err}");
    }

    #[test]
    fn cqa_reports_the_factored_strategy() {
        let dir = tmpdir("cqa-factored");
        let (db, sigma) = write_two_component_files(&dir);
        // A union query keeps the planner off the FO-rewriting path; with
        // two components the factored fold takes over.
        let (code, out) = run_cmd(&[
            "cqa",
            "--db",
            &db,
            "--constraints",
            &sigma,
            "--query",
            "Q(x) :- Employee(x, y)",
            "--class",
            "subset",
        ]);
        assert_eq!(code, 0, "{out}");
        // Keys-only Σ with an acyclic query still rewrites — force the
        // enumeration path with a denial constraint instead.
        assert!(out.contains("strategy: FO rewriting"), "{out}");
        let dc_sigma = dir.join("dc.txt");
        std::fs::write(&dc_sigma, "dc Employee(x, y), Employee(x, z), y != z\n").unwrap();
        let (code, out) = run_cmd(&[
            "cqa",
            "--db",
            &db,
            "--constraints",
            &dc_sigma.to_string_lossy(),
            "--query",
            "Q(x) :- Employee(x, y)",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(
            out.contains("strategy: factored repair enumeration over 2 conflict components"),
            "{out}"
        );
        assert!(
            out.contains("folded 4 component-local repairs, not 4"),
            "{out}"
        );
        assert!(out.contains("3 consistent answers"), "{out}");
    }

    #[test]
    fn analyze_program_classifies_and_lints() {
        let dir = tmpdir("analyze-prog");
        let path = dir.join("prog.asp");
        std::fs::write(
            &path,
            "e(1, 2).\ne(2, 3).\n\
             t(x, y) :- e(x, y).\n\
             t(x, y) :- e(x, y).\n\
             q(x) :- t(x, y), ghost(x).\n\
             a :- not b().\nb :- not a().\n",
        )
        .unwrap();
        let (code, out) = run_cmd(&["analyze", "--program", &path.to_string_lossy()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("class="), "{out}");
        // A002 recursion through negation, A004 duplicate, A005 undefined.
        assert!(out.contains("[A002] recursion-through-negation"), "{out}");
        assert!(out.contains("[A004] duplicate-rule"), "{out}");
        assert!(out.contains("[A005] undefined-predicate"), "{out}");
        // Diagnostics carry source context.
        assert!(out.contains("--> 3: t(x, y) :- e(x, y)."), "{out}");
    }

    #[test]
    fn analyze_unsafe_program_errors() {
        let dir = tmpdir("analyze-unsafe");
        let path = dir.join("bad.asp");
        std::fs::write(&path, "p(x) :- q(y).\n").unwrap();
        let (code, out) = run_cmd(&["analyze", "--program", &path.to_string_lossy()]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("error[A001] unsafe-variable"), "{out}");
        assert!(out.contains("`x`"), "{out}");
    }

    #[test]
    fn analyze_constraints_and_query() {
        let dir = tmpdir("analyze-sigma");
        let (db, _) = write_files(&dir);
        let sigma_path = dir.join("lints.sigma");
        std::fs::write(
            &sigma_path,
            "dc S(x), R(x, y), S(y)\n\
             dc S(x), R(x, y)\n\
             dc S(x), R(x, y)\n\
             dc R(x, y), x < y, x > y\n\
             fd Employee: Name -> Salary\n",
        )
        .unwrap();
        let (code, out) = run_cmd(&[
            "analyze",
            "--constraints",
            &sigma_path.to_string_lossy(),
            "--db",
            &db,
            "--query",
            "Q(x, y) :- Employee(x, s), Cities(y, c)",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("[C001] duplicate-constraint"), "{out}");
        assert!(out.contains("[C003] subsumed-constraint"), "{out}");
        assert!(out.contains("[C004] fd-is-key"), "{out}");
        assert!(out.contains("[C006] vacuous-constraint"), "{out}");
        assert!(out.contains("[Q002] cartesian-product"), "{out}");
    }

    #[test]
    fn threads_flag_accepted_everywhere() {
        let dir = tmpdir("threads");
        let (db, sigma) = write_files(&dir);
        // Results are identical at any thread count (determinism contract);
        // `--threads` merely configures the pool.
        let (code, out) = run_cmd(&[
            "repairs",
            "--db",
            &db,
            "--constraints",
            &sigma,
            "--threads",
            "2",
        ]);
        assert_eq!(code, 0);
        assert!(out.contains("2 S-repairs"), "{out}");
        let args: Vec<String> = vec!["check".into(), "--threads".into(), "0".into()];
        assert!(run(&args, &mut String::new()).is_err());
        // Restore the default so parallel-running tests are unaffected.
        cqa_exec::set_threads(0);
    }

    /// A database with `k` independent key conflicts: 2^k S-repairs.
    fn write_conflict_files(dir: &std::path::Path, k: usize) -> (String, String) {
        let db_path = dir.join("conflicts.idb");
        let sigma_path = dir.join("conflicts.sigma");
        let mut text = String::from("@relation T(K, V)\n");
        for i in 0..k {
            let _ = writeln!(text, "{i}, 1\n{i}, 2");
        }
        std::fs::write(&db_path, text).unwrap();
        std::fs::write(&sigma_path, "key T(K)\n").unwrap();
        (
            db_path.to_string_lossy().into_owned(),
            sigma_path.to_string_lossy().into_owned(),
        )
    }

    #[test]
    fn step_budget_truncates_repairs() {
        let dir = tmpdir("budget-steps");
        let (db, sigma) = write_conflict_files(&dir, 8);
        let (code, out) = run_cmd(&[
            "repairs",
            "--db",
            &db,
            "--constraints",
            &sigma,
            "--budget-steps",
            "10",
        ]);
        assert_eq!(code, 0);
        assert!(out.contains("truncated: step-limit"), "{out}");
        // Still a well-formed listing of (a subset of the) repairs.
        assert!(out.contains("S-repairs"), "{out}");
        assert!(!out.contains("256 S-repairs"), "{out}");
    }

    #[test]
    fn max_repairs_caps_enumeration() {
        let dir = tmpdir("budget-items");
        let (db, sigma) = write_conflict_files(&dir, 8);
        let (code, out) = run_cmd(&[
            "repairs",
            "--db",
            &db,
            "--constraints",
            &sigma,
            "--max-repairs",
            "3",
        ]);
        assert_eq!(code, 0);
        assert!(out.contains("truncated: item-limit"), "{out}");
        let n: usize = out
            .lines()
            .find_map(|l| l.strip_suffix(" S-repairs").and_then(|n| n.parse().ok()))
            .unwrap();
        assert!(n <= 3, "{out}");
    }

    #[test]
    fn ample_budget_output_is_byte_identical() {
        let dir = tmpdir("budget-ample");
        let (db, sigma) = write_conflict_files(&dir, 4);
        for cmd in ["repairs", "cqa", "asp"] {
            let mut base = vec![cmd, "--db", db.as_str(), "--constraints", sigma.as_str()];
            if cmd == "cqa" {
                base.extend_from_slice(&["--query", "Q(x) :- T(x, y)"]);
            }
            let (_, plain) = run_cmd(&base);
            let mut budgeted_args = base.clone();
            budgeted_args.extend_from_slice(&[
                "--budget-steps",
                "100000000",
                "--timeout-ms",
                "600000",
            ]);
            let (_, budgeted) = run_cmd(&budgeted_args);
            assert_eq!(plain, budgeted, "{cmd} output changed under ample budget");
            assert!(!plain.contains("truncated:"), "{plain}");
        }
    }

    #[test]
    fn cqa_deadline_reports_sound_underapproximation() {
        let dir = tmpdir("budget-deadline");
        let (db, _) = write_conflict_files(&dir, 8);
        // A denial constraint (not a key) rules the FO rewriting out, so
        // the planner must enumerate repairs — the budgetable path.
        let sigma_path = dir.join("dc.sigma");
        std::fs::write(&sigma_path, "dc T(x, y), T(x, z), y != z\n").unwrap();
        let sigma = sigma_path.to_string_lossy().into_owned();
        // steps=1 exhausts immediately: certain answers fall back to the
        // consistent core (T restricted to unconflicted keys = none here),
        // a sound under-approximation, and the status line says so.
        let (code, out) = run_cmd(&[
            "cqa",
            "--db",
            &db,
            "--constraints",
            &sigma,
            "--query",
            "Q(x) :- T(x, y)",
            "--budget-steps",
            "1",
        ]);
        assert_eq!(code, 0);
        assert!(out.contains("truncated: step-limit"), "{out}");
        // Every reported answer must be a true certain answer (soundness).
        let (_, exact) = run_cmd(&[
            "cqa",
            "--db",
            &db,
            "--constraints",
            &sigma,
            "--query",
            "Q(x) :- T(x, y)",
        ]);
        for line in out.lines().filter(|l| l.starts_with("  ")) {
            assert!(exact.contains(line), "unsound answer {line}:\n{exact}");
        }
    }

    /// Regression: `--timeout-ms 0` must mean "a budget born exhausted"
    /// (truncate immediately), not "no deadline". The repairs command goes
    /// through enumeration, so zero budget yields the empty sound subset
    /// and a `truncated: deadline` line.
    #[test]
    fn timeout_zero_truncates_immediately_not_unlimited() {
        let dir = tmpdir("timeout-zero");
        let (db, sigma) = write_conflict_files(&dir, 4);
        let (code, out) = run_cmd(&[
            "repairs",
            "--db",
            &db,
            "--constraints",
            &sigma,
            "--timeout-ms",
            "0",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(
            out.contains("truncated: deadline (explored 0)"),
            "zero timeout must truncate before exploring anything: {out}"
        );
        // The FO-rewritable polynomial path stays exact even at zero
        // budget — it is deliberately budget-exempt.
        let (code, out) = run_cmd(&[
            "cqa",
            "--db",
            &db,
            "--constraints",
            &sigma,
            "--query",
            "Q(x) :- T(x, y)",
            "--timeout-ms",
            "0",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(!out.contains("truncated"), "{out}");
    }

    /// Regression: a near-infinite `--timeout-ms` used to overflow the
    /// deadline computation (`now + u64::MAX ms`); it must behave exactly
    /// like an unlimited run.
    #[test]
    fn huge_timeout_behaves_as_unlimited() {
        let dir = tmpdir("timeout-huge");
        let (db, sigma) = write_conflict_files(&dir, 3);
        let (_, plain) = run_cmd(&["repairs", "--db", &db, "--constraints", &sigma]);
        let (code, budgeted) = run_cmd(&[
            "repairs",
            "--db",
            &db,
            "--constraints",
            &sigma,
            "--timeout-ms",
            "18446744073709551615",
        ]);
        assert_eq!(code, 0, "{budgeted}");
        assert_eq!(plain, budgeted, "u64::MAX timeout must not perturb output");
        assert!(!budgeted.contains("truncated"), "{budgeted}");
    }

    #[test]
    fn bad_inputs_become_diagnostics_not_panics() {
        let dir = tmpdir("bad-input");
        // Truncated file: a string cut off mid-escape.
        let db_path = dir.join("broken.idb");
        std::fs::write(&db_path, "@relation R(A)\n'x''").unwrap();
        let sigma_path = dir.join("sigma.txt");
        std::fs::write(&sigma_path, "key R(A)\n").unwrap();
        let args: Vec<String> = vec![
            "check".into(),
            "--db".into(),
            db_path.to_string_lossy().into_owned(),
            "--constraints".into(),
            sigma_path.to_string_lossy().into_owned(),
        ];
        let err = run(&args, &mut String::new()).unwrap_err();
        assert!(err.contains("error[E001] invalid-input"), "{err}");
        assert!(err.contains("unterminated string"), "{err}");
        // Malformed query string.
        let good_db = dir.join("good.idb");
        std::fs::write(&good_db, "@relation R(A)\n1\n").unwrap();
        let args: Vec<String> = vec![
            "causes".into(),
            "--db".into(),
            good_db.to_string_lossy().into_owned(),
            "--query".into(),
            "Q() :- R(".into(),
        ];
        let err = run(&args, &mut String::new()).unwrap_err();
        assert!(err.contains("error[E001] invalid-input"), "{err}");
        // Bad budget flag value.
        let args: Vec<String> = vec![
            "repairs".into(),
            "--db".into(),
            db_path.to_string_lossy().into_owned(),
            "--constraints".into(),
            sigma_path.to_string_lossy().into_owned(),
            "--timeout-ms".into(),
            "soon".into(),
        ];
        let err = run(&args, &mut String::new()).unwrap_err();
        assert!(err.contains("error[E001] invalid-input"), "{err}");
    }

    #[test]
    fn help_and_errors() {
        let (code, out) = run_cmd(&["help"]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
        let args: Vec<String> = vec!["nonsense".into()];
        assert!(run(&args, &mut String::new()).is_err());
        let args: Vec<String> = vec!["check".into()];
        assert!(run(&args, &mut String::new()).is_err()); // missing --db
    }
}

#[cfg(test)]
mod shipped_data_tests {
    //! Guard the sample files under `examples/data/` against bit-rot: every
    //! shipped database/Σ pair must parse and produce the documented
    //! results.

    use super::*;

    fn data(file: &str) -> String {
        format!("{}/../../examples/data/{file}", env!("CARGO_MANIFEST_DIR"))
    }

    fn run_ok(args: &[String]) -> (i32, String) {
        let mut out = String::new();
        let code = run(args, &mut out).unwrap();
        (code, out)
    }

    #[test]
    fn payroll_sample_has_two_repairs() {
        let (code, out) = run_ok(&[
            "repairs".into(),
            "--db".into(),
            data("payroll.idb"),
            "--constraints".into(),
            data("payroll.sigma"),
        ]);
        assert_eq!(code, 0);
        assert!(out.contains("2 S-repairs"), "{out}");
    }

    #[test]
    fn supply_sample_repairs_by_delete_or_insert() {
        let (_, out) = run_ok(&[
            "repairs".into(),
            "--db".into(),
            data("supply.idb"),
            "--constraints".into(),
            data("supply.sigma"),
        ]);
        assert!(out.contains("+ Articles(I3)"), "{out}");
        assert!(out.contains("- Supply(C2, R1, I3)"), "{out}");
    }

    #[test]
    fn customers_sample_cleans() {
        let (code, out) = run_ok(&[
            "clean".into(),
            "--db".into(),
            data("customers.idb"),
            "--constraints".into(),
            data("customers.sigma"),
        ]);
        assert_eq!(code, 0);
        assert!(out.contains("1 fixes"), "{out}");
    }

    #[test]
    fn conflict_sample_matches_example_3_5() {
        let (_, out) = run_ok(&[
            "asp".into(),
            "--db".into(),
            data("conflict.idb"),
            "--constraints".into(),
            data("conflict.sigma"),
        ]);
        assert!(out.contains("% 3 repair model(s)"), "{out}");
        let (_, causes) = run_ok(&[
            "causes".into(),
            "--db".into(),
            data("conflict.idb"),
            "--query".into(),
            "Q() :- S(x), R(x, y), S(y)".into(),
        ]);
        assert!(causes.contains("4 actual causes"), "{causes}");
    }
}
