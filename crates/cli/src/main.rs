//! The `repairctl` binary: thin wrapper over the testable dispatcher.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    match cqa_cli::run(&args, &mut out) {
        Ok(code) => {
            print!("{out}");
            std::process::exit(code);
        }
        Err(e) => {
            print!("{out}");
            // Diagnostics already carry their own `error[...]` prefix.
            if e.starts_with("error[") {
                eprintln!("{e}");
            } else {
                eprintln!("error: {e}");
            }
            std::process::exit(2);
        }
    }
}
