//! End-to-end smoke test for `repairctl serve`: spawn the real binary,
//! drive it over TCP, shut it down, and require a clean exit.
//!
//! This is the process-level half of the server suite (the in-process
//! half lives in `crates/server/tests/smoke.rs`): it pins the stdout
//! contract (`repaird listening on ADDR` printed *before* the serve loop
//! blocks) that scripted deployments rely on.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn request(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write");
    stream.write_all(body.as_bytes()).expect("write");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        if line.trim_end().is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_length = v;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8"))
}

/// Kills the child on panic so a failed assertion can't leak a server.
struct Reaper(Child);
impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn serve_binary_round_trip_and_clean_shutdown() {
    let child = Command::new(env!("CARGO_BIN_EXE_repairctl"))
        .args(["serve", "--port", "0", "--max-sessions", "4"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repairctl serve");
    let mut child = Reaper(child);

    // The listening line must arrive before any client activity.
    let stdout = child.0.stdout.take().expect("stdout");
    let mut lines = BufReader::new(stdout);
    let mut first = String::new();
    lines.read_line(&mut first).expect("listening line");
    let addr = first
        .trim()
        .strip_prefix("repaird listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {first:?}"))
        .to_string();

    // Create a session, run an exact query and an immediately-truncated
    // one, then a mid-request disconnect (the server must survive it).
    let db = "@relation Employee(Name, Salary)\\n'page', 5000\\n'page', 8000\\n'smith', 3000\\n";
    let body = format!(r#"{{"db": "{db}", "constraints": "key Employee(Name)\n"}}"#);
    let (status, reply) = request(&addr, "POST", "/sessions", &body);
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains(r#""session":1"#), "{reply}");

    let (status, reply) = request(
        &addr,
        "POST",
        "/sessions/1/query",
        r#"{"query": "Q(x) :- Employee(x, y)"}"#,
    );
    assert_eq!(status, 200, "{reply}");
    assert!(
        reply.contains("(page)") && reply.contains("(smith)"),
        "{reply}"
    );
    assert!(!reply.contains("truncated"), "{reply}");

    let (status, reply) = request(
        &addr,
        "POST",
        "/sessions/1/query",
        r#"{"query": "Q(x) :- Employee(x, y)", "class": "cardinality", "timeout_ms": 0}"#,
    );
    assert_eq!(status, 200, "{reply}");
    assert!(
        reply.contains(r#""truncated":{"reason":"deadline""#),
        "{reply}"
    );

    // Disconnect mid-request: fire a query and drop the socket unread.
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let q = r#"{"query": "Q(x) :- Employee(x, y)"}"#;
        let head = format!(
            "POST /sessions/1/query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            q.len()
        );
        stream.write_all(head.as_bytes()).expect("write");
        stream.write_all(q.as_bytes()).expect("write");
    }
    std::thread::sleep(Duration::from_millis(50));
    let (status, reply) = request(&addr, "GET", "/health", "");
    assert_eq!(
        status, 200,
        "server died after a client disconnect: {reply}"
    );

    let (status, _) = request(&addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    let exit = child.0.wait().expect("wait");
    let mut stderr = String::new();
    if let Some(mut e) = child.0.stderr.take() {
        let _ = e.read_to_string(&mut stderr);
    }
    assert!(exit.success(), "non-zero exit: {exit:?} / stderr {stderr}");
    let mut rest = String::new();
    lines.read_to_string(&mut rest).expect("stdout tail");
    assert!(
        rest.contains("repaird stopped"),
        "missing shutdown report: {rest:?}"
    );
}
