//! Conditional functional dependencies (CFDs), after Fan et al. \[58\] as
//! presented in §6 of the paper.
//!
//! A CFD is an embedded FD `R: X → A` plus a *pattern tuple* over `X ∪ {A}`
//! whose entries are either constants or the wildcard `_`. The CFD
//! `[CC = 44, Zip] → [Street]` of the paper has pattern
//! `CC: 44, Zip: _, Street: _`: it enforces `Zip → Street` only on tuples
//! with `CC = 44`.

use crate::denial::DenialConstraint;
use cqa_query::{Atom, CmpOp, Comparison, ConjunctiveQuery, Term, VarTable};
use cqa_relation::{Facts, RelationError, RelationSchema, Tid, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A pattern entry of a CFD tableau.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// Matches any value.
    Wildcard,
    /// Matches exactly this constant.
    Const(Value),
}

impl Pattern {
    /// Does `v` match?
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            Pattern::Wildcard => true,
            Pattern::Const(c) => c == v && !v.is_null(),
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Wildcard => f.write_str("_"),
            Pattern::Const(c) => write!(f, "{c}"),
        }
    }
}

/// One attribute of the CFD's LHS together with its pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfdLhs {
    /// Attribute name.
    pub attr: String,
    /// Its pattern.
    pub pattern: Pattern,
}

/// A conditional functional dependency with a single-row tableau.
///
/// (Multi-row tableaux are modelled as several `ConditionalFd`s, which is
/// semantically identical.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConditionalFd {
    /// Relation the CFD applies to.
    pub relation: String,
    /// LHS attributes with their patterns.
    pub lhs: Vec<CfdLhs>,
    /// RHS attribute name.
    pub rhs: String,
    /// RHS pattern.
    pub rhs_pattern: Pattern,
}

impl ConditionalFd {
    /// Build a CFD. LHS entries pair an attribute name with `Some(constant)`
    /// or `None` (wildcard); `rhs_pattern` follows the same convention.
    pub fn new(
        relation: impl Into<String>,
        lhs: Vec<(&str, Option<Value>)>,
        rhs: &str,
        rhs_pattern: Option<Value>,
    ) -> ConditionalFd {
        ConditionalFd {
            relation: relation.into(),
            lhs: lhs
                .into_iter()
                .map(|(a, p)| CfdLhs {
                    attr: a.to_string(),
                    pattern: p.map_or(Pattern::Wildcard, Pattern::Const),
                })
                .collect(),
            rhs: rhs.to_string(),
            rhs_pattern: rhs_pattern.map_or(Pattern::Wildcard, Pattern::Const),
        }
    }

    /// Compile to denial constraints.
    ///
    /// * Wildcard RHS: a *pair* denial — two tuples matching the LHS
    ///   patterns, equal on wildcard-LHS attributes, different on the RHS.
    /// * Constant RHS `c`: a *single-tuple* denial — a tuple matching the LHS
    ///   patterns whose RHS differs from `c`.
    pub fn to_denials(
        &self,
        schema: &RelationSchema,
    ) -> Result<Vec<DenialConstraint>, RelationError> {
        let arity = schema.arity();
        let rhs_pos = schema.require_position(&self.rhs)?;
        let mut lhs_pos = Vec::with_capacity(self.lhs.len());
        for l in &self.lhs {
            lhs_pos.push((schema.require_position(&l.attr)?, &l.pattern));
        }

        let mut vars = VarTable::new();
        let mut comparisons = Vec::new();

        // First atom, with constants where the pattern demands them.
        let first: Vec<Term> = (0..arity)
            .map(|i| {
                if let Some((_, Pattern::Const(c))) = lhs_pos.iter().find(|(p, _)| *p == i) {
                    Term::Const(c.clone())
                } else {
                    Term::Var(vars.var(format!("a{i}")))
                }
            })
            .collect();

        match &self.rhs_pattern {
            Pattern::Const(c) => {
                comparisons.push(Comparison::new(
                    first[rhs_pos].clone(),
                    CmpOp::Ne,
                    c.clone(),
                ));
                let body = ConjunctiveQuery {
                    vars,
                    head: Vec::new(),
                    atoms: vec![Atom::new(self.relation.clone(), first)],
                    negated: Vec::new(),
                    comparisons,
                };
                Ok(vec![DenialConstraint::new(format!("{self}"), body)?])
            }
            Pattern::Wildcard => {
                // Second atom: shares wildcard-LHS variables, repeats LHS
                // constants, fresh elsewhere; RHS must differ.
                let second: Vec<Term> = (0..arity)
                    .map(|i| match lhs_pos.iter().find(|(p, _)| *p == i) {
                        Some((_, Pattern::Const(c))) => Term::Const(c.clone()),
                        Some((_, Pattern::Wildcard)) => first[i].clone(),
                        None => Term::Var(vars.var(format!("b{i}"))),
                    })
                    .collect();
                comparisons.push(Comparison::new(
                    first[rhs_pos].clone(),
                    CmpOp::Ne,
                    second[rhs_pos].clone(),
                ));
                let body = ConjunctiveQuery {
                    vars,
                    head: Vec::new(),
                    atoms: vec![
                        Atom::new(self.relation.clone(), first),
                        Atom::new(self.relation.clone(), second),
                    ],
                    negated: Vec::new(),
                    comparisons,
                };
                Ok(vec![DenialConstraint::new(format!("{self}"), body)?])
            }
        }
    }

    /// Is the CFD satisfied?
    pub fn is_satisfied<F: Facts + ?Sized>(&self, facts: &F) -> Result<bool, RelationError> {
        let schema = facts
            .base()
            .require_relation(&self.relation)?
            .schema()
            .clone();
        Ok(self
            .to_denials(&schema)?
            .iter()
            .all(|d| d.is_satisfied(facts)))
    }

    /// Violation sets (singletons or pairs of tids).
    pub fn violations<F: Facts + ?Sized>(
        &self,
        facts: &F,
    ) -> Result<BTreeSet<BTreeSet<Tid>>, RelationError> {
        let schema = facts
            .base()
            .require_relation(&self.relation)?
            .schema()
            .clone();
        let mut out = BTreeSet::new();
        for d in self.to_denials(&schema)? {
            out.extend(d.violations(facts));
        }
        Ok(out)
    }
}

impl fmt::Display for ConditionalFd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [", self.relation)?;
        for (i, l) in self.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match &l.pattern {
                Pattern::Wildcard => write!(f, "{}", l.attr)?,
                Pattern::Const(c) => write!(f, "{} = {}", l.attr, c)?,
            }
        }
        write!(f, "] -> [{}", self.rhs)?;
        if let Pattern::Const(c) = &self.rhs_pattern {
            write!(f, " = {c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relation::{tuple, Database, RelationSchema};

    /// The customer table from §6 of the paper.
    pub(crate) fn customer_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "Cust",
            ["CC", "AC", "Phone", "Name", "Street", "City", "Zip"],
        ))
        .unwrap();
        db.insert(
            "Cust",
            tuple![44, 131, "1234567", "mike", "mayfield", "NYC", "EH4 8LE"],
        )
        .unwrap();
        db.insert(
            "Cust",
            tuple![44, 131, "3456789", "rick", "crichton", "NYC", "EH4 8LE"],
        )
        .unwrap();
        db.insert(
            "Cust",
            tuple![1, 908, "3456789", "joe", "mtn ave", "NYC", "07974"],
        )
        .unwrap();
        db
    }

    #[test]
    fn paper_cfd_is_violated_but_plain_fds_hold() {
        let db = customer_db();
        // Plain FDs from the paper hold:
        let fd1 = crate::fd::FunctionalDependency::new(
            "Cust",
            ["CC", "AC", "Phone"],
            ["Street", "City", "Zip"],
        );
        let fd2 = crate::fd::FunctionalDependency::new("Cust", ["CC", "AC"], ["City"]);
        assert!(fd1.is_satisfied(&db).unwrap());
        assert!(fd2.is_satisfied(&db).unwrap());
        // The CFD [CC = 44, Zip] -> [Street] does not:
        let cfd = ConditionalFd::new(
            "Cust",
            vec![("CC", Some(Value::int(44))), ("Zip", None)],
            "Street",
            None,
        );
        assert!(!cfd.is_satisfied(&db).unwrap());
        let viols = cfd.violations(&db).unwrap();
        assert_eq!(viols.len(), 1);
        assert!(viols.contains(&[Tid(1), Tid(2)].into()));
    }

    #[test]
    fn cfd_ignores_non_matching_condition() {
        let db = customer_db();
        // Same shape but conditioned on CC = 1: only one such tuple, holds.
        let cfd = ConditionalFd::new(
            "Cust",
            vec![("CC", Some(Value::int(1))), ("Zip", None)],
            "Street",
            None,
        );
        assert!(cfd.is_satisfied(&db).unwrap());
    }

    #[test]
    fn constant_rhs_is_single_tuple() {
        let db = customer_db();
        // "Customers with CC = 44 must live in EDI" — violated by both.
        let cfd = ConditionalFd::new(
            "Cust",
            vec![("CC", Some(Value::int(44)))],
            "City",
            Some(Value::str("EDI")),
        );
        let viols = cfd.violations(&db).unwrap();
        assert_eq!(viols.len(), 2);
        assert!(viols.iter().all(|v| v.len() == 1));
    }

    #[test]
    fn wildcard_lhs_only_is_a_plain_fd() {
        let db = customer_db();
        let cfd = ConditionalFd::new("Cust", vec![("Zip", None)], "City", None);
        // Zip -> City holds on this instance.
        assert!(cfd.is_satisfied(&db).unwrap());
    }

    #[test]
    fn pattern_matching() {
        assert!(Pattern::Wildcard.matches(&Value::int(1)));
        assert!(Pattern::Const(Value::int(1)).matches(&Value::int(1)));
        assert!(!Pattern::Const(Value::int(1)).matches(&Value::int(2)));
        assert!(!Pattern::Const(Value::NULL).matches(&Value::NULL));
    }

    #[test]
    fn display() {
        let cfd = ConditionalFd::new(
            "Cust",
            vec![("CC", Some(Value::int(44))), ("Zip", None)],
            "Street",
            None,
        );
        assert_eq!(cfd.to_string(), "Cust: [CC = 44, Zip] -> [Street]");
    }
}
