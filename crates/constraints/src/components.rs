//! Connected components of the conflict hyper-graph.
//!
//! The hyper-graph of Example 4.1 / Figure 1 naturally splits into
//! *independent* connected components: two tuples interact only when some
//! chain of hyper-edges links them. Every repair of the database is exactly
//! one repair choice per component crossed with the untouched "frozen core"
//! of conflict-free tuples, so a database with `m` components of `k`
//! conflicts each has `m · 2^k` component-local repairs rather than a
//! `2^(m·k)` monolithic family. This module owns the combinatorial half of
//! that factorization:
//!
//! * [`ConflictComponents::compute`] — union-find over the hyper-edges,
//!   yielding the frozen core plus one [`ComponentGraph`] per component in
//!   a canonical (smallest-tid-first) order;
//! * [`ConflictComponents::minimal_hitting_sets_factored`] /
//!   [`ConflictComponents::minimum_hitting_sets_factored`] — per-component
//!   hitting-set search producing [`FactoredFamilies`], never the expanded
//!   cross-product;
//! * [`ConflictComponents::minimum_hitting_set_size_budgeted`] — the global
//!   minimum as the *sum* of per-component branch-and-bound minima, each a
//!   small search with its own bound instead of one big search sharing a
//!   global incumbent.
//!
//! Components are independent, so `cqa-exec` runs them in parallel; the
//! canonical component order (and `par_map`'s order-preserving merge) keeps
//! results byte-identical at every thread count. `cqa-core` builds repair
//! semantics (`FactoredRepairSet`, component-aware CQA folds) on top.

// audit:exponential — component-local hitting-set enumeration; every search loop must thread a Budget.
use crate::hypergraph::ConflictHypergraph;
use cqa_exec::{Budget, Outcome};
use cqa_relation::Tid;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One connected component of a conflict hyper-graph: the sub-graph induced
/// by a maximal set of tuples linked through hyper-edges. Every node of a
/// component is covered by at least one of its edges (conflict-free tuples
/// live in the frozen core instead), so a component always has a non-empty
/// edge set and at least one minimal hitting set.
///
/// The inner graph is behind an [`Arc`]: cloning a component is a pointer
/// bump, so [`ConflictComponents::apply_edge_delta`] carries untouched
/// components over without re-copying their node and edge sets. Equality
/// still compares by value (with a pointer-equality fast path for shared
/// components).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentGraph {
    graph: Arc<ConflictHypergraph>,
}

impl ComponentGraph {
    /// The component as a [`ConflictHypergraph`] of its own, ready for the
    /// component-local hitting-set searches.
    pub fn graph(&self) -> &ConflictHypergraph {
        &self.graph
    }

    /// The tuples of this component.
    pub fn tids(&self) -> &BTreeSet<Tid> {
        &self.graph.nodes
    }

    /// The hyper-edges of this component.
    pub fn edges(&self) -> &[BTreeSet<Tid>] {
        &self.graph.edges
    }

    /// Number of tuples in the component.
    pub fn node_count(&self) -> usize {
        self.graph.nodes.len()
    }

    /// Number of hyper-edges in the component.
    pub fn edge_count(&self) -> usize {
        self.graph.edges.len()
    }
}

/// The factorization of a conflict hyper-graph: the frozen core (tuples in
/// no conflict — they persist in every repair) plus the connected
/// components, in canonical order (ascending smallest tid).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictComponents {
    /// Tuples touching no hyper-edge; identical to
    /// [`ConflictHypergraph::isolated_nodes`].
    pub frozen_core: BTreeSet<Tid>,
    /// The connected components, smallest-tid-first. Empty iff the instance
    /// is consistent (no edges).
    pub components: Vec<ComponentGraph>,
}

/// Per-component hitting-set families, plus a per-component exactness tag.
///
/// `families[i]` holds the (deletion-delta) hitting sets of component `i` in
/// the canonical component order; the global family is the cross-product
/// `{ h_0 ∪ … ∪ h_{m−1} : h_i ∈ families[i] }`, which this type never
/// materializes. `exact[i]` records whether component `i` was fully
/// enumerated before the shared budget latched — on truncation the
/// [`Outcome`]'s `explored` count is the number of exactly-explored
/// components, so callers can tell precisely which part of the instance the
/// anytime answer covers. The tag is conservative: a component that
/// finished in the same instant another latched the budget may be marked
/// inexact, never the other way around.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactoredFamilies {
    /// Hitting sets per component, canonical component order.
    pub families: Vec<Vec<BTreeSet<Tid>>>,
    /// Was component `i` fully enumerated within budget?
    pub exact: Vec<bool>,
}

impl FactoredFamilies {
    /// Number of components enumerated exactly.
    pub fn exact_components(&self) -> u64 {
        self.exact.iter().filter(|&&e| e).count() as u64
    }

    /// Size of the expanded cross-product family (`None` on overflow —
    /// which is precisely the case factorization exists to avoid).
    pub fn product_len(&self) -> Option<usize> {
        self.families
            .iter()
            .try_fold(1usize, |acc, f| acc.checked_mul(f.len()))
    }

    /// Total count of component-local sets actually stored (the factored
    /// representation size: a sum, not a product).
    pub fn factored_len(&self) -> usize {
        self.families.iter().map(Vec::len).sum()
    }

    /// Expand the cross-product into global hitting sets (sorted). Only for
    /// callers that genuinely need the monolithic family — the factorized
    /// execution paths fold without ever calling this.
    pub fn expand(&self) -> Vec<BTreeSet<Tid>> {
        let mut out: Vec<BTreeSet<Tid>> = vec![BTreeSet::new()];
        for family in &self.families {
            let mut next = Vec::with_capacity(out.len().saturating_mul(family.len()));
            for prefix in &out {
                for h in family {
                    let mut combined = prefix.clone();
                    combined.extend(h.iter().copied());
                    next.push(combined);
                }
            }
            out = next;
        }
        out.sort();
        out
    }
}

/// Union-find over tid indices; paths are compressed on `find`.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Always hang the larger root under the smaller: roots then
            // coincide with each component's smallest tid index, which is
            // what makes the component order canonical for free.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

impl ConflictComponents {
    /// Factor `graph` into its frozen core and connected components via
    /// union-find over the hyper-edges. `O(E·s·α + V)` for `E` edges of
    /// size `s`. Prefer [`ConflictHypergraph::components`], which caches
    /// the result on the graph.
    pub fn compute(graph: &ConflictHypergraph) -> ConflictComponents {
        // Index the covered tids (ascending order, so index order = tid
        // order and the smallest root is the smallest tid).
        let covered: BTreeSet<Tid> = graph.edges.iter().flatten().copied().collect();
        let index: BTreeMap<Tid, usize> = covered
            .iter()
            .copied()
            .enumerate()
            .map(|(i, t)| (t, i))
            .collect();
        let mut uf = UnionFind::new(covered.len());
        for edge in &graph.edges {
            let mut it = edge.iter();
            if let Some(first) = it.next() {
                for t in it {
                    uf.union(index[first], index[t]);
                }
            }
        }
        // Number components by first encounter in ascending tid order.
        let tids: Vec<Tid> = covered.iter().copied().collect();
        let mut component_of_root: BTreeMap<usize, usize> = BTreeMap::new();
        let mut nodes_per: Vec<BTreeSet<Tid>> = Vec::new();
        for (i, &tid) in tids.iter().enumerate() {
            let root = uf.find(i);
            let next = nodes_per.len();
            let c = *component_of_root.entry(root).or_insert(next);
            if c == nodes_per.len() {
                nodes_per.push(BTreeSet::new());
            }
            nodes_per[c].insert(tid);
        }
        let mut edges_per: Vec<Vec<BTreeSet<Tid>>> = vec![Vec::new(); nodes_per.len()];
        for edge in &graph.edges {
            if let Some(first) = edge.iter().next() {
                let c = component_of_root[&uf.find(index[first])];
                edges_per[c].push(edge.clone());
            }
        }
        let components = nodes_per
            .into_iter()
            .zip(edges_per)
            .map(|(nodes, edges)| ComponentGraph {
                graph: Arc::new(ConflictHypergraph::new(nodes, edges)),
            })
            .collect();
        ConflictComponents {
            frozen_core: graph.nodes.difference(&covered).copied().collect(),
            components,
        }
    }

    /// Incrementally maintain the factorization under an edge delta:
    /// rebuild **only** the components touched by a removed or added edge,
    /// carry every untouched component over verbatim, and re-derive the
    /// frozen core against `new_nodes`.
    ///
    /// `removed`/`added` must be the set difference between the old and new
    /// graph's (canonical, superset-filtered) edge sets — exactly what
    /// [`ConflictHypergraph::apply_delta`] feeds in. The result is
    /// byte-identical to `ConflictComponents::compute` on the new graph:
    ///
    /// * a [`ComponentGraph`] is a pure function of its edge *set* (the
    ///   canonical edge order is size-then-lexicographic, which the rebuilt
    ///   region reproduces by pre-sorting its edges lexicographically), so
    ///   untouched components can't drift;
    /// * removing an edge can only split the component that owned it, and
    ///   adding one can only merge components it touches — both confined to
    ///   the rebuilt region, whose own union-find re-derives the split or
    ///   merge;
    /// * the canonical component order (ascending smallest tid) is restored
    ///   by one ordered merge of the two disjoint component lists.
    pub fn apply_edge_delta(
        &self,
        new_nodes: &BTreeSet<Tid>,
        removed: &BTreeSet<BTreeSet<Tid>>,
        added: &BTreeSet<BTreeSet<Tid>>,
    ) -> ConflictComponents {
        if removed.is_empty() && added.is_empty() {
            // Only the node set may have drifted: conflict-free tuples
            // entering or leaving the frozen core.
            let covered: BTreeSet<Tid> = self
                .components
                .iter()
                .flat_map(|c| c.tids())
                .copied()
                .collect();
            return ConflictComponents {
                frozen_core: new_nodes.difference(&covered).copied().collect(),
                components: self.components.clone(),
            };
        }
        // Delta edges touch few tuples: locate each one's owning component
        // by direct membership probe instead of materializing the full
        // tid → component index over every covered tuple.
        let mut touched: BTreeSet<usize> = BTreeSet::new();
        for edge in removed.iter().chain(added) {
            for t in edge {
                if let Some(c) = self.components.iter().position(|c| c.tids().contains(t)) {
                    touched.insert(c);
                }
            }
        }
        // The rebuilt region: surviving edges of the touched components
        // plus the added edges, in canonical pre-order (lexicographic; the
        // constructor's stable size sort then reproduces the size-then-lex
        // order a from-scratch build derives from its `BTreeSet` input).
        let mut sub_edges: Vec<BTreeSet<Tid>> = Vec::new();
        for &c in &touched {
            for e in self.components[c].edges() {
                if !removed.contains(e) {
                    sub_edges.push(e.clone());
                }
            }
        }
        sub_edges.extend(added.iter().cloned());
        sub_edges.sort();
        sub_edges.dedup();
        let sub_nodes: BTreeSet<Tid> = sub_edges.iter().flatten().copied().collect();
        let sub = ConflictComponents::compute(&ConflictHypergraph::new(sub_nodes, sub_edges));
        // Merge (disjoint: every covered tid of an added/removed edge maps
        // to a touched component, so the rebuilt region shares no node with
        // the untouched components).
        let mut merged: Vec<ComponentGraph> = self
            .components
            .iter()
            .enumerate()
            .filter(|(i, _)| !touched.contains(i))
            .map(|(_, c)| c.clone())
            .collect();
        merged.extend(sub.components);
        merged.sort_by_key(|c| c.tids().iter().next().copied());
        // Components are disjoint, so a flat sort beats rebuilding a tree
        // set over every covered tuple.
        let mut covered: Vec<Tid> = merged.iter().flat_map(|c| c.tids()).copied().collect();
        covered.sort_unstable();
        ConflictComponents {
            frozen_core: new_nodes
                .iter()
                .filter(|t| covered.binary_search(t).is_err())
                .copied()
                .collect(),
            components: merged,
        }
    }

    /// Map every conflicted tid to its component's canonical index.
    pub fn component_index(&self) -> BTreeMap<Tid, usize> {
        let mut out = BTreeMap::new();
        for (i, c) in self.components.iter().enumerate() {
            for &t in c.tids() {
                out.insert(t, i);
            }
        }
        out
    }

    /// Node count of the largest component (0 when consistent).
    pub fn largest_component(&self) -> usize {
        self.components
            .iter()
            .map(ComponentGraph::node_count)
            .max()
            .unwrap_or(0)
    }

    /// Run `f` once per component. Sequential in canonical order under a
    /// logical budget (deterministic truncation), in parallel on the
    /// `cqa-exec` pool otherwise — `par_map` preserves input order, so the
    /// merged output is in canonical component order either way.
    fn per_component<U: Send>(
        &self,
        budget: &Budget,
        f: impl Fn(&ComponentGraph) -> U + Sync,
    ) -> Vec<U> {
        if budget.forces_sequential() || cqa_exec::threads() <= 1 || self.components.len() < 2 {
            self.components.iter().map(f).collect()
        } else {
            cqa_exec::par_map(&self.components, f)
        }
    }

    /// All minimal hitting sets, factored per component. With an unlimited
    /// budget the expansion of the result equals
    /// [`ConflictHypergraph::minimal_hitting_sets`] exactly. On truncation
    /// every stored set is a genuine component-local minimal hitting set
    /// (so every expanded combination is a genuine global one — a sound
    /// subset), and `explored` counts the components enumerated exactly.
    pub fn minimal_hitting_sets_factored(&self, budget: &Budget) -> Outcome<FactoredFamilies> {
        let results = self.per_component(budget, |c| {
            let out = c.graph().minimal_hitting_sets_budgeted(None, budget);
            let exact = out.is_exact();
            (out.into_value(), exact)
        });
        let (families, exact): (Vec<_>, Vec<_>) = results.into_iter().unzip();
        let fams = FactoredFamilies { families, exact };
        let explored = fams.exact_components();
        budget.outcome_with(fams, explored)
    }

    /// The global minimum hitting-set size as the sum of per-component
    /// branch-and-bound minima (edges never cross components, so the minima
    /// add). Each component search carries its own greedy bound instead of
    /// all branches sharing one global incumbent — `m` small searches for
    /// the price the monolithic search pays on its *first* component. On
    /// truncation the value is an upper bound, mirroring
    /// [`ConflictHypergraph::minimum_hitting_set_size_budgeted`].
    pub fn minimum_hitting_set_size_budgeted(&self, budget: &Budget) -> Outcome<usize> {
        let sizes = self.per_component(budget, |c| {
            c.graph().minimum_hitting_set_size_budgeted(budget)
        });
        let total: usize = sizes.iter().map(|o| *o.value()).sum();
        budget.outcome(total)
    }

    /// All **minimum** hitting sets (the C-repair deltas), factored per
    /// component: the global minima are exactly the cross-products of the
    /// per-component minimum families. Returns `(minimum_size, families)`.
    ///
    /// The per-component sizes are proven first; the fixed-size enumeration
    /// is then *seeded* with each component's proven optimum
    /// ([`ConflictHypergraph::minimum_hitting_sets_at`]) so the bound is
    /// never re-derived. If the budget dies during a size proof, the result
    /// is the best-known upper bound with empty families (never wrong-sized
    /// sets), matching the monolithic contract.
    pub fn minimum_hitting_sets_factored(
        &self,
        budget: &Budget,
    ) -> Outcome<(usize, FactoredFamilies)> {
        let sizes = self.per_component(budget, |c| {
            c.graph().minimum_hitting_set_size_budgeted(budget)
        });
        let total: usize = sizes.iter().map(|o| *o.value()).sum();
        if budget.exhausted() || sizes.iter().any(Outcome::is_truncated) {
            let fams = FactoredFamilies {
                families: vec![Vec::new(); self.components.len()],
                exact: vec![false; self.components.len()],
            };
            return budget.outcome_with((total, fams), 0);
        }
        let sizes: Vec<usize> = sizes.into_iter().map(Outcome::into_value).collect();
        let results: Vec<(Vec<BTreeSet<Tid>>, bool)> = if budget.forces_sequential()
            || cqa_exec::threads() <= 1
            || self.components.len() < 2
        {
            self.components
                .iter()
                .zip(&sizes)
                .map(|(c, &k)| {
                    let out = c.graph().minimum_hitting_sets_at(k, budget);
                    let exact = out.is_exact();
                    (out.into_value(), exact)
                })
                .collect()
        } else {
            let indexed: Vec<(usize, &ComponentGraph)> =
                self.components.iter().enumerate().collect();
            cqa_exec::par_map(&indexed, |&(i, c)| {
                let out = c.graph().minimum_hitting_sets_at(sizes[i], budget);
                let exact = out.is_exact();
                (out.into_value(), exact)
            })
        };
        let (families, exact): (Vec<_>, Vec<_>) = results.into_iter().unzip();
        let fams = FactoredFamilies { families, exact };
        let explored = fams.exact_components();
        budget.outcome_with((total, fams), explored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tids(ids: &[u64]) -> BTreeSet<Tid> {
        ids.iter().map(|&i| Tid(i)).collect()
    }

    /// Figure 1 (one component over {1..5}) plus a disjoint 2-edge {8,9}
    /// and two isolated nodes 6, 7.
    fn two_component_graph() -> ConflictHypergraph {
        ConflictHypergraph::new(
            (1..=9).map(Tid).collect(),
            vec![
                tids(&[2, 5]),
                tids(&[2, 3, 4]),
                tids(&[1, 3]),
                tids(&[8, 9]),
            ],
        )
    }

    #[test]
    fn components_are_canonical_and_cover_edges() {
        let g = two_component_graph();
        let comps = ConflictComponents::compute(&g);
        assert_eq!(comps.frozen_core, tids(&[6, 7]));
        assert_eq!(comps.components.len(), 2);
        assert_eq!(comps.components[0].tids(), &tids(&[1, 2, 3, 4, 5]));
        assert_eq!(comps.components[0].edge_count(), 3);
        assert_eq!(comps.components[1].tids(), &tids(&[8, 9]));
        assert_eq!(comps.components[1].edge_count(), 1);
        assert_eq!(comps.largest_component(), 5);
        let idx = comps.component_index();
        assert_eq!(idx[&Tid(4)], 0);
        assert_eq!(idx[&Tid(9)], 1);
        assert!(!idx.contains_key(&Tid(6)));
    }

    #[test]
    fn consistent_graph_has_no_components() {
        let g = ConflictHypergraph::new(tids(&[1, 2]), vec![]);
        let comps = ConflictComponents::compute(&g);
        assert!(comps.components.is_empty());
        assert_eq!(comps.frozen_core, tids(&[1, 2]));
        assert_eq!(comps.largest_component(), 0);
    }

    #[test]
    fn factored_expansion_equals_monolithic_enumeration() {
        let g = two_component_graph();
        let comps = ConflictComponents::compute(&g);
        let factored = comps
            .minimal_hitting_sets_factored(&Budget::unlimited())
            .into_value();
        assert_eq!(factored.families.len(), 2);
        assert_eq!(factored.product_len(), Some(8)); // 4 × 2
        assert_eq!(factored.factored_len(), 6); // 4 + 2
        let mut monolithic = g.minimal_hitting_sets(None);
        monolithic.sort();
        assert_eq!(factored.expand(), monolithic);
    }

    #[test]
    fn factored_minimum_matches_monolithic() {
        let g = two_component_graph();
        let comps = ConflictComponents::compute(&g);
        assert_eq!(
            comps
                .minimum_hitting_set_size_budgeted(&Budget::unlimited())
                .into_value(),
            g.minimum_hitting_set_size()
        );
        let (k, fams) = comps
            .minimum_hitting_sets_factored(&Budget::unlimited())
            .into_value();
        assert_eq!(k, 3); // 2 (Figure 1) + 1 (the pair edge)
        let mut monolithic = g.minimum_hitting_sets();
        monolithic.sort();
        assert_eq!(fams.expand(), monolithic);
    }

    #[test]
    fn factored_is_deterministic_across_thread_counts() {
        let g = two_component_graph();
        let run = |t: usize| {
            cqa_exec::with_threads(t, || {
                let comps = ConflictComponents::compute(&g);
                (
                    comps
                        .minimal_hitting_sets_factored(&Budget::unlimited())
                        .into_value(),
                    comps
                        .minimum_hitting_sets_factored(&Budget::unlimited())
                        .into_value(),
                )
            })
        };
        let base = run(1);
        for t in [2, 8] {
            assert_eq!(run(t), base, "threads={t}");
        }
    }

    #[test]
    fn truncated_size_proof_yields_empty_families() {
        // 8 disjoint pairs; one step is nowhere near enough for the proofs.
        let edges: Vec<BTreeSet<Tid>> = (0..8).map(|i| tids(&[2 * i, 2 * i + 1])).collect();
        let g = ConflictHypergraph::new((0..16).map(Tid).collect(), edges);
        let comps = ConflictComponents::compute(&g);
        assert_eq!(comps.components.len(), 8);
        let out = comps.minimum_hitting_sets_factored(&Budget::steps(1));
        assert!(out.is_truncated());
        let (_, fams) = out.into_value();
        assert!(fams.families.iter().all(Vec::is_empty));
        assert_eq!(fams.exact_components(), 0);
    }

    #[test]
    fn truncated_enumeration_reports_exact_components() {
        // Eleven pair components, ~3 search nodes each. A budget covering
        // the first few reports exactly those as explored.
        let mut edges: Vec<BTreeSet<Tid>> = vec![tids(&[100, 101])];
        edges.extend((0..10).map(|i| tids(&[2 * i, 2 * i + 1])));
        let nodes: BTreeSet<Tid> = edges.iter().flatten().copied().collect();
        let g = ConflictHypergraph::new(nodes, edges);
        let comps = ConflictComponents::compute(&g);
        assert_eq!(comps.components.len(), 11);
        let out = comps.minimal_hitting_sets_factored(&Budget::steps(12));
        assert!(out.is_truncated());
        let (_, explored) = out
            .truncation()
            .unwrap_or((cqa_exec::TruncationReason::StepLimit, 0));
        let fams = out.into_value();
        assert_eq!(explored, fams.exact_components());
        assert!(explored >= 1, "a pair component fits in 12 steps");
        assert!((explored as usize) < comps.components.len());
        // Every stored set is a genuine local minimal hitting set.
        for (c, family) in comps.components.iter().zip(&fams.families) {
            for h in family {
                assert!(c.graph().is_minimal_hitting_set(h));
            }
        }
    }
}
