//! The umbrella constraint type and constraint sets.

use crate::cfd::ConditionalFd;
use crate::denial::DenialConstraint;
use crate::fd::{FunctionalDependency, KeyConstraint};
use crate::hypergraph::ConflictHypergraph;
use crate::ind::{Tgd, TgdViolation};
use cqa_relation::{Database, Facts, RelationError, Tid};
use std::collections::BTreeSet;
use std::fmt;

/// Any integrity constraint the workspace understands.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// A denial constraint `¬∃x̄ body`.
    Denial(DenialConstraint),
    /// A functional dependency `R: X → Y`.
    Fd(FunctionalDependency),
    /// A key constraint.
    Key(KeyConstraint),
    /// A conditional functional dependency.
    Cfd(ConditionalFd),
    /// A tuple-generating dependency (inclusion dependency).
    Tgd(Tgd),
}

impl Constraint {
    /// Does the constraint belong to the *denial class* (violations are sets
    /// of coexisting tuples; deletions always repair, insertions never
    /// break)? Tgds are the exception: they can demand insertions.
    pub fn is_denial_class(&self) -> bool {
        !matches!(self, Constraint::Tgd(_))
    }

    /// Compile to denial constraints, if in the denial class.
    pub fn to_denials(
        &self,
        db: &Database,
    ) -> Result<Option<Vec<DenialConstraint>>, RelationError> {
        match self {
            Constraint::Denial(d) => Ok(Some(vec![d.clone()])),
            Constraint::Fd(fd) => {
                let schema = db.require_relation(&fd.relation)?.schema().clone();
                fd.to_denials(&schema).map(Some)
            }
            Constraint::Key(kc) => {
                let schema = db.require_relation(&kc.relation)?.schema().clone();
                kc.to_denials(&schema).map(Some)
            }
            Constraint::Cfd(cfd) => {
                let schema = db.require_relation(&cfd.relation)?.schema().clone();
                cfd.to_denials(&schema).map(Some)
            }
            Constraint::Tgd(_) => Ok(None),
        }
    }

    /// Is the constraint satisfied by the visible facts?
    pub fn is_satisfied<F: Facts + ?Sized>(&self, facts: &F) -> Result<bool, RelationError> {
        match self {
            Constraint::Denial(d) => Ok(d.is_satisfied(facts)),
            Constraint::Fd(fd) => fd.is_satisfied(facts),
            Constraint::Key(kc) => kc.is_satisfied(facts),
            Constraint::Cfd(cfd) => cfd.is_satisfied(facts),
            Constraint::Tgd(t) => Ok(t.is_satisfied(facts)),
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Denial(d) => d.fmt(f),
            Constraint::Fd(fd) => fd.fmt(f),
            Constraint::Key(kc) => kc.fmt(f),
            Constraint::Cfd(cfd) => cfd.fmt(f),
            Constraint::Tgd(t) => write!(f, "tgd {}", t.name),
        }
    }
}

impl From<DenialConstraint> for Constraint {
    fn from(d: DenialConstraint) -> Self {
        Constraint::Denial(d)
    }
}
impl From<FunctionalDependency> for Constraint {
    fn from(d: FunctionalDependency) -> Self {
        Constraint::Fd(d)
    }
}
impl From<KeyConstraint> for Constraint {
    fn from(d: KeyConstraint) -> Self {
        Constraint::Key(d)
    }
}
impl From<ConditionalFd> for Constraint {
    fn from(d: ConditionalFd) -> Self {
        Constraint::Cfd(d)
    }
}
impl From<Tgd> for Constraint {
    fn from(d: Tgd) -> Self {
        Constraint::Tgd(d)
    }
}

/// An ordered set of constraints (the paper's Σ).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConstraintSet {
    /// The constraints, in declaration order.
    pub constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// Empty Σ.
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Add one constraint.
    pub fn push(&mut self, c: impl Into<Constraint>) {
        self.constraints.push(c.into());
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True iff Σ is empty.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Do all constraints hold (`D ⊨ Σ`)?
    pub fn is_satisfied<F: Facts + ?Sized>(&self, facts: &F) -> Result<bool, RelationError> {
        for c in &self.constraints {
            if !c.is_satisfied(facts)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Is every constraint in the denial class?
    pub fn is_denial_class(&self) -> bool {
        self.constraints.iter().all(Constraint::is_denial_class)
    }

    /// The tgds of Σ.
    pub fn tgds(&self) -> impl Iterator<Item = &Tgd> {
        self.constraints.iter().filter_map(|c| match c {
            Constraint::Tgd(t) => Some(t),
            _ => None,
        })
    }

    /// Compile every denial-class constraint of Σ to denial constraints.
    pub fn all_denials(&self, db: &Database) -> Result<Vec<DenialConstraint>, RelationError> {
        let mut out = Vec::new();
        for c in &self.constraints {
            if let Some(ds) = c.to_denials(db)? {
                out.extend(ds);
            }
        }
        Ok(out)
    }

    /// All denial-class violation sets of the visible facts against Σ.
    ///
    /// Denial compilation only needs schemas, which live on the base, so the
    /// check itself runs on the (possibly virtual) view.
    pub fn denial_violations<F: Facts + ?Sized>(
        &self,
        facts: &F,
    ) -> Result<BTreeSet<BTreeSet<Tid>>, RelationError> {
        let mut out = BTreeSet::new();
        for d in self.all_denials(facts.base())? {
            out.extend(d.violations(facts));
        }
        Ok(out)
    }

    /// The denial-class violation sets involving at least one tuple from
    /// `touched`: the union over Σ's denials of
    /// [`DenialConstraint::violations_delta`]. Together with the retained
    /// old sets (those disjoint from `touched`) this reconstitutes
    /// [`ConstraintSet::denial_violations`] exactly — the incremental
    /// maintenance identity `cqa-core`'s delta pipeline is built on.
    pub fn denial_violations_delta<F: Facts + ?Sized>(
        &self,
        facts: &F,
        touched: &BTreeSet<Tid>,
    ) -> Result<BTreeSet<BTreeSet<Tid>>, RelationError> {
        let mut out = BTreeSet::new();
        for d in self.all_denials(facts.base())? {
            out.extend(d.violations_delta(facts, touched));
        }
        Ok(out)
    }

    /// All tgd violations of the visible facts against Σ.
    pub fn tgd_violations<F: Facts + ?Sized>(&self, facts: &F) -> Vec<TgdViolation> {
        self.tgds().flat_map(|t| t.violations(facts)).collect()
    }

    /// Build the conflict hyper-graph (§4.1) for the denial-class part of Σ.
    ///
    /// Errors if Σ contains a tgd: tgd inconsistencies are not representable
    /// as coexistence conflicts (they may require insertions).
    pub fn conflict_hypergraph<F: Facts + ?Sized>(
        &self,
        facts: &F,
    ) -> Result<ConflictHypergraph, RelationError> {
        if !self.is_denial_class() {
            return Err(RelationError::Parse(
                "conflict hypergraphs require denial-class constraints only (no tgds)".into(),
            ));
        }
        Ok(ConflictHypergraph::new(
            facts.visible_tids(),
            self.denial_violations(facts)?,
        ))
    }
}

/// Σ from anything convertible (`ConstraintSet::from_iter([...])` keeps
/// working through this std trait impl).
impl<C: Into<Constraint>> FromIterator<C> for ConstraintSet {
    fn from_iter<T: IntoIterator<Item = C>>(items: T) -> ConstraintSet {
        ConstraintSet {
            constraints: items.into_iter().map(Into::into).collect(),
        }
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.constraints {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relation::{tuple, Database, RelationSchema, Value};

    /// Example 4.1's instance: D = {A(a), B(a), C(a), D(a), E(a)}.
    fn example_4_1() -> (Database, ConstraintSet) {
        let mut db = Database::new();
        for r in ["A", "B", "C", "D", "E"] {
            db.create_relation(RelationSchema::new(r, ["X"])).unwrap();
        }
        for r in ["A", "B", "C", "D", "E"] {
            db.insert(r, tuple!["a"]).unwrap();
        }
        let sigma = ConstraintSet::from_iter([
            DenialConstraint::parse("d1", "B(x), E(x)").unwrap(),
            DenialConstraint::parse("d2", "B(x), C(x), D(x)").unwrap(),
            DenialConstraint::parse("d3", "A(x), C(x)").unwrap(),
        ]);
        (db, sigma)
    }

    #[test]
    fn example_4_1_hypergraph_matches_figure_1() {
        let (db, sigma) = example_4_1();
        let g = sigma.conflict_hypergraph(&db).unwrap();
        // tids: A(a)=1, B(a)=2, C(a)=3, D(a)=4, E(a)=5 in insertion order.
        assert_eq!(g.edge_count(), 3);
        let edges: BTreeSet<BTreeSet<Tid>> = g.edges.iter().cloned().collect();
        assert!(edges.contains(&[Tid(2), Tid(5)].into()));
        assert!(edges.contains(&[Tid(2), Tid(3), Tid(4)].into()));
        assert!(edges.contains(&[Tid(1), Tid(3)].into()));
        // The four S-repairs of Example 4.1:
        let repairs = g.maximal_independent_sets(None);
        assert_eq!(repairs.len(), 4);
    }

    #[test]
    fn mixed_sigma_satisfaction() {
        let (db, mut sigma) = example_4_1();
        assert!(!sigma.is_satisfied(&db).unwrap());
        assert!(sigma.is_denial_class());
        sigma.push(Tgd::parse("t", "B(x) :- A(x)").unwrap());
        assert!(!sigma.is_denial_class());
        assert!(sigma.conflict_hypergraph(&db).is_err());
        assert_eq!(sigma.tgds().count(), 1);
    }

    #[test]
    fn constraint_set_with_fd_and_cfd() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["A", "B"]))
            .unwrap();
        db.insert("T", tuple![1, 10]).unwrap();
        db.insert("T", tuple![1, 20]).unwrap();
        let sigma = ConstraintSet::from_iter([Constraint::Fd(FunctionalDependency::new(
            "T",
            ["A"],
            ["B"],
        ))]);
        assert!(!sigma.is_satisfied(&db).unwrap());
        let g = sigma.conflict_hypergraph(&db).unwrap();
        assert_eq!(g.edge_count(), 1);
        let cfd_sigma = ConstraintSet::from_iter([Constraint::Cfd(ConditionalFd::new(
            "T",
            vec![("A", Some(Value::int(999)))],
            "B",
            None,
        ))]);
        assert!(cfd_sigma.is_satisfied(&db).unwrap());
    }

    #[test]
    fn empty_sigma_always_satisfied() {
        let (db, _) = example_4_1();
        let sigma = ConstraintSet::new();
        assert!(sigma.is_satisfied(&db).unwrap());
        assert!(sigma.is_empty());
        let g = sigma.conflict_hypergraph(&db).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.isolated_nodes().len(), 5);
    }
}
