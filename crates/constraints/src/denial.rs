//! Denial constraints: `¬∃x̄ (A₁ ∧ … ∧ Aₙ ∧ comparisons)`.
//!
//! Denial constraints (DCs) are the workhorse class of the paper: keys, FDs
//! and CFDs all compile into them, every violation is a *set of tuples that
//! jointly must not coexist*, and those sets are exactly the hyper-edges of
//! the conflict hyper-graph of §4.1 (Figure 1).

use cqa_query::{
    eval::for_each_witness, parse_query, Atom, Comparison, ConjunctiveQuery, NullSemantics,
    VarTable,
};
use cqa_relation::{Database, RelationError, Tid};
use std::collections::BTreeSet;
use std::fmt;

/// A denial constraint. Internally a Boolean conjunctive query (the *body*);
/// the constraint holds iff the body has no witness.
#[derive(Debug, Clone, PartialEq)]
pub struct DenialConstraint {
    /// Optional human-readable name (`κ`, `KC`, …) used in reports.
    pub name: String,
    body: ConjunctiveQuery,
}

impl DenialConstraint {
    /// Build from an explicit Boolean CQ body.
    pub fn new(name: impl Into<String>, body: ConjunctiveQuery) -> Result<Self, RelationError> {
        if !body.is_boolean() {
            return Err(RelationError::Parse(
                "denial constraint body must be Boolean (empty head)".into(),
            ));
        }
        body.check_safety().map_err(RelationError::Parse)?;
        Ok(DenialConstraint {
            name: name.into(),
            body,
        })
    }

    /// Parse from a comma-separated body, e.g. `"S(x), R(x, y), S(y)"`,
    /// meaning `¬∃x∃y (S(x) ∧ R(x, y) ∧ S(y))` (Example 3.5's κ).
    ///
    /// ```
    /// use cqa_constraints::DenialConstraint;
    /// let kappa = DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)")?;
    /// assert_eq!(kappa.atoms().len(), 3); // S(x), R(x, y), S(y)
    /// # Ok::<(), cqa_relation::RelationError>(())
    /// ```
    pub fn parse(name: impl Into<String>, body: &str) -> Result<Self, RelationError> {
        let q = parse_query(&format!("Q() :- {body}"))?;
        if !q.negated.is_empty() {
            return Err(RelationError::Parse(
                "denial constraint body must be negation-free".into(),
            ));
        }
        DenialConstraint::new(name, q)
    }

    /// The Boolean body as a conjunctive query.
    pub fn body(&self) -> &ConjunctiveQuery {
        &self.body
    }

    /// Body atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.body.atoms
    }

    /// Body comparisons.
    pub fn comparisons(&self) -> &[Comparison] {
        &self.body.comparisons
    }

    /// Variable names of the body.
    pub fn vars(&self) -> &VarTable {
        &self.body.vars
    }

    /// Is the constraint satisfied by `db`?
    ///
    /// Evaluated under SQL null semantics: a null never satisfies a join or a
    /// comparison, so null-based repairs (§4.3) really do restore consistency.
    pub fn is_satisfied(&self, db: &Database) -> bool {
        !cqa_query::holds(db, &self.body, NullSemantics::Sql)
    }

    /// All violation sets: for every witness of the body, the set of matched
    /// tids. Duplicate sets (e.g. the two symmetric matches of an FD pair)
    /// are collapsed.
    pub fn violations(&self, db: &Database) -> BTreeSet<BTreeSet<Tid>> {
        let mut out = BTreeSet::new();
        for_each_witness(db, &self.body, NullSemantics::Sql, &mut |w| {
            out.insert(w.tids.iter().copied().collect());
            true
        });
        out
    }
}

impl fmt::Display for DenialConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render ¬∃(body) reusing the CQ display, stripping the `Q() :- `.
        let body = self.body.to_string();
        let body = body.strip_prefix("Q() :- ").unwrap_or(&body);
        write!(f, "{}: not exists ({body})", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relation::{tuple, Database, RelationSchema};

    /// The instance of Example 3.5.
    pub(crate) fn example_3_5_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        db.insert("R", tuple!["a4", "a3"]).unwrap(); // ι1
        db.insert("R", tuple!["a2", "a1"]).unwrap(); // ι2
        db.insert("R", tuple!["a3", "a3"]).unwrap(); // ι3
        db.insert("S", tuple!["a4"]).unwrap(); // ι4
        db.insert("S", tuple!["a2"]).unwrap(); // ι5
        db.insert("S", tuple!["a3"]).unwrap(); // ι6
        db
    }

    #[test]
    fn example_3_5_kappa_is_violated() {
        let db = example_3_5_db();
        let kappa = DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap();
        assert!(!kappa.is_satisfied(&db));
        let viols = kappa.violations(&db);
        // Two violations: {S(a4), R(a4,a3), S(a3)} = {ι4, ι1, ι6}
        //             and {S(a3), R(a3,a3), S(a3)} = {ι3, ι6}.
        assert_eq!(viols.len(), 2);
        assert!(viols.contains(&[Tid(4), Tid(1), Tid(6)].into()));
        assert!(viols.contains(&[Tid(3), Tid(6)].into()));
    }

    #[test]
    fn satisfied_after_deleting_a_witness_tuple() {
        let mut db = example_3_5_db();
        db.delete(Tid(6)).unwrap(); // S(a3)
        let kappa = DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap();
        assert!(kappa.is_satisfied(&db));
        assert!(kappa.violations(&db).is_empty());
    }

    #[test]
    fn null_does_not_witness_a_denial() {
        let mut db = example_3_5_db();
        // Null out the join attribute of ι6 (the left repair of Example 4.4).
        db.update_value(Tid(6), 0, cqa_relation::Value::NULL)
            .unwrap();
        db.update_value(Tid(3), 1, cqa_relation::Value::NULL)
            .unwrap();
        db.update_value(Tid(1), 1, cqa_relation::Value::NULL)
            .unwrap();
        let kappa = DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap();
        assert!(kappa.is_satisfied(&db));
    }

    #[test]
    fn rejects_non_boolean_and_negated_bodies() {
        assert!(DenialConstraint::parse("bad", "S(x), not R(x, x)").is_err());
        let q = parse_query("Q(x) :- S(x)").unwrap();
        assert!(DenialConstraint::new("bad", q).is_err());
    }

    #[test]
    fn display() {
        let kappa = DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap();
        assert_eq!(kappa.to_string(), "kappa: not exists (S(x), R(x, y), S(y))");
    }

    #[test]
    fn comparison_constraints() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Acct", ["Id", "Balance"]))
            .unwrap();
        db.insert("Acct", tuple![1, 100]).unwrap();
        db.insert("Acct", tuple![2, -5]).unwrap();
        let positive = DenialConstraint::parse("pos", "Acct(i, b), b < 0").unwrap();
        let viols = positive.violations(&db);
        assert_eq!(viols.len(), 1);
        assert!(viols.contains(&[Tid(2)].into()));
    }
}
