//! Denial constraints: `¬∃x̄ (A₁ ∧ … ∧ Aₙ ∧ comparisons)`.
//!
//! Denial constraints (DCs) are the workhorse class of the paper: keys, FDs
//! and CFDs all compile into them, every violation is a *set of tuples that
//! jointly must not coexist*, and those sets are exactly the hyper-edges of
//! the conflict hyper-graph of §4.1 (Figure 1).

use cqa_query::{
    eval::{match_atom_vids, AtomVids, VidBindings},
    parse_query, Atom, CmpOp, Comparison, ConjunctiveQuery, NullSemantics, Term, Var, VarTable,
};
use cqa_relation::fxhash::WordHashMap;
use cqa_relation::{Facts, RelationError, Tid, Value, Vid, VidRow};
use std::collections::BTreeSet;
use std::fmt;
use std::ops::Bound;

/// A denial constraint. Internally a Boolean conjunctive query (the *body*);
/// the constraint holds iff the body has no witness.
#[derive(Debug, Clone, PartialEq)]
pub struct DenialConstraint {
    /// Optional human-readable name (`κ`, `KC`, …) used in reports.
    pub name: String,
    body: ConjunctiveQuery,
}

impl DenialConstraint {
    /// Build from an explicit Boolean CQ body.
    pub fn new(name: impl Into<String>, body: ConjunctiveQuery) -> Result<Self, RelationError> {
        if !body.is_boolean() {
            return Err(RelationError::Parse(
                "denial constraint body must be Boolean (empty head)".into(),
            ));
        }
        body.check_safety().map_err(RelationError::Parse)?;
        Ok(DenialConstraint {
            name: name.into(),
            body,
        })
    }

    /// Parse from a comma-separated body, e.g. `"S(x), R(x, y), S(y)"`,
    /// meaning `¬∃x∃y (S(x) ∧ R(x, y) ∧ S(y))` (Example 3.5's κ).
    ///
    /// ```
    /// use cqa_constraints::DenialConstraint;
    /// let kappa = DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)")?;
    /// assert_eq!(kappa.atoms().len(), 3); // S(x), R(x, y), S(y)
    /// # Ok::<(), cqa_relation::RelationError>(())
    /// ```
    pub fn parse(name: impl Into<String>, body: &str) -> Result<Self, RelationError> {
        let q = parse_query(&format!("Q() :- {body}"))?;
        if !q.negated.is_empty() {
            return Err(RelationError::Parse(
                "denial constraint body must be negation-free".into(),
            ));
        }
        DenialConstraint::new(name, q)
    }

    /// The Boolean body as a conjunctive query.
    pub fn body(&self) -> &ConjunctiveQuery {
        &self.body
    }

    /// Body atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.body.atoms
    }

    /// Body comparisons.
    pub fn comparisons(&self) -> &[Comparison] {
        &self.body.comparisons
    }

    /// Variable names of the body.
    pub fn vars(&self) -> &VarTable {
        &self.body.vars
    }

    /// Is the constraint satisfied by the visible facts?
    ///
    /// Evaluated under SQL null semantics: a null never satisfies a join or a
    /// comparison, so null-based repairs (§4.3) really do restore consistency.
    /// Generic over [`Facts`], so repair views check without materializing.
    pub fn is_satisfied<F: Facts + ?Sized>(&self, facts: &F) -> bool {
        !cqa_query::holds(facts, &self.body, NullSemantics::Sql)
    }

    /// All violation sets: for every witness of the body, the set of matched
    /// tids. Duplicate sets (e.g. the two symmetric matches of an FD pair)
    /// are collapsed.
    ///
    /// Two-atom bodies with a shared variable — the shape every FD, key and
    /// CFD compiles to — are evaluated by an **id-space** hash join on *all*
    /// shared join columns instead of the generic backtracking evaluator:
    /// build a multi-column vid index over the second atom's visible rows,
    /// then probe it once per row of the first. Values never leave the
    /// dictionary — keys are word-sized [`Vid`]s. Nulls never join under SQL
    /// semantics, so null keys are left out of the index and skipped at
    /// probe time. Single-atom bodies whose only filter is a comparison
    /// against a constant range-probe the base's sorted index instead.
    pub fn violations<F: Facts + ?Sized>(&self, facts: &F) -> BTreeSet<BTreeSet<Tid>> {
        if let Some(out) = self.violations_sorted_range(facts) {
            return out;
        }
        if let Some(out) = self.violations_hash_join(facts) {
            return out;
        }
        let mut out = BTreeSet::new();
        // Only the matched tids are needed: stay in id space, skip the
        // per-witness value materialization.
        cqa_query::eval::for_each_witness_vids(
            facts,
            &self.body,
            NullSemantics::Sql,
            &mut |_, tids| {
                out.insert(tids.iter().copied().collect());
                true
            },
        );
        out
    }

    /// The violation sets involving at least one tuple from `touched`:
    /// exactly `{v ∈ violations(facts) : v ∩ touched ≠ ∅}`, computed by
    /// pinning each body atom to the touched rows and joining only those
    /// against the rest of the instance (through the base's cached hash
    /// indexes where the body has the two-atom equi-join shape), instead
    /// of rescanning every relation.
    ///
    /// This is the primitive behind incremental violation maintenance:
    /// denial bodies are negation-free conjunctions, hence *monotone* —
    /// after a mutation, every violation set not intersecting the touched
    /// tids survives verbatim, and every new one involves a touched tid,
    /// so `old sets disjoint from touched ∪ violations_delta(touched)` is
    /// the full violation set of the new instance.
    pub fn violations_delta<F: Facts + ?Sized>(
        &self,
        facts: &F,
        touched: &BTreeSet<Tid>,
    ) -> BTreeSet<BTreeSet<Tid>> {
        let mut out = BTreeSet::new();
        if touched.is_empty() {
            return out;
        }
        if !self.body.negated.is_empty() {
            // Defensive: constructors reject negation, but a negated body
            // would not be monotone — filter a full scan instead.
            return self
                .violations(facts)
                .into_iter()
                .filter(|v| v.iter().any(|t| touched.contains(t)))
                .collect();
        }
        if let Some(found) = self.delta_hash_join(facts, touched) {
            return found;
        }
        // Generic shape (single atom, three-plus atoms, cross products):
        // pin each atom in turn to each touched visible row, backtrack over
        // the remaining atoms, check comparisons at the leaf.
        let mode = NullSemantics::Sql;
        let avs: Vec<AtomVids> = self
            .body
            .atoms
            .iter()
            .map(|a| AtomVids::resolve(facts, a, mode))
            .collect();
        if avs.iter().any(AtomVids::is_unmatchable) {
            return out;
        }
        let n_atoms = self.body.atoms.len();
        let n_vars = self.body.vars.len();
        for pin in 0..n_atoms {
            let atom = &self.body.atoms[pin];
            for (tid, row) in delta_rows(facts, &atom.relation, touched) {
                let mut bindings = VidBindings::new(n_vars);
                if match_atom_vids(facts, atom, &avs[pin], &row, &mut bindings, mode).is_none() {
                    continue;
                }
                let mut tids = vec![tid; n_atoms];
                let rest: Vec<usize> = (0..n_atoms).filter(|&i| i != pin).collect();
                self.extend_rest(facts, &avs, &rest, &mut bindings, &mut tids, &mut out);
            }
        }
        out
    }

    /// Recursive tail of the generic [`DenialConstraint::violations_delta`]
    /// lane: bind the remaining atoms in order against all visible rows,
    /// emit the tid set once every atom is bound and the comparisons hold.
    fn extend_rest<F: Facts + ?Sized>(
        &self,
        facts: &F,
        avs: &[AtomVids],
        rest: &[usize],
        bindings: &mut VidBindings,
        tids: &mut [Tid],
        out: &mut BTreeSet<BTreeSet<Tid>>,
    ) {
        let mode = NullSemantics::Sql;
        let Some((&i, more)) = rest.split_first() else {
            let ok = self.body.comparisons.iter().all(|c| {
                match (
                    bindings.resolve_value(facts, &c.left),
                    bindings.resolve_value(facts, &c.right),
                ) {
                    (Some(a), Some(b)) => mode.cmp(c.op, &a, &b),
                    _ => false, // unbound comparison variable: no witness
                }
            });
            if ok {
                out.insert(tids.iter().copied().collect());
            }
            return;
        };
        let atom = &self.body.atoms[i];
        for (tid, row) in facts.vid_rows(&atom.relation) {
            if let Some(newly) = match_atom_vids(facts, atom, &avs[i], &row, bindings, mode) {
                tids[i] = tid;
                self.extend_rest(facts, avs, more, bindings, tids, out);
                for v in newly {
                    bindings.unset(v);
                }
            }
        }
    }

    /// The two-atom indexed lane of [`DenialConstraint::violations_delta`]:
    /// pin each side to the touched rows and probe the other side through
    /// the base's cached multi-column hash index (plus a linear pass over
    /// the few overlay rows), mirroring the applicability conditions of
    /// [`DenialConstraint::violations_hash_join`]. `None` when the body is
    /// not that shape; the generic pinned backtracking runs instead.
    fn delta_hash_join<F: Facts + ?Sized>(
        &self,
        facts: &F,
        touched: &BTreeSet<Tid>,
    ) -> Option<BTreeSet<BTreeSet<Tid>>> {
        let [a0, a1] = self.body.atoms.as_slice() else {
            return None;
        };
        let vars0: BTreeSet<Var> = a0.vars().collect();
        let shared: Vec<Var> = a1
            .vars()
            .collect::<BTreeSet<Var>>()
            .intersection(&vars0)
            .copied()
            .collect();
        if shared.is_empty() {
            return None; // cross product: nothing to hash on
        }
        let key_pos0: Vec<usize> = shared.iter().map(|&v| a0.positions_of(v)[0]).collect();
        let key_pos1: Vec<usize> = shared.iter().map(|&v| a1.positions_of(v)[0]).collect();

        let mode = NullSemantics::Sql;
        let n_vars = self.body.vars.len();
        let mut out = BTreeSet::new();
        let av0 = AtomVids::resolve(facts, a0, mode);
        let av1 = AtomVids::resolve(facts, a1, mode);
        if av0.is_unmatchable() || av1.is_unmatchable() {
            return Some(out);
        }

        type Side<'s> = (
            &'s Atom,
            &'s Atom,
            &'s AtomVids,
            &'s AtomVids,
            &'s [usize],
            &'s [usize],
        );
        let sides: [Side<'_>; 2] = [
            (a0, a1, &av0, &av1, &key_pos0, &key_pos1),
            (a1, a0, &av1, &av0, &key_pos1, &key_pos0),
        ];
        for (pin, other, av_pin, av_other, key_pin, key_other) in sides {
            'pins: for (tid_pin, row_pin) in delta_rows(facts, &pin.relation, touched) {
                let mut bindings = VidBindings::new(n_vars);
                if match_atom_vids(facts, pin, av_pin, &row_pin, &mut bindings, mode).is_none() {
                    continue;
                }
                let mut key = Vec::with_capacity(key_pin.len());
                for &p in key_pin {
                    let Some(vid) = row_pin.at(p) else {
                        continue 'pins;
                    };
                    if facts.vid_is_null(vid) {
                        continue 'pins; // null never joins
                    }
                    key.push(vid);
                }
                // Shared variables are already bound from the pinned row,
                // so `match_atom_vids` enforces the join; the index probe
                // only narrows the candidates.
                let mut consider = |tid_o: Tid, row_o: &VidRow<'_>, bindings: &mut VidBindings| {
                    let Some(newly) =
                        match_atom_vids(facts, other, av_other, row_o, bindings, mode)
                    else {
                        return;
                    };
                    let ok = self.body.comparisons.iter().all(|c| {
                        match (
                            bindings.resolve_value(facts, &c.left),
                            bindings.resolve_value(facts, &c.right),
                        ) {
                            (Some(a), Some(b)) => mode.cmp(c.op, &a, &b),
                            _ => false,
                        }
                    });
                    if ok {
                        out.insert([tid_pin, tid_o].into_iter().collect());
                    }
                    for v in newly {
                        bindings.unset(v);
                    }
                };
                let indexed = facts
                    .base()
                    .relation(&other.relation)
                    .zip(facts.base().hash_index(&other.relation, key_other));
                if let Some((rel, ix)) = indexed {
                    let store = rel.store();
                    for &pos in ix.rows_for(&key) {
                        let pos = pos as usize;
                        let Some(tid_o) = store.tid_at(pos) else {
                            continue;
                        };
                        if facts.is_deleted(tid_o) {
                            continue;
                        }
                        if let Some(row_o) = store.row(pos) {
                            consider(tid_o, &row_o, &mut bindings);
                        }
                    }
                    for (tid_o, row_o) in facts.overlay_rows(&other.relation) {
                        consider(*tid_o, &VidRow::Slice(row_o), &mut bindings);
                    }
                } else {
                    // No base index (unknown relation, zero key columns):
                    // scan every visible row once instead.
                    for (tid_o, row_o) in facts.vid_rows(&other.relation) {
                        consider(tid_o, &row_o, &mut bindings);
                    }
                }
            }
        }
        Some(out)
    }

    /// The hash-join fast path. `None` when the body doesn't have the
    /// two-atom equi-join shape.
    fn violations_hash_join<'f, F: Facts + ?Sized>(
        &self,
        facts: &'f F,
    ) -> Option<BTreeSet<BTreeSet<Tid>>> {
        let [a0, a1] = self.body.atoms.as_slice() else {
            return None;
        };
        if !self.body.negated.is_empty() {
            return None;
        }
        // Join key: every variable shared between the two atoms, keyed at
        // its first position in each atom (repeats inside an atom are
        // checked by `match_atom_vids`).
        let vars0: BTreeSet<Var> = a0.vars().collect();
        let shared: Vec<Var> = a1
            .vars()
            .collect::<BTreeSet<Var>>()
            .intersection(&vars0)
            .copied()
            .collect();
        if shared.is_empty() {
            return None; // cross product: nothing to hash on
        }
        let key_pos0: Vec<usize> = shared.iter().map(|&v| a0.positions_of(v)[0]).collect();
        let key_pos1: Vec<usize> = shared.iter().map(|&v| a1.positions_of(v)[0]).collect();

        if let Some(out) = self.violations_rank_lane(facts, a0, a1, &key_pos0, &key_pos1) {
            return Some(out);
        }

        let mode = NullSemantics::Sql;
        let n_vars = self.body.vars.len();
        let mut out = BTreeSet::new();

        // A constant the view has never stored (or a null constant, under
        // SQL semantics) makes its atom unmatchable: no violations at all.
        let av0 = AtomVids::resolve(facts, a0, mode);
        let av1 = AtomVids::resolve(facts, a1, mode);
        if av0.is_unmatchable() || av1.is_unmatchable() {
            return Some(out);
        }

        // Build: index the second atom's visible rows on the join-column
        // vids, pre-filtered to rows that locally match a1's constants and
        // repeated variables.
        let mut index: WordHashMap<Vec<Vid>, Vec<(Tid, VidRow<'f>)>> = WordHashMap::default();
        let mut scratch = VidBindings::new(n_vars);
        'build: for (tid1, row1) in facts.vid_rows(&a1.relation) {
            let mut key = Vec::with_capacity(key_pos1.len());
            for &p in &key_pos1 {
                let Some(vid) = row1.at(p) else {
                    continue 'build;
                };
                if facts.vid_is_null(vid) {
                    continue 'build; // null never joins
                }
                key.push(vid);
            }
            if let Some(newly) = match_atom_vids(facts, a1, &av1, &row1, &mut scratch, mode) {
                index.entry(key).or_default().push((tid1, row1));
                for v in newly {
                    scratch.unset(v);
                }
            }
        }

        // Probe: per visible row of the first atom, bind a0 and look up the
        // join key.
        'probe: for (tid0, row0) in facts.vid_rows(&a0.relation) {
            let mut bindings = VidBindings::new(n_vars);
            if match_atom_vids(facts, a0, &av0, &row0, &mut bindings, mode).is_none() {
                continue;
            }
            let mut key = Vec::with_capacity(key_pos0.len());
            for &p in &key_pos0 {
                let Some(vid) = row0.at(p) else {
                    continue 'probe;
                };
                if facts.vid_is_null(vid) {
                    continue 'probe; // null never joins
                }
                key.push(vid);
            }
            let Some(bucket) = index.get(&key) else {
                continue;
            };
            for &(tid1, row1) in bucket {
                let Some(newly) = match_atom_vids(facts, a1, &av1, &row1, &mut bindings, mode)
                else {
                    continue;
                };
                let ok = self.body.comparisons.iter().all(|c| {
                    match (
                        bindings.resolve_value(facts, &c.left),
                        bindings.resolve_value(facts, &c.right),
                    ) {
                        (Some(a), Some(b)) => mode.cmp(c.op, &a, &b),
                        _ => false, // unbound comparison variable: no witness
                    }
                });
                if ok {
                    out.insert([tid0, tid1].into_iter().collect());
                }
                for v in newly {
                    bindings.unset(v);
                }
            }
        }
        Some(out)
    }

    /// The rank lane inside the hash join: when every term of both atoms is
    /// a variable, with no variable repeated *within* an atom, a bucket pair
    /// matches exactly when its join key matches (vid equality is value
    /// equality), so the per-pair `match_atom_vids` re-check is redundant.
    /// The comparisons then only ever read whole columns or constants, and
    /// every comparison-relevant value is resolved through the dictionary
    /// **once**, into a dense rank table sorted in [`Value`] order — equal
    /// values collapse to one rank, so rank comparison coincides with
    /// [`CmpOp::eval`] on the resolved values. The quadratic pair loop then
    /// compares word-sized ranks without ever taking the dictionary lock.
    /// Nulls stay out of the rank table, so a null operand misses it and
    /// the comparison is false, exactly the SQL semantics. `None` means the
    /// body is not of this shape and the generic bucket loop runs instead.
    fn violations_rank_lane<F: Facts + ?Sized>(
        &self,
        facts: &F,
        a0: &Atom,
        a1: &Atom,
        key_pos0: &[usize],
        key_pos1: &[usize],
    ) -> Option<BTreeSet<BTreeSet<Tid>>> {
        for atom in [a0, a1] {
            let mut seen = BTreeSet::new();
            for t in &atom.terms {
                let Term::Var(v) = t else { return None };
                if !seen.insert(*v) {
                    return None;
                }
            }
        }
        // A null constant falsifies its comparison under SQL semantics, and
        // with it the whole conjunctive body: no violations at all.
        for c in &self.body.comparisons {
            if [&c.left, &c.right]
                .into_iter()
                .any(|t| matches!(t, Term::Const(k) if k.is_null()))
            {
                return Some(BTreeSet::new());
            }
        }

        // Compile each comparison operand to a column slot of one of the two
        // rows (shared variables read a0's copy: the join key made the vids
        // equal) or to an interned constant.
        fn slot(cols: &mut Vec<usize>, p: usize) -> usize {
            match cols.iter().position(|&c| c == p) {
                Some(i) => i,
                None => {
                    cols.push(p);
                    cols.len() - 1
                }
            }
        }
        let mut cols0: Vec<usize> = Vec::new();
        let mut cols1: Vec<usize> = Vec::new();
        let mut consts: Vec<Value> = Vec::new();
        let mut compiled: Vec<(CmpOp, RankSrc, RankSrc)> = Vec::new();
        for c in &self.body.comparisons {
            let mut side = |t: &Term| -> Option<RankSrc> {
                match t {
                    Term::Var(v) => {
                        if let Some(&p) = a0.positions_of(*v).first() {
                            Some(RankSrc::Row0(slot(&mut cols0, p)))
                        } else if let Some(&p) = a1.positions_of(*v).first() {
                            Some(RankSrc::Row1(slot(&mut cols1, p)))
                        } else {
                            None // unbound comparison variable: not this shape
                        }
                    }
                    Term::Const(k) => {
                        consts.push(k.clone());
                        Some(RankSrc::Const(consts.len() - 1))
                    }
                }
            };
            let l = side(&c.left)?;
            let r = side(&c.right)?;
            compiled.push((c.op, l, r));
        }

        // Rank table: every distinct vid in a comparison column, resolved
        // once and sorted (with the comparison constants) in Value order.
        let mut distinct: Vec<Vid> = Vec::new();
        for (cols, atom) in [(&cols0, a0), (&cols1, a1)] {
            if cols.is_empty() {
                continue;
            }
            for (_, row) in facts.vid_rows(&atom.relation) {
                for &p in cols.iter() {
                    if let Some(vid) = row.at(p) {
                        if !facts.vid_is_null(vid) {
                            distinct.push(vid);
                        }
                    }
                }
            }
        }
        distinct.sort_unstable_by_key(|v| v.raw());
        distinct.dedup();
        let resolved: Vec<(Vid, Value)> = distinct
            .iter()
            .filter_map(|&v| facts.resolve_vid(v).map(|val| (v, val)))
            .collect();
        let mut domain: Vec<Value> = resolved.iter().map(|(_, v)| v.clone()).collect();
        domain.extend(consts.iter().cloned());
        domain.sort_unstable();
        domain.dedup();
        let rank_of = |v: &Value| domain.binary_search(v).ok().map(|i| i as u32);
        let mut ranks: WordHashMap<Vid, u32> = WordHashMap::default();
        for (vid, val) in &resolved {
            if let Some(r) = rank_of(val) {
                ranks.insert(*vid, r);
            }
        }
        let const_ranks: Vec<Option<u32>> = consts.iter().map(&rank_of).collect();

        let fetch_ranks = |row: &VidRow<'_>, cols: &[usize]| -> Vec<Option<u32>> {
            cols.iter()
                .map(|&p| row.at(p).and_then(|vid| ranks.get(&vid).copied()))
                .collect()
        };
        let operand = |r0: &[Option<u32>], r1: &[Option<u32>], s: &RankSrc| -> Option<u32> {
            match *s {
                RankSrc::Row0(i) => r0.get(i).copied().flatten(),
                RankSrc::Row1(i) => r1.get(i).copied().flatten(),
                RankSrc::Const(i) => const_ranks.get(i).copied().flatten(),
            }
        };

        // Build and probe exactly like the generic lane, but buckets keep
        // only (tid, comparison-column ranks): the pair loop is pure u32s.
        let mut out = BTreeSet::new();
        // Join key -> (tid, comparison-column ranks) build-side buckets.
        type RankBuckets = WordHashMap<Vec<Vid>, Vec<(Tid, Vec<Option<u32>>)>>;
        let mut index: RankBuckets = WordHashMap::default();
        'build: for (tid1, row1) in facts.vid_rows(&a1.relation) {
            let mut key = Vec::with_capacity(key_pos1.len());
            for &p in key_pos1 {
                let Some(vid) = row1.at(p) else {
                    continue 'build;
                };
                if facts.vid_is_null(vid) {
                    continue 'build; // null never joins
                }
                key.push(vid);
            }
            index
                .entry(key)
                .or_default()
                .push((tid1, fetch_ranks(&row1, &cols1)));
        }
        // Probe-side scratch, reused across rows: the hot loop allocates
        // nothing (bucket lookups borrow the key as a slice).
        let mut key: Vec<Vid> = Vec::with_capacity(key_pos0.len());
        let mut r0: Vec<Option<u32>> = Vec::with_capacity(cols0.len());
        'probe: for (tid0, row0) in facts.vid_rows(&a0.relation) {
            key.clear();
            for &p in key_pos0 {
                let Some(vid) = row0.at(p) else {
                    continue 'probe;
                };
                if facts.vid_is_null(vid) {
                    continue 'probe; // null never joins
                }
                key.push(vid);
            }
            let Some(bucket) = index.get(key.as_slice()) else {
                continue;
            };
            r0.clear();
            r0.extend(
                cols0
                    .iter()
                    .map(|&p| row0.at(p).and_then(|vid| ranks.get(&vid).copied())),
            );
            for (tid1, r1) in bucket {
                let ok = compiled.iter().all(|(op, l, r)| {
                    match (operand(&r0, r1, l), operand(&r0, r1, r)) {
                        (Some(a), Some(b)) => rank_cmp(*op, a, b),
                        _ => false, // a null operand never satisfies SQL cmp
                    }
                });
                if ok {
                    out.insert([tid0, *tid1].into_iter().collect());
                }
            }
        }
        Some(out)
    }

    /// The sorted-index fast path for single-atom range constraints like
    /// `Acct(i, b), b < 0`: instead of scanning the relation, range-probe
    /// the base's [`cqa_relation::SortedIndex`] on the compared column and
    /// full-match only the rows inside the bound. `None` when the body
    /// doesn't have that shape.
    fn violations_sorted_range<F: Facts + ?Sized>(
        &self,
        facts: &F,
    ) -> Option<BTreeSet<BTreeSet<Tid>>> {
        let ([atom], [cmp], true) = (
            self.body.atoms.as_slice(),
            self.body.comparisons.as_slice(),
            self.body.negated.is_empty(),
        ) else {
            return None;
        };
        // Orient as `var op const`; `!=` selects two disjoint ranges, so
        // leave it to the generic path.
        let (var, op, konst) = match (&cmp.left, &cmp.right) {
            (Term::Var(v), Term::Const(k)) => (*v, cmp.op, k),
            (Term::Const(k), Term::Var(v)) => (*v, cmp.op.flipped(), k),
            _ => return None,
        };
        if op == CmpOp::Ne || konst.is_null() {
            return None;
        }
        let col = *atom.positions_of(var).first()?;
        let rel = facts.base().relation(&atom.relation)?;
        let sorted = facts.base().sorted_index(&atom.relation, col)?;
        let (lo, hi): (Bound<&Value>, Bound<&Value>) = match op {
            CmpOp::Eq => (Bound::Included(konst), Bound::Included(konst)),
            CmpOp::Lt => (Bound::Unbounded, Bound::Excluded(konst)),
            CmpOp::Le => (Bound::Unbounded, Bound::Included(konst)),
            CmpOp::Gt => (Bound::Excluded(konst), Bound::Unbounded),
            CmpOp::Ge => (Bound::Included(konst), Bound::Unbounded),
            CmpOp::Ne => return None,
        };

        let mode = NullSemantics::Sql;
        let av = AtomVids::resolve(facts, atom, mode);
        let mut out = BTreeSet::new();
        let store = rel.store();
        let dict = facts.base().dict();
        let mut bindings = VidBindings::new(self.body.vars.len());
        let mut check = |tid: Tid, row: &VidRow<'_>, out: &mut BTreeSet<BTreeSet<Tid>>| {
            if let Some(newly) = match_atom_vids(facts, atom, &av, row, &mut bindings, mode) {
                // Re-check the comparison on the full binding: the range
                // probe pre-filters, but repeated variables and overlay rows
                // still need the real test (and nulls must fail it).
                let ok = match (
                    bindings.resolve_value(facts, &cmp.left),
                    bindings.resolve_value(facts, &cmp.right),
                ) {
                    (Some(a), Some(b)) => mode.cmp(cmp.op, &a, &b),
                    _ => false,
                };
                if ok {
                    out.insert([tid].into());
                }
                for v in newly {
                    bindings.unset(v);
                }
            }
        };
        // Base rows inside the range (value order; nulls sort below any
        // constant bound but the SQL comparison re-check rejects them).
        for &(vid, pos) in sorted.range(dict, lo, hi) {
            if facts.vid_is_null(vid) {
                continue;
            }
            let Some(tid) = store.tid_at(pos as usize) else {
                continue;
            };
            if facts.is_deleted(tid) {
                continue;
            }
            if let Some(row) = store.row(pos as usize) {
                check(tid, &row, &mut out);
            }
        }
        // Overlay rows: few; full-match them all.
        for (tid, row) in facts.overlay_rows(&atom.relation) {
            check(*tid, &VidRow::Slice(row), &mut out);
        }
        Some(out)
    }
}

/// A compiled comparison operand of the rank lane: a comparison-column slot
/// of the probe row, of the bucket row, or an interned constant.
enum RankSrc {
    Row0(usize),
    Row1(usize),
    Const(usize),
}

/// [`CmpOp`] on ranks. Sound because the rank table is sorted in `Value`
/// order with equal values collapsed: rank order *is* the value order.
fn rank_cmp(op: CmpOp, a: u32, b: u32) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

/// The visible rows of `relation` whose tid is in `touched`: base rows
/// still present (and not view-deleted) plus matching overlay rows. The
/// order is irrelevant — every consumer inserts into a [`BTreeSet`].
fn delta_rows<'f, F: Facts + ?Sized>(
    facts: &'f F,
    relation: &str,
    touched: &BTreeSet<Tid>,
) -> Vec<(Tid, VidRow<'f>)> {
    let mut rows = Vec::new();
    if let Some(rel) = facts.base().relation(relation) {
        for &tid in touched {
            if facts.is_deleted(tid) {
                continue;
            }
            if let Some(row) = rel.vid_row_of(tid) {
                rows.push((tid, row));
            }
        }
    }
    for (tid, row) in facts.overlay_rows(relation) {
        if touched.contains(tid) {
            rows.push((*tid, VidRow::Slice(row)));
        }
    }
    rows
}

impl fmt::Display for DenialConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render ¬∃(body) reusing the CQ display, stripping the `Q() :- `.
        let body = self.body.to_string();
        let body = body.strip_prefix("Q() :- ").unwrap_or(&body);
        write!(f, "{}: not exists ({body})", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::eval::for_each_witness;
    use cqa_relation::{tuple, Database, RelationSchema};

    /// The instance of Example 3.5.
    pub(crate) fn example_3_5_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        db.insert("R", tuple!["a4", "a3"]).unwrap(); // ι1
        db.insert("R", tuple!["a2", "a1"]).unwrap(); // ι2
        db.insert("R", tuple!["a3", "a3"]).unwrap(); // ι3
        db.insert("S", tuple!["a4"]).unwrap(); // ι4
        db.insert("S", tuple!["a2"]).unwrap(); // ι5
        db.insert("S", tuple!["a3"]).unwrap(); // ι6
        db
    }

    #[test]
    fn example_3_5_kappa_is_violated() {
        let db = example_3_5_db();
        let kappa = DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap();
        assert!(!kappa.is_satisfied(&db));
        let viols = kappa.violations(&db);
        // Two violations: {S(a4), R(a4,a3), S(a3)} = {ι4, ι1, ι6}
        //             and {S(a3), R(a3,a3), S(a3)} = {ι3, ι6}.
        assert_eq!(viols.len(), 2);
        assert!(viols.contains(&[Tid(4), Tid(1), Tid(6)].into()));
        assert!(viols.contains(&[Tid(3), Tid(6)].into()));
    }

    #[test]
    fn satisfied_after_deleting_a_witness_tuple() {
        let mut db = example_3_5_db();
        db.delete(Tid(6)).unwrap(); // S(a3)
        let kappa = DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap();
        assert!(kappa.is_satisfied(&db));
        assert!(kappa.violations(&db).is_empty());
    }

    #[test]
    fn null_does_not_witness_a_denial() {
        let mut db = example_3_5_db();
        // Null out the join attribute of ι6 (the left repair of Example 4.4).
        db.update_value(Tid(6), 0, cqa_relation::Value::NULL)
            .unwrap();
        db.update_value(Tid(3), 1, cqa_relation::Value::NULL)
            .unwrap();
        db.update_value(Tid(1), 1, cqa_relation::Value::NULL)
            .unwrap();
        let kappa = DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap();
        assert!(kappa.is_satisfied(&db));
    }

    #[test]
    fn rejects_non_boolean_and_negated_bodies() {
        assert!(DenialConstraint::parse("bad", "S(x), not R(x, x)").is_err());
        let q = parse_query("Q(x) :- S(x)").unwrap();
        assert!(DenialConstraint::new("bad", q).is_err());
    }

    #[test]
    fn display() {
        let kappa = DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap();
        assert_eq!(kappa.to_string(), "kappa: not exists (S(x), R(x, y), S(y))");
    }

    #[test]
    fn hash_join_agrees_with_generic_evaluator() {
        // FD-shaped self-join over an instance with multi-column join keys,
        // repeated values, nulls and comparisons: the hash-join fast path
        // must produce exactly the generic evaluator's witnesses.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B", "C"]))
            .unwrap();
        for i in 0..120u64 {
            let a = i % 10;
            let b = (i * 7) % 4;
            let c = if i % 13 == 0 {
                cqa_relation::Value::NULL
            } else {
                cqa_relation::Value::Int((i % 3) as i64)
            };
            db.insert(
                "R",
                cqa_relation::Tuple::new([
                    cqa_relation::Value::Int(a as i64),
                    cqa_relation::Value::Int(b as i64),
                    c,
                ]),
            )
            .unwrap();
        }
        for body in [
            "R(x, y, u), R(x, z, v), y != z", // FD A → B
            "R(x, y, u), R(x, y, v), u != v", // FD AB → C (two join columns)
            "R(x, y, 0), R(y, z, 1)",         // non-self-join columns + consts
            "R(x, x, u), R(x, y, v)",         // repeated variable in one atom
        ] {
            let dc = DenialConstraint::parse("dc", body).unwrap();
            let fast = dc.violations(&db);
            let mut generic = BTreeSet::new();
            for_each_witness(&db, dc.body(), NullSemantics::Sql, &mut |w| {
                generic.insert(w.tids.iter().copied().collect());
                true
            });
            assert_eq!(fast, generic, "{body}");
            assert!(dc.violations_hash_join(&db).is_some(), "{body}");
        }
        // Three atoms or no shared variable: the fast path must decline.
        let three = DenialConstraint::parse("t", "R(x, y, u), R(y, z, v), R(z, x, w)").unwrap();
        assert!(three.violations_hash_join(&db).is_none());
        let cross = DenialConstraint::parse("c", "R(x, y, u), R(z, w, t)").unwrap();
        assert!(cross.violations_hash_join(&db).is_none());
    }

    #[test]
    fn rank_lane_agrees_with_generic_evaluator() {
        // All-variable two-atom bodies take the rank lane; its word-sized
        // rank comparisons must reproduce the generic evaluator exactly on
        // mixed strings / ints / floats / nulls, including var-const
        // comparisons whose constant is absent from the data.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["A", "B", "C"]))
            .unwrap();
        for i in 0..150i64 {
            let a = Value::str(format!("grp_{}", i % 12));
            let b = match i % 5 {
                0 => cqa_relation::Value::NULL,
                1 => Value::Int(i % 9 - 4),
                2 => Value::Float((i % 9 - 4) as f64), // canonicalizes to Int
                3 => Value::Float((i % 7) as f64 + 0.5),
                _ => Value::str(format!("lbl_{}", i % 6)),
            };
            let c = Value::Int(i % 4);
            db.insert("T", cqa_relation::Tuple::new([a, b, c])).unwrap();
        }
        for body in [
            "T(x, y, u), T(x, z, v), y < z",         // FD-shaped var-var cmp
            "T(x, y, u), T(x, z, v), y != z",        // inequality
            "T(x, y, u), T(x, z, v), y < z, u >= 2", // cmp on both rows
            "T(x, y, u), T(x, z, v), y > 1",         // const present in data
            "T(x, y, u), T(x, z, v), y < 100",       // const absent from data
            "T(x, y, u), T(x, z, v)",                // no comparison at all
        ] {
            let dc = DenialConstraint::parse("dc", body).unwrap();
            let [a0, a1] = dc.body.atoms.as_slice() else {
                unreachable!()
            };
            let lane = dc.violations_rank_lane(&db, a0, a1, &[0], &[0]);
            assert!(lane.is_some(), "{body} should take the rank lane");
            let mut generic = BTreeSet::new();
            for_each_witness(&db, dc.body(), NullSemantics::Sql, &mut |w| {
                generic.insert(w.tids.iter().copied().collect());
                true
            });
            assert_eq!(lane.unwrap(), generic, "{body}");
        }
        // Constants or repeated variables inside an atom decline the lane
        // (the generic bucket loop handles them); a null comparison
        // constant short-circuits to "no violations".
        for body in ["T(x, y, 0), T(x, z, v)", "T(x, x, u), T(x, z, v)"] {
            let dc = DenialConstraint::parse("dc", body).unwrap();
            let [a0, a1] = dc.body.atoms.as_slice() else {
                unreachable!()
            };
            assert!(
                dc.violations_rank_lane(&db, a0, a1, &[0], &[0]).is_none(),
                "{body} should decline the rank lane"
            );
            // The outer hash join still answers, via the generic bucket loop.
            let mut generic = BTreeSet::new();
            for_each_witness(&db, dc.body(), NullSemantics::Sql, &mut |w| {
                generic.insert(w.tids.iter().copied().collect());
                true
            });
            assert_eq!(dc.violations(&db), generic, "{body}");
        }
        let nullk = DenialConstraint::new("n", {
            let mut q = parse_query("Q() :- T(x, y, u), T(x, z, v)").unwrap();
            q.comparisons.push(cqa_query::Comparison {
                left: Term::Var(q.vars.lookup("y").unwrap()),
                op: CmpOp::Lt,
                right: Term::Const(cqa_relation::Value::NULL),
            });
            q
        })
        .unwrap();
        assert!(nullk.violations(&db).is_empty());
    }

    /// Reference semantics of `violations_delta`: filter the full set.
    fn delta_reference(
        dc: &DenialConstraint,
        db: &Database,
        touched: &BTreeSet<Tid>,
    ) -> BTreeSet<BTreeSet<Tid>> {
        dc.violations(db)
            .into_iter()
            .filter(|v| v.iter().any(|t| touched.contains(t)))
            .collect()
    }

    #[test]
    fn violations_delta_matches_filtered_full_scan() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B", "C"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        for i in 0..80u64 {
            let c = if i % 13 == 0 {
                cqa_relation::Value::NULL
            } else {
                cqa_relation::Value::Int((i % 3) as i64)
            };
            db.insert(
                "R",
                cqa_relation::Tuple::new([
                    cqa_relation::Value::Int((i % 8) as i64),
                    cqa_relation::Value::Int((i * 7 % 5) as i64),
                    c,
                ]),
            )
            .unwrap();
        }
        for i in 0..6i64 {
            db.insert("S", tuple![i]).unwrap();
        }
        let all = db.tids();
        let shapes = [
            "R(x, y, u), R(x, z, v), y != z", // FD, hash-join lane
            "R(x, y, u), R(x, y, v), u != v", // two join columns
            "R(x, y, u), u >= 2",             // single atom + cmp
            "S(x), R(x, y, u), S(y)",         // three atoms (kappa shape)
            "R(x, y, u), S(z)",               // cross product
        ];
        for body in shapes {
            let dc = DenialConstraint::parse("dc", body).unwrap();
            // Empty delta, full delta, and a few partial windows.
            assert!(dc.violations_delta(&db, &BTreeSet::new()).is_empty());
            assert_eq!(dc.violations_delta(&db, &all), dc.violations(&db), "{body}");
            for window in [
                [Tid(1), Tid(2), Tid(3)].into(),
                [Tid(40), Tid(81)].into(),
                [Tid(83)].into(),
                [Tid(999)].into(), // unknown tid: nothing pinned
            ] as [BTreeSet<Tid>; 4]
            {
                assert_eq!(
                    dc.violations_delta(&db, &window),
                    delta_reference(&dc, &db, &window),
                    "{body} / {window:?}"
                );
            }
        }
    }

    #[test]
    fn violations_delta_sees_view_overlays_and_deletions() {
        use cqa_relation::DeltaView;
        let db = example_3_5_db();
        let kappa = DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap();
        // Delete ι6 and insert S(a1): the view's violations change shape.
        let dels: BTreeSet<Tid> = [Tid(6)].into();
        let ins = [("S".to_string(), tuple!["a1"])];
        let view = DeltaView::new(&db, &dels, &ins);
        let full: BTreeSet<BTreeSet<Tid>> = kappa.violations(&view);
        let visible: BTreeSet<Tid> = view.visible_tids();
        assert_eq!(kappa.violations_delta(&view, &visible), full);
        // A delta pinned to the overlay tid finds the overlay's violations.
        let overlay_tid = Tid(db.tid_watermark());
        let pinned = kappa.violations_delta(&view, &[overlay_tid].into());
        let expected: BTreeSet<BTreeSet<Tid>> = full
            .iter()
            .filter(|v| v.contains(&overlay_tid))
            .cloned()
            .collect();
        assert_eq!(pinned, expected);
        // The deleted tid pins nothing.
        assert!(kappa.violations_delta(&view, &dels).is_empty());
    }

    #[test]
    fn comparison_constraints() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Acct", ["Id", "Balance"]))
            .unwrap();
        db.insert("Acct", tuple![1, 100]).unwrap();
        db.insert("Acct", tuple![2, -5]).unwrap();
        let positive = DenialConstraint::parse("pos", "Acct(i, b), b < 0").unwrap();
        // The single-atom range shape takes the sorted-index fast path.
        assert!(positive.violations_sorted_range(&db).is_some());
        let viols = positive.violations(&db);
        assert_eq!(viols.len(), 1);
        assert!(viols.contains(&[Tid(2)].into()));
    }

    #[test]
    fn sorted_range_agrees_with_generic_evaluator() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("M", ["K", "V"]))
            .unwrap();
        for i in 0..60i64 {
            let v = if i % 11 == 0 {
                cqa_relation::Value::NULL
            } else {
                cqa_relation::Value::Int(i % 7 - 3)
            };
            db.insert(
                "M",
                cqa_relation::Tuple::new([cqa_relation::Value::Int(i), v]),
            )
            .unwrap();
        }
        for body in [
            "M(k, v), v < 0",
            "M(k, v), v <= -1",
            "M(k, v), v > 2",
            "M(k, v), v >= 3",
            "M(k, v), v = 1",
            "M(k, v), 0 > v", // flipped orientation
        ] {
            let dc = DenialConstraint::parse("dc", body).unwrap();
            let fast = dc.violations_sorted_range(&db).unwrap();
            let mut generic = BTreeSet::new();
            for_each_witness(&db, dc.body(), NullSemantics::Sql, &mut |w| {
                generic.insert(w.tids.iter().copied().collect());
                true
            });
            assert_eq!(fast, generic, "{body}");
        }
        // `!=` and var-var comparisons decline the fast path.
        let ne = DenialConstraint::parse("ne", "M(k, v), v != 0").unwrap();
        assert!(ne.violations_sorted_range(&db).is_none());
        let vv = DenialConstraint::parse("vv", "M(k, v), k < v").unwrap();
        assert!(vv.violations_sorted_range(&db).is_none());
    }
}
