//! Denial constraints: `¬∃x̄ (A₁ ∧ … ∧ Aₙ ∧ comparisons)`.
//!
//! Denial constraints (DCs) are the workhorse class of the paper: keys, FDs
//! and CFDs all compile into them, every violation is a *set of tuples that
//! jointly must not coexist*, and those sets are exactly the hyper-edges of
//! the conflict hyper-graph of §4.1 (Figure 1).

use cqa_query::{
    eval::{for_each_witness, match_atom, Bindings},
    parse_query, Atom, Comparison, ConjunctiveQuery, NullSemantics, Var, VarTable,
};
use cqa_relation::fxhash::FxHashMap;
use cqa_relation::{Facts, RelationError, Tid, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A denial constraint. Internally a Boolean conjunctive query (the *body*);
/// the constraint holds iff the body has no witness.
#[derive(Debug, Clone, PartialEq)]
pub struct DenialConstraint {
    /// Optional human-readable name (`κ`, `KC`, …) used in reports.
    pub name: String,
    body: ConjunctiveQuery,
}

impl DenialConstraint {
    /// Build from an explicit Boolean CQ body.
    pub fn new(name: impl Into<String>, body: ConjunctiveQuery) -> Result<Self, RelationError> {
        if !body.is_boolean() {
            return Err(RelationError::Parse(
                "denial constraint body must be Boolean (empty head)".into(),
            ));
        }
        body.check_safety().map_err(RelationError::Parse)?;
        Ok(DenialConstraint {
            name: name.into(),
            body,
        })
    }

    /// Parse from a comma-separated body, e.g. `"S(x), R(x, y), S(y)"`,
    /// meaning `¬∃x∃y (S(x) ∧ R(x, y) ∧ S(y))` (Example 3.5's κ).
    ///
    /// ```
    /// use cqa_constraints::DenialConstraint;
    /// let kappa = DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)")?;
    /// assert_eq!(kappa.atoms().len(), 3); // S(x), R(x, y), S(y)
    /// # Ok::<(), cqa_relation::RelationError>(())
    /// ```
    pub fn parse(name: impl Into<String>, body: &str) -> Result<Self, RelationError> {
        let q = parse_query(&format!("Q() :- {body}"))?;
        if !q.negated.is_empty() {
            return Err(RelationError::Parse(
                "denial constraint body must be negation-free".into(),
            ));
        }
        DenialConstraint::new(name, q)
    }

    /// The Boolean body as a conjunctive query.
    pub fn body(&self) -> &ConjunctiveQuery {
        &self.body
    }

    /// Body atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.body.atoms
    }

    /// Body comparisons.
    pub fn comparisons(&self) -> &[Comparison] {
        &self.body.comparisons
    }

    /// Variable names of the body.
    pub fn vars(&self) -> &VarTable {
        &self.body.vars
    }

    /// Is the constraint satisfied by the visible facts?
    ///
    /// Evaluated under SQL null semantics: a null never satisfies a join or a
    /// comparison, so null-based repairs (§4.3) really do restore consistency.
    /// Generic over [`Facts`], so repair views check without materializing.
    pub fn is_satisfied<F: Facts + ?Sized>(&self, facts: &F) -> bool {
        !cqa_query::holds(facts, &self.body, NullSemantics::Sql)
    }

    /// All violation sets: for every witness of the body, the set of matched
    /// tids. Duplicate sets (e.g. the two symmetric matches of an FD pair)
    /// are collapsed.
    ///
    /// Two-atom bodies with a shared variable — the shape every FD, key and
    /// CFD compiles to — are evaluated by a hash join on *all* shared join
    /// columns instead of the generic backtracking evaluator (whose probe
    /// index covers a single column): build a multi-column hash index over
    /// the second atom's relation, then probe it once per tuple of the
    /// first. Nulls never join under SQL semantics, so null keys are left
    /// out of the index and skipped at probe time.
    pub fn violations<F: Facts + ?Sized>(&self, facts: &F) -> BTreeSet<BTreeSet<Tid>> {
        if let Some(out) = self.violations_hash_join(facts) {
            return out;
        }
        let mut out = BTreeSet::new();
        for_each_witness(facts, &self.body, NullSemantics::Sql, &mut |w| {
            out.insert(w.tids.iter().copied().collect());
            true
        });
        out
    }

    /// The hash-join fast path. `None` when the body doesn't have the
    /// two-atom equi-join shape.
    fn violations_hash_join<F: Facts + ?Sized>(
        &self,
        facts: &F,
    ) -> Option<BTreeSet<BTreeSet<Tid>>> {
        let [a0, a1] = self.body.atoms.as_slice() else {
            return None;
        };
        if !self.body.negated.is_empty() {
            return None;
        }
        // Join key: every variable shared between the two atoms, keyed at
        // its first position in each atom (repeats inside an atom are
        // checked by `match_atom`).
        let vars0: BTreeSet<Var> = a0.vars().collect();
        let shared: Vec<Var> = a1
            .vars()
            .collect::<BTreeSet<Var>>()
            .intersection(&vars0)
            .copied()
            .collect();
        if shared.is_empty() {
            return None; // cross product: nothing to hash on
        }
        let key_pos0: Vec<usize> = shared.iter().map(|&v| a0.positions_of(v)[0]).collect();
        let key_pos1: Vec<usize> = shared.iter().map(|&v| a1.positions_of(v)[0]).collect();

        let mode = NullSemantics::Sql;
        let n_vars = self.body.vars.len();
        let mut out = BTreeSet::new();

        // Build: index the second atom's visible tuples on the join columns,
        // pre-filtered to tuples that locally match a1's constants and
        // repeated variables.
        let mut index: FxHashMap<Vec<Value>, Vec<(Tid, &cqa_relation::Tuple)>> =
            FxHashMap::default();
        let mut scratch = Bindings::new(n_vars);
        'build: for (tid1, t1) in facts.facts_in(&a1.relation) {
            let mut key = Vec::with_capacity(key_pos1.len());
            for &p in &key_pos1 {
                let v = t1.at(p);
                if v.is_null() {
                    continue 'build; // null never joins
                }
                key.push(v.clone());
            }
            if let Some(newly) = match_atom(a1, t1, &mut scratch, mode) {
                index.entry(key).or_default().push((tid1, t1));
                for v in newly {
                    scratch.unset(v);
                }
            }
        }

        // Probe: per visible tuple of the first atom, bind a0 and look up
        // the join key.
        'probe: for (tid0, t0) in facts.facts_in(&a0.relation) {
            let mut bindings = Bindings::new(n_vars);
            if match_atom(a0, t0, &mut bindings, mode).is_none() {
                continue;
            }
            let mut key = Vec::with_capacity(key_pos0.len());
            for &p in &key_pos0 {
                let v = t0.at(p);
                if v.is_null() {
                    continue 'probe; // null never joins
                }
                key.push(v.clone());
            }
            let Some(bucket) = index.get(&key) else {
                continue;
            };
            for &(tid1, t1) in bucket {
                let Some(newly) = match_atom(a1, t1, &mut bindings, mode) else {
                    continue;
                };
                let ok = self.body.comparisons.iter().all(|c| {
                    match (bindings.resolve(&c.left), bindings.resolve(&c.right)) {
                        (Some(a), Some(b)) => mode.cmp(c.op, &a, &b),
                        _ => false, // unbound comparison variable: no witness
                    }
                });
                if ok {
                    out.insert([tid0, tid1].into_iter().collect());
                }
                for v in newly {
                    bindings.unset(v);
                }
            }
        }
        Some(out)
    }
}

impl fmt::Display for DenialConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render ¬∃(body) reusing the CQ display, stripping the `Q() :- `.
        let body = self.body.to_string();
        let body = body.strip_prefix("Q() :- ").unwrap_or(&body);
        write!(f, "{}: not exists ({body})", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relation::{tuple, Database, RelationSchema};

    /// The instance of Example 3.5.
    pub(crate) fn example_3_5_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        db.insert("R", tuple!["a4", "a3"]).unwrap(); // ι1
        db.insert("R", tuple!["a2", "a1"]).unwrap(); // ι2
        db.insert("R", tuple!["a3", "a3"]).unwrap(); // ι3
        db.insert("S", tuple!["a4"]).unwrap(); // ι4
        db.insert("S", tuple!["a2"]).unwrap(); // ι5
        db.insert("S", tuple!["a3"]).unwrap(); // ι6
        db
    }

    #[test]
    fn example_3_5_kappa_is_violated() {
        let db = example_3_5_db();
        let kappa = DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap();
        assert!(!kappa.is_satisfied(&db));
        let viols = kappa.violations(&db);
        // Two violations: {S(a4), R(a4,a3), S(a3)} = {ι4, ι1, ι6}
        //             and {S(a3), R(a3,a3), S(a3)} = {ι3, ι6}.
        assert_eq!(viols.len(), 2);
        assert!(viols.contains(&[Tid(4), Tid(1), Tid(6)].into()));
        assert!(viols.contains(&[Tid(3), Tid(6)].into()));
    }

    #[test]
    fn satisfied_after_deleting_a_witness_tuple() {
        let mut db = example_3_5_db();
        db.delete(Tid(6)).unwrap(); // S(a3)
        let kappa = DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap();
        assert!(kappa.is_satisfied(&db));
        assert!(kappa.violations(&db).is_empty());
    }

    #[test]
    fn null_does_not_witness_a_denial() {
        let mut db = example_3_5_db();
        // Null out the join attribute of ι6 (the left repair of Example 4.4).
        db.update_value(Tid(6), 0, cqa_relation::Value::NULL)
            .unwrap();
        db.update_value(Tid(3), 1, cqa_relation::Value::NULL)
            .unwrap();
        db.update_value(Tid(1), 1, cqa_relation::Value::NULL)
            .unwrap();
        let kappa = DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap();
        assert!(kappa.is_satisfied(&db));
    }

    #[test]
    fn rejects_non_boolean_and_negated_bodies() {
        assert!(DenialConstraint::parse("bad", "S(x), not R(x, x)").is_err());
        let q = parse_query("Q(x) :- S(x)").unwrap();
        assert!(DenialConstraint::new("bad", q).is_err());
    }

    #[test]
    fn display() {
        let kappa = DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap();
        assert_eq!(kappa.to_string(), "kappa: not exists (S(x), R(x, y), S(y))");
    }

    #[test]
    fn hash_join_agrees_with_generic_evaluator() {
        // FD-shaped self-join over an instance with multi-column join keys,
        // repeated values, nulls and comparisons: the hash-join fast path
        // must produce exactly the generic evaluator's witnesses.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B", "C"]))
            .unwrap();
        for i in 0..120u64 {
            let a = i % 10;
            let b = (i * 7) % 4;
            let c = if i % 13 == 0 {
                cqa_relation::Value::NULL
            } else {
                cqa_relation::Value::Int((i % 3) as i64)
            };
            db.insert(
                "R",
                cqa_relation::Tuple::new([
                    cqa_relation::Value::Int(a as i64),
                    cqa_relation::Value::Int(b as i64),
                    c,
                ]),
            )
            .unwrap();
        }
        for body in [
            "R(x, y, u), R(x, z, v), y != z", // FD A → B
            "R(x, y, u), R(x, y, v), u != v", // FD AB → C (two join columns)
            "R(x, y, 0), R(y, z, 1)",         // non-self-join columns + consts
            "R(x, x, u), R(x, y, v)",         // repeated variable in one atom
        ] {
            let dc = DenialConstraint::parse("dc", body).unwrap();
            let fast = dc.violations(&db);
            let mut generic = BTreeSet::new();
            for_each_witness(&db, dc.body(), NullSemantics::Sql, &mut |w| {
                generic.insert(w.tids.iter().copied().collect());
                true
            });
            assert_eq!(fast, generic, "{body}");
            assert!(dc.violations_hash_join(&db).is_some(), "{body}");
        }
        // Three atoms or no shared variable: the fast path must decline.
        let three = DenialConstraint::parse("t", "R(x, y, u), R(y, z, v), R(z, x, w)").unwrap();
        assert!(three.violations_hash_join(&db).is_none());
        let cross = DenialConstraint::parse("c", "R(x, y, u), R(z, w, t)").unwrap();
        assert!(cross.violations_hash_join(&db).is_none());
    }

    #[test]
    fn comparison_constraints() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Acct", ["Id", "Balance"]))
            .unwrap();
        db.insert("Acct", tuple![1, 100]).unwrap();
        db.insert("Acct", tuple![2, -5]).unwrap();
        let positive = DenialConstraint::parse("pos", "Acct(i, b), b < 0").unwrap();
        let viols = positive.violations(&db);
        assert_eq!(viols.len(), 1);
        assert!(viols.contains(&[Tid(2)].into()));
    }
}
