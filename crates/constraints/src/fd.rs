//! Functional dependencies and key constraints.
//!
//! FDs and keys are stored by attribute *name* (resolved against the schema
//! when compiled), and compile into [`DenialConstraint`]s — one per
//! right-hand-side attribute — following Example 3.4:
//!
//! `Employee: Name → Salary` becomes
//! `¬∃x y z (Employee(x, y) ∧ Employee(x, z) ∧ y ≠ z)`.

use crate::denial::DenialConstraint;
use cqa_query::{Atom, CmpOp, Comparison, ConjunctiveQuery, Term, VarTable};
use cqa_relation::{Database, Facts, RelationError, RelationSchema, Tid};
use std::collections::BTreeSet;
use std::fmt;

/// A functional dependency `R: X → Y`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalDependency {
    /// Relation the FD applies to.
    pub relation: String,
    /// Determinant attribute names.
    pub lhs: Vec<String>,
    /// Dependent attribute names.
    pub rhs: Vec<String>,
}

impl FunctionalDependency {
    /// Build `relation: lhs → rhs`.
    pub fn new<S: Into<String>>(
        relation: impl Into<String>,
        lhs: impl IntoIterator<Item = S>,
        rhs: impl IntoIterator<Item = S>,
    ) -> FunctionalDependency {
        FunctionalDependency {
            relation: relation.into(),
            lhs: lhs.into_iter().map(Into::into).collect(),
            rhs: rhs.into_iter().map(Into::into).collect(),
        }
    }

    /// Compile to one denial constraint per RHS attribute.
    ///
    /// Each denial's body is
    /// `R(x̄, y) ∧ R(x̄, z) ∧ y ≠ z` where the two atoms share variables on
    /// the LHS positions and differ on the chosen RHS position.
    pub fn to_denials(
        &self,
        schema: &RelationSchema,
    ) -> Result<Vec<DenialConstraint>, RelationError> {
        let lhs_pos = schema.positions_of(self.lhs.iter().map(String::as_str))?;
        let rhs_pos = schema.positions_of(self.rhs.iter().map(String::as_str))?;
        let arity = schema.arity();
        let mut out = Vec::with_capacity(rhs_pos.len());
        for (k, &rp) in rhs_pos.iter().enumerate() {
            let mut vars = VarTable::new();
            // First atom: fresh var per position.
            let first: Vec<Term> = (0..arity)
                .map(|i| Term::Var(vars.var(format!("a{i}"))))
                .collect();
            // Second atom: share LHS vars, fresh elsewhere.
            let second: Vec<Term> = (0..arity)
                .map(|i| {
                    if lhs_pos.contains(&i) {
                        first[i].clone()
                    } else {
                        Term::Var(vars.var(format!("b{i}")))
                    }
                })
                .collect();
            let cmp = Comparison::new(first[rp].clone(), CmpOp::Ne, second[rp].clone());
            let body = ConjunctiveQuery {
                vars,
                head: Vec::new(),
                atoms: vec![
                    Atom::new(self.relation.clone(), first.clone()),
                    Atom::new(self.relation.clone(), second),
                ],
                negated: Vec::new(),
                comparisons: vec![cmp],
            };
            out.push(DenialConstraint::new(format!("{self}#{k}"), body)?);
        }
        Ok(out)
    }

    /// Is the FD satisfied by the visible facts?
    pub fn is_satisfied<F: Facts + ?Sized>(&self, facts: &F) -> Result<bool, RelationError> {
        let schema = facts
            .base()
            .require_relation(&self.relation)?
            .schema()
            .clone();
        for d in self.to_denials(&schema)? {
            if !d.is_satisfied(facts) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// All violating tuple pairs (as two-element tid sets).
    pub fn violations<F: Facts + ?Sized>(
        &self,
        facts: &F,
    ) -> Result<BTreeSet<BTreeSet<Tid>>, RelationError> {
        let schema = facts
            .base()
            .require_relation(&self.relation)?
            .schema()
            .clone();
        let mut out = BTreeSet::new();
        for d in self.to_denials(&schema)? {
            out.extend(d.violations(facts));
        }
        Ok(out)
    }
}

impl fmt::Display for FunctionalDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] -> [{}]",
            self.relation,
            self.lhs.join(", "),
            self.rhs.join(", ")
        )
    }
}

/// A key constraint: the key attributes functionally determine all others.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyConstraint {
    /// Relation the key applies to.
    pub relation: String,
    /// Key attribute names.
    pub key: Vec<String>,
}

impl KeyConstraint {
    /// Build a key constraint.
    pub fn new<S: Into<String>>(
        relation: impl Into<String>,
        key: impl IntoIterator<Item = S>,
    ) -> KeyConstraint {
        KeyConstraint {
            relation: relation.into(),
            key: key.into_iter().map(Into::into).collect(),
        }
    }

    /// The equivalent FD `key → (all other attributes)`.
    pub fn to_fd(&self, schema: &RelationSchema) -> FunctionalDependency {
        let rhs: Vec<String> = schema
            .attributes()
            .iter()
            .map(|a| a.name.clone())
            .filter(|n| !self.key.contains(n))
            .collect();
        FunctionalDependency {
            relation: self.relation.clone(),
            lhs: self.key.clone(),
            rhs,
        }
    }

    /// Compile to denial constraints (one per non-key attribute).
    pub fn to_denials(
        &self,
        schema: &RelationSchema,
    ) -> Result<Vec<DenialConstraint>, RelationError> {
        self.to_fd(schema).to_denials(schema)
    }

    /// Is the key satisfied?
    pub fn is_satisfied<F: Facts + ?Sized>(&self, facts: &F) -> Result<bool, RelationError> {
        let schema = facts
            .base()
            .require_relation(&self.relation)?
            .schema()
            .clone();
        self.to_fd(&schema).is_satisfied(facts)
    }

    /// Groups of tuples sharing a key value, for groups of size ≥ 2
    /// (the "key-equal groups" that FO rewriting and repairs quotient by).
    pub fn conflicting_groups(&self, db: &Database) -> Result<Vec<Vec<Tid>>, RelationError> {
        let rel = db.require_relation(&self.relation)?;
        let key_pos = rel
            .schema()
            .positions_of(self.key.iter().map(String::as_str))?;
        let mut groups: std::collections::BTreeMap<cqa_relation::Tuple, Vec<Tid>> =
            std::collections::BTreeMap::new();
        for (tid, t) in rel.iter() {
            groups.entry(t.project(&key_pos)).or_default().push(tid);
        }
        Ok(groups.into_values().filter(|g| g.len() >= 2).collect())
    }
}

impl fmt::Display for KeyConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key({}: {})", self.relation, self.key.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relation::{tuple, Database, RelationSchema};

    /// The Employee instance of Example 3.3.
    pub(crate) fn employee_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        db.insert("Employee", tuple!["page", 5000]).unwrap();
        db.insert("Employee", tuple!["page", 8000]).unwrap();
        db.insert("Employee", tuple!["smith", 3000]).unwrap();
        db.insert("Employee", tuple!["stowe", 7000]).unwrap();
        db
    }

    #[test]
    fn example_3_3_key_violated_by_page() {
        let db = employee_db();
        let kc = KeyConstraint::new("Employee", ["Name"]);
        assert!(!kc.is_satisfied(&db).unwrap());
        let fd = FunctionalDependency::new("Employee", ["Name"], ["Salary"]);
        let viols = fd.violations(&db).unwrap();
        assert_eq!(viols.len(), 1);
        assert!(viols.contains(&[Tid(1), Tid(2)].into()));
    }

    #[test]
    fn satisfied_key() {
        let mut db = employee_db();
        db.delete(Tid(2)).unwrap();
        let kc = KeyConstraint::new("Employee", ["Name"]);
        assert!(kc.is_satisfied(&db).unwrap());
    }

    #[test]
    fn key_to_fd_covers_all_non_key_attrs() {
        let db = employee_db();
        let schema = db.relation("Employee").unwrap().schema().clone();
        let kc = KeyConstraint::new("Employee", ["Name"]);
        let fd = kc.to_fd(&schema);
        assert_eq!(fd.lhs, vec!["Name"]);
        assert_eq!(fd.rhs, vec!["Salary"]);
    }

    #[test]
    fn conflicting_groups() {
        let db = employee_db();
        let kc = KeyConstraint::new("Employee", ["Name"]);
        let groups = kc.conflicting_groups(&db).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0], vec![Tid(1), Tid(2)]);
    }

    #[test]
    fn multi_attribute_fd() {
        // [CC, AC] -> [City], from the CFD section's base table.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Cust", ["CC", "AC", "City"]))
            .unwrap();
        db.insert("Cust", tuple![44, 131, "NYC"]).unwrap();
        db.insert("Cust", tuple![44, 131, "NYC"]).unwrap(); // dedup anyway
        db.insert("Cust", tuple![1, 908, "NYC"]).unwrap();
        let fd = FunctionalDependency::new("Cust", ["CC", "AC"], ["City"]);
        assert!(fd.is_satisfied(&db).unwrap());
        db.insert("Cust", tuple![44, 131, "EDI"]).unwrap();
        assert!(!fd.is_satisfied(&db).unwrap());
    }

    #[test]
    fn fd_with_multiple_rhs_compiles_to_multiple_denials() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["A", "B", "C"]))
            .unwrap();
        db.insert("T", tuple![1, 2, 3]).unwrap();
        let schema = db.relation("T").unwrap().schema().clone();
        let fd = FunctionalDependency::new("T", ["A"], ["B", "C"]);
        assert_eq!(fd.to_denials(&schema).unwrap().len(), 2);
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let db = employee_db();
        let fd = FunctionalDependency::new("Employee", ["Nope"], ["Salary"]);
        assert!(fd.is_satisfied(&db).is_err());
    }
}
