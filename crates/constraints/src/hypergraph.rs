//! The conflict hyper-graph (§4.1, Figure 1) and hitting-set algorithms.
//!
//! Nodes are database tuples (tids); each hyper-edge is a set of tuples that
//! jointly violate a denial constraint. The repair theory rests on two facts:
//!
//! * **S-repairs** (subset repairs) are exactly the complements of the
//!   *minimal hitting sets* of the edge set — equivalently, the maximal
//!   independent sets of the hyper-graph.
//! * **C-repairs** (cardinality repairs) are the complements of the
//!   *minimum* hitting sets.
//!
//! This module owns the purely combinatorial part: enumeration of minimal
//! hitting sets (with pruning) and branch-and-bound computation of minimum
//! ones. `cqa-core` wraps these into repair semantics.
//!
//! The search trees are explored in parallel through `cqa-exec`: the top
//! levels of each tree are split into independent branch tasks on a work
//! queue (so uneven subtrees load-balance), below a split depth scaled to
//! the thread count (`par_split_depth`) each
//! task runs the plain sequential recursion, and for branch-and-bound the
//! workers share the incumbent best size through an atomic (`fetch_min`).
//! All results are merged into `BTreeSet`s and the minimum is a property of
//! the graph, not of the schedule — output is byte-identical at every
//! thread count.

// audit:exponential — minimal/minimum hitting-set enumeration; every search loop must thread a Budget.
use crate::components::ConflictComponents;
use cqa_exec::{Budget, Outcome};
use cqa_relation::Tid;
use std::collections::{BTreeSet, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Depth of the search tree below which a branch task stops splitting and
/// runs sequentially. Branching factor is the size of the chosen edge
/// (≥ 2 on any branching node), so this yields at least `4 × threads`
/// subtree tasks — plenty of slack for the queue to balance uneven trees.
fn par_split_depth() -> usize {
    (4 * cqa_exec::threads())
        .next_power_of_two()
        .trailing_zeros() as usize
}

/// The canonical (size, then lexicographic) edge order: a total order that
/// is a pure function of the edge set, shared by [`ConflictHypergraph::new`]
/// and the delta-maintenance paths (which binary-search and merge stored
/// edge lists under exactly this order).
fn canonical_edge_order(a: &BTreeSet<Tid>, b: &BTreeSet<Tid>) -> std::cmp::Ordering {
    a.len().cmp(&b.len()).then_with(|| a.cmp(b))
}

/// A conflict hyper-graph.
///
/// Like the column-index cache on `Database` relations, the graph carries a
/// lazily computed cache (its [`ConflictComponents`]); the cache key is the
/// `(nodes, edges)` pair, which is fixed at construction. Mutating the
/// public fields of an existing graph in place is outside the contract —
/// build a fresh graph with [`ConflictHypergraph::new`] instead, exactly as
/// instance mutations go through `Database` methods that invalidate its
/// index cache.
#[derive(Default)]
pub struct ConflictHypergraph {
    /// All nodes (every tuple of the instance, including conflict-free ones).
    pub nodes: BTreeSet<Tid>,
    /// The hyper-edges: minimal violation sets. Kept deduplicated and free of
    /// supersets (a superset edge is implied by its subset).
    pub edges: Vec<BTreeSet<Tid>>,
    /// Cached connected components; filled on first
    /// [`components`](ConflictHypergraph::components) call.
    components: OnceLock<Arc<ConflictComponents>>,
}

impl std::fmt::Debug for ConflictHypergraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The cache is derived state — keep it out of the debug view so the
        // output is the same whether or not components were computed.
        f.debug_struct("ConflictHypergraph")
            .field("nodes", &self.nodes)
            .field("edges", &self.edges)
            .finish()
    }
}

impl Clone for ConflictHypergraph {
    fn clone(&self) -> Self {
        // The components are a pure function of (nodes, edges), so sharing
        // an already-computed cache with the clone is sound and free.
        ConflictHypergraph {
            nodes: self.nodes.clone(),
            edges: self.edges.clone(),
            components: self.components.clone(),
        }
    }
}

impl PartialEq for ConflictHypergraph {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.edges == other.edges
    }
}

impl Eq for ConflictHypergraph {}

impl ConflictHypergraph {
    /// Build from nodes and raw violation sets; dedupes and drops edges that
    /// are supersets of other edges (hitting the subset hits the superset).
    ///
    /// Edges are processed in ascending size, so a kept subset always
    /// precedes the supersets it eliminates. Small edges (denial bodies are
    /// short, so this is the normal case) test "does a kept subset exist?"
    /// by enumerating their own proper subsets against a hash set of kept
    /// edges — `O(E · 2^|e|)` instead of the quadratic `O(E²)` pairwise
    /// scan, which made instances with ~10⁵ conflict pairs unusable. Edges
    /// too wide to enumerate fall back to the pairwise scan.
    pub fn new(nodes: BTreeSet<Tid>, raw_edges: impl IntoIterator<Item = BTreeSet<Tid>>) -> Self {
        let mut edges: Vec<BTreeSet<Tid>> = raw_edges.into_iter().collect();
        // Full canonical (size, lexicographic) sort: the stored edge order
        // is a pure function of the edge *set* regardless of input order,
        // which is what lets `apply_violation_delta` binary-search it and
        // merge into it.
        edges.sort_by(canonical_edge_order);
        edges.dedup();
        let mut kept: Vec<BTreeSet<Tid>> = Vec::with_capacity(edges.len());
        // Keys are sorted element vectors (ascending-order masks over an
        // ascending element list stay sorted): one flat allocation per
        // probe instead of a tree, and cheap to hash.
        let mut kept_index: HashSet<Vec<Tid>> = HashSet::with_capacity(edges.len());
        const ENUM_WIDTH: usize = 12;
        for e in edges {
            let dominated = if e.len() <= ENUM_WIDTH {
                let elems: Vec<Tid> = e.iter().copied().collect();
                // Proper non-empty subsets only: the canonical sort makes
                // exact duplicates adjacent, so `dedup` already removed
                // them all and the full mask can never hit.
                (1..(1u32 << elems.len()) - 1).any(|mask| {
                    let sub: Vec<Tid> = elems
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, t)| *t)
                        .collect();
                    kept_index.contains(&sub)
                })
            } else {
                kept.iter().any(|k| k.is_subset(&e))
            };
            if !dominated {
                kept_index.insert(e.iter().copied().collect());
                kept.push(e);
            }
        }
        ConflictHypergraph {
            nodes,
            edges: kept,
            components: OnceLock::new(),
        }
    }

    /// The connected components of this graph, computed once (union-find
    /// over the hyper-edges) and cached — `s_repairs` followed by
    /// `certain_over` on the same σ, D pair pays for the factorization a
    /// single time. Clones share an already-filled cache.
    pub fn components(&self) -> Arc<ConflictComponents> {
        Arc::clone(
            self.components
                .get_or_init(|| Arc::new(ConflictComponents::compute(self))),
        )
    }

    /// Build the graph for a new `(nodes, violations)` pair while
    /// incrementally maintaining the component factorization: diff the old
    /// and new canonical edge sets and hand
    /// [`ConflictComponents::apply_edge_delta`] the removed/added edges, so
    /// only the touched components are rebuilt — never the whole
    /// decomposition. If this graph's component cache was never filled
    /// there is nothing to maintain and the new graph stays lazy.
    ///
    /// The result is byte-identical to `ConflictHypergraph::new` followed
    /// by a fresh [`ConflictHypergraph::components`] call: the edge
    /// canonicalization (size-then-lexicographic order, superset filter) is
    /// a pure function of the violation *set*, and the component merge
    /// preserves canonical component order.
    pub fn apply_delta(
        &self,
        nodes: BTreeSet<Tid>,
        violations: impl IntoIterator<Item = BTreeSet<Tid>>,
    ) -> ConflictHypergraph {
        let next = ConflictHypergraph::new(nodes, violations);
        if let Some(old) = self.components.get() {
            // Both edge lists are in canonical (size, lexicographic) order —
            // a pure function of the edge set — so a single merge walk finds
            // the symmetric difference without building index sets.
            let mut removed: BTreeSet<BTreeSet<Tid>> = BTreeSet::new();
            let mut added: BTreeSet<BTreeSet<Tid>> = BTreeSet::new();
            let (mut i, mut j) = (0, 0);
            while i < self.edges.len() || j < next.edges.len() {
                match (self.edges.get(i), next.edges.get(j)) {
                    (Some(o), Some(n)) => match canonical_edge_order(o, n) {
                        std::cmp::Ordering::Equal => {
                            i += 1;
                            j += 1;
                        }
                        std::cmp::Ordering::Less => {
                            removed.insert(o.clone());
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            added.insert(n.clone());
                            j += 1;
                        }
                    },
                    (Some(o), None) => {
                        removed.insert(o.clone());
                        i += 1;
                    }
                    (None, Some(n)) => {
                        added.insert(n.clone());
                        j += 1;
                    }
                    (None, None) => break,
                }
            }
            let maintained = old.apply_edge_delta(&next.nodes, &removed, &added);
            // A freshly built graph has an empty cache: this always wins.
            let _ = next.components.set(Arc::new(maintained));
        }
        next
    }

    /// Build the graph for the post-mutation violation set from the delta
    /// alone — never re-canonicalizing the full edge list the way
    /// [`ConflictHypergraph::apply_delta`] does via a from-scratch rebuild.
    /// `dirty` is the set of touched tids and `added` the violation sets
    /// re-derived for them; the new violation set is understood to be
    /// "every old violation disjoint from `dirty`, plus `added`" — the
    /// monotone-denial maintenance identity. **Every set in `added` must
    /// intersect `dirty`** (a violation involving no touched tuple is not a
    /// delta; debug builds assert this).
    ///
    /// Why a merge suffices for byte-identity with a from-scratch build:
    ///
    /// * a superset of a dirty-touching edge touches dirty itself, so
    ///   removing the dirty-touching kept edges can never resurrect an edge
    ///   they dominated — the dominated sets are gone too;
    /// * surviving kept edges are disjoint from `dirty` while every added
    ///   set intersects it, so no added set can equal or dominate a
    ///   surviving kept edge;
    /// * hence the new canonical edge set is exactly the surviving kept
    ///   edges merged (in canonical order) with the added sets that are not
    ///   themselves dominated — and domination of an added set is decided
    ///   by binary-searching its proper subsets in the stored canonical
    ///   edge list (skipping dirty-touching hits) and in the added sets
    ///   accepted so far.
    ///
    /// Components are maintained through
    /// [`ConflictComponents::apply_edge_delta`] exactly as in `apply_delta`.
    pub fn apply_violation_delta(
        &self,
        nodes: BTreeSet<Tid>,
        dirty: &BTreeSet<Tid>,
        added: &BTreeSet<BTreeSet<Tid>>,
    ) -> ConflictHypergraph {
        debug_assert!(
            added.iter().all(|a| a.iter().any(|t| dirty.contains(t))),
            "added violation sets must intersect the dirty tids"
        );
        let touches_dirty = |e: &BTreeSet<Tid>| e.iter().any(|t| dirty.contains(t));
        // Canonically filter the added sets, smallest first. A hit in the
        // stored edge list only counts when the found edge survives (is
        // disjoint from `dirty`): the probe target may itself be one of the
        // edges this delta removes.
        let mut add_sorted: Vec<&BTreeSet<Tid>> = added.iter().collect();
        add_sorted.sort_by(|a, b| canonical_edge_order(a, b));
        let mut accepted: Vec<BTreeSet<Tid>> = Vec::new();
        const ENUM_WIDTH: usize = 12;
        for a in add_sorted {
            let dominated = if a.len() <= ENUM_WIDTH {
                let elems: Vec<Tid> = a.iter().copied().collect();
                // Proper non-empty subsets only: equality with a surviving
                // kept edge is impossible (`a` touches dirty) and `added`
                // holds no duplicates.
                (1..(1u32 << elems.len()) - 1).any(|mask| {
                    let sub: BTreeSet<Tid> = elems
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, t)| *t)
                        .collect();
                    let in_kept = self
                        .edges
                        .binary_search_by(|e| canonical_edge_order(e, &sub))
                        .ok()
                        .and_then(|i| self.edges.get(i))
                        .is_some_and(|e| !touches_dirty(e));
                    in_kept
                        || accepted
                            .binary_search_by(|e| canonical_edge_order(e, &sub))
                            .is_ok()
                })
            } else {
                self.edges
                    .iter()
                    .any(|k| !touches_dirty(k) && k.is_subset(a))
                    || accepted.iter().any(|k| k.is_subset(a))
            };
            if !dominated {
                accepted.push(a.clone());
            }
        }
        // Ordered merge: surviving kept edges and accepted added sets, both
        // already in canonical order (ties are impossible — see above).
        let mut next_edges: Vec<BTreeSet<Tid>> =
            Vec::with_capacity(self.edges.len() + accepted.len());
        let mut removed: BTreeSet<BTreeSet<Tid>> = BTreeSet::new();
        let mut add_iter = accepted.iter().peekable();
        for e in &self.edges {
            if touches_dirty(e) {
                removed.insert(e.clone());
                continue;
            }
            while let Some(a) =
                add_iter.next_if(|a| canonical_edge_order(a, e) == std::cmp::Ordering::Less)
            {
                next_edges.push(a.clone());
            }
            next_edges.push(e.clone());
        }
        next_edges.extend(add_iter.cloned());
        let next = ConflictHypergraph {
            nodes,
            edges: next_edges,
            components: OnceLock::new(),
        };
        if let Some(old) = self.components.get() {
            let added_edges: BTreeSet<BTreeSet<Tid>> = accepted.into_iter().collect();
            let maintained = old.apply_edge_delta(&next.nodes, &removed, &added_edges);
            let _ = next.components.set(Arc::new(maintained));
        }
        next
    }

    /// Number of hyper-edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Nodes touching no edge (tuples free of conflicts — they persist in
    /// every repair, i.e. they are part of the "consistent core").
    pub fn isolated_nodes(&self) -> BTreeSet<Tid> {
        let covered: BTreeSet<Tid> = self.edges.iter().flatten().copied().collect();
        self.nodes.difference(&covered).copied().collect()
    }

    /// Is `set` a hitting set (touches every edge)?
    pub fn is_hitting_set(&self, set: &BTreeSet<Tid>) -> bool {
        self.edges.iter().all(|e| !e.is_disjoint(set))
    }

    /// Is `set` independent (contains no edge entirely)?
    pub fn is_independent(&self, set: &BTreeSet<Tid>) -> bool {
        self.edges.iter().all(|e| !e.is_subset(set))
    }

    /// Is `set` a *minimal* hitting set?
    pub fn is_minimal_hitting_set(&self, set: &BTreeSet<Tid>) -> bool {
        if !self.is_hitting_set(set) {
            return false;
        }
        set.iter().all(|v| {
            let mut smaller = set.clone();
            smaller.remove(v);
            !self.is_hitting_set(&smaller)
        })
    }

    /// Enumerate **all minimal hitting sets**, deterministically.
    ///
    /// MMCS-style branching: pick the smallest uncovered edge and branch on
    /// each of its vertices, *excluding* the edge's earlier vertices from
    /// deeper branches — the subtree families are then pairwise disjoint, so
    /// every minimal hitting set is generated exactly once. A local
    /// criticality prune (every chosen vertex must still have an edge it
    /// alone hits) cuts every
    /// subtree that can no longer produce a minimal set, which also makes
    /// every surviving leaf minimal by construction — no global minimality
    /// filter and no cross-branch superset scan are needed. With
    /// `limit = Some(n)` enumeration stops after `n` minimal sets are found.
    pub fn minimal_hitting_sets(&self, limit: Option<usize>) -> Vec<BTreeSet<Tid>> {
        self.minimal_hitting_sets_budgeted(limit, &Budget::unlimited())
            .into_value()
    }

    /// Budget-aware [`Self::minimal_hitting_sets`]. Every set in a
    /// [`Outcome::Truncated`] result is a genuine minimal hitting set (the
    /// search emits only verified-minimal leaves), so truncation yields a
    /// sound *subset* of the full enumeration. A budget with a logical cap
    /// runs the sequential DFS, making the truncated subset byte-identical
    /// at any thread count; a deadline budget keeps the parallel search and
    /// only promises soundness, not which subset.
    pub fn minimal_hitting_sets_budgeted(
        &self,
        limit: Option<usize>,
        budget: &Budget,
    ) -> Outcome<Vec<BTreeSet<Tid>>> {
        // A limit or a logical budget means "stop early", which only has a
        // deterministic meaning in DFS order — keep those paths (and trivial
        // graphs) sequential.
        if limit.is_some()
            || budget.forces_sequential()
            || cqa_exec::threads() <= 1
            || self.edges.len() < 2
        {
            let mut out: BTreeSet<BTreeSet<Tid>> = BTreeSet::new();
            let mut current = BTreeSet::new();
            let mut banned = BTreeSet::new();
            self.enumerate_rec(&mut current, &mut banned, &mut out, limit, budget);
            let n = out.len() as u64;
            return budget.outcome_with(out.into_iter().collect(), n);
        }
        // Parallel: branch tasks on the work queue carry their exclusion set
        // along. Branch families are disjoint and every emitted leaf is
        // minimal, so the merged set is exactly the full enumeration no
        // matter how branches were scheduled. On budget exhaustion workers
        // stop spawning children and drain what is queued.
        let split = par_split_depth();
        let found = cqa_exec::run_queue(
            vec![(BTreeSet::new(), BTreeSet::new())],
            |(current, banned): (BTreeSet<Tid>, BTreeSet<Tid>),
             spawn,
             results: &mut Vec<BTreeSet<Tid>>| {
                if !budget.tick() {
                    return;
                }
                match self
                    .edges
                    .iter()
                    .filter(|e| e.is_disjoint(&current))
                    .min_by_key(|e| e.len())
                {
                    None => results.push(current),
                    Some(_) if current.len() >= split => {
                        let mut out = BTreeSet::new();
                        let mut cur = current;
                        let mut ban = banned;
                        self.enumerate_rec(&mut cur, &mut ban, &mut out, None, budget);
                        results.extend(out);
                    }
                    Some(edge) => {
                        let mut banned = banned;
                        for &v in edge {
                            if banned.contains(&v) {
                                continue;
                            }
                            let mut child = current.clone();
                            child.insert(v);
                            if self.chosen_all_critical(&child) {
                                spawn.push((child, banned.clone()));
                            }
                            banned.insert(v);
                        }
                    }
                }
            },
        );
        let out: BTreeSet<BTreeSet<Tid>> = found.into_iter().collect();
        let n = out.len() as u64;
        budget.outcome_with(out.into_iter().collect(), n)
    }

    /// Does every vertex of `current` have a *critical* edge — one that no
    /// other chosen vertex hits? Edge intersections only grow along a branch,
    /// so once a vertex loses criticality no extension of `current` can be a
    /// minimal hitting set, and conversely a hitting set whose vertices are
    /// all critical *is* minimal (removing any vertex un-hits its critical
    /// edge).
    fn chosen_all_critical(&self, current: &BTreeSet<Tid>) -> bool {
        current.iter().all(|v| {
            self.edges
                .iter()
                .any(|e| e.contains(v) && e.iter().filter(|u| current.contains(u)).count() == 1)
        })
    }

    fn enumerate_rec(
        &self,
        current: &mut BTreeSet<Tid>,
        banned: &mut BTreeSet<Tid>,
        out: &mut BTreeSet<BTreeSet<Tid>>,
        limit: Option<usize>,
        budget: &Budget,
    ) {
        if !budget.tick() {
            return;
        }
        if limit.is_some_and(|l| out.len() >= l) {
            return;
        }
        match self
            .edges
            .iter()
            .filter(|e| e.is_disjoint(current))
            .min_by_key(|e| e.len())
        {
            None => {
                // Every edge hit, every chosen vertex critical: minimal.
                // The leaf is valid even if it fills the item cap; the cap
                // latches and the unwinding recursion stops exploring.
                out.insert(current.clone());
                let _ = budget.charge_item();
            }
            Some(edge) => {
                let vertices: Vec<Tid> = edge.iter().copied().collect();
                let mut newly_banned: Vec<Tid> = Vec::with_capacity(vertices.len());
                for v in vertices {
                    if banned.contains(&v) {
                        continue;
                    }
                    current.insert(v);
                    if self.chosen_all_critical(current) {
                        self.enumerate_rec(current, banned, out, limit, budget);
                    }
                    current.remove(&v);
                    banned.insert(v);
                    newly_banned.push(v);
                }
                for v in newly_banned {
                    banned.remove(&v);
                }
            }
        }
    }

    /// A (not necessarily minimum) hitting set found greedily: repeatedly
    /// take the vertex covering the most uncovered edges. Used as the upper
    /// bound for branch-and-bound and as a fast single-repair heuristic.
    pub fn greedy_hitting_set(&self) -> BTreeSet<Tid> {
        let mut uncovered: Vec<&BTreeSet<Tid>> = self.edges.iter().collect();
        let mut set = BTreeSet::new();
        while !uncovered.is_empty() {
            let mut counts: std::collections::BTreeMap<Tid, usize> =
                std::collections::BTreeMap::new();
            for e in &uncovered {
                for &v in e.iter() {
                    *counts.entry(v).or_default() += 1;
                }
            }
            // Uncovered edges are non-empty, so counts is non-empty; the
            // defensive break (rather than unwrap) keeps this total.
            let Some((&best, _)) = counts
                .iter()
                .max_by_key(|(v, c)| (**c, std::cmp::Reverse(**v)))
            else {
                break;
            };
            set.insert(best);
            uncovered.retain(|e| !e.contains(&best));
        }
        // Make it minimal: drop redundant vertices (greedy can overshoot).
        let chosen: Vec<Tid> = set.iter().copied().collect();
        for v in chosen {
            let mut smaller = set.clone();
            smaller.remove(&v);
            if self.is_hitting_set(&smaller) {
                set = smaller;
            }
        }
        set
    }

    /// Lower bound on the hitting-set size: a greedy matching of pairwise
    /// disjoint edges (each needs its own vertex).
    fn disjoint_edge_bound(&self, current: &BTreeSet<Tid>) -> usize {
        let mut used: BTreeSet<Tid> = BTreeSet::new();
        let mut bound = 0;
        for e in &self.edges {
            if e.is_disjoint(current) && e.iter().all(|v| !used.contains(v)) {
                used.extend(e.iter().copied());
                bound += 1;
            }
        }
        bound
    }

    /// The size of a minimum hitting set (0 if there are no edges).
    pub fn minimum_hitting_set_size(&self) -> usize {
        self.minimum_hitting_set_size_budgeted(&Budget::unlimited())
            .into_value()
    }

    /// Budget-aware [`Self::minimum_hitting_set_size`]. On truncation the
    /// carried value is only an **upper bound** (the best incumbent the
    /// branch-and-bound proved before stopping, seeded by the greedy
    /// hitting set) — callers that need the exact minimum must treat a
    /// truncated outcome as "unknown".
    pub fn minimum_hitting_set_size_budgeted(&self, budget: &Budget) -> Outcome<usize> {
        self.minimum_hitting_set_size_seeded(None, budget)
    }

    /// [`Self::minimum_hitting_set_size_budgeted`] with an externally known
    /// cost bound. `upper`, when given, **must** be the size of some valid
    /// hitting set of this graph (e.g. an optimum carried over from an
    /// earlier call on the same graph); the branch-and-bound starts from
    /// `min(upper, greedy)` instead of re-deriving its bound from scratch,
    /// so seeding with the previously proven minimum turns the search into
    /// a pure verification pass. The reported minimum is identical to the
    /// unseeded search — seeding only prunes provably non-improving
    /// branches earlier.
    pub fn minimum_hitting_set_size_seeded(
        &self,
        upper: Option<usize>,
        budget: &Budget,
    ) -> Outcome<usize> {
        if self.edges.is_empty() {
            return budget.outcome_with(0, 0);
        }
        let greedy = match upper {
            Some(u) => u.min(self.greedy_hitting_set().len()),
            None => self.greedy_hitting_set().len(),
        };
        if budget.forces_sequential() || cqa_exec::threads() <= 1 {
            let mut best = greedy;
            let mut current = BTreeSet::new();
            self.min_size_rec(&mut current, &mut best, budget);
            return budget.outcome(best);
        }
        // Parallel branch-and-bound. The incumbent best is shared through an
        // atomic: workers read it when a branch task starts (a stale — i.e.
        // larger — value only costs extra work, never wrong pruning) and
        // publish improvements with `fetch_min`. The final value is the true
        // minimum, which no schedule can change.
        let best = AtomicUsize::new(greedy);
        let split = par_split_depth();
        cqa_exec::run_queue(
            vec![BTreeSet::new()],
            |current: BTreeSet<Tid>, spawn, _results: &mut Vec<()>| {
                if !budget.tick() {
                    return;
                }
                let mut local_best = best.load(Ordering::Relaxed);
                if current.len() + self.disjoint_edge_bound(&current) >= local_best {
                    return;
                }
                match self
                    .edges
                    .iter()
                    .filter(|e| e.is_disjoint(&current))
                    .min_by_key(|e| e.len())
                {
                    None => {
                        best.fetch_min(current.len(), Ordering::Relaxed);
                    }
                    Some(_) if current.len() >= split => {
                        let mut cur = current;
                        self.min_size_rec(&mut cur, &mut local_best, budget);
                        best.fetch_min(local_best, Ordering::Relaxed);
                    }
                    Some(edge) => {
                        for &v in edge {
                            let mut child = current.clone();
                            child.insert(v);
                            spawn.push(child);
                        }
                    }
                }
            },
        );
        budget.outcome(best.load(Ordering::Relaxed))
    }

    fn min_size_rec(&self, current: &mut BTreeSet<Tid>, best: &mut usize, budget: &Budget) {
        if !budget.tick() {
            return;
        }
        if current.len() + self.disjoint_edge_bound(current) >= *best {
            return;
        }
        match self
            .edges
            .iter()
            .filter(|e| e.is_disjoint(current))
            .min_by_key(|e| e.len())
        {
            None => {
                *best = current.len();
            }
            Some(edge) => {
                let vertices: Vec<Tid> = edge.iter().copied().collect();
                for v in vertices {
                    current.insert(v);
                    self.min_size_rec(current, best, budget);
                    current.remove(&v);
                }
            }
        }
    }

    /// One minimum hitting set (a witness for
    /// [`Self::minimum_hitting_set_size`]).
    ///
    /// Every hitting set must hit the first smallest edge, so the search
    /// branches on that edge's vertices; each branch yields its DFS-first
    /// completion of minimum size and the smallest candidate (in set order)
    /// wins. Branches are independent, so they run on the pool — and
    /// because the winner is the *minimum* over all branches rather than
    /// "whichever branch finished first", the witness is the same at every
    /// thread count.
    pub fn minimum_hitting_set(&self) -> BTreeSet<Tid> {
        self.minimum_hitting_set_budgeted(&Budget::unlimited())
            .into_value()
    }

    /// Budget-aware [`Self::minimum_hitting_set`]. On truncation the witness
    /// degrades gracefully: it is always a *valid* (minimal) hitting set —
    /// the greedy one if the size search could not finish — just not
    /// necessarily a minimum one.
    pub fn minimum_hitting_set_budgeted(&self, budget: &Budget) -> Outcome<BTreeSet<Tid>> {
        if self.edges.is_empty() {
            return budget.outcome_with(BTreeSet::new(), 0);
        }
        let size = self.minimum_hitting_set_size_budgeted(budget);
        if budget.exhausted() {
            return budget.outcome(self.greedy_hitting_set());
        }
        let k = size.into_value();
        let Some(edge) = self.edges.iter().min_by_key(|e| e.len()) else {
            return budget.outcome(BTreeSet::new());
        };
        let vertices: Vec<Tid> = edge.iter().copied().collect();
        let branch = |&v: &Tid| {
            let mut current: BTreeSet<Tid> = [v].into();
            let mut out: BTreeSet<BTreeSet<Tid>> = BTreeSet::new();
            self.min_enum_first(&mut current, k, &mut out, budget);
            out.into_iter().next()
        };
        let candidates = if budget.forces_sequential() {
            vertices.iter().filter_map(branch).collect::<Vec<_>>()
        } else {
            cqa_exec::par_filter_map(&vertices, branch)
        };
        // A branch search cut off by the budget may find nothing; the
        // greedy set keeps the witness valid (though possibly oversized).
        budget.outcome(
            candidates
                .into_iter()
                .min()
                .unwrap_or_else(|| self.greedy_hitting_set()),
        )
    }

    fn min_enum_first(
        &self,
        current: &mut BTreeSet<Tid>,
        k: usize,
        out: &mut BTreeSet<BTreeSet<Tid>>,
        budget: &Budget,
    ) {
        if !budget.tick() {
            return;
        }
        if !out.is_empty() || current.len() > k {
            return;
        }
        match self
            .edges
            .iter()
            .filter(|e| e.is_disjoint(current))
            .min_by_key(|e| e.len())
        {
            None => {
                out.insert(current.clone());
            }
            Some(edge) => {
                if current.len() == k {
                    return;
                }
                let vertices: Vec<Tid> = edge.iter().copied().collect();
                for v in vertices {
                    current.insert(v);
                    self.min_enum_first(current, k, out, budget);
                    current.remove(&v);
                    if !out.is_empty() {
                        return;
                    }
                }
            }
        }
    }

    /// All **minimum** hitting sets (the C-repair deltas).
    pub fn minimum_hitting_sets(&self) -> Vec<BTreeSet<Tid>> {
        self.minimum_hitting_sets_budgeted(&Budget::unlimited())
            .into_value()
    }

    /// Budget-aware [`Self::minimum_hitting_sets`]. If the budget survives
    /// the size computation, every set in a truncated result has exactly
    /// the proven minimum size and hits every edge — a sound *subset* of
    /// the C-repair deltas. If the budget dies during the size computation
    /// itself, the minimum is unknown and the result is an empty truncated
    /// list (never a list of wrong-sized sets).
    pub fn minimum_hitting_sets_budgeted(&self, budget: &Budget) -> Outcome<Vec<BTreeSet<Tid>>> {
        let size = self.minimum_hitting_set_size_budgeted(budget);
        if budget.exhausted() {
            return budget.outcome_with(Vec::new(), 0);
        }
        self.minimum_hitting_sets_at(size.into_value(), budget)
    }

    /// Enumerate all hitting sets of the **known** minimum size `k`,
    /// skipping the branch-and-bound size proof entirely. This is the
    /// factorized path's enumeration step: a component's optimum is proven
    /// once and then passed here, instead of every call re-deriving its
    /// cost bound from scratch. `k` must be the exact minimum
    /// ([`Self::minimum_hitting_set_size`]); with a too-large `k` the
    /// defensive sub-`k` check still only emits genuine hitting sets, but
    /// the family is no longer the C-repair delta family.
    pub fn minimum_hitting_sets_at(
        &self,
        k: usize,
        budget: &Budget,
    ) -> Outcome<Vec<BTreeSet<Tid>>> {
        if budget.forces_sequential() || cqa_exec::threads() <= 1 || self.edges.len() < 2 {
            let mut out: BTreeSet<BTreeSet<Tid>> = BTreeSet::new();
            let mut current = BTreeSet::new();
            self.min_enum_rec(&mut current, k, &mut out, budget);
            let n = out.len() as u64;
            return budget.outcome_with(out.into_iter().collect(), n);
        }
        // Parallel enumeration at fixed budget `k`; each branch explores a
        // disjoint prefix, results merge into a set, so the output equals
        // the sequential enumeration exactly.
        let split = par_split_depth();
        let found = cqa_exec::run_queue(
            vec![BTreeSet::new()],
            |current: BTreeSet<Tid>, spawn, results: &mut Vec<BTreeSet<Tid>>| {
                if !budget.tick() {
                    return;
                }
                if current.len() > k {
                    return;
                }
                match self
                    .edges
                    .iter()
                    .filter(|e| e.is_disjoint(&current))
                    .min_by_key(|e| e.len())
                {
                    None => {
                        if current.len() == k
                            || (self.is_hitting_set(&current) && current.len() < k)
                        {
                            results.push(current);
                        }
                    }
                    Some(_) if current.len() >= split => {
                        let mut out = BTreeSet::new();
                        let mut cur = current;
                        self.min_enum_rec(&mut cur, k, &mut out, budget);
                        results.extend(out);
                    }
                    Some(edge) => {
                        if current.len() == k {
                            return; // size budget spent but edges uncovered
                        }
                        for &v in edge {
                            let mut child = current.clone();
                            child.insert(v);
                            spawn.push(child);
                        }
                    }
                }
            },
        );
        let out: BTreeSet<BTreeSet<Tid>> = found.into_iter().collect();
        let n = out.len() as u64;
        budget.outcome_with(out.into_iter().collect(), n)
    }

    fn min_enum_rec(
        &self,
        current: &mut BTreeSet<Tid>,
        k: usize,
        out: &mut BTreeSet<BTreeSet<Tid>>,
        budget: &Budget,
    ) {
        if !budget.tick() {
            return;
        }
        if current.len() > k {
            return;
        }
        match self
            .edges
            .iter()
            .filter(|e| e.is_disjoint(current))
            .min_by_key(|e| e.len())
        {
            None => {
                if current.len() == k {
                    out.insert(current.clone());
                    let _ = budget.charge_item();
                } else if self.is_hitting_set(current) && current.len() < k {
                    // can only happen when k was not tight; defensive
                    out.insert(current.clone());
                    let _ = budget.charge_item();
                }
            }
            Some(edge) => {
                if current.len() == k {
                    return; // size budget spent but edges uncovered
                }
                let vertices: Vec<Tid> = edge.iter().copied().collect();
                for v in vertices {
                    current.insert(v);
                    self.min_enum_rec(current, k, out, budget);
                    current.remove(&v);
                }
            }
        }
    }

    /// Enumerate all **maximal independent sets** — the S-repairs themselves
    /// (as sets of surviving tids).
    pub fn maximal_independent_sets(&self, limit: Option<usize>) -> Vec<BTreeSet<Tid>> {
        self.minimal_hitting_sets(limit)
            .into_iter()
            .map(|h| self.nodes.difference(&h).copied().collect())
            .collect()
    }

    /// Budget-aware [`Self::maximal_independent_sets`]; same soundness
    /// contract as [`Self::minimal_hitting_sets_budgeted`] (a truncated
    /// result is a subset of the true S-repair family).
    pub fn maximal_independent_sets_budgeted(
        &self,
        limit: Option<usize>,
        budget: &Budget,
    ) -> Outcome<Vec<BTreeSet<Tid>>> {
        self.minimal_hitting_sets_budgeted(limit, budget).map(|hs| {
            hs.into_iter()
                .map(|h| self.nodes.difference(&h).copied().collect())
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tids(ids: &[u64]) -> BTreeSet<Tid> {
        ids.iter().map(|&i| Tid(i)).collect()
    }

    /// The hyper-graph of Example 4.1 / Figure 1:
    /// nodes A(a)=1, B(a)=2, C(a)=3, D(a)=4, E(a)=5;
    /// edges {B,E}, {B,C,D}, {A,C}.
    fn figure_1() -> ConflictHypergraph {
        ConflictHypergraph::new(
            tids(&[1, 2, 3, 4, 5]),
            vec![tids(&[2, 5]), tids(&[2, 3, 4]), tids(&[1, 3])],
        )
    }

    #[test]
    fn figure_1_s_repairs() {
        let g = figure_1();
        let repairs = g.maximal_independent_sets(None);
        assert_eq!(repairs.len(), 4);
        // D1 = {B, C}, D2 = {C, D, E}, D3 = {A, B, D}, D4 = {E, D, A}.
        assert!(repairs.contains(&tids(&[2, 3])));
        assert!(repairs.contains(&tids(&[3, 4, 5])));
        assert!(repairs.contains(&tids(&[1, 2, 4])));
        assert!(repairs.contains(&tids(&[1, 4, 5])));
    }

    #[test]
    fn figure_1_c_repairs() {
        let g = figure_1();
        assert_eq!(g.minimum_hitting_set_size(), 2);
        let mins = g.minimum_hitting_sets();
        // C-repairs are D2, D3, D4 (deleting 2 tuples); D1 deletes 3.
        assert_eq!(mins.len(), 3);
        let crepairs: Vec<BTreeSet<Tid>> = mins
            .iter()
            .map(|h| g.nodes.difference(h).copied().collect())
            .collect();
        assert!(crepairs.contains(&tids(&[3, 4, 5])));
        assert!(crepairs.contains(&tids(&[1, 2, 4])));
        assert!(crepairs.contains(&tids(&[1, 4, 5])));
        assert!(!crepairs.contains(&tids(&[2, 3])));
    }

    #[test]
    fn superset_edges_are_dropped() {
        let g = ConflictHypergraph::new(
            tids(&[1, 2, 3]),
            vec![tids(&[1, 2]), tids(&[1, 2, 3]), tids(&[1, 2])],
        );
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn isolated_nodes_form_consistent_core() {
        let g = figure_1();
        assert!(g.isolated_nodes().is_empty());
        let g2 = ConflictHypergraph::new(tids(&[1, 2, 3]), vec![tids(&[1, 2])]);
        assert_eq!(g2.isolated_nodes(), tids(&[3]));
    }

    #[test]
    fn no_edges_means_one_empty_hitting_set() {
        let g = ConflictHypergraph::new(tids(&[1, 2]), vec![]);
        let hs = g.minimal_hitting_sets(None);
        assert_eq!(hs, vec![BTreeSet::new()]);
        assert_eq!(g.minimum_hitting_set_size(), 0);
        assert_eq!(g.maximal_independent_sets(None), vec![tids(&[1, 2])]);
    }

    #[test]
    fn greedy_is_hitting_and_minimal() {
        let g = figure_1();
        let h = g.greedy_hitting_set();
        assert!(g.is_hitting_set(&h));
        assert!(g.is_minimal_hitting_set(&h));
    }

    #[test]
    fn limit_caps_enumeration() {
        let g = figure_1();
        let some = g.minimal_hitting_sets(Some(2));
        assert_eq!(some.len(), 2);
    }

    #[test]
    fn independent_set_check() {
        let g = figure_1();
        assert!(g.is_independent(&tids(&[2, 3])));
        assert!(!g.is_independent(&tids(&[2, 5])));
    }

    #[test]
    fn exponential_family_counts() {
        // k disjoint 2-edges → 2^k minimal hitting sets, min size k.
        let k = 8;
        let mut edges = Vec::new();
        for i in 0..k {
            edges.push(tids(&[2 * i, 2 * i + 1]));
        }
        let nodes: BTreeSet<Tid> = (0..2 * k).map(Tid).collect();
        let g = ConflictHypergraph::new(nodes, edges);
        assert_eq!(g.minimal_hitting_sets(None).len(), 1 << k);
        assert_eq!(g.minimum_hitting_set_size(), k as usize);
        assert_eq!(g.minimum_hitting_sets().len(), 1 << k);
    }

    #[test]
    fn budgeted_enumeration_exact_with_ample_budget() {
        let g = figure_1();
        let exact = g.minimal_hitting_sets(None);
        let out = g.minimal_hitting_sets_budgeted(None, &Budget::steps(100_000));
        assert!(out.is_exact());
        assert_eq!(out.into_value(), exact);
        let mins = g.minimum_hitting_sets_budgeted(&Budget::steps(100_000));
        assert!(mins.is_exact());
        assert_eq!(mins.into_value(), g.minimum_hitting_sets());
    }

    #[test]
    fn budgeted_enumeration_truncates_to_a_sound_subset() {
        // k disjoint 2-edges → 2^k minimal hitting sets; a tiny step budget
        // must return a strict subset of genuinely minimal sets.
        let k = 10;
        let edges: Vec<BTreeSet<Tid>> = (0..k).map(|i| tids(&[2 * i, 2 * i + 1])).collect();
        let nodes: BTreeSet<Tid> = (0..2 * k).map(Tid).collect();
        let g = ConflictHypergraph::new(nodes, edges);
        let budget = Budget::steps(200);
        let out = g.minimal_hitting_sets_budgeted(None, &budget);
        assert!(out.is_truncated());
        let found = out.into_value();
        assert!(found.len() < 1 << k);
        for h in &found {
            assert!(g.is_minimal_hitting_set(h), "truncated set not minimal");
        }
    }

    #[test]
    fn budgeted_truncation_is_deterministic_across_thread_counts() {
        let k = 10;
        let edges: Vec<BTreeSet<Tid>> = (0..k).map(|i| tids(&[2 * i, 2 * i + 1])).collect();
        let nodes: BTreeSet<Tid> = (0..2 * k).map(Tid).collect();
        let g = ConflictHypergraph::new(nodes, edges);
        let run = |t: usize| {
            cqa_exec::with_threads(t, || {
                g.minimal_hitting_sets_budgeted(None, &Budget::steps(300))
            })
        };
        let base = run(1);
        for t in [2, 8] {
            assert_eq!(run(t), base, "threads={t}");
        }
    }

    #[test]
    fn item_cap_limits_emitted_sets() {
        let g = figure_1();
        let budget = Budget::items(2);
        let out = g.minimal_hitting_sets_budgeted(None, &budget);
        assert!(out.is_truncated());
        assert_eq!(out.value().len(), 2);
        for h in out.value() {
            assert!(g.is_minimal_hitting_set(h));
        }
    }

    #[test]
    fn truncated_minimum_witness_is_still_a_hitting_set() {
        let g = figure_1();
        let budget = Budget::steps(1);
        let out = g.minimum_hitting_set_budgeted(&budget);
        assert!(out.is_truncated());
        assert!(g.is_hitting_set(out.value()));
    }

    #[test]
    fn truncated_size_search_yields_empty_minimum_family() {
        let g = figure_1();
        let budget = Budget::steps(1);
        let out = g.minimum_hitting_sets_budgeted(&budget);
        assert!(out.is_truncated());
        assert!(out.value().is_empty());
    }

    #[test]
    fn seeded_size_search_reports_the_same_minimum() {
        // Regression for the factorized path: seeding the branch-and-bound
        // with a known optimum (or any valid hitting-set size) must never
        // change the reported minimum.
        let g = figure_1();
        let unseeded = g.minimum_hitting_set_size();
        assert_eq!(unseeded, 2);
        let b = Budget::unlimited();
        for seed in [None, Some(unseeded), Some(unseeded + 1), Some(5)] {
            assert_eq!(
                g.minimum_hitting_set_size_seeded(seed, &b).into_value(),
                unseeded,
                "seed={seed:?}"
            );
        }
        let k = 6;
        let edges: Vec<BTreeSet<Tid>> = (0..k).map(|i| tids(&[2 * i, 2 * i + 1])).collect();
        let g2 = ConflictHypergraph::new((0..2 * k).map(Tid).collect(), edges);
        let min = g2.minimum_hitting_set_size();
        assert_eq!(
            g2.minimum_hitting_set_size_seeded(Some(min), &b)
                .into_value(),
            min
        );
    }

    #[test]
    fn enumeration_at_known_size_matches_full_search() {
        let g = figure_1();
        let k = g.minimum_hitting_set_size();
        let direct = g
            .minimum_hitting_sets_at(k, &Budget::unlimited())
            .into_value();
        assert_eq!(direct, g.minimum_hitting_sets());
    }

    #[test]
    fn components_are_cached_and_shared_by_clones() {
        let g = figure_1();
        let first = g.components();
        assert!(std::sync::Arc::ptr_eq(&first, &g.components()));
        let clone = g.clone();
        assert!(std::sync::Arc::ptr_eq(&first, &clone.components()));
        // Derived state stays out of equality and debug formatting.
        let fresh = figure_1();
        assert_eq!(g, fresh);
        assert_eq!(format!("{g:?}"), format!("{fresh:?}"));
    }

    #[test]
    fn apply_delta_maintains_components_identically() {
        // Drive a mixed add/remove sequence over raw violation sets
        // (including duplicates and supersets, which canonicalization must
        // absorb) and check the maintained graph + factorization stay
        // byte-identical to recompute-from-scratch at every step.
        let nodes: BTreeSet<Tid> = (1..=20).map(Tid).collect();
        let mut raw: BTreeSet<BTreeSet<Tid>> = [
            tids(&[1, 2]),
            tids(&[3, 4, 5]),
            tids(&[5, 6]),
            tids(&[10, 11]),
            tids(&[1, 2, 9]), // superset: filtered out by canonicalization
        ]
        .into();
        let mut graph = ConflictHypergraph::new(nodes.clone(), raw.iter().cloned());
        let _ = graph.components(); // prime the cache so deltas maintain it
        let steps: Vec<(bool, BTreeSet<Tid>)> = vec![
            (true, tids(&[6, 10])),      // merge two components
            (false, tids(&[6, 10])),     // split them again
            (true, tids(&[2, 3])),       // merge
            (true, tids(&[18, 19, 20])), // brand-new component
            (false, tids(&[10, 11])),    // remove a whole component
            (true, tids(&[9])),          // singleton edge dominates {1,2,9}
            (false, tids(&[1, 2])),      // shrink
            (false, tids(&[3, 4, 5])),   // shrink more
        ];
        for (add, edge) in steps {
            if add {
                raw.insert(edge);
            } else {
                raw.remove(&edge);
            }
            let maintained = graph.apply_delta(nodes.clone(), raw.iter().cloned());
            let scratch = ConflictHypergraph::new(nodes.clone(), raw.iter().cloned());
            assert_eq!(maintained, scratch);
            // The maintained cache was pre-filled by the delta…
            assert!(maintained.components.get().is_some());
            // …and is structurally identical to a from-scratch compute.
            assert_eq!(*maintained.components(), *scratch.components());
            graph = maintained;
        }
        // Without a primed cache, apply_delta stays lazy.
        let lazy = ConflictHypergraph::new(nodes.clone(), raw.iter().cloned());
        let next = lazy.apply_delta(nodes, raw.iter().cloned());
        assert!(next.components.get().is_none());
    }

    #[test]
    fn minimality_filter_rejects_redundant_sets() {
        // Edge {1,2} and {2,3}: {1,2,3} hits both but is not minimal.
        let g = ConflictHypergraph::new(tids(&[1, 2, 3]), vec![tids(&[1, 2]), tids(&[2, 3])]);
        let hs = g.minimal_hitting_sets(None);
        assert!(hs.contains(&tids(&[2])));
        assert!(hs.contains(&tids(&[1, 3])));
        assert_eq!(hs.len(), 2);
        assert!(!g.is_minimal_hitting_set(&tids(&[1, 2, 3])));
    }
}
