//! Inclusion dependencies and tuple-generating dependencies (tgds).
//!
//! The paper's two running forms are both here:
//!
//! * `ID: ∀x y z (Supply(x, y, z) → Articles(z))` — a *full* tgd (Ex. 2.1):
//!   every head variable occurs in the body, so the missing head tuple is
//!   fully determined.
//! * `ID′: ∀x y z (Supply(x, y, z) → ∃v Articles(z, v))` — an *existential*
//!   tgd (Ex. 4.3): head repairs must invent a value, canonically `NULL`.

use cqa_query::{
    eval::for_each_witness, match_atom, parse_query, Atom, Bindings, ConjunctiveQuery,
    NullSemantics, Term, Var, VarTable,
};
use cqa_relation::{Database, Facts, RelationError, Tid, Tuple, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A tuple-generating dependency `∀x̄ (body → ∃z̄ head)` with a single head
/// atom. Head variables not occurring in the body are existential.
#[derive(Debug, Clone, PartialEq)]
pub struct Tgd {
    /// Optional name used in reports.
    pub name: String,
    /// Body atoms (conjunctive, with optional comparisons via `body_cq`).
    body: ConjunctiveQuery,
    /// Head atom.
    head: Atom,
}

/// One unsatisfied body match of a tgd.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TgdViolation {
    /// Tids of the matched body atoms.
    pub body_tids: BTreeSet<Tid>,
    /// The head tuple demanded by this match: concrete values at positions
    /// bound by the body, `None` at existential positions.
    pub required_head: Vec<Option<Value>>,
    /// Head relation name.
    pub head_relation: String,
}

impl TgdViolation {
    /// The head tuple with existential positions filled by plain `NULL`
    /// (the null-based repair of §4.2).
    pub fn head_with_nulls(&self) -> Tuple {
        Tuple::new(
            self.required_head
                .iter()
                .map(|v| v.clone().unwrap_or(Value::NULL)),
        )
    }

    /// A fully determined head tuple, if the tgd is full.
    pub fn head_if_full(&self) -> Option<Tuple> {
        self.required_head
            .iter()
            .cloned()
            .collect::<Option<Vec<_>>>()
            .map(Tuple::new)
    }
}

impl Tgd {
    /// Build from a body CQ (head ignored) and a head atom.
    pub fn new(
        name: impl Into<String>,
        body: ConjunctiveQuery,
        head: Atom,
    ) -> Result<Tgd, RelationError> {
        body.check_safety().map_err(RelationError::Parse)?;
        Ok(Tgd {
            name: name.into(),
            body,
            head,
        })
    }

    /// Parse from rule syntax with the head on the left:
    /// `Tgd::parse("ID", "Articles(z) :- Supply(x, y, z)")`.
    ///
    /// Head variables absent from the body become existential:
    /// `Tgd::parse("ID'", "Articles(z, v) :- Supply(x, y, z)")`.
    pub fn parse(name: impl Into<String>, rule: &str) -> Result<Tgd, RelationError> {
        let Some((head_txt, body_txt)) = rule.split_once(":-") else {
            return Err(RelationError::Parse("tgd must contain `:-`".into()));
        };
        // Reuse the query parser: parse `H(args) :- body` as one rule but
        // allow head variables that do not occur in the body (existentials),
        // which `parse_query` would reject. So parse body alone first.
        let body = parse_query(&format!("Q() :- {}", body_txt.trim()))?;
        // Parse the head atom in the *same* variable namespace by parsing
        // "Q() :- Head(...)" with a pre-seeded parser; simplest is to parse
        // the full rule without safety and merge variables by name.
        let full = parse_query_unchecked(&format!("{} :- {}", head_txt.trim(), body_txt.trim()))?;
        let _ = body;
        let head_atom = Atom::new(
            head_txt.trim().split('(').next().unwrap_or("").trim(),
            full.head.clone(),
        );
        Tgd::new(
            name,
            ConjunctiveQuery {
                head: Vec::new(),
                ..full
            },
            head_atom,
        )
    }

    /// The body as a Boolean CQ.
    pub fn body(&self) -> &ConjunctiveQuery {
        &self.body
    }

    /// The head atom.
    pub fn head(&self) -> &Atom {
        &self.head
    }

    /// Variable names.
    pub fn vars(&self) -> &VarTable {
        &self.body.vars
    }

    /// Existential head variables (not bound by the body).
    pub fn existential_vars(&self) -> Vec<Var> {
        let bound = self.body.positive_vars();
        self.head
            .vars()
            .filter(|v| !bound.contains(v))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    }

    /// Is the tgd *full* (no existential variables)?
    pub fn is_full(&self) -> bool {
        self.existential_vars().is_empty()
    }

    /// Check whether a given body binding has a matching head tuple.
    fn head_satisfied<F: Facts + ?Sized>(&self, facts: &F, bindings: &Bindings) -> bool {
        let mut scratch = bindings.clone();
        for (_, t) in facts.facts_in(&self.head.relation) {
            if let Some(newly) = match_atom(&self.head, t, &mut scratch, NullSemantics::Structural)
            {
                for v in newly {
                    scratch.unset(v);
                }
                return true;
            }
        }
        false
    }

    /// Is the tgd satisfied by the visible facts?
    pub fn is_satisfied<F: Facts + ?Sized>(&self, facts: &F) -> bool {
        self.violations(facts).is_empty()
    }

    /// All violations: body matches with no corresponding head tuple.
    pub fn violations<F: Facts + ?Sized>(&self, facts: &F) -> Vec<TgdViolation> {
        let mut out = Vec::new();
        let mut seen: BTreeSet<(BTreeSet<Tid>, Vec<Option<Value>>)> = BTreeSet::new();
        for_each_witness(facts, &self.body, NullSemantics::Structural, &mut |w| {
            if !self.head_satisfied(facts, &w.bindings) {
                let required: Vec<Option<Value>> = self
                    .head
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => Some(c.clone()),
                        Term::Var(v) => w.bindings.get(*v).cloned(),
                    })
                    .collect();
                let tids: BTreeSet<Tid> = w.tids.iter().copied().collect();
                if seen.insert((tids.clone(), required.clone())) {
                    out.push(TgdViolation {
                        body_tids: tids,
                        required_head: required,
                        head_relation: self.head.relation.clone(),
                    });
                }
            }
            true
        });
        out
    }
}

/// Parse a rule allowing unsafe head variables (internal helper for tgds).
fn parse_query_unchecked(rule: &str) -> Result<ConjunctiveQuery, RelationError> {
    // `parse_query` enforces safety, which existential tgd heads violate; we
    // re-lex here via a tiny wrapper: temporarily append the head vars as a
    // dummy positive atom, parse, then strip it.
    let Some((head_txt, body_txt)) = rule.split_once(":-") else {
        return Err(RelationError::Parse("expected `:-`".into()));
    };
    let head_args = head_txt
        .trim()
        .trim_end_matches(')')
        .split_once('(')
        .map(|(_, a)| a)
        .unwrap_or("");
    let dummy = format!(
        "Q({head_args}) :- {}, ZZdummyZZ({head_args})",
        body_txt.trim()
    );
    let mut q = parse_query(&dummy)?;
    q.atoms.retain(|a| a.relation != "ZZdummyZZ");
    Ok(q)
}

/// A unary/projected inclusion dependency `R[X] ⊆ S[Y]` by attribute names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InclusionDependency {
    /// Source relation.
    pub from_relation: String,
    /// Source attribute names.
    pub from_attrs: Vec<String>,
    /// Target relation.
    pub to_relation: String,
    /// Target attribute names.
    pub to_attrs: Vec<String>,
}

impl InclusionDependency {
    /// Build `from[from_attrs] ⊆ to[to_attrs]`.
    pub fn new<S: Into<String>>(
        from_relation: impl Into<String>,
        from_attrs: impl IntoIterator<Item = S>,
        to_relation: impl Into<String>,
        to_attrs: impl IntoIterator<Item = S>,
    ) -> InclusionDependency {
        InclusionDependency {
            from_relation: from_relation.into(),
            from_attrs: from_attrs.into_iter().map(Into::into).collect(),
            to_relation: to_relation.into(),
            to_attrs: to_attrs.into_iter().map(Into::into).collect(),
        }
    }

    /// Compile to a [`Tgd`] against the database's schemas. Target attributes
    /// not in `to_attrs` become existential variables.
    pub fn to_tgd(&self, db: &Database) -> Result<Tgd, RelationError> {
        let from = db.require_relation(&self.from_relation)?.schema().clone();
        let to = db.require_relation(&self.to_relation)?.schema().clone();
        let from_pos = from.positions_of(self.from_attrs.iter().map(String::as_str))?;
        let to_pos = to.positions_of(self.to_attrs.iter().map(String::as_str))?;
        if from_pos.len() != to_pos.len() {
            return Err(RelationError::Parse(format!(
                "inclusion dependency {self}: attribute lists differ in length"
            )));
        }
        let mut vars = VarTable::new();
        let body_terms: Vec<Term> = (0..from.arity())
            .map(|i| Term::Var(vars.var(format!("x{i}"))))
            .collect();
        let head_terms: Vec<Term> = (0..to.arity())
            .map(|i| {
                if let Some(k) = to_pos.iter().position(|&p| p == i) {
                    body_terms[from_pos[k]].clone()
                } else {
                    Term::Var(vars.var(format!("e{i}")))
                }
            })
            .collect();
        let body = ConjunctiveQuery {
            vars,
            head: Vec::new(),
            atoms: vec![Atom::new(self.from_relation.clone(), body_terms)],
            negated: Vec::new(),
            comparisons: Vec::new(),
        };
        Tgd::new(
            format!("{self}"),
            body,
            Atom::new(self.to_relation.clone(), head_terms),
        )
    }
}

impl fmt::Display for InclusionDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] <= {}[{}]",
            self.from_relation,
            self.from_attrs.join(", "),
            self.to_relation,
            self.to_attrs.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relation::{tuple, Database, RelationSchema};

    /// The instance of Example 2.1.
    pub(crate) fn supply_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "Supply",
            ["Company", "Receiver", "Item"],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new("Articles", ["Item"]))
            .unwrap();
        db.insert("Supply", tuple!["C1", "R1", "I1"]).unwrap();
        db.insert("Supply", tuple!["C2", "R2", "I2"]).unwrap();
        db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
        db.insert("Articles", tuple!["I1"]).unwrap();
        db.insert("Articles", tuple!["I2"]).unwrap();
        db
    }

    #[test]
    fn example_2_1_id_is_violated() {
        let db = supply_db();
        let id = Tgd::parse("ID", "Articles(z) :- Supply(x, y, z)").unwrap();
        assert!(id.is_full());
        assert!(!id.is_satisfied(&db));
        let viols = id.violations(&db);
        assert_eq!(viols.len(), 1);
        assert_eq!(viols[0].body_tids, [Tid(3)].into());
        assert_eq!(viols[0].head_if_full(), Some(tuple!["I3"]));
    }

    #[test]
    fn example_4_3_existential_tgd() {
        // Articles now has a Cost column; ID′ demands ∃v Articles(z, v).
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "Supply",
            ["Company", "Receiver", "Item"],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new("Articles", ["Item", "Cost"]))
            .unwrap();
        db.insert("Supply", tuple!["C1", "R1", "I1"]).unwrap();
        db.insert("Supply", tuple!["C2", "R2", "I2"]).unwrap();
        db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
        db.insert("Articles", tuple!["I1", 50]).unwrap();
        db.insert("Articles", tuple!["I2", 30]).unwrap();
        let idp = Tgd::parse("ID'", "Articles(z, v) :- Supply(x, y, z)").unwrap();
        assert!(!idp.is_full());
        assert_eq!(idp.existential_vars().len(), 1);
        let viols = idp.violations(&db);
        assert_eq!(viols.len(), 1);
        assert_eq!(viols[0].head_if_full(), None);
        assert_eq!(
            viols[0].head_with_nulls(),
            cqa_relation::Tuple::new(vec![Value::str("I3"), Value::NULL])
        );
    }

    #[test]
    fn satisfied_after_insertion() {
        let mut db = supply_db();
        db.insert("Articles", tuple!["I3"]).unwrap();
        let id = Tgd::parse("ID", "Articles(z) :- Supply(x, y, z)").unwrap();
        assert!(id.is_satisfied(&db));
    }

    #[test]
    fn satisfied_after_deletion() {
        let mut db = supply_db();
        db.delete(Tid(3)).unwrap();
        let id = Tgd::parse("ID", "Articles(z) :- Supply(x, y, z)").unwrap();
        assert!(id.is_satisfied(&db));
    }

    #[test]
    fn inclusion_dependency_sugar_compiles() {
        let db = supply_db();
        let ind = InclusionDependency::new("Supply", ["Item"], "Articles", ["Item"]);
        let tgd = ind.to_tgd(&db).unwrap();
        assert!(tgd.is_full());
        assert!(!tgd.is_satisfied(&db));
        assert_eq!(tgd.violations(&db).len(), 1);
    }

    #[test]
    fn ind_with_existential_target_positions() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "Supply",
            ["Company", "Receiver", "Item"],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new("Articles", ["Item", "Cost"]))
            .unwrap();
        db.insert("Supply", tuple!["C1", "R1", "I1"]).unwrap();
        let ind = InclusionDependency::new("Supply", ["Item"], "Articles", ["Item"]);
        let tgd = ind.to_tgd(&db).unwrap();
        assert!(!tgd.is_full());
        assert_eq!(tgd.violations(&db).len(), 1);
    }

    #[test]
    fn multi_atom_body_tgd() {
        // Every supplied official article must have a cost entry:
        // Cost(z) required when Supply(...z) and Articles(z) both hold.
        let mut db = supply_db();
        db.create_relation(RelationSchema::new("Cost", ["Item"]))
            .unwrap();
        let tgd = Tgd::parse("C", "Cost(z) :- Supply(x, y, z), Articles(z)").unwrap();
        let viols = tgd.violations(&db);
        assert_eq!(viols.len(), 2); // I1 and I2
        db.insert("Cost", tuple!["I1"]).unwrap();
        db.insert("Cost", tuple!["I2"]).unwrap();
        assert!(tgd.is_satisfied(&db));
    }

    #[test]
    fn mismatched_attr_lists_rejected() {
        let db = supply_db();
        let ind = InclusionDependency::new("Supply", ["Item", "Company"], "Articles", ["Item"]);
        assert!(ind.to_tgd(&db).is_err());
    }
}
