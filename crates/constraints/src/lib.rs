#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Untrusted input must never panic the process: unwraps/expects are banned
// outside tests (allow-listed per site where an invariant is locally proven).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # cqa-constraints
//!
//! Integrity constraints for the `inconsistent-db` workspace: denial
//! constraints, functional dependencies, key constraints, conditional
//! functional dependencies (§6), and inclusion dependencies / tgds (§2, §4.2)
//! — plus violation detection and the conflict hyper-graph of §4.1.
//!
//! Everything in the *denial class* (DCs, FDs, keys, CFDs) compiles down to
//! [`DenialConstraint`]s, whose violations are sets of jointly inconsistent
//! tuples; those sets are the hyper-edges of [`ConflictHypergraph`], on which
//! the repair algorithms of `cqa-core` operate. Tgds are kept separate
//! because their violations can be fixed by insertions, not only deletions.

pub mod cfd;
pub mod components;
pub mod constraint;
pub mod denial;
pub mod fd;
pub mod hypergraph;
pub mod ind;
pub mod parser;

pub use cfd::{CfdLhs, ConditionalFd, Pattern};
pub use components::{ComponentGraph, ConflictComponents, FactoredFamilies};
pub use constraint::{Constraint, ConstraintSet};
pub use denial::DenialConstraint;
pub use fd::{FunctionalDependency, KeyConstraint};
pub use hypergraph::ConflictHypergraph;
pub use ind::{InclusionDependency, Tgd, TgdViolation};
pub use parser::parse_constraints;
