//! A line-based text format for constraint sets (Σ files).
//!
//! ```text
//! # comments and blank lines are ignored
//! key Employee(Name)
//! key Orders(Id, Line)
//! fd  Employee: Name -> Salary
//! fd  Cust: CC, AC -> City
//! dc  S(x), R(x, y), S(y)
//! tgd Articles(z) :- Supply(x, y, z)
//! cfd Cust: CC=44, Zip -> Street
//! cfd Cust: CC=44 -> City=EDI
//! ```
//!
//! Values on the right of `=` in CFDs parse like query constants: numbers,
//! quoted strings, or bare uppercase-initial identifiers.

use crate::cfd::ConditionalFd;
use crate::constraint::{Constraint, ConstraintSet};
use crate::denial::DenialConstraint;
use crate::fd::{FunctionalDependency, KeyConstraint};
use crate::ind::Tgd;
use cqa_relation::{RelationError, Value};

fn err(lineno: usize, msg: impl Into<String>) -> RelationError {
    RelationError::Parse(format!("line {lineno}: {}", msg.into()))
}

/// Parse a Σ file into a [`ConstraintSet`].
pub fn parse_constraints(input: &str) -> Result<ConstraintSet, RelationError> {
    let mut sigma = ConstraintSet::new();
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (kind, rest) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| err(lineno, "expected `<kind> <spec>`"))?;
        let rest = rest.trim();
        let c: Constraint = match kind {
            "key" => parse_key(rest).map_err(|m| err(lineno, m))?.into(),
            "fd" => parse_fd(rest).map_err(|m| err(lineno, m))?.into(),
            "dc" => DenialConstraint::parse(format!("dc{lineno}"), rest)
                .map_err(|e| err(lineno, e.to_string()))?
                .into(),
            "tgd" | "ind" => Tgd::parse(format!("tgd{lineno}"), rest)
                .map_err(|e| err(lineno, e.to_string()))?
                .into(),
            "cfd" => parse_cfd(rest).map_err(|m| err(lineno, m))?.into(),
            other => return Err(err(lineno, format!("unknown constraint kind `{other}`"))),
        };
        sigma.push(c);
    }
    Ok(sigma)
}

fn parse_key(spec: &str) -> Result<KeyConstraint, String> {
    // `Relation(Attr, Attr, …)`
    let (rel, rest) = spec.split_once('(').ok_or("expected `Relation(attrs…)`")?;
    let attrs: Vec<String> = rest
        .trim_end_matches(')')
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    if attrs.is_empty() {
        return Err("key needs at least one attribute".into());
    }
    Ok(KeyConstraint::new(rel.trim(), attrs))
}

fn parse_fd(spec: &str) -> Result<FunctionalDependency, String> {
    // `Relation: A, B -> C, D`
    let (rel, rest) = spec
        .split_once(':')
        .ok_or("expected `Relation: lhs -> rhs`")?;
    let (lhs, rhs) = rest.split_once("->").ok_or("expected `lhs -> rhs`")?;
    let split = |s: &str| -> Vec<String> {
        s.split(',')
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect()
    };
    let (lhs, rhs) = (split(lhs), split(rhs));
    if lhs.is_empty() || rhs.is_empty() {
        return Err("FD sides may not be empty".into());
    }
    Ok(FunctionalDependency::new(rel.trim(), lhs, rhs))
}

fn parse_cfd(spec: &str) -> Result<ConditionalFd, String> {
    // `Relation: A=1, B -> C` or `Relation: A=1 -> C=x`
    let (rel, rest) = spec
        .split_once(':')
        .ok_or("expected `Relation: lhs -> rhs`")?;
    let (lhs_txt, rhs_txt) = rest.split_once("->").ok_or("expected `lhs -> rhs`")?;
    let mut lhs: Vec<(&str, Option<Value>)> = Vec::new();
    let mut lhs_storage: Vec<(String, Option<Value>)> = Vec::new();
    for part in lhs_txt.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match part.split_once('=') {
            Some((attr, val)) => {
                lhs_storage.push((attr.trim().to_string(), Some(parse_value(val.trim())?)));
            }
            None => lhs_storage.push((part.to_string(), None)),
        }
    }
    if lhs_storage.is_empty() {
        return Err("CFD LHS may not be empty".into());
    }
    for (a, v) in &lhs_storage {
        lhs.push((a.as_str(), v.clone()));
    }
    let rhs_txt = rhs_txt.trim();
    let (rhs_attr, rhs_pattern) = match rhs_txt.split_once('=') {
        Some((attr, val)) => (attr.trim(), Some(parse_value(val.trim())?)),
        None => (rhs_txt, None),
    };
    if rhs_attr.is_empty() {
        return Err("CFD RHS attribute missing".into());
    }
    Ok(ConditionalFd::new(rel.trim(), lhs, rhs_attr, rhs_pattern))
}

fn parse_value(text: &str) -> Result<Value, String> {
    if text.is_empty() {
        return Err("empty value".into());
    }
    if let Some(stripped) = text.strip_prefix('\'') {
        return Ok(Value::str(stripped.trim_end_matches('\'')));
    }
    if text == "NULL" {
        return Ok(Value::NULL);
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Ok(i) = text.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = text.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Ok(Value::str(text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_kinds() {
        let sigma = parse_constraints(
            "# payroll\n\
             key Employee(Name)\n\
             fd  Cust: CC, AC -> City\n\
             dc  S(x), R(x, y), S(y)\n\
             tgd Articles(z) :- Supply(x, y, z)\n\
             cfd Cust: CC=44, Zip -> Street\n\
             cfd Cust: CC=44 -> City=EDI\n",
        )
        .unwrap();
        assert_eq!(sigma.len(), 6);
        assert!(matches!(sigma.constraints[0], Constraint::Key(_)));
        assert!(matches!(sigma.constraints[1], Constraint::Fd(_)));
        assert!(matches!(sigma.constraints[2], Constraint::Denial(_)));
        assert!(matches!(sigma.constraints[3], Constraint::Tgd(_)));
        assert!(matches!(sigma.constraints[4], Constraint::Cfd(_)));
        assert!(matches!(sigma.constraints[5], Constraint::Cfd(_)));
    }

    #[test]
    fn key_and_fd_details() {
        let sigma = parse_constraints("key Orders(Id, Line)\nfd T: A -> B, C").unwrap();
        let Constraint::Key(k) = &sigma.constraints[0] else {
            panic!()
        };
        assert_eq!(k.key, vec!["Id", "Line"]);
        let Constraint::Fd(fd) = &sigma.constraints[1] else {
            panic!()
        };
        assert_eq!(fd.lhs, vec!["A"]);
        assert_eq!(fd.rhs, vec!["B", "C"]);
    }

    #[test]
    fn cfd_values_parse_typed() {
        let sigma = parse_constraints("cfd T: A=44, B='x y' -> C=2.5").unwrap();
        let Constraint::Cfd(cfd) = &sigma.constraints[0] else {
            panic!()
        };
        assert_eq!(cfd.lhs.len(), 2);
        assert_eq!(
            cfd.lhs[0].pattern,
            crate::cfd::Pattern::Const(Value::int(44))
        );
        assert_eq!(
            cfd.lhs[1].pattern,
            crate::cfd::Pattern::Const(Value::str("x y"))
        );
        assert_eq!(
            cfd.rhs_pattern,
            crate::cfd::Pattern::Const(Value::Float(2.5))
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_constraints("key Employee(Name)\nwhat T: A -> B").unwrap_err();
        assert!(e.to_string().contains("line 2"));
        let e2 = parse_constraints("fd T A -> B").unwrap_err();
        assert!(e2.to_string().contains("line 1"));
        assert!(parse_constraints("key T()").is_err());
    }

    #[test]
    fn round_trips_through_satisfaction() {
        use cqa_relation::{tuple, Database, RelationSchema};
        let sigma = parse_constraints("key T(K)\ncfd T: K=1 -> V=10").unwrap();
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        db.insert("T", tuple![1, 10]).unwrap();
        assert!(sigma.is_satisfied(&db).unwrap());
        db.insert("T", tuple![1, 20]).unwrap();
        assert!(!sigma.is_satisfied(&db).unwrap());
    }
}
