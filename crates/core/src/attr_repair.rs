//! Attribute-based repairs via `NULL` (§4.3 of the paper).
//!
//! Repair actions replace individual attribute values by the SQL `NULL`
//! (which never satisfies a join or comparison). For denial constraints this
//! is monotone: nullifying a cell can destroy violation witnesses but never
//! create one, so the minimal change sets are exactly the minimal hitting
//! sets over the *relevant cells* of each violation witness — the cells whose
//! value the witness actually uses (constants matched, join variables,
//! comparison variables).

use cqa_constraints::{ConstraintSet, DenialConstraint};
use cqa_query::{eval::for_each_witness, NullSemantics, Term, Var};
use cqa_relation::{Database, RelationError, Tid};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One attribute-level change: set `tid`'s attribute at `position` to NULL.
///
/// Rendered `ι6\[1\]` — following the paper, displayed positions are 1-based
/// ("the tids use position 0").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellChange {
    /// The tuple changed.
    pub tid: Tid,
    /// 0-based attribute position within the tuple.
    pub position: usize,
}

impl fmt::Display for CellChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.tid, self.position + 1)
    }
}

/// An attribute-based repair: the set of cells nulled, and the repaired
/// instance (same tids, updated tuples).
#[derive(Debug, Clone)]
pub struct AttributeRepair {
    /// The minimal set of changes.
    pub changes: BTreeSet<CellChange>,
    /// The repaired instance.
    pub db: Database,
}

impl AttributeRepair {
    fn apply(
        original: &Database,
        changes: &BTreeSet<CellChange>,
    ) -> Result<Database, RelationError> {
        let mut db = original.clone();
        for c in changes {
            // Fresh *labelled* nulls keep nulled tuples structurally distinct
            // (two tuples nulled into the same shape must not collapse — the
            // paper's repairs are tid-preserving). SQL-semantics evaluation
            // is label-blind, so constraint checking is unaffected.
            let null = db.fresh_null();
            db.update_value(c.tid, c.position, null)?;
        }
        Ok(db)
    }
}

impl fmt::Display for AttributeRepair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attribute repair {{")?;
        for (i, c) in self.changes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

/// For one denial constraint, compute each violation witness's *relevant
/// cells*: nulling any one of them falsifies that witness.
fn witness_cell_sets(db: &Database, dc: &DenialConstraint) -> Vec<BTreeSet<CellChange>> {
    let body = dc.body();
    // A variable is "join-relevant" if it occurs at ≥ 2 atom positions or in
    // any comparison; a constant position is always relevant.
    let mut var_occurrences: BTreeMap<Var, usize> = BTreeMap::new();
    for atom in &body.atoms {
        for v in atom.vars() {
            *var_occurrences.entry(v).or_default() += 1;
        }
    }
    let cmp_vars: BTreeSet<Var> = body.comparisons.iter().flat_map(|c| c.vars()).collect();
    let relevant = |term: &Term| -> bool {
        match term {
            Term::Const(_) => true,
            Term::Var(v) => {
                var_occurrences.get(v).copied().unwrap_or(0) >= 2 || cmp_vars.contains(v)
            }
        }
    };

    let mut out = Vec::new();
    for_each_witness(db, body, NullSemantics::Sql, &mut |w| {
        let mut cells = BTreeSet::new();
        for (atom, &tid) in body.atoms.iter().zip(&w.tids) {
            for (pos, term) in atom.terms.iter().enumerate() {
                if relevant(term) {
                    cells.insert(CellChange { tid, position: pos });
                }
            }
        }
        if cells.is_empty() {
            // A witness with no relevant cell cannot be repaired by nulls
            // (e.g. ¬∃x R(x) with a single-use variable). Record an
            // unhittable marker; the caller reports failure.
            out.push(BTreeSet::new());
        } else {
            out.push(cells);
        }
        true
    });
    out
}

/// Enumerate all minimal attribute-based null repairs of `db` w.r.t. the
/// denial-class constraint set `sigma`.
///
/// Errors if `sigma` contains a tgd (attribute repairs are defined for DCs)
/// or if some violation has no null-repairable cell.
pub fn attribute_repairs(
    db: &Database,
    sigma: &ConstraintSet,
) -> Result<Vec<AttributeRepair>, RelationError> {
    if !sigma.is_denial_class() {
        return Err(RelationError::Parse(
            "attribute-based repairs are defined for denial-class constraints only".into(),
        ));
    }
    let mut cell_sets: Vec<BTreeSet<CellChange>> = Vec::new();
    for dc in sigma.all_denials(db)? {
        for s in witness_cell_sets(db, &dc) {
            if s.is_empty() {
                return Err(RelationError::Parse(format!(
                    "constraint `{}` has a violation no attribute change can repair",
                    dc.name
                )));
            }
            cell_sets.push(s);
        }
    }
    // Minimal hitting sets over cells. Reuse the tid-based hypergraph by
    // packing (tid, position) into a synthetic id.
    let pack = |c: &CellChange| -> Tid { Tid(c.tid.0 * 1_000_000 + c.position as u64) };
    let unpack = |t: Tid| -> CellChange {
        CellChange {
            tid: Tid(t.0 / 1_000_000),
            position: (t.0 % 1_000_000) as usize,
        }
    };
    let nodes: BTreeSet<Tid> = cell_sets.iter().flatten().map(pack).collect();
    let graph = cqa_constraints::ConflictHypergraph::new(
        nodes,
        cell_sets
            .iter()
            .map(|s| s.iter().map(pack).collect::<BTreeSet<Tid>>()),
    );
    let mut repairs = Vec::new();
    for hs in graph.minimal_hitting_sets(None) {
        let changes: BTreeSet<CellChange> = hs.into_iter().map(unpack).collect();
        let repaired = AttributeRepair::apply(db, &changes)?;
        // Nulling is monotone for DCs, so consistency is guaranteed; assert
        // it in debug builds as a cross-check of the relevance analysis.
        debug_assert!(sigma.is_satisfied(&repaired).unwrap_or(false));
        repairs.push(AttributeRepair {
            changes,
            db: repaired,
        });
    }
    repairs.sort_by(|a, b| a.changes.cmp(&b.changes));
    Ok(repairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relation::{tuple, RelationSchema};

    /// Example 3.5 / 4.4's instance and κ.
    fn example_db() -> (Database, ConstraintSet) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        db.insert("R", tuple!["a4", "a3"]).unwrap(); // ι1
        db.insert("R", tuple!["a2", "a1"]).unwrap(); // ι2
        db.insert("R", tuple!["a3", "a3"]).unwrap(); // ι3
        db.insert("S", tuple!["a4"]).unwrap(); // ι4
        db.insert("S", tuple!["a2"]).unwrap(); // ι5
        db.insert("S", tuple!["a3"]).unwrap(); // ι6
        let sigma =
            ConstraintSet::from_iter([
                DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap()
            ]);
        (db, sigma)
    }

    #[test]
    fn example_4_4_two_attribute_repairs() {
        let (db, sigma) = example_db();
        let repairs = attribute_repairs(&db, &sigma).unwrap();
        let change_sets: Vec<BTreeSet<CellChange>> =
            repairs.iter().map(|r| r.changes.clone()).collect();
        // The paper's two repairs: {ι6[1]} and {ι1[2], ι3[2]}.
        let c61 = CellChange {
            tid: Tid(6),
            position: 0,
        };
        let c12 = CellChange {
            tid: Tid(1),
            position: 1,
        };
        let c32 = CellChange {
            tid: Tid(3),
            position: 1,
        };
        assert!(change_sets.contains(&[c61].into()));
        assert!(change_sets.contains(&[c12, c32].into()));
        // Minimality: both are minimal under set inclusion; other minimal
        // hitting sets may exist (e.g. nulling R's first attribute), but the
        // paper's two must be among them and every repair must be consistent.
        for r in &repairs {
            assert!(sigma.is_satisfied(&r.db).unwrap());
        }
    }

    #[test]
    fn nulled_repair_preserves_tuple_count_and_tids() {
        let (db, sigma) = example_db();
        let repairs = attribute_repairs(&db, &sigma).unwrap();
        for r in &repairs {
            assert_eq!(r.db.total_tuples(), db.total_tuples());
            assert_eq!(r.db.tids(), db.tids());
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        let c = CellChange {
            tid: Tid(6),
            position: 0,
        };
        assert_eq!(c.to_string(), "ι6[1]");
    }

    #[test]
    fn consistent_instance_yields_empty_repair() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        db.insert("S", tuple!["a"]).unwrap();
        let sigma =
            ConstraintSet::from_iter([DenialConstraint::parse("k", "S(x), S(y), x != y").unwrap()]);
        let repairs = attribute_repairs(&db, &sigma).unwrap();
        assert_eq!(repairs.len(), 1);
        assert!(repairs[0].changes.is_empty());
    }

    #[test]
    fn tgds_are_rejected() {
        let (db, mut sigma) = example_db();
        sigma.push(cqa_constraints::Tgd::parse("t", "S(x) :- R(x, y)").unwrap());
        assert!(attribute_repairs(&db, &sigma).is_err());
    }

    #[test]
    fn unrepairable_single_atom_no_join() {
        // ¬∃x S(x) — the lone variable joins nothing; no cell change helps.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        db.insert("S", tuple!["a"]).unwrap();
        let sigma = ConstraintSet::from_iter([DenialConstraint::parse("empty", "S(x)").unwrap()]);
        assert!(attribute_repairs(&db, &sigma).is_err());
    }

    #[test]
    fn constant_position_is_repairable() {
        // ¬∃y Articles('I3', y): nulling the constant-matched cell works.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Articles", ["Item", "Cost"]))
            .unwrap();
        db.insert("Articles", tuple!["I3", 10]).unwrap();
        let sigma =
            ConstraintSet::from_iter([
                DenialConstraint::parse("noI3", "Articles('I3', y)").unwrap()
            ]);
        let repairs = attribute_repairs(&db, &sigma).unwrap();
        assert_eq!(repairs.len(), 1);
        assert_eq!(
            repairs[0].changes,
            [CellChange {
                tid: Tid(1),
                position: 0
            }]
            .into()
        );
        assert!(sigma.is_satisfied(&repairs[0].db).unwrap());
    }

    #[test]
    fn fd_attribute_repairs() {
        // Key violation repaired by nulling a key or value cell.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        db.insert("T", tuple![1, 10]).unwrap();
        db.insert("T", tuple![1, 20]).unwrap();
        let sigma = ConstraintSet::from_iter([cqa_constraints::FunctionalDependency::new(
            "T",
            ["K"],
            ["V"],
        )]);
        let repairs = attribute_repairs(&db, &sigma).unwrap();
        assert!(!repairs.is_empty());
        for r in &repairs {
            assert_eq!(r.changes.len(), 1); // one cell always suffices
            assert!(sigma.is_satisfied(&r.db).unwrap());
        }
    }
}
