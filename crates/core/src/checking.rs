//! Repair checking and repair counting (§3.2; Afrati–Kolaitis \[1\],
//! Maslowski–Wijsen \[90\], Livshits–Kimelfeld \[84\]).
//!
//! *Repair checking*: given instances `D` and `D'` and constraints Σ, decide
//! whether `D'` is a repair of `D` under a given semantics. For the
//! denial-class deletion semantics this is polynomial (consistency +
//! maximality of the kept set); for the general S-repair semantics we check
//! ⊆-minimality of the delta exactly, which is exponential in `|Δ|` — fine in
//! practice because real deltas are small, and documented here because the
//! paper stresses the complexity asymmetry.

use crate::repair::Change;
use cqa_constraints::ConstraintSet;
use cqa_relation::{Database, RelationError, Tid};
use std::collections::BTreeSet;

/// Which repair semantics a check refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairSemantics {
    /// ⊆-minimal symmetric difference (S-repairs).
    Subset,
    /// Minimum-cardinality symmetric difference (C-repairs).
    Cardinality,
}

/// Compute the content-level symmetric difference `D Δ D'`.
pub fn symmetric_difference(d: &Database, d_prime: &Database) -> BTreeSet<Change> {
    let a = d.content_set();
    let b = d_prime.content_set();
    let mut delta = BTreeSet::new();
    for (rel, t) in a.difference(&b) {
        delta.insert(Change::Delete {
            relation: rel.clone(),
            tuple: t.clone(),
        });
    }
    for (rel, t) in b.difference(&a) {
        delta.insert(Change::Insert {
            relation: rel.clone(),
            tuple: t.clone(),
        });
    }
    delta
}

/// Apply a subset of a delta to `D` (helper for minimality checks).
fn apply_changes(d: &Database, changes: &BTreeSet<&Change>) -> Result<Database, RelationError> {
    let mut deletions: BTreeSet<Tid> = BTreeSet::new();
    let mut insertions: Vec<(String, cqa_relation::Tuple)> = Vec::new();
    for c in changes {
        match c {
            Change::Delete { relation, tuple } => {
                let rel = d.require_relation(relation)?;
                if let Some(tid) = rel.tid_of(tuple) {
                    deletions.insert(tid);
                }
            }
            Change::Insert { relation, tuple } => {
                insertions.push((relation.clone(), tuple.clone()));
            }
        }
    }
    Ok(d.with_changes(&deletions, &insertions)?.0)
}

/// Is `d_prime` an S-repair of `d` w.r.t. `sigma`?
///
/// Checks (1) `D' ⊨ Σ` and (2) no proper subset of `D Δ D'` yields a
/// consistent instance. Step (2) enumerates subsets of the delta
/// (exponential in `|Δ|`, with early exit on the first consistent subset).
pub fn is_s_repair(
    d: &Database,
    d_prime: &Database,
    sigma: &ConstraintSet,
) -> Result<bool, RelationError> {
    if !sigma.is_satisfied(d_prime)? {
        return Ok(false);
    }
    let delta: Vec<Change> = symmetric_difference(d, d_prime).into_iter().collect();
    if delta.is_empty() {
        return Ok(true); // D was consistent and D' = D
    }
    // If D itself is consistent, only the empty delta is a repair.
    if sigma.is_satisfied(d)? {
        return Ok(false);
    }
    // Enumerate proper subsets, largest first (more likely consistent, so
    // failure is found fast); skip the full set.
    let n = delta.len();
    if n > 24 {
        return Err(RelationError::Parse(format!(
            "repair checking delta too large ({n} changes > 24): refusing 2^n subset check"
        )));
    }
    let mut masks: Vec<u32> = (0..(1u32 << n) - 1).collect();
    masks.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));
    for mask in masks {
        let subset: BTreeSet<&Change> = delta
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| c)
            .collect();
        let candidate = apply_changes(d, &subset)?;
        if sigma.is_satisfied(&candidate)? {
            return Ok(false); // a smaller delta already repairs D
        }
    }
    Ok(true)
}

/// Is `d_prime` a C-repair of `d` w.r.t. `sigma`?
pub fn is_c_repair(
    d: &Database,
    d_prime: &Database,
    sigma: &ConstraintSet,
) -> Result<bool, RelationError> {
    if !sigma.is_satisfied(d_prime)? {
        return Ok(false);
    }
    let delta = symmetric_difference(d, d_prime);
    let min = crate::crepair::min_repair_distance(d, sigma)?;
    Ok(delta.len() == min)
}

/// Repair checking under an explicit semantics.
pub fn is_repair(
    d: &Database,
    d_prime: &Database,
    sigma: &ConstraintSet,
    semantics: RepairSemantics,
) -> Result<bool, RelationError> {
    match semantics {
        RepairSemantics::Subset => is_s_repair(d, d_prime, sigma),
        RepairSemantics::Cardinality => is_c_repair(d, d_prime, sigma),
    }
}

/// Count the S-repairs of `d` (by enumeration; see \[90\] for the dichotomy
/// between `#P`-hard and poly-time counting — this engine implements the
/// general, exponential case, plus [`count_key_repairs`] for the classic
/// poly-time special case).
pub fn count_s_repairs(d: &Database, sigma: &ConstraintSet) -> Result<usize, RelationError> {
    Ok(crate::srepair::s_repairs(d, sigma)?.len())
}

/// Fast repair counting for a single key constraint: the repairs of a
/// key-violating relation are the choices of one tuple per key group, so
/// their number is the product of the group sizes.
pub fn count_key_repairs(
    d: &Database,
    key: &cqa_constraints::KeyConstraint,
) -> Result<u128, RelationError> {
    let groups = key.conflicting_groups(d)?;
    Ok(groups.iter().map(|g| g.len() as u128).product())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{KeyConstraint, Tgd};
    use cqa_relation::{tuple, RelationSchema};

    fn employee() -> (Database, ConstraintSet) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        db.insert("Employee", tuple!["page", 5000]).unwrap();
        db.insert("Employee", tuple!["page", 8000]).unwrap();
        db.insert("Employee", tuple!["smith", 3000]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("Employee", ["Name"])]);
        (db, sigma)
    }

    #[test]
    fn accepts_true_s_repairs() {
        let (db, sigma) = employee();
        for r in crate::srepair::s_repairs(&db, &sigma).unwrap() {
            assert!(is_s_repair(&db, r.db(), &sigma).unwrap());
            assert!(is_c_repair(&db, r.db(), &sigma).unwrap());
        }
    }

    #[test]
    fn rejects_inconsistent_and_non_minimal() {
        let (db, sigma) = employee();
        // D itself: inconsistent.
        assert!(!is_s_repair(&db, &db, &sigma).unwrap());
        // Over-deleting: consistent but not minimal.
        let (over, _) = db
            .with_changes(&[Tid(1), Tid(2), Tid(3)].into(), &[])
            .unwrap();
        assert!(sigma.is_satisfied(&over).unwrap());
        assert!(!is_s_repair(&db, &over, &sigma).unwrap());
        assert!(!is_c_repair(&db, &over, &sigma).unwrap());
    }

    #[test]
    fn consistent_original_repairs_only_itself() {
        let (mut db, sigma) = employee();
        db.delete(Tid(2)).unwrap();
        assert!(is_s_repair(&db, &db, &sigma).unwrap());
        let (smaller, _) = db.with_changes(&[Tid(3)].into(), &[]).unwrap();
        assert!(!is_s_repair(&db, &smaller, &sigma).unwrap());
    }

    #[test]
    fn s_but_not_c() {
        // Figure-1-style: {B,C} is an S-repair but not a C-repair.
        let mut db = Database::new();
        for r in ["A", "B", "C", "D", "E"] {
            db.create_relation(RelationSchema::new(r, ["X"])).unwrap();
            db.insert(r, tuple!["a"]).unwrap();
        }
        let sigma = ConstraintSet::from_iter([
            cqa_constraints::DenialConstraint::parse("d1", "B(x), E(x)").unwrap(),
            cqa_constraints::DenialConstraint::parse("d2", "B(x), C(x), D(x)").unwrap(),
            cqa_constraints::DenialConstraint::parse("d3", "A(x), C(x)").unwrap(),
        ]);
        // keep {B, C} = tids {2, 3}: delete {1, 4, 5}.
        let (d1, _) = db
            .with_changes(&[Tid(1), Tid(4), Tid(5)].into(), &[])
            .unwrap();
        assert!(is_s_repair(&db, &d1, &sigma).unwrap());
        assert!(!is_c_repair(&db, &d1, &sigma).unwrap());
    }

    #[test]
    fn insertion_repair_checks() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Supply", ["C", "R", "I"]))
            .unwrap();
        db.create_relation(RelationSchema::new("Articles", ["I"]))
            .unwrap();
        db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
        let sigma =
            ConstraintSet::from_iter([Tgd::parse("ID", "Articles(z) :- Supply(x, y, z)").unwrap()]);
        let mut d2 = db.clone();
        d2.insert("Articles", tuple!["I3"]).unwrap();
        assert!(is_s_repair(&db, &d2, &sigma).unwrap());
        // Insert the tuple AND delete the supply row: consistent, not minimal.
        let mut d3 = d2.clone();
        d3.delete(Tid(1)).unwrap();
        assert!(!is_s_repair(&db, &d3, &sigma).unwrap());
    }

    #[test]
    fn counting_agrees_with_product_formula() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        // Groups of sizes 3, 2, 1 → 6 repairs.
        for (k, v) in [(1, 1), (1, 2), (1, 3), (2, 4), (2, 5), (3, 6)] {
            db.insert("T", tuple![k, v]).unwrap();
        }
        let key = KeyConstraint::new("T", ["K"]);
        let sigma = ConstraintSet::from_iter([key.clone()]);
        assert_eq!(count_key_repairs(&db, &key).unwrap(), 6);
        assert_eq!(count_s_repairs(&db, &sigma).unwrap(), 6);
    }

    #[test]
    fn oversized_delta_is_refused_not_wrong() {
        let (db, sigma) = employee();
        let mut far = Database::new();
        far.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        for i in 0..30 {
            far.insert("Employee", tuple![format!("e{i}"), i]).unwrap();
        }
        assert!(is_s_repair(&db, &far, &sigma).is_err());
    }

    #[test]
    fn symmetric_difference_is_content_based() {
        let (db, _) = employee();
        let (d2, _) = db
            .with_changes(&[Tid(1)].into(), &[("Employee".into(), tuple!["new", 1])])
            .unwrap();
        let delta = symmetric_difference(&db, &d2);
        assert_eq!(delta.len(), 2);
        assert!(delta.contains(&Change::Delete {
            relation: "Employee".into(),
            tuple: tuple!["page", 5000]
        }));
        assert!(delta.contains(&Change::Insert {
            relation: "Employee".into(),
            tuple: tuple!["new", 1]
        }));
    }
}
