//! Consistent query answering (§3.1): certain answers over the class of
//! repairs.
//!
//! `Cons(Q, D, Σ) = ⋂ { Q(D') : D' repair of D }` — the model-theoretic
//! definition, computed by enumerating repairs. This is the *reference
//! semantics* of the workspace: the FO rewritings (`crate::rewrite`) and the
//! ASP repair programs (`cqa-asp`) are validated against it.
//!
//! Query evaluation over repairs always uses SQL null semantics: deletion
//! repairs of null-free instances are unaffected, and null-introducing
//! repairs (tuple- and attribute-level, §4.2–4.3) get the intended "nulls
//! don't join" behaviour. Certain answers containing a null are discarded —
//! a null is not a certain value.
//!
//! Since the repair class can be exponentially large (§3.1), per-repair
//! query evaluation is spread across the `cqa-exec` pool. Each repair is
//! evaluated independently and the per-repair answer sets are folded in
//! repair order (intersection and union are order-insensitive anyway), so
//! results are byte-identical at every thread count.

// audit:exponential — folds over the (worst-case exponential) repair family; every search loop must thread a Budget.
use crate::attr_repair::attribute_repairs;
use crate::crepair::{c_repairs_arc, c_repairs_budgeted};
use crate::factored::{FactoredRepairSet, Factorization};
use crate::repair::Repair;
use crate::srepair::{s_repairs_budgeted, s_repairs_with_arc, RepairOptions};
use cqa_constraints::ConstraintSet;
use cqa_exec::{Budget, Outcome};
use cqa_query::{eval_aggregate, eval_ucq, AggregateQuery, NullSemantics, UnionQuery};
use cqa_relation::{Database, DeltaView, Facts, RelationError, Tid, Tuple, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Which class of repairs CQA quantifies over.
#[derive(Debug, Clone)]
pub enum RepairClass {
    /// S-repairs (⊆-minimal symmetric difference), the default of \[3\].
    Subset,
    /// S-repairs restricted to deletions (the semantics of \[48\]).
    SubsetDeletionsOnly,
    /// C-repairs (minimum cardinality), §4.1.
    Cardinality,
    /// Attribute-based null repairs, §4.3.
    AttributeNull,
}

/// The chosen repair class, kept as copy-on-write deltas when the semantics
/// allows it. Attribute-null repairs mutate cell values in place, so they
/// have no delta representation and stay materialized.
enum RepairSet {
    /// Lazy delta repairs sharing one `Arc`'d base (S/C classes).
    Delta(Vec<Repair>),
    /// Materialized instances (attribute-null class).
    Materialized(Vec<Database>),
}

impl RepairSet {
    fn len(&self) -> usize {
        match self {
            RepairSet::Delta(r) => r.len(),
            RepairSet::Materialized(d) => d.len(),
        }
    }
}

/// Enumerate the chosen repair class without materializing instances
/// (except for the attribute-null class, which has to).
fn repair_set(
    db: &Database,
    sigma: &ConstraintSet,
    class: &RepairClass,
) -> Result<RepairSet, RelationError> {
    match class {
        RepairClass::Subset => {
            let base = Arc::new(db.clone());
            Ok(RepairSet::Delta(s_repairs_with_arc(
                &base,
                sigma,
                &RepairOptions::default(),
            )?))
        }
        RepairClass::SubsetDeletionsOnly => {
            let base = Arc::new(db.clone());
            Ok(RepairSet::Delta(s_repairs_with_arc(
                &base,
                sigma,
                &RepairOptions::deletions_only(),
            )?))
        }
        RepairClass::Cardinality => {
            let base = Arc::new(db.clone());
            Ok(RepairSet::Delta(c_repairs_arc(&base, sigma)?))
        }
        RepairClass::AttributeNull => Ok(RepairSet::Materialized(
            attribute_repairs(db, sigma)?
                .into_iter()
                .map(|r| r.db)
                .collect(),
        )),
    }
}

/// Zero-clone views of a delta repair list, one per repair.
fn views(repairs: &[Repair]) -> Vec<DeltaView<'_>> {
    repairs.iter().map(Repair::view).collect()
}

/// Null-filtered SQL-semantics answers of `query` over one instance, via
/// the shared subplan cache ([`cqa_query::plan`]) when `cache_on`. Every
/// CQA fold funnels through here: certain folds intersect against the
/// filtered set (equivalent to filtering per site — the accumulator is
/// already null-free) and possible folds union it, so the cached unit is
/// exactly the unit the folds consume. Repairs that leave a query's
/// relations untouched share one entry — that is where the 2^k fold's
/// speedup comes from. Callers resolve `cache_on` once on the
/// coordinating thread ([`cqa_exec::plan_cache_enabled`], the sanctioned
/// ambient read) so pool workers never consult thread-local state.
fn sql_answers<F: Facts + ?Sized>(
    inst: &F,
    query: &UnionQuery,
    cache_on: bool,
) -> Arc<BTreeSet<Tuple>> {
    cqa_query::plan::cached_certain_answers(inst, query, NullSemantics::Sql, cache_on)
}

/// Materialize the chosen repair class.
///
/// Kept for callers that genuinely need owned instances (e.g. the virtual
/// integration crate); CQA itself answers over [`DeltaView`]s and never
/// materializes a repair.
pub fn repairs_of(
    db: &Database,
    sigma: &ConstraintSet,
    class: &RepairClass,
) -> Result<Vec<Database>, RelationError> {
    match repair_set(db, sigma, class)? {
        RepairSet::Delta(reps) => Ok(reps.into_iter().map(Repair::into_db).collect()),
        RepairSet::Materialized(dbs) => Ok(dbs),
    }
}

/// The consistent (certain) answers to `query` over the chosen repair class.
///
/// ```
/// use cqa_relation::{tuple, Database, RelationSchema};
/// use cqa_constraints::{ConstraintSet, KeyConstraint};
/// use cqa_query::{parse_query, UnionQuery};
/// use cqa_core::{consistent_answers, RepairClass};
///
/// let mut db = Database::new();
/// db.create_relation(RelationSchema::new("Emp", ["Name", "Salary"]))?;
/// db.insert("Emp", tuple!["page", 5000])?;
/// db.insert("Emp", tuple!["page", 8000])?;
/// db.insert("Emp", tuple!["smith", 3000])?;
/// let sigma = ConstraintSet::from_iter([KeyConstraint::new("Emp", ["Name"])]);
///
/// let q = UnionQuery::single(parse_query("Q(x, y) :- Emp(x, y)")?);
/// let certain = consistent_answers(&db, &sigma, &q, &RepairClass::Subset)?;
/// assert_eq!(certain, [tuple!["smith", 3000]].into());
/// # Ok::<(), cqa_relation::RelationError>(())
/// ```
pub fn consistent_answers(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    class: &RepairClass,
) -> Result<BTreeSet<Tuple>, RelationError> {
    match repair_set(db, sigma, class)? {
        RepairSet::Delta(reps) => Ok(certain_over(&views(&reps), query)),
        RepairSet::Materialized(dbs) => Ok(certain_over(&dbs, query)),
    }
}

/// Certain answers over an explicit list of instances or repair views (used
/// directly by the virtual data integration crate, whose "repairs" are
/// virtual global instances).
pub fn certain_over<F: Facts>(instances: &[F], query: &UnionQuery) -> BTreeSet<Tuple> {
    let Some((first, rest)) = instances.split_first() else {
        return BTreeSet::new();
    };
    let cache_on = cqa_exec::plan_cache_enabled();
    let mut acc: BTreeSet<Tuple> = (*sql_answers(first, query, cache_on)).clone();
    // Evaluate the remaining repairs in parallel chunks with a barrier
    // between chunks, so the empty-intersection early exit still fires
    // after at most one chunk of wasted work. Set intersection is
    // commutative and associative, so chunking cannot change the result.
    let chunk = cqa_exec::threads() * 8;
    for (start, end) in cqa_exec::chunks_of(rest.len(), chunk) {
        if acc.is_empty() {
            break;
        }
        let sets = cqa_exec::par_map(&rest[start..end], |inst| sql_answers(inst, query, cache_on));
        for here in &sets {
            acc.retain(|t| here.contains(t));
        }
    }
    acc
}

/// The possible (brave) answers: returned by at least one repair.
pub fn possible_answers(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    class: &RepairClass,
) -> Result<BTreeSet<Tuple>, RelationError> {
    match repair_set(db, sigma, class)? {
        RepairSet::Delta(reps) => Ok(possible_over(&views(&reps), query)),
        RepairSet::Materialized(dbs) => Ok(possible_over(&dbs, query)),
    }
}

/// Possible (brave) answers over an explicit list of instances or views.
pub fn possible_over<F: Facts>(instances: &[F], query: &UnionQuery) -> BTreeSet<Tuple> {
    let cache_on = cqa_exec::plan_cache_enabled();
    let sets = cqa_exec::par_map(instances, |inst| sql_answers(inst, query, cache_on));
    let mut out = BTreeSet::new();
    for here in sets {
        out.extend(here.iter().cloned());
    }
    out
}

/// Is a Boolean query certainly (consistently) true — true in *every* repair?
pub fn certainly_true(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    class: &RepairClass,
) -> Result<bool, RelationError> {
    match repair_set(db, sigma, class)? {
        RepairSet::Delta(reps) => Ok(certainly_true_over(&views(&reps), query)),
        RepairSet::Materialized(dbs) => Ok(certainly_true_over(&dbs, query)),
    }
}

/// Is a Boolean query true in every instance of the list?
pub fn certainly_true_over<F: Facts>(instances: &[F], query: &UnionQuery) -> bool {
    // "True in every repair" = no repair falsifies it; `par_any` stops all
    // workers as soon as one finds a counterexample.
    !cqa_exec::par_any(instances, |inst| {
        !cqa_query::holds_ucq(inst, query, NullSemantics::Sql)
    })
}

/// Range-semantics CQA for scalar aggregates \[5\]: the greatest lower bound
/// and least upper bound of the aggregate value across all repairs.
///
/// Returns `None` when some repair yields no aggregate value (empty body for
/// `Min`/`Max`/`Sum`/`Avg`), since no finite range is certain then.
pub fn consistent_aggregate_range(
    db: &Database,
    sigma: &ConstraintSet,
    query: &AggregateQuery,
    class: &RepairClass,
) -> Result<Option<(Value, Value)>, RelationError> {
    debug_assert!(
        query.group_by.is_empty(),
        "range semantics is for scalar aggregates"
    );
    match repair_set(db, sigma, class)? {
        RepairSet::Delta(reps) => Ok(aggregate_range_over(&views(&reps), query)),
        RepairSet::Materialized(dbs) => Ok(aggregate_range_over(&dbs, query)),
    }
}

/// Scalar-aggregate range over an explicit list of instances or views.
pub fn aggregate_range_over<F: Facts>(
    instances: &[F],
    query: &AggregateQuery,
) -> Option<(Value, Value)> {
    let per_repair = cqa_exec::par_map(instances, |inst| {
        eval_aggregate(inst, query, NullSemantics::Sql)
    });
    let mut lo: Option<Value> = None;
    let mut hi: Option<Value> = None;
    for r in per_repair {
        let Some((_, v)) = r.into_iter().next() else {
            match query.op {
                cqa_query::AggOp::Count | cqa_query::AggOp::CountDistinct => {
                    let zero = Value::Int(0);
                    if lo.as_ref().is_none_or(|l| zero < *l) {
                        lo = Some(zero.clone());
                    }
                    if hi.as_ref().is_none_or(|h| zero > *h) {
                        hi = Some(zero);
                    }
                    continue;
                }
                _ => return None,
            }
        };
        if lo.as_ref().is_none_or(|l| v < *l) {
            lo = Some(v.clone());
        }
        if hi.as_ref().is_none_or(|h| v > *h) {
            hi = Some(v);
        }
    }
    lo.zip(hi)
}

/// Range-semantics CQA for *grouped* aggregates: for every group key that
/// appears in **every** repair (only those have certain ranges), the
/// greatest lower / least upper bound of its aggregate value.
pub fn consistent_aggregate_ranges(
    db: &Database,
    sigma: &ConstraintSet,
    query: &AggregateQuery,
    class: &RepairClass,
) -> Result<std::collections::BTreeMap<Tuple, (Value, Value)>, RelationError> {
    match repair_set(db, sigma, class)? {
        RepairSet::Delta(reps) => Ok(aggregate_ranges_over(&views(&reps), query)),
        RepairSet::Materialized(dbs) => Ok(aggregate_ranges_over(&dbs, query)),
    }
}

/// Grouped-aggregate ranges over an explicit list of instances or views.
pub fn aggregate_ranges_over<F: Facts>(
    instances: &[F],
    query: &AggregateQuery,
) -> std::collections::BTreeMap<Tuple, (Value, Value)> {
    let per_repair = cqa_exec::par_map(instances, |inst| {
        eval_aggregate(inst, query, NullSemantics::Sql)
    });
    let mut acc: Option<std::collections::BTreeMap<Tuple, (Value, Value)>> = None;
    for here in per_repair {
        acc = Some(match acc {
            None => here.into_iter().map(|(k, v)| (k, (v.clone(), v))).collect(),
            Some(mut ranges) => {
                // Groups absent from this repair are not certain: drop them.
                ranges.retain(|k, _| here.contains_key(k));
                for (k, v) in here {
                    if let Some((lo, hi)) = ranges.get_mut(&k) {
                        if v < *lo {
                            *lo = v.clone();
                        }
                        if v > *hi {
                            *hi = v;
                        }
                    }
                }
                ranges
            }
        });
    }
    acc.unwrap_or_default()
}

/// Summary of a CQA run, for reports and the bench harness.
#[derive(Debug, Clone)]
pub struct CqaReport {
    /// Number of repairs the class contains.
    pub repair_count: usize,
    /// The certain answers.
    pub certain: BTreeSet<Tuple>,
    /// The possible answers.
    pub possible: BTreeSet<Tuple>,
}

/// Run CQA once and report both certain and possible answers.
pub fn cqa_report(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    class: &RepairClass,
) -> Result<CqaReport, RelationError> {
    let set = repair_set(db, sigma, class)?;
    let repair_count = set.len();
    let cache_on = cqa_exec::plan_cache_enabled();
    let sets = match &set {
        RepairSet::Delta(reps) => {
            cqa_exec::par_map(&views(reps), |inst| sql_answers(inst, query, cache_on))
        }
        RepairSet::Materialized(dbs) => {
            cqa_exec::par_map(dbs, |inst| sql_answers(inst, query, cache_on))
        }
    };
    let mut possible = BTreeSet::new();
    let mut certain: Option<BTreeSet<Tuple>> = None;
    for here in sets {
        certain = Some(match certain {
            None => (*here).clone(),
            Some(mut acc) => {
                acc.retain(|t| here.contains(t));
                acc
            }
        });
        possible.extend(here.iter().cloned());
    }
    Ok(CqaReport {
        repair_count,
        certain: certain.unwrap_or_default(),
        possible,
    })
}

// ---------------------------------------------------------------------------
// Budgeted (anytime) CQA
// ---------------------------------------------------------------------------

/// Is every disjunct free of negated atoms? Negation-free UCQs (with
/// comparisons) are monotone: adding tuples to an instance can only add
/// answers. Monotonicity is what makes the consistent-core fallback below
/// sound.
fn is_monotone(query: &UnionQuery) -> bool {
    query.disjuncts.iter().all(|cq| cq.negated.is_empty())
}

/// Do all repairs of the chosen class stay *inside* the original instance
/// (no insertions)? True for denial-class Σ under the S/C classes, for the
/// explicit deletion-only semantics, and for attribute-null repairs (which
/// only null out cells — under SQL null semantics a nulled cell can satisfy
/// strictly fewer join conditions, never more).
fn deletion_only_semantics(sigma: &ConstraintSet, class: &RepairClass) -> bool {
    match class {
        RepairClass::SubsetDeletionsOnly | RepairClass::AttributeNull => true,
        RepairClass::Subset | RepairClass::Cardinality => sigma.is_denial_class(),
    }
}

/// The sound **under-approximation** of the certain answers used whenever a
/// budget cuts certain-answer evaluation short: evaluate `query` over the
/// consistent core of `db` (the tuples free of any conflict). For
/// denial-class Σ every repair keeps the whole core, so for a monotone
/// query, `Q(core) ⊆ Q(D')` for *every* repair `D'` — hence
/// `Q(core) ⊆ Cons(Q, D, Σ)`. When that argument does not apply (tgds, a
/// non-monotone query), the fallback is the empty set, which is trivially
/// sound.
///
/// Note the naive alternative — intersecting `Q` over the repairs explored
/// so far — is *not* sound for certain answers: dropping repairs from an
/// intersection can only grow it, i.e. it over-approximates. That is why
/// truncated runs discard the partial fold and use the core.
fn core_certain_fallback(
    base: &Arc<Database>,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    class: &RepairClass,
) -> Result<BTreeSet<Tuple>, RelationError> {
    let applicable = matches!(
        class,
        RepairClass::Subset | RepairClass::SubsetDeletionsOnly | RepairClass::Cardinality
    ) && sigma.is_denial_class()
        && is_monotone(query);
    if !applicable {
        return Ok(BTreeSet::new());
    }
    let core = sigma.conflict_hypergraph(&**base)?.isolated_nodes();
    let deleted: BTreeSet<Tid> = base.tids().difference(&core).copied().collect();
    let core_view = Repair::from_delta_arc(base, deleted, Vec::new())?;
    let cache_on = cqa_exec::plan_cache_enabled();
    Ok((*sql_answers(&core_view.view(), query, cache_on)).clone())
}

/// The sound **over-approximation** of the possible answers used when a
/// budget fires: `Q(D)` itself. Under deletion-only repair semantics every
/// repair is a sub-instance of `D`, so for a monotone query
/// `Q(D') ⊆ Q(D)` for every repair — the union over repairs is contained in
/// `Q(D)`. When repairs may insert tuples (tgds) or the query is
/// non-monotone this bound is unavailable, and the caller falls back to the
/// union over the repairs it *did* explore (a lower bound, flagged as such).
fn possible_fallback<F: Facts>(
    base: &Arc<Database>,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    class: &RepairClass,
    explored: &[F],
) -> BTreeSet<Tuple> {
    if deletion_only_semantics(sigma, class) && is_monotone(query) {
        (*sql_answers(&**base, query, cqa_exec::plan_cache_enabled())).clone()
    } else {
        possible_over(explored, query)
    }
}

/// Enumerate the chosen repair class under a budget. The attribute-null
/// class is not yet metered during enumeration (its repair space is tamed
/// by per-cell minimality rather than search); the query-evaluation fold on
/// top of it still honours deadlines.
fn repair_set_budgeted(
    base: &Arc<Database>,
    sigma: &ConstraintSet,
    class: &RepairClass,
    budget: &Budget,
) -> Result<Outcome<RepairSet>, RelationError> {
    match class {
        RepairClass::Subset => {
            Ok(
                s_repairs_budgeted(base, sigma, &RepairOptions::default(), budget)?
                    .map(RepairSet::Delta),
            )
        }
        RepairClass::SubsetDeletionsOnly => {
            Ok(
                s_repairs_budgeted(base, sigma, &RepairOptions::deletions_only(), budget)?
                    .map(RepairSet::Delta),
            )
        }
        RepairClass::Cardinality => {
            Ok(
                c_repairs_budgeted(base, sigma, &RepairOptions::default(), budget)?
                    .map(RepairSet::Delta),
            )
        }
        RepairClass::AttributeNull => {
            let dbs: Vec<Database> = attribute_repairs(base, sigma)?
                .into_iter()
                .map(|r| r.db)
                .collect();
            let n = dbs.len() as u64;
            Ok(budget.outcome_with(RepairSet::Materialized(dbs), n))
        }
    }
}

/// Budget-aware intersection fold. Returns `None` when the budget fired
/// mid-fold — the partial accumulator is *discarded* (it would be an
/// over-approximation, and under parallel deadline budgets its value would
/// depend on scheduling); the caller substitutes the core fallback.
fn certain_over_budgeted<F: Facts>(
    instances: &[F],
    query: &UnionQuery,
    budget: &Budget,
) -> Option<BTreeSet<Tuple>> {
    let Some((first, rest)) = instances.split_first() else {
        return Some(BTreeSet::new());
    };
    if !budget.tick() {
        return None;
    }
    let cache_on = cqa_exec::plan_cache_enabled();
    let mut acc: BTreeSet<Tuple> = (*sql_answers(first, query, cache_on)).clone();
    if budget.forces_sequential() {
        // Logical budget: one tick per repair in input order, so the cut
        // point is schedule-independent. (Ticks are charged *before*
        // evaluation, so a cache hit never moves the truncation point.)
        for inst in rest {
            if acc.is_empty() {
                break;
            }
            if !budget.tick() {
                return None;
            }
            let here = sql_answers(inst, query, cache_on);
            acc.retain(|t| here.contains(t));
        }
        return Some(acc);
    }
    // Deadline/cancellation budget: parallel chunks with a clock check at
    // every chunk barrier (same chunking as the exact fold).
    let chunk = cqa_exec::threads() * 8;
    for (start, end) in cqa_exec::chunks_of(rest.len(), chunk) {
        if acc.is_empty() {
            break;
        }
        if !budget.check_deadline() {
            return None;
        }
        let sets = cqa_exec::par_map(&rest[start..end], |inst| sql_answers(inst, query, cache_on));
        for here in &sets {
            acc.retain(|t| here.contains(t));
        }
    }
    Some(acc)
}

/// Budget-aware union fold; `None` when cut short (caller substitutes
/// [`possible_fallback`]).
fn possible_over_budgeted<F: Facts>(
    instances: &[F],
    query: &UnionQuery,
    budget: &Budget,
) -> Option<BTreeSet<Tuple>> {
    let cache_on = cqa_exec::plan_cache_enabled();
    if budget.forces_sequential() {
        let mut out = BTreeSet::new();
        for inst in instances {
            if !budget.tick() {
                return None;
            }
            out.extend(sql_answers(inst, query, cache_on).iter().cloned());
        }
        return Some(out);
    }
    let chunk = cqa_exec::threads() * 8;
    let mut out = BTreeSet::new();
    for (start, end) in cqa_exec::chunks_of(instances.len(), chunk) {
        if !budget.check_deadline() {
            return None;
        }
        let sets = cqa_exec::par_map(&instances[start..end], |inst| {
            sql_answers(inst, query, cache_on)
        });
        for here in sets {
            out.extend(here.iter().cloned());
        }
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Conflict-component factorization (§4.1 + Lopatenko–Bertossi locality).
//
// When Σ is denial-class, the repair family is the cross-product of
// independent per-component families over the frozen core. The folds below
// exploit that: if no query witness spans two conflict components, certain
// and possible answers decompose as
//
//   certain  = Q(core) ∪ ⋃_c ⋂_{h ∈ family_c} Q(view_{c,h})
//   possible = Q(core) ∪ ⋃_c ⋃_{h ∈ family_c} Q(view_{c,h})
//
// where `view_{c,h}` keeps the core plus component `c` minus the local
// deletion set `h` (every *other* component's conflicted tuples deleted —
// the most destructive completion, a sub-instance of every repair choosing
// `h` for `c`, which is what makes the fold sound for monotone queries).
// That is `Σ_c |family_c|` query evaluations instead of `∏_c |family_c|`.
// When a witness does span components (or the query is non-monotone), the
// fold degrades gracefully to streaming over the *lazy* cross-product — the
// same set of repairs as the monolithic fold, never materialized as a list.
// ---------------------------------------------------------------------------

/// Does any witness of `query` over the full instance touch tuples of two
/// different conflict components? Sound for the factored fold's purposes:
/// repairs are sub-instances of `base` (deletion-only semantics), so every
/// witness inside a repair is a witness over `base`; if none of those spans
/// two components, the per-component decomposition applies.
fn query_spans_components(
    base: &Database,
    query: &UnionQuery,
    components: &cqa_constraints::ConflictComponents,
) -> bool {
    let index = components.component_index();
    query.disjuncts.iter().any(|cq| {
        let mut spanning = false;
        cqa_query::for_each_witness(base, cq, NullSemantics::Sql, &mut |w| {
            let mut seen: Option<usize> = None;
            for tid in &w.tids {
                // Frozen-core tuples belong to every repair; ignore them.
                let Some(&c) = index.get(tid) else { continue };
                match seen {
                    None => seen = Some(c),
                    Some(prev) if prev != c => {
                        spanning = true;
                        return false; // stop the witness scan
                    }
                    Some(_) => {}
                }
            }
            true
        });
        spanning
    })
}

/// `Q(core)` — the factored sibling of [`core_certain_fallback`], reusing
/// the already-computed factorization instead of re-deriving the isolated
/// nodes. Empty for non-monotone queries (same soundness argument).
fn factored_core_answers(
    fx: &FactoredRepairSet,
    query: &UnionQuery,
) -> Result<BTreeSet<Tuple>, RelationError> {
    if !is_monotone(query) {
        return Ok(BTreeSet::new());
    }
    let core = Repair::from_delta_arc(fx.base(), fx.conflicted(), Vec::new())?;
    let cache_on = cqa_exec::plan_cache_enabled();
    Ok((*sql_answers(&core.view(), query, cache_on)).clone())
}

/// The component-local views for one family, in family order.
fn component_views(
    fx: &FactoredRepairSet,
    comp: usize,
    family: &[BTreeSet<Tid>],
) -> Result<Vec<Repair>, RelationError> {
    family
        .iter()
        .map(|h| Repair::from_delta_arc(fx.base(), fx.local_deleted(comp, h), Vec::new()))
        .collect()
}

/// Per-component certain fold (monotone, non-spanning case). `None` when
/// the budget fired mid-fold (caller substitutes the core fallback).
fn factored_component_certain(
    fx: &FactoredRepairSet,
    query: &UnionQuery,
    budget: &Budget,
) -> Result<Option<BTreeSet<Tuple>>, RelationError> {
    let mut certain = factored_core_answers(fx, query)?;
    let cache_on = cqa_exec::plan_cache_enabled();
    for (comp, family) in fx.families().families.iter().enumerate() {
        let acc = if budget.forces_sequential() {
            // One tick per local view in canonical order: the cut point is
            // schedule-independent, like the monolithic sequential fold.
            let mut acc: Option<BTreeSet<Tuple>> = None;
            for h in family {
                if !budget.tick() {
                    return Ok(None);
                }
                let view =
                    Repair::from_delta_arc(fx.base(), fx.local_deleted(comp, h), Vec::new())?;
                let here = sql_answers(&view.view(), query, cache_on);
                match &mut acc {
                    None => acc = Some((*here).clone()),
                    Some(a) => a.retain(|t| here.contains(t)),
                }
                if acc.as_ref().is_some_and(BTreeSet::is_empty) {
                    break;
                }
            }
            acc
        } else {
            if !budget.check_deadline() {
                return Ok(None);
            }
            let reps = component_views(fx, comp, family)?;
            let mut sets =
                cqa_exec::par_map(&views(&reps), |v| sql_answers(v, query, cache_on)).into_iter();
            let mut acc = sets.next().map(|s| (*s).clone());
            if let Some(a) = &mut acc {
                for here in sets {
                    a.retain(|t| here.contains(t));
                    if a.is_empty() {
                        break;
                    }
                }
            }
            acc
        };
        if let Some(a) = acc {
            certain.extend(a);
        }
    }
    Ok(Some(certain))
}

/// Per-component possible fold (monotone, non-spanning case).
fn factored_component_possible(
    fx: &FactoredRepairSet,
    query: &UnionQuery,
    budget: &Budget,
) -> Result<Option<BTreeSet<Tuple>>, RelationError> {
    let mut out = factored_core_answers(fx, query)?;
    let cache_on = cqa_exec::plan_cache_enabled();
    for (comp, family) in fx.families().families.iter().enumerate() {
        if budget.forces_sequential() {
            for h in family {
                if !budget.tick() {
                    return Ok(None);
                }
                let view =
                    Repair::from_delta_arc(fx.base(), fx.local_deleted(comp, h), Vec::new())?;
                out.extend(sql_answers(&view.view(), query, cache_on).iter().cloned());
            }
        } else {
            if !budget.check_deadline() {
                return Ok(None);
            }
            let reps = component_views(fx, comp, family)?;
            for here in cqa_exec::par_map(&views(&reps), |v| sql_answers(v, query, cache_on)) {
                out.extend(here.iter().cloned());
            }
        }
    }
    Ok(Some(out))
}

/// Certain fold over the **lazy** cross-product (spanning / non-monotone
/// case): the same repair family as the monolithic fold, streamed from the
/// odometer iterator, never stored.
fn factored_product_certain(
    fx: &FactoredRepairSet,
    query: &UnionQuery,
    budget: &Budget,
) -> Result<Option<BTreeSet<Tuple>>, RelationError> {
    let mut deltas = fx.deltas();
    let Some(first) = deltas.next() else {
        return Ok(Some(BTreeSet::new()));
    };
    if !budget.tick() {
        return Ok(None);
    }
    let cache_on = cqa_exec::plan_cache_enabled();
    let first = Repair::from_delta_arc(fx.base(), first, Vec::new())?;
    let mut acc: BTreeSet<Tuple> = (*sql_answers(&first.view(), query, cache_on)).clone();
    if budget.forces_sequential() {
        for delta in deltas {
            if acc.is_empty() {
                break;
            }
            if !budget.tick() {
                return Ok(None);
            }
            let view = Repair::from_delta_arc(fx.base(), delta, Vec::new())?;
            let here = sql_answers(&view.view(), query, cache_on);
            acc.retain(|t| here.contains(t));
        }
        return Ok(Some(acc));
    }
    let chunk = cqa_exec::threads() * 8;
    loop {
        if acc.is_empty() {
            break;
        }
        if !budget.check_deadline() {
            return Ok(None);
        }
        let batch: Vec<Repair> = deltas
            .by_ref()
            .take(chunk)
            .map(|d| Repair::from_delta_arc(fx.base(), d, Vec::new()))
            .collect::<Result<_, _>>()?;
        if batch.is_empty() {
            break;
        }
        let sets = cqa_exec::par_map(&views(&batch), |v| sql_answers(v, query, cache_on));
        for here in &sets {
            acc.retain(|t| here.contains(t));
        }
    }
    Ok(Some(acc))
}

/// Possible fold over the lazy cross-product.
fn factored_product_possible(
    fx: &FactoredRepairSet,
    query: &UnionQuery,
    budget: &Budget,
) -> Result<Option<BTreeSet<Tuple>>, RelationError> {
    let mut deltas = fx.deltas();
    let mut out = BTreeSet::new();
    let cache_on = cqa_exec::plan_cache_enabled();
    if budget.forces_sequential() {
        for delta in deltas {
            if !budget.tick() {
                return Ok(None);
            }
            let view = Repair::from_delta_arc(fx.base(), delta, Vec::new())?;
            out.extend(sql_answers(&view.view(), query, cache_on).iter().cloned());
        }
        return Ok(Some(out));
    }
    let chunk = cqa_exec::threads() * 8;
    loop {
        if !budget.check_deadline() {
            return Ok(None);
        }
        let batch: Vec<Repair> = deltas
            .by_ref()
            .take(chunk)
            .map(|d| Repair::from_delta_arc(fx.base(), d, Vec::new()))
            .collect::<Result<_, _>>()?;
        if batch.is_empty() {
            break;
        }
        for here in cqa_exec::par_map(&views(&batch), |v| sql_answers(v, query, cache_on)) {
            out.extend(here.iter().cloned());
        }
    }
    Ok(Some(out))
}

/// Factored certain answers over a pre-built conflict hyper-graph (whose
/// component decomposition is cached on it). The caller guarantees `graph`
/// was built from `base`'s instance, Σ is denial-class, and `class` is one
/// of the deletion-only classes (S / S-deletions-only / C).
pub(crate) fn factored_certain_with(
    base: &Arc<Database>,
    graph: &cqa_constraints::ConflictHypergraph,
    query: &UnionQuery,
    class: &RepairClass,
    budget: &Budget,
) -> Result<Outcome<(BTreeSet<Tuple>, Factorization)>, RelationError> {
    let fx = match class {
        RepairClass::Cardinality => FactoredRepairSet::enumerate_minimum(base, graph, budget),
        _ => FactoredRepairSet::enumerate_minimal(base, graph, budget),
    }
    .into_value();
    let explored = fx.families().exact_components();
    if budget.exhausted() {
        let fallback = factored_core_answers(&fx, query)?;
        return Ok(budget.outcome_with((fallback, fx.factorization(false)), explored));
    }
    let spanning = !is_monotone(query) || query_spans_components(base, query, fx.components());
    let info = fx.factorization(spanning);
    let folded = if spanning {
        factored_product_certain(&fx, query, budget)?
    } else {
        factored_component_certain(&fx, query, budget)?
    };
    match folded {
        Some(acc) if !budget.exhausted() => Ok(Outcome::Exact((acc, info))),
        _ => {
            let fallback = factored_core_answers(&fx, query)?;
            Ok(budget.outcome_with((fallback, info), explored))
        }
    }
}

/// Factored possible answers; same contract as [`factored_certain_with`].
pub(crate) fn factored_possible_with(
    base: &Arc<Database>,
    graph: &cqa_constraints::ConflictHypergraph,
    query: &UnionQuery,
    class: &RepairClass,
    budget: &Budget,
) -> Result<Outcome<(BTreeSet<Tuple>, Factorization)>, RelationError> {
    let fx = match class {
        RepairClass::Cardinality => FactoredRepairSet::enumerate_minimum(base, graph, budget),
        _ => FactoredRepairSet::enumerate_minimal(base, graph, budget),
    }
    .into_value();
    let explored = fx.families().exact_components();
    // Truncation fallback: `Q(D)` is the sound over-approximation for a
    // monotone query under deletion-only semantics; empty otherwise (the
    // enumeration found nothing complete to union over).
    let fallback = || -> BTreeSet<Tuple> {
        if is_monotone(query) {
            eval_ucq(&**base, query, NullSemantics::Sql)
                .into_iter()
                .filter(|t| !t.has_null())
                .collect()
        } else {
            BTreeSet::new()
        }
    };
    if budget.exhausted() {
        let value = fallback();
        return Ok(budget.outcome_with((value, fx.factorization(false)), explored));
    }
    let spanning = !is_monotone(query) || query_spans_components(base, query, fx.components());
    let info = fx.factorization(spanning);
    let folded = if spanning {
        factored_product_possible(&fx, query, budget)?
    } else {
        factored_component_possible(&fx, query, budget)?
    };
    match folded {
        Some(out) if !budget.exhausted() => Ok(Outcome::Exact((out, info))),
        _ => {
            let value = fallback();
            Ok(budget.outcome_with((value, info), explored))
        }
    }
}

/// A factored CQA result: the answer set plus the [`Factorization`] shape
/// summary that produced it.
pub type FactoredAnswers = Outcome<(BTreeSet<Tuple>, Factorization)>;

/// Component-factorized [`consistent_answers_budgeted`]: `None` when the
/// factorization does not apply (non-denial Σ or the attribute-null class),
/// otherwise the certain answers plus the [`Factorization`] shape summary.
/// The answers equal the monolithic fold's bit for bit whenever the outcome
/// is exact.
pub fn consistent_answers_factored_budgeted(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    class: &RepairClass,
    budget: &Budget,
) -> Result<Option<FactoredAnswers>, RelationError> {
    if matches!(class, RepairClass::AttributeNull) || !sigma.is_denial_class() {
        return Ok(None);
    }
    let base = Arc::new(db.clone());
    let graph = sigma.conflict_hypergraph(db)?;
    Ok(Some(factored_certain_with(
        &base, &graph, query, class, budget,
    )?))
}

/// Component-factorized [`possible_answers_budgeted`]; see
/// [`consistent_answers_factored_budgeted`].
pub fn possible_answers_factored_budgeted(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    class: &RepairClass,
    budget: &Budget,
) -> Result<Option<FactoredAnswers>, RelationError> {
    if matches!(class, RepairClass::AttributeNull) || !sigma.is_denial_class() {
        return Ok(None);
    }
    let base = Arc::new(db.clone());
    let graph = sigma.conflict_hypergraph(db)?;
    Ok(Some(factored_possible_with(
        &base, &graph, query, class, budget,
    )?))
}

/// Budget-aware [`consistent_answers`]: the anytime entry point.
///
/// An [`Outcome::Exact`] result equals the unbudgeted answer bit for bit.
/// An [`Outcome::Truncated`] result is a **sound under-approximation** of
/// the certain answers (possibly empty — see `core_certain_fallback` for
/// when it is non-trivial); `explored` counts the repairs that were fully
/// enumerated before the budget fired.
pub fn consistent_answers_budgeted(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    class: &RepairClass,
    budget: &Budget,
) -> Result<Outcome<BTreeSet<Tuple>>, RelationError> {
    let base = Arc::new(db.clone());
    let set = repair_set_budgeted(&base, sigma, class, budget)?;
    let explored = set.truncation().map(|(_, e)| e);
    let set = set.into_value();
    if budget.exhausted() {
        // Enumeration was cut: the explored repairs are only part of the
        // class, so intersecting over them would over-approximate. Discard
        // them for the certain side and answer from the core.
        let fallback = core_certain_fallback(&base, sigma, query, class)?;
        return Ok(budget.outcome_with(fallback, explored.unwrap_or(set.len() as u64)));
    }
    let folded = match &set {
        RepairSet::Delta(reps) => certain_over_budgeted(&views(reps), query, budget),
        RepairSet::Materialized(dbs) => certain_over_budgeted(dbs, query, budget),
    };
    match folded {
        Some(acc) if !budget.exhausted() => Ok(Outcome::Exact(acc)),
        _ => {
            let fallback = core_certain_fallback(&base, sigma, query, class)?;
            Ok(budget.outcome_with(fallback, set.len() as u64))
        }
    }
}

/// Budget-aware [`possible_answers`].
///
/// An [`Outcome::Exact`] result equals the unbudgeted answer. A truncated
/// result is a **sound over-approximation** (`Q(D)`) whenever the repair
/// semantics is deletion-only and the query monotone; otherwise it degrades
/// to the union over the repairs explored so far — a lower bound, which is
/// why the outcome tag matters.
pub fn possible_answers_budgeted(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    class: &RepairClass,
    budget: &Budget,
) -> Result<Outcome<BTreeSet<Tuple>>, RelationError> {
    let base = Arc::new(db.clone());
    let set = repair_set_budgeted(&base, sigma, class, budget)?;
    let set = set.into_value();
    let fallback = |set: &RepairSet| match set {
        RepairSet::Delta(reps) => possible_fallback(&base, sigma, query, class, &views(reps)),
        RepairSet::Materialized(dbs) => possible_fallback(&base, sigma, query, class, dbs),
    };
    if budget.exhausted() {
        let value = fallback(&set);
        return Ok(budget.outcome_with(value, set.len() as u64));
    }
    let folded = match &set {
        RepairSet::Delta(reps) => possible_over_budgeted(&views(reps), query, budget),
        RepairSet::Materialized(dbs) => possible_over_budgeted(dbs, query, budget),
    };
    match folded {
        Some(out) if !budget.exhausted() => Ok(Outcome::Exact(out)),
        _ => {
            let value = fallback(&set);
            Ok(budget.outcome_with(value, set.len() as u64))
        }
    }
}

/// Budget-aware [`cqa_report`]: one repair enumeration feeding both the
/// certain (under-approximated on truncation) and possible
/// (over-approximated where sound, see [`possible_answers_budgeted`])
/// sides. `repair_count` is the number of repairs actually enumerated —
/// the full class size only when the outcome is exact.
pub fn cqa_report_budgeted(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    class: &RepairClass,
    budget: &Budget,
) -> Result<Outcome<CqaReport>, RelationError> {
    let base = Arc::new(db.clone());
    let set = repair_set_budgeted(&base, sigma, class, budget)?;
    let set = set.into_value();
    let repair_count = set.len();
    let build = |certain: BTreeSet<Tuple>, possible: BTreeSet<Tuple>| CqaReport {
        repair_count,
        certain,
        possible,
    };
    let truncated_report = |set: &RepairSet| -> Result<CqaReport, RelationError> {
        let certain = core_certain_fallback(&base, sigma, query, class)?;
        let possible = match set {
            RepairSet::Delta(reps) => possible_fallback(&base, sigma, query, class, &views(reps)),
            RepairSet::Materialized(dbs) => possible_fallback(&base, sigma, query, class, dbs),
        };
        Ok(build(certain, possible))
    };
    if budget.exhausted() {
        let report = truncated_report(&set)?;
        return Ok(budget.outcome_with(report, repair_count as u64));
    }
    let folded = match &set {
        RepairSet::Delta(reps) => {
            let v = views(reps);
            certain_over_budgeted(&v, query, budget).zip(possible_over_budgeted(&v, query, budget))
        }
        RepairSet::Materialized(dbs) => certain_over_budgeted(dbs, query, budget)
            .zip(possible_over_budgeted(dbs, query, budget)),
    };
    match folded {
        Some((certain, possible)) if !budget.exhausted() => {
            Ok(Outcome::Exact(build(certain, possible)))
        }
        _ => {
            let report = truncated_report(&set)?;
            Ok(budget.outcome_with(report, repair_count as u64))
        }
    }
}

/// Convenience: keep the `Repair` structs alongside their instances.
pub fn s_repair_structs(
    db: &Database,
    sigma: &ConstraintSet,
) -> Result<Vec<Repair>, RelationError> {
    crate::srepair::s_repairs(db, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{KeyConstraint, Tgd};
    use cqa_query::{parse_query, AggOp};
    use cqa_relation::{tuple, RelationSchema};

    fn supply() -> (Database, ConstraintSet) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "Supply",
            ["Company", "Receiver", "Item"],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new("Articles", ["Item"]))
            .unwrap();
        db.insert("Supply", tuple!["C1", "R1", "I1"]).unwrap();
        db.insert("Supply", tuple!["C2", "R2", "I2"]).unwrap();
        db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
        db.insert("Articles", tuple!["I1"]).unwrap();
        db.insert("Articles", tuple!["I2"]).unwrap();
        let sigma =
            ConstraintSet::from_iter([Tgd::parse("ID", "Articles(z) :- Supply(x, y, z)").unwrap()]);
        (db, sigma)
    }

    fn employee() -> (Database, ConstraintSet) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        db.insert("Employee", tuple!["page", 5000]).unwrap();
        db.insert("Employee", tuple!["page", 8000]).unwrap();
        db.insert("Employee", tuple!["smith", 3000]).unwrap();
        db.insert("Employee", tuple!["stowe", 7000]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("Employee", ["Name"])]);
        (db, sigma)
    }

    #[test]
    fn example_3_2_consistent_answers() {
        let (db, sigma) = supply();
        let q = UnionQuery::single(parse_query("Q(z) :- Supply(x, y, z)").unwrap());
        let ans = consistent_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap();
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&tuple!["I1"]));
        assert!(ans.contains(&tuple!["I2"]));
        // Possible answers include I3 (it survives in the insertion repair).
        let poss = possible_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap();
        assert!(poss.contains(&tuple!["I3"]));
    }

    #[test]
    fn example_3_3_q1_and_q2() {
        let (db, sigma) = employee();
        let q1 = UnionQuery::single(parse_query("Q(x, y) :- Employee(x, y)").unwrap());
        let ans1 = consistent_answers(&db, &sigma, &q1, &RepairClass::Subset).unwrap();
        assert_eq!(ans1, [tuple!["smith", 3000], tuple!["stowe", 7000]].into());
        let q2 = UnionQuery::single(parse_query("Q(x) :- Employee(x, y)").unwrap());
        let ans2 = consistent_answers(&db, &sigma, &q2, &RepairClass::Subset).unwrap();
        assert_eq!(
            ans2,
            [tuple!["page"], tuple!["smith"], tuple!["stowe"]].into()
        );
    }

    #[test]
    fn boolean_certainty() {
        let (db, sigma) = employee();
        let yes = UnionQuery::single(parse_query("Q() :- Employee('smith', y)").unwrap());
        assert!(certainly_true(&db, &sigma, &yes, &RepairClass::Subset).unwrap());
        let no = UnionQuery::single(parse_query("Q() :- Employee('page', 5000)").unwrap());
        assert!(!certainly_true(&db, &sigma, &no, &RepairClass::Subset).unwrap());
        // But it is possibly true.
        let poss = possible_answers(&db, &sigma, &no, &RepairClass::Subset).unwrap();
        assert!(!poss.is_empty());
    }

    #[test]
    fn aggregate_range_semantics() {
        let (db, sigma) = employee();
        let body = parse_query("Q() :- Employee(n, s)").unwrap();
        let s = body.vars.lookup("s").unwrap();
        let sum = AggregateQuery {
            body,
            group_by: vec![],
            target: Some(s),
            op: AggOp::Sum,
        };
        let (lo, hi) = consistent_aggregate_range(&db, &sigma, &sum, &RepairClass::Subset)
            .unwrap()
            .unwrap();
        // Repairs keep page at 5000 or 8000: totals 15000 and 18000.
        assert_eq!(lo, Value::Int(15000));
        assert_eq!(hi, Value::Int(18000));
    }

    #[test]
    fn aggregate_count_range() {
        let (db, sigma) = employee();
        let body = parse_query("Q() :- Employee(n, s)").unwrap();
        let count = AggregateQuery {
            body,
            group_by: vec![],
            target: None,
            op: AggOp::Count,
        };
        let (lo, hi) = consistent_aggregate_range(&db, &sigma, &count, &RepairClass::Subset)
            .unwrap()
            .unwrap();
        assert_eq!(lo, Value::Int(3));
        assert_eq!(hi, Value::Int(3));
    }

    #[test]
    fn grouped_aggregate_ranges() {
        // Employees grouped by department; one department has a conflicted
        // salary, the other is clean.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Emp", ["Name", "Dept", "Salary"]))
            .unwrap();
        db.insert("Emp", tuple!["page", "cs", 5000]).unwrap();
        db.insert("Emp", tuple!["page", "cs", 8000]).unwrap();
        db.insert("Emp", tuple!["smith", "cs", 3000]).unwrap();
        db.insert("Emp", tuple!["stowe", "math", 7000]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("Emp", ["Name"])]);
        let body = parse_query("Q() :- Emp(n, d, s)").unwrap();
        let (d, s) = (
            body.vars.lookup("d").unwrap(),
            body.vars.lookup("s").unwrap(),
        );
        let agg = AggregateQuery {
            body,
            group_by: vec![d],
            target: Some(s),
            op: AggOp::Sum,
        };
        let ranges = consistent_aggregate_ranges(&db, &sigma, &agg, &RepairClass::Subset).unwrap();
        assert_eq!(
            ranges.get(&tuple!["cs"]),
            Some(&(Value::Int(8000), Value::Int(11000)))
        );
        // The clean department has a point interval.
        assert_eq!(
            ranges.get(&tuple!["math"]),
            Some(&(Value::Int(7000), Value::Int(7000)))
        );
    }

    #[test]
    fn grouped_ranges_drop_uncertain_groups() {
        // A department whose *only* employee is conflicted on Dept itself:
        // it vanishes from some repairs, so it has no certain range.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Emp", ["Name", "Dept", "Salary"]))
            .unwrap();
        db.insert("Emp", tuple!["page", "cs", 5000]).unwrap();
        db.insert("Emp", tuple!["page", "math", 5000]).unwrap();
        db.insert("Emp", tuple!["smith", "cs", 3000]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("Emp", ["Name"])]);
        let body = parse_query("Q() :- Emp(n, d, s)").unwrap();
        let (d, s) = (
            body.vars.lookup("d").unwrap(),
            body.vars.lookup("s").unwrap(),
        );
        let agg = AggregateQuery {
            body,
            group_by: vec![d],
            target: Some(s),
            op: AggOp::Sum,
        };
        let ranges = consistent_aggregate_ranges(&db, &sigma, &agg, &RepairClass::Subset).unwrap();
        // math exists only in the repair keeping (page, math): not certain.
        assert!(!ranges.contains_key(&tuple!["math"]));
        // cs is present in both repairs (smith always; page sometimes).
        assert_eq!(
            ranges.get(&tuple!["cs"]),
            Some(&(Value::Int(3000), Value::Int(8000)))
        );
    }

    #[test]
    fn cardinality_class_can_differ_from_subset() {
        // Figure 1 instance: query "B(a) holds?" — true in D1 and D3 but D1
        // is not a C-repair; under C-repairs the answer set differs.
        let mut db = Database::new();
        for r in ["A", "B", "C", "D", "E"] {
            db.create_relation(RelationSchema::new(r, ["X"])).unwrap();
            db.insert(r, tuple!["a"]).unwrap();
        }
        let sigma = ConstraintSet::from_iter([
            cqa_constraints::DenialConstraint::parse("d1", "B(x), E(x)").unwrap(),
            cqa_constraints::DenialConstraint::parse("d2", "B(x), C(x), D(x)").unwrap(),
            cqa_constraints::DenialConstraint::parse("d3", "A(x), C(x)").unwrap(),
        ]);
        let q = UnionQuery::single(parse_query("Q() :- D(x)").unwrap());
        // D(a) is in D2, D3, D4 (all C-repairs) but not in D1 = {B, C}.
        assert!(!certainly_true(&db, &sigma, &q, &RepairClass::Subset).unwrap());
        assert!(certainly_true(&db, &sigma, &q, &RepairClass::Cardinality).unwrap());
    }

    #[test]
    fn attribute_null_class_certain_answers() {
        // Example 4.4 + the query Q(x): S(x). Beyond the paper's two
        // showcased repairs, the full class of minimal attribute repairs
        // also contains ones that null S(a4) or R's join cells; only a2 is
        // never touched, so Cons(Q) = {a2}.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        db.insert("R", tuple!["a4", "a3"]).unwrap();
        db.insert("R", tuple!["a2", "a1"]).unwrap();
        db.insert("R", tuple!["a3", "a3"]).unwrap();
        db.insert("S", tuple!["a4"]).unwrap();
        db.insert("S", tuple!["a2"]).unwrap();
        db.insert("S", tuple!["a3"]).unwrap();
        let sigma = ConstraintSet::from_iter([cqa_constraints::DenialConstraint::parse(
            "kappa",
            "S(x), R(x, y), S(y)",
        )
        .unwrap()]);
        let q = UnionQuery::single(parse_query("Q(x) :- S(x)").unwrap());
        let ans = consistent_answers(&db, &sigma, &q, &RepairClass::AttributeNull).unwrap();
        assert_eq!(ans, [tuple!["a2"]].into());
        // The possible answers do include a4 and a3 (kept by some repairs).
        let poss = possible_answers(&db, &sigma, &q, &RepairClass::AttributeNull).unwrap();
        assert!(poss.contains(&tuple!["a4"]));
        assert!(poss.contains(&tuple!["a3"]));
        // No null sneaks into answers.
        assert!(poss.iter().all(|t| !t.has_null()));
    }

    #[test]
    fn report_is_consistent_with_parts() {
        let (db, sigma) = employee();
        let q = UnionQuery::single(parse_query("Q(x) :- Employee(x, y)").unwrap());
        let report = cqa_report(&db, &sigma, &q, &RepairClass::Subset).unwrap();
        assert_eq!(report.repair_count, 2);
        assert_eq!(
            report.certain,
            consistent_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap()
        );
        assert_eq!(
            report.possible,
            possible_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap()
        );
        assert!(report.certain.is_subset(&report.possible));
    }

    #[test]
    fn consistent_db_cqa_equals_plain_eval() {
        let (mut db, sigma) = employee();
        db.delete(cqa_relation::Tid(2)).unwrap();
        let q = UnionQuery::single(parse_query("Q(x, y) :- Employee(x, y)").unwrap());
        let cons = consistent_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap();
        let plain = cqa_query::eval_ucq(&db, &q, NullSemantics::Structural);
        assert_eq!(cons, plain);
    }

    /// Two independent key-violation groups plus clean rows: 2 components,
    /// 4 monolithic S-repairs (2×2).
    fn two_component_employee() -> (Database, ConstraintSet) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        db.insert("Employee", tuple!["page", 5000]).unwrap();
        db.insert("Employee", tuple!["page", 8000]).unwrap();
        db.insert("Employee", tuple!["miller", 1000]).unwrap();
        db.insert("Employee", tuple!["miller", 2000]).unwrap();
        db.insert("Employee", tuple!["smith", 3000]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("Employee", ["Name"])]);
        (db, sigma)
    }

    #[test]
    fn factored_certain_matches_monolithic_per_component_path() {
        let (db, sigma) = two_component_employee();
        for q in [
            "Q(x, y) :- Employee(x, y)",
            "Q(x) :- Employee(x, y)",
            "Q(y) :- Employee('page', y)",
        ] {
            let q = UnionQuery::single(parse_query(q).unwrap());
            for class in [RepairClass::Subset, RepairClass::Cardinality] {
                let mono = consistent_answers(&db, &sigma, &q, &class).unwrap();
                let (fact, info) = consistent_answers_factored_budgeted(
                    &db,
                    &sigma,
                    &q,
                    &class,
                    &Budget::unlimited(),
                )
                .unwrap()
                .expect("denial-class")
                .into_value();
                assert_eq!(fact, mono, "class {class:?}");
                assert_eq!(info.components, 2);
                assert!(!info.spanning, "single-atom witnesses never span");
                let mono_p = possible_answers(&db, &sigma, &q, &class).unwrap();
                let (fact_p, _) = possible_answers_factored_budgeted(
                    &db,
                    &sigma,
                    &q,
                    &class,
                    &Budget::unlimited(),
                )
                .unwrap()
                .unwrap()
                .into_value();
                assert_eq!(fact_p, mono_p, "class {class:?}");
            }
        }
    }

    #[test]
    fn spanning_query_falls_back_to_lazy_product_and_agrees() {
        let (db, sigma) = two_component_employee();
        // A self-join across names joins witnesses from both conflict
        // components, so the per-component fold is unsound and the lazy
        // cross-product fold must take over.
        let q =
            UnionQuery::single(parse_query("Q(x, u) :- Employee(x, y), Employee(u, w)").unwrap());
        let mono = consistent_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap();
        let (fact, info) = consistent_answers_factored_budgeted(
            &db,
            &sigma,
            &q,
            &RepairClass::Subset,
            &Budget::unlimited(),
        )
        .unwrap()
        .unwrap()
        .into_value();
        assert!(info.spanning);
        assert_eq!(fact, mono);
        let mono_p = possible_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap();
        let (fact_p, _) = possible_answers_factored_budgeted(
            &db,
            &sigma,
            &q,
            &RepairClass::Subset,
            &Budget::unlimited(),
        )
        .unwrap()
        .unwrap()
        .into_value();
        assert_eq!(fact_p, mono_p);
    }

    #[test]
    fn factored_fold_is_not_applicable_outside_the_denial_class() {
        let (db, sigma) = supply();
        let q = UnionQuery::single(parse_query("Q(z) :- Supply(x, y, z)").unwrap());
        assert!(consistent_answers_factored_budgeted(
            &db,
            &sigma,
            &q,
            &RepairClass::Subset,
            &Budget::unlimited()
        )
        .unwrap()
        .is_none());
        let (db2, sigma2) = two_component_employee();
        assert!(consistent_answers_factored_budgeted(
            &db2,
            &sigma2,
            &q,
            &RepairClass::AttributeNull,
            &Budget::unlimited()
        )
        .unwrap()
        .is_none());
    }

    #[test]
    fn factored_truncation_degrades_to_the_sound_bounds() {
        let (db, sigma) = two_component_employee();
        let q = UnionQuery::single(parse_query("Q(x) :- Employee(x, y)").unwrap());
        // One step: enumeration is cut immediately; certain degrades to the
        // frozen-core answers, possible to Q(D).
        let budget = Budget::steps(1);
        let out =
            consistent_answers_factored_budgeted(&db, &sigma, &q, &RepairClass::Subset, &budget)
                .unwrap()
                .unwrap();
        assert!(out.is_truncated());
        let (certain, _) = out.into_value();
        assert_eq!(certain, [tuple!["smith"]].into());
        let budget = Budget::steps(1);
        let out =
            possible_answers_factored_budgeted(&db, &sigma, &q, &RepairClass::Subset, &budget)
                .unwrap()
                .unwrap();
        assert!(out.is_truncated());
        let (possible, _) = out.into_value();
        assert_eq!(
            possible,
            [tuple!["page"], tuple!["miller"], tuple!["smith"]].into()
        );
    }
}
