//! C-repairs (§4.1): repairs minimizing the *number* of changes `|D Δ D'|`.
//!
//! Every C-repair is an S-repair (a strictly smaller delta would contradict
//! cardinality minimality), so the general path filters the S-repair set; for
//! denial-class Σ the minimum-hitting-set branch-and-bound of
//! `cqa-constraints` avoids enumerating all S-repairs first.

// audit:exponential — minimum-cardinality search over the repair lattice; every search loop must thread a Budget.
use crate::repair::Repair;
use crate::srepair::{s_repairs_budgeted, RepairOptions};
use cqa_constraints::ConstraintSet;
use cqa_exec::{Budget, Outcome};
use cqa_relation::{Database, RelationError};
use std::sync::Arc;

/// All C-repairs of `db` with respect to `sigma`.
pub fn c_repairs(db: &Database, sigma: &ConstraintSet) -> Result<Vec<Repair>, RelationError> {
    c_repairs_with(db, sigma, &RepairOptions::default())
}

/// All C-repairs, with search options (used for deletion-only semantics).
///
/// Clones `db` once into a shared [`Arc`] base; see [`c_repairs_with_arc`].
pub fn c_repairs_with(
    db: &Database,
    sigma: &ConstraintSet,
    options: &RepairOptions,
) -> Result<Vec<Repair>, RelationError> {
    c_repairs_with_arc(&Arc::new(db.clone()), sigma, options)
}

/// All C-repairs over a shared base instance, clone-free.
pub fn c_repairs_arc(
    db: &Arc<Database>,
    sigma: &ConstraintSet,
) -> Result<Vec<Repair>, RelationError> {
    c_repairs_with_arc(db, sigma, &RepairOptions::default())
}

/// All C-repairs over a shared base instance, with search options.
pub fn c_repairs_with_arc(
    db: &Arc<Database>,
    sigma: &ConstraintSet,
    options: &RepairOptions,
) -> Result<Vec<Repair>, RelationError> {
    Ok(c_repairs_budgeted(db, sigma, options, &Budget::unlimited())?.into_value())
}

/// Budget-aware C-repair enumeration.
///
/// For denial-class Σ a truncated result is a sound subset of the true
/// C-repair family if the minimum-size proof finished, and empty otherwise
/// (never a list of wrong-sized repairs — see
/// [`ConflictHypergraph::minimum_hitting_sets_budgeted`]). For general Σ
/// the truncated result filters the repairs found so far by their smallest
/// observed delta size; a deeper, unexplored branch could in principle beat
/// that size, so treat a truncated general result as "best found so far".
///
/// [`ConflictHypergraph::minimum_hitting_sets_budgeted`]:
/// cqa_constraints::ConflictHypergraph::minimum_hitting_sets_budgeted
pub fn c_repairs_budgeted(
    db: &Arc<Database>,
    sigma: &ConstraintSet,
    options: &RepairOptions,
    budget: &Budget,
) -> Result<Outcome<Vec<Repair>>, RelationError> {
    if sigma.is_denial_class() {
        let graph = sigma.conflict_hypergraph(&**db)?;
        // Factored path: per-component minimum hitting sets (each later size
        // proof seeded by nothing — they are independent — but enumeration
        // runs at the proven size directly), crossed only at the end. The
        // global minima are exactly those products, so output is
        // byte-identical. Same gate rationale as `denial_class_s_repairs`.
        if options.limit.is_none()
            && !budget.forces_sequential()
            && graph.components().components.len() >= 2
        {
            let factored =
                crate::factored::FactoredRepairSet::enumerate_minimum(db, &graph, budget);
            let repairs = factored.value().expand_budgeted(budget)?;
            let explored = repairs.len() as u64;
            return Ok(budget.outcome_with(repairs, explored));
        }
        let hitting_sets = graph.minimum_hitting_sets_budgeted(budget);
        let explored = hitting_sets.value().len() as u64;
        let mut out: Vec<Repair> = hitting_sets
            .into_value()
            .into_iter()
            .map(|hs| Repair::from_delta_arc(db, hs, Vec::new()))
            .collect::<Result<_, _>>()?;
        out.sort_by(|a, b| a.delta().cmp(b.delta()));
        return Ok(budget.outcome_with(out, explored));
    }
    let all = s_repairs_budgeted(
        db,
        sigma,
        &RepairOptions {
            limit: None,
            ..options.clone()
        },
        budget,
    )?
    .into_value();
    let explored = all.len() as u64;
    let min = all.iter().map(Repair::delta_size).min().unwrap_or(0);
    let filtered: Vec<Repair> = all.into_iter().filter(|r| r.delta_size() == min).collect();
    Ok(budget.outcome_with(filtered, explored))
}

/// The minimum number of changes needed to restore consistency
/// (`|D Δ D'|` for any C-repair; 0 iff `db ⊨ sigma`).
pub fn min_repair_distance(db: &Database, sigma: &ConstraintSet) -> Result<usize, RelationError> {
    if sigma.is_denial_class() {
        let graph = sigma.conflict_hypergraph(db)?;
        let components = graph.components();
        if components.components.len() >= 2 {
            // Global minimum = Σ of per-component minima (components are
            // independent), each solved by a much smaller branch-and-bound.
            return Ok(components
                .minimum_hitting_set_size_budgeted(&Budget::unlimited())
                .into_value());
        }
        return Ok(graph.minimum_hitting_set_size());
    }
    Ok(c_repairs(db, sigma)?
        .first()
        .map(Repair::delta_size)
        .unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{DenialConstraint, KeyConstraint, Tgd};
    use cqa_relation::{tuple, RelationSchema, Tid};
    use std::collections::BTreeSet;

    /// Example 4.1: Figure 1's hyper-graph.
    fn example_4_1() -> (Database, ConstraintSet) {
        let mut db = Database::new();
        for r in ["A", "B", "C", "D", "E"] {
            db.create_relation(RelationSchema::new(r, ["X"])).unwrap();
            db.insert(r, tuple!["a"]).unwrap();
        }
        let sigma = ConstraintSet::from_iter([
            DenialConstraint::parse("d1", "B(x), E(x)").unwrap(),
            DenialConstraint::parse("d2", "B(x), C(x), D(x)").unwrap(),
            DenialConstraint::parse("d3", "A(x), C(x)").unwrap(),
        ]);
        (db, sigma)
    }

    #[test]
    fn example_4_1_c_repairs_are_d2_d3_d4() {
        let (db, sigma) = example_4_1();
        let crs = c_repairs(&db, &sigma).unwrap();
        assert_eq!(crs.len(), 3);
        // tids in insertion order: A=1, B=2, C=3, D=4, E=5.
        let kept: BTreeSet<BTreeSet<Tid>> = crs
            .iter()
            .map(|r| db.tids().difference(&r.deleted).copied().collect())
            .collect();
        assert!(kept.contains(&[Tid(3), Tid(4), Tid(5)].into())); // {C, D, E}
        assert!(kept.contains(&[Tid(1), Tid(2), Tid(4)].into())); // {A, B, D}
        assert!(kept.contains(&[Tid(1), Tid(4), Tid(5)].into())); // {A, D, E}
                                                                  // D1 = {B, C} is an S-repair but not a C-repair.
        assert!(!kept.contains(&[Tid(2), Tid(3)].into()));
        assert_eq!(min_repair_distance(&db, &sigma).unwrap(), 2);
    }

    #[test]
    fn example_3_1_both_repairs_are_c_repairs() {
        // Both S-repairs of the Supply example delete/insert a single tuple.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "Supply",
            ["Company", "Receiver", "Item"],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new("Articles", ["Item"]))
            .unwrap();
        db.insert("Supply", tuple!["C1", "R1", "I1"]).unwrap();
        db.insert("Supply", tuple!["C2", "R2", "I2"]).unwrap();
        db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
        db.insert("Articles", tuple!["I1"]).unwrap();
        db.insert("Articles", tuple!["I2"]).unwrap();
        let sigma =
            ConstraintSet::from_iter([Tgd::parse("ID", "Articles(z) :- Supply(x, y, z)").unwrap()]);
        let crs = c_repairs(&db, &sigma).unwrap();
        assert_eq!(crs.len(), 2);
        assert!(crs.iter().all(|r| r.delta_size() == 1));
    }

    #[test]
    fn key_conflicts_c_equals_s() {
        // Pure key conflicts: every S-repair deletes one tuple per group, so
        // S-repairs and C-repairs coincide.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        db.insert("T", tuple![1, 10]).unwrap();
        db.insert("T", tuple![1, 20]).unwrap();
        db.insert("T", tuple![2, 30]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        let s = crate::srepair::s_repairs(&db, &sigma).unwrap();
        let c = c_repairs(&db, &sigma).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn consistent_instance_min_distance_zero() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K"])).unwrap();
        db.insert("T", tuple![1]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        assert_eq!(min_repair_distance(&db, &sigma).unwrap(), 0);
        let crs = c_repairs(&db, &sigma).unwrap();
        assert_eq!(crs.len(), 1);
        assert_eq!(crs[0].delta_size(), 0);
    }

    #[test]
    fn asymmetric_conflict_sizes() {
        // One tuple in conflict with three others: C-repair deletes the hub.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.insert("R", tuple!["hub", 0]).unwrap();
        db.insert("R", tuple!["hub", 1]).unwrap();
        db.insert("R", tuple!["hub", 2]).unwrap();
        db.insert("R", tuple!["hub", 3]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("R", ["A"])]);
        let crs = c_repairs(&db, &sigma).unwrap();
        // Min hitting set deletes 3 of the 4; all 4 choices are minimum.
        assert_eq!(min_repair_distance(&db, &sigma).unwrap(), 3);
        assert_eq!(crs.len(), 4);
    }
}
