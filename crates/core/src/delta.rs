//! Delta-driven maintenance of the violation → hypergraph → components
//! pipeline ([`IncrementalState`]).
//!
//! The paper defines repairs against a fixed inconsistent instance; a system
//! under ingest mutates that instance constantly, and recomputing violations
//! and the conflict hyper-graph from scratch per mutation is the dominant
//! cost. Following Lopatenko–Bertossi's incremental repair semantics
//! (arXiv:1605.07159), denial bodies are negation-free conjunctions and
//! hence **monotone**: after a batch of mutations with touched-tid set `Δ`,
//!
//! * every old violation set disjoint from `Δ` is still a violation set, and
//! * every violation set that is new (or re-validated) intersects `Δ`,
//!
//! so the new violation set is exactly
//! `{v ∈ old : v ∩ Δ = ∅} ∪ violations_delta(Δ)`, where
//! [`cqa_constraints::ConstraintSet::denial_violations_delta`] joins only
//! the touched tuples against the indexed base. The conflict hyper-graph
//! and its component factorization are then maintained structurally:
//! [`ConflictHypergraph::apply_delta`] diffs the canonical edge sets and
//! rebuilds **only the touched components** (union-find merge on edge add,
//! bounded split-on-delete), carrying everything else over verbatim.
//!
//! **Contract.** After every [`IncrementalState::refresh_budgeted`] the
//! maintained state is byte-identical to recompute-from-scratch — at any
//! thread count, and regardless of the budget: a budget that latches
//! mid-delta falls back to a full recompute rather than leaving partial
//! state (the refresh is reported as [`MaintenanceDecision::Recompute`],
//! never a truncated artifact). Enforced by `tests/incremental_equivalence.rs`
//! over random mutation sequences.

use cqa_constraints::{ConflictComponents, ConflictHypergraph, ConstraintSet};
use cqa_exec::Budget;
use cqa_relation::{Change, Database, RelationError, Tid};
use std::collections::BTreeSet;
use std::sync::Arc;

/// How a [`IncrementalState::refresh_budgeted`] call revalidated the cache.
/// Reported by the planner as the A007 `incremental-maintenance` diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintenanceDecision {
    /// The instance's epoch matched the cached epoch: nothing to do.
    Fresh,
    /// The logged changes were applied incrementally.
    Incremental {
        /// Number of change records applied.
        changes: usize,
        /// Tids touched by those changes (dirty set size).
        touched: usize,
    },
    /// The pipeline was recomputed from scratch.
    Recompute {
        /// Why incremental maintenance was not possible.
        reason: String,
    },
}

impl MaintenanceDecision {
    /// One-line rendering for diagnostics and logs.
    pub fn describe(&self) -> String {
        match self {
            MaintenanceDecision::Fresh => {
                "cached conflict state is current (epoch unchanged)".to_string()
            }
            MaintenanceDecision::Incremental { changes, touched } => format!(
                "applied {changes} logged change(s) touching {touched} tuple(s) \
                 incrementally to violations, hyper-graph and components"
            ),
            MaintenanceDecision::Recompute { reason } => {
                format!("recomputed violations and conflict state from scratch: {reason}")
            }
        }
    }
}

/// Incrementally maintained conflict state for one `(Database, Σ)` pair:
/// the denial violation sets, the conflict hyper-graph built over them, and
/// (primed inside the graph) the component factorization with its frozen
/// core. Bound to one database identity via the mutation epoch — refresh it
/// only against the database it was built from (or a clone, which carries
/// the epoch along).
#[derive(Debug, Clone)]
pub struct IncrementalState {
    epoch: u64,
    violations: BTreeSet<BTreeSet<Tid>>,
    graph: ConflictHypergraph,
    last: MaintenanceDecision,
}

impl IncrementalState {
    /// Build the full pipeline once. Errors if Σ is not denial-class (tgd
    /// inconsistencies are not coexistence conflicts) — same condition as
    /// [`cqa_constraints::ConstraintSet::conflict_hypergraph`].
    pub fn new(db: &Database, sigma: &ConstraintSet) -> Result<IncrementalState, RelationError> {
        if !sigma.is_denial_class() {
            return Err(RelationError::Parse(
                "incremental maintenance requires denial-class constraints only (no tgds)".into(),
            ));
        }
        let (violations, graph) = Self::full(db, sigma)?;
        Ok(IncrementalState {
            epoch: db.epoch(),
            violations,
            graph,
            last: MaintenanceDecision::Recompute {
                reason: "initial build".into(),
            },
        })
    }

    fn full(
        db: &Database,
        sigma: &ConstraintSet,
    ) -> Result<(BTreeSet<BTreeSet<Tid>>, ConflictHypergraph), RelationError> {
        let violations = sigma.denial_violations(db)?;
        let graph = ConflictHypergraph::new(db.tids(), violations.iter().cloned());
        let _ = graph.components(); // prime the factorization
        Ok((violations, graph))
    }

    /// [`IncrementalState::refresh_budgeted`] with an unlimited budget.
    pub fn refresh(
        &mut self,
        db: &Database,
        sigma: &ConstraintSet,
    ) -> Result<&MaintenanceDecision, RelationError> {
        self.refresh_budgeted(db, sigma, &Budget::unlimited())
    }

    /// Bring the state up to `db.epoch()`. Applies the logged delta when the
    /// change log still covers the cached epoch and the budget allows it;
    /// falls back to a full recompute otherwise. Either way the resulting
    /// state is **exact** — never a truncated artifact.
    pub fn refresh_budgeted(
        &mut self,
        db: &Database,
        sigma: &ConstraintSet,
        budget: &Budget,
    ) -> Result<&MaintenanceDecision, RelationError> {
        if db.epoch() == self.epoch {
            self.last = MaintenanceDecision::Fresh;
            return Ok(&self.last);
        }
        let Some(changes) = db.changes_since(self.epoch) else {
            return self.recompute(
                db,
                sigma,
                "the change log no longer covers the cached epoch \
                 (compacted away or a structural change intervened)",
            );
        };
        // One budget step per logged change; a latch mid-delta discards the
        // partial work and recomputes exactly (`Outcome::Truncated` state is
        // not a thing this type produces).
        let mut dirty: BTreeSet<Tid> = BTreeSet::new();
        let mut nodes = self.graph.nodes.clone();
        for c in changes {
            if !budget.tick() {
                return self.recompute(db, sigma, "the budget latched mid-delta");
            }
            dirty.insert(c.tid());
            match c {
                Change::Insert { tid, .. } => {
                    nodes.insert(*tid);
                }
                Change::Delete { tid, .. } => {
                    nodes.remove(tid);
                }
                Change::Update { .. } => {}
            }
        }
        debug_assert_eq!(nodes, db.tids(), "maintained node set drifted");
        // Monotone-body maintenance identity: keep the old sets untouched
        // by the dirty tids, re-derive everything involving them. Retention
        // is in place — the kept sets (the overwhelming majority under a
        // small delta) are never re-cloned — and the graph is maintained
        // from the delta alone, never re-canonicalizing the full edge list.
        let delta = sigma.denial_violations_delta(db, &dirty)?;
        self.graph = self.graph.apply_violation_delta(nodes, &dirty, &delta);
        self.violations
            .retain(|v| v.iter().all(|t| !dirty.contains(t)));
        self.violations.extend(delta);
        self.epoch = db.epoch();
        self.last = MaintenanceDecision::Incremental {
            changes: changes.len(),
            touched: dirty.len(),
        };
        Ok(&self.last)
    }

    fn recompute(
        &mut self,
        db: &Database,
        sigma: &ConstraintSet,
        reason: &str,
    ) -> Result<&MaintenanceDecision, RelationError> {
        let (violations, graph) = Self::full(db, sigma)?;
        self.violations = violations;
        self.graph = graph;
        self.epoch = db.epoch();
        // A structural reset means the instance drifted past what the
        // change log describes; the subplan cache's stamp keys stay sound
        // regardless, but entries for the abandoned states will never hit
        // again — drop them rather than letting dead weight ride to the
        // eviction cap.
        cqa_query::plan::reset_plan_cache();
        self.last = MaintenanceDecision::Recompute {
            reason: reason.into(),
        };
        Ok(&self.last)
    }

    /// The epoch the state is current at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The maintained denial violation sets (union over Σ's denials).
    pub fn violations(&self) -> &BTreeSet<BTreeSet<Tid>> {
        &self.violations
    }

    /// The maintained conflict hyper-graph (components primed).
    pub fn graph(&self) -> &ConflictHypergraph {
        &self.graph
    }

    /// The maintained component factorization.
    pub fn components(&self) -> Arc<ConflictComponents> {
        self.graph.components()
    }

    /// Is the instance consistent w.r.t. Σ's denials? (Denial-class Σ is
    /// satisfied exactly when there is no violation set.)
    pub fn is_consistent(&self) -> bool {
        self.graph.edge_count() == 0
    }

    /// How the last refresh revalidated the cache.
    pub fn last_decision(&self) -> &MaintenanceDecision {
        &self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{DenialConstraint, KeyConstraint};
    use cqa_relation::{tuple, RelationSchema, Value};

    fn setup() -> (Database, ConstraintSet) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Emp", ["Name", "Dept", "Sal"]))
            .unwrap();
        db.insert("Emp", tuple!["ann", "d1", 10]).unwrap();
        db.insert("Emp", tuple!["ann", "d2", 11]).unwrap();
        db.insert("Emp", tuple!["bob", "d1", 12]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("Emp", ["Name"])]);
        (db, sigma)
    }

    fn scratch(db: &Database, sigma: &ConstraintSet) -> IncrementalState {
        IncrementalState::new(db, sigma).unwrap()
    }

    /// The maintained state must equal a from-scratch build, byte for byte.
    fn assert_identical(state: &IncrementalState, db: &Database, sigma: &ConstraintSet) {
        let fresh = scratch(db, sigma);
        assert_eq!(state.violations, fresh.violations);
        assert_eq!(state.graph, fresh.graph);
        assert_eq!(*state.components(), *fresh.components());
        assert_eq!(state.epoch, db.epoch());
    }

    #[test]
    fn refresh_is_fresh_without_mutations() {
        let (db, sigma) = setup();
        let mut state = scratch(&db, &sigma);
        assert_eq!(
            state.refresh(&db, &sigma).unwrap(),
            &MaintenanceDecision::Fresh
        );
        assert_identical(&state, &db, &sigma);
    }

    #[test]
    fn insert_delete_update_maintain_incrementally() {
        let (mut db, sigma) = setup();
        let mut state = scratch(&db, &sigma);
        // Insert a new conflicting tuple.
        let t = db.insert("Emp", tuple!["bob", "d9", 13]).unwrap();
        match state.refresh(&db, &sigma).unwrap() {
            MaintenanceDecision::Incremental { changes: 1, .. } => {}
            other => panic!("expected incremental, got {other:?}"),
        }
        assert_identical(&state, &db, &sigma);
        assert!(!state.is_consistent());
        // Delete it again plus one of the ann duplicates: consistent now.
        db.delete(t).unwrap();
        db.delete(cqa_relation::Tid(2)).unwrap();
        state.refresh(&db, &sigma).unwrap();
        assert_identical(&state, &db, &sigma);
        assert!(state.is_consistent());
        // An in-place update re-creating the conflict.
        db.update_value(cqa_relation::Tid(3), 0, Value::str("ann"))
            .unwrap();
        state.refresh(&db, &sigma).unwrap();
        assert_identical(&state, &db, &sigma);
        assert!(!state.is_consistent());
    }

    #[test]
    fn budget_latch_falls_back_to_exact_recompute() {
        let (mut db, sigma) = setup();
        let mut state = scratch(&db, &sigma);
        for i in 0..5 {
            db.insert("Emp", tuple![format!("p{i}"), "d", i]).unwrap();
        }
        // 2 steps for 5 changes: the delta path latches and recomputes.
        match state
            .refresh_budgeted(&db, &sigma, &Budget::steps(2))
            .unwrap()
        {
            MaintenanceDecision::Recompute { reason } => {
                assert!(reason.contains("budget"), "reason: {reason}");
            }
            other => panic!("expected recompute, got {other:?}"),
        }
        assert_identical(&state, &db, &sigma);
    }

    #[test]
    fn compacted_log_forces_recompute() {
        let (mut db, sigma) = setup();
        let mut state = scratch(&db, &sigma);
        // Push far past the default log capacity so the cached epoch falls
        // out of the retained window.
        for i in 0..(2 * cqa_relation::changes::DEFAULT_LOG_CAPACITY + 10) {
            db.insert("Emp", tuple![format!("q{i}"), "d", 1]).unwrap();
        }
        match state.refresh(&db, &sigma).unwrap() {
            MaintenanceDecision::Recompute { reason } => {
                assert!(reason.contains("change log"), "reason: {reason}");
            }
            other => panic!("expected recompute, got {other:?}"),
        }
        assert_identical(&state, &db, &sigma);
    }

    #[test]
    fn structural_change_forces_recompute() {
        let (mut db, sigma) = setup();
        let mut state = scratch(&db, &sigma);
        db.create_relation(RelationSchema::new("New", ["X"]))
            .unwrap();
        assert!(matches!(
            state.refresh(&db, &sigma).unwrap(),
            MaintenanceDecision::Recompute { .. }
        ));
        assert_identical(&state, &db, &sigma);
    }

    #[test]
    fn tgds_are_rejected() {
        let (db, _) = setup();
        let tgd = cqa_constraints::Tgd::parse("t", "Dept(d) :- Emp(n, d, s)").unwrap();
        let sigma = ConstraintSet::from_iter([cqa_constraints::Constraint::Tgd(tgd)]);
        assert!(IncrementalState::new(&db, &sigma).is_err());
    }

    #[test]
    fn comparison_denials_maintain_too() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Acct", ["Id", "Bal"]))
            .unwrap();
        db.insert("Acct", tuple![1, 100]).unwrap();
        db.insert("Acct", tuple![2, 50]).unwrap();
        let sigma =
            ConstraintSet::from_iter(
                [DenialConstraint::parse("pos", "Acct(i, b), b < 0").unwrap()],
            );
        let mut state = scratch(&db, &sigma);
        assert!(state.is_consistent());
        let t = db.insert("Acct", tuple![3, -7]).unwrap();
        state.refresh(&db, &sigma).unwrap();
        assert_identical(&state, &db, &sigma);
        assert_eq!(state.violations(), &[[t].into()].into());
    }
}
