//! Factored repair sets: one repair family per conflict component, never
//! the expanded cross-product.
//!
//! Every repair of a denial-class instance is the frozen core plus an
//! independent choice of one component-local repair per connected component
//! of the conflict hyper-graph (`cqa-constraints::components`). A
//! [`FactoredRepairSet`] keeps exactly that: the shared base instance, the
//! factorization, and the per-component deletion families. The monolithic
//! family is recoverable two ways, both without ever *storing* the product:
//!
//! * [`FactoredRepairSet::deltas`] — a lazy odometer iterator yielding the
//!   combined deletion sets one at a time, in canonical (component-major)
//!   order; the component-spanning CQA fold streams over it.
//! * [`FactoredRepairSet::expand`] — materializes `Vec<Repair>` for callers
//!   whose API contract is the full list (`s_repairs` itself). The *search*
//!   still paid `Σ_c cost(c)` instead of the monolithic product-shaped
//!   tree.
//!
//! The component-aware certain/possible folds in [`crate::cqa`] avoid even
//! the lazy iteration when no query witness spans two components, folding
//! `Σ_c |family_c|` views instead of `∏_c |family_c|` repairs.

// audit:exponential — per-component repair families multiply out; every search loop must thread a Budget.
use crate::repair::Repair;
use cqa_constraints::{ConflictComponents, ConflictHypergraph, ConstraintSet, FactoredFamilies};
use cqa_exec::{Budget, Outcome};
use cqa_relation::{Database, RelationError, Tid};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Shape summary of a factorized run, surfaced through the planner's
/// diagnostics and `repairctl analyze --components`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Factorization {
    /// Number of connected components of the conflict hyper-graph.
    pub components: usize,
    /// Tuple count of the largest component.
    pub largest: usize,
    /// Total count of component-local repairs stored (`Σ_c |family_c|`).
    pub factored_repairs: usize,
    /// Size of the monolithic repair family (`∏_c |family_c|`); `None` when
    /// it overflows `usize` — the case factorization exists to avoid.
    pub product_repairs: Option<usize>,
    /// Did some query witness span two components, forcing the fold back
    /// onto (lazy) product iteration?
    pub spanning: bool,
}

/// A repair family in factored form: frozen core + one deletion family per
/// conflict component. Deletion-only by construction (denial-class Σ).
#[derive(Debug, Clone)]
pub struct FactoredRepairSet {
    base: Arc<Database>,
    components: Arc<ConflictComponents>,
    families: FactoredFamilies,
}

impl FactoredRepairSet {
    /// Enumerate all **minimal** hitting sets per component (the S-repair
    /// factorization) of `graph`, which must have been built from `base`.
    /// Soundness under truncation matches
    /// [`ConflictComponents::minimal_hitting_sets_factored`].
    pub fn enumerate_minimal(
        base: &Arc<Database>,
        graph: &ConflictHypergraph,
        budget: &Budget,
    ) -> Outcome<FactoredRepairSet> {
        let components = graph.components();
        components
            .minimal_hitting_sets_factored(budget)
            .map(|families| FactoredRepairSet {
                base: Arc::clone(base),
                components,
                families,
            })
    }

    /// Enumerate all **minimum** hitting sets per component (the C-repair
    /// factorization): the global minima are exactly the cross-products of
    /// the per-component minimum families, so the minimum distance is the
    /// sum of the per-component optima. Empty families when the budget died
    /// during a size proof (mirroring the monolithic contract).
    pub fn enumerate_minimum(
        base: &Arc<Database>,
        graph: &ConflictHypergraph,
        budget: &Budget,
    ) -> Outcome<FactoredRepairSet> {
        let components = graph.components();
        components
            .minimum_hitting_sets_factored(budget)
            .map(|(_, families)| FactoredRepairSet {
                base: Arc::clone(base),
                components,
                families,
            })
    }

    /// The shared base instance.
    pub fn base(&self) -> &Arc<Database> {
        &self.base
    }

    /// The underlying factorization (frozen core + component graphs).
    pub fn components(&self) -> &Arc<ConflictComponents> {
        &self.components
    }

    /// The per-component deletion families, canonical component order.
    pub fn families(&self) -> &FactoredFamilies {
        &self.families
    }

    /// Every conflicted tid (union of all component tid sets) — the
    /// complement of the frozen core within the graph's nodes.
    pub fn conflicted(&self) -> BTreeSet<Tid> {
        self.components
            .components
            .iter()
            .flat_map(|c| c.tids().iter().copied())
            .collect()
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components.components.len()
    }

    /// Size of the monolithic family (`None` on overflow).
    pub fn product_len(&self) -> Option<usize> {
        self.families.product_len()
    }

    /// Total component-local sets stored (the factored representation size).
    pub fn factored_len(&self) -> usize {
        self.families.factored_len()
    }

    /// The shape summary for diagnostics.
    pub fn factorization(&self, spanning: bool) -> Factorization {
        Factorization {
            components: self.component_count(),
            largest: self.components.largest_component(),
            factored_repairs: self.factored_len(),
            product_repairs: self.product_len(),
            spanning,
        }
    }

    /// The global deletion set for choosing local delta `local` in component
    /// `comp` **and deleting every other component's conflicted tuples** —
    /// the most destructive completion, i.e. the view `core ∪ (comp ∖
    /// local)`. This is the view the component-aware certain/possible folds
    /// evaluate: it is a sub-instance of every repair that picks `local`
    /// for `comp`, which is what makes the per-component fold sound for
    /// monotone queries.
    pub fn local_deleted(&self, comp: usize, local: &BTreeSet<Tid>) -> BTreeSet<Tid> {
        let mut deleted: BTreeSet<Tid> = self
            .components
            .components
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != comp)
            .flat_map(|(_, c)| c.tids().iter().copied())
            .collect();
        deleted.extend(local.iter().copied());
        deleted
    }

    /// Lazy iterator over the combined (global) deletion sets of the
    /// cross-product, in component-major order. Nothing product-sized is
    /// ever stored; each item is built from the current odometer position.
    pub fn deltas(&self) -> ProductDeltas<'_> {
        ProductDeltas {
            families: &self.families.families,
            indices: vec![0; self.families.families.len()],
            done: self.families.families.iter().any(Vec::is_empty),
        }
    }

    /// Materialize the monolithic repair list (sorted by delta, the
    /// [`crate::s_repairs`] output order). The output is byte-identical to
    /// the monolithic enumeration whenever the families are exact, because
    /// the global minimal (resp. minimum) hitting sets are exactly the
    /// unions of one local set per component.
    pub fn expand(&self) -> Result<Vec<Repair>, RelationError> {
        self.expand_budgeted(&Budget::unlimited())
    }

    /// [`expand`](FactoredRepairSet::expand) under a meter: each product
    /// position charges one item before it is materialized, so a budget
    /// that exhausts (or is cancelled — e.g. the client hung up) stops the
    /// odometer instead of expanding the full cross-product. The prefix
    /// kept is a sound subset of the true family; an unexhausted budget
    /// yields output byte-identical to [`expand`].
    ///
    /// [`expand`]: FactoredRepairSet::expand
    pub fn expand_budgeted(&self, budget: &Budget) -> Result<Vec<Repair>, RelationError> {
        let mut out = Vec::new();
        for deleted in self.deltas() {
            if !budget.charge_item() {
                break;
            }
            out.push(Repair::from_delta_arc(&self.base, deleted, Vec::new())?);
        }
        out.sort_by(|a, b| a.delta().cmp(b.delta()));
        Ok(out)
    }
}

/// Odometer iterator over the cross-product of per-component deletion
/// families; see [`FactoredRepairSet::deltas`]. With zero components it
/// yields the single empty delta (the consistent instance's one repair).
#[derive(Debug)]
pub struct ProductDeltas<'a> {
    families: &'a [Vec<BTreeSet<Tid>>],
    indices: Vec<usize>,
    done: bool,
}

impl ProductDeltas<'_> {
    /// How many deltas remain (including the one `next` would yield now);
    /// `None` on overflow.
    pub fn remaining_len(&self) -> Option<usize> {
        if self.done {
            return Some(0);
        }
        // Position value of the odometer + remaining suffix product.
        let mut total: usize = 1;
        let mut consumed: usize = 0;
        for (i, family) in self.families.iter().enumerate() {
            total = total.checked_mul(family.len())?;
            consumed = consumed
                .checked_mul(family.len())?
                .checked_add(self.indices[i])?;
        }
        total.checked_sub(consumed)
    }
}

impl Iterator for ProductDeltas<'_> {
    type Item = BTreeSet<Tid>;

    fn next(&mut self) -> Option<BTreeSet<Tid>> {
        if self.done {
            return None;
        }
        let mut combined = BTreeSet::new();
        for (family, &i) in self.families.iter().zip(&self.indices) {
            combined.extend(family[i].iter().copied());
        }
        // Advance the odometer, least-significant (last) component first.
        self.done = true;
        for pos in (0..self.indices.len()).rev() {
            self.indices[pos] += 1;
            if self.indices[pos] < self.families[pos].len() {
                self.done = false;
                break;
            }
            self.indices[pos] = 0;
        }
        Some(combined)
    }
}

/// Factored S-repair enumeration straight from Σ: `None` when Σ is not
/// denial-class (insertions may be needed; there is no hitting-set
/// factorization to speak of).
pub fn factored_s_repairs_budgeted(
    db: &Arc<Database>,
    sigma: &ConstraintSet,
    budget: &Budget,
) -> Result<Option<Outcome<FactoredRepairSet>>, RelationError> {
    if !sigma.is_denial_class() {
        return Ok(None);
    }
    let graph = sigma.conflict_hypergraph(&**db)?;
    Ok(Some(FactoredRepairSet::enumerate_minimal(
        db, &graph, budget,
    )))
}

/// Factored C-repair enumeration straight from Σ; `None` when Σ is not
/// denial-class.
pub fn factored_c_repairs_budgeted(
    db: &Arc<Database>,
    sigma: &ConstraintSet,
    budget: &Budget,
) -> Result<Option<Outcome<FactoredRepairSet>>, RelationError> {
    if !sigma.is_denial_class() {
        return Ok(None);
    }
    let graph = sigma.conflict_hypergraph(&**db)?;
    Ok(Some(FactoredRepairSet::enumerate_minimum(
        db, &graph, budget,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::srepair::{s_repairs, RepairOptions};
    use cqa_constraints::KeyConstraint;
    use cqa_relation::{tuple, RelationSchema};

    /// Two independent key groups (2 rows each) plus a clean row: two pair
    /// components, frozen core of one tuple, 4 monolithic repairs.
    fn two_group_db() -> (Database, ConstraintSet) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        db.insert("T", tuple![1, 10]).unwrap();
        db.insert("T", tuple![1, 11]).unwrap();
        db.insert("T", tuple![2, 20]).unwrap();
        db.insert("T", tuple![2, 21]).unwrap();
        db.insert("T", tuple![3, 30]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        (db, sigma)
    }

    #[test]
    fn factored_expansion_matches_monolithic_s_repairs() {
        let (db, sigma) = two_group_db();
        let base = Arc::new(db.clone());
        let fx = factored_s_repairs_budgeted(&base, &sigma, &Budget::unlimited())
            .unwrap()
            .expect("denial-class")
            .into_value();
        assert_eq!(fx.component_count(), 2);
        assert_eq!(fx.product_len(), Some(4));
        assert_eq!(fx.factored_len(), 4); // 2 + 2
        let expanded = fx.expand().unwrap();
        let monolithic = s_repairs(&db, &sigma).unwrap();
        assert_eq!(expanded.len(), monolithic.len());
        for (a, b) in expanded.iter().zip(&monolithic) {
            assert_eq!(a.delta(), b.delta());
        }
    }

    #[test]
    fn lazy_deltas_cover_the_product_exactly_once() {
        let (db, sigma) = two_group_db();
        let base = Arc::new(db.clone());
        let fx = factored_s_repairs_budgeted(&base, &sigma, &Budget::unlimited())
            .unwrap()
            .unwrap()
            .into_value();
        let mut iter = fx.deltas();
        assert_eq!(iter.remaining_len(), Some(4));
        let all: BTreeSet<BTreeSet<Tid>> = iter.by_ref().collect();
        assert_eq!(all.len(), 4);
        assert_eq!(iter.remaining_len(), Some(0));
        for d in &all {
            assert_eq!(d.len(), 2); // one deletion per component
        }
    }

    /// Regression: `expand` used to run the full cross-product regardless
    /// of the budget, so a cancelled (or born-exhausted) request kept
    /// burning CPU to the end of a possibly exponential expansion. The
    /// budgeted variant must stop at the meter and keep a sound prefix.
    #[test]
    fn cancelled_expansion_stops_instead_of_running_the_product_out() {
        let (db, sigma) = two_group_db();
        let base = Arc::new(db);
        let budget = Budget::unlimited();
        let fx = factored_s_repairs_budgeted(&base, &sigma, &budget)
            .unwrap()
            .unwrap()
            .into_value();
        assert_eq!(fx.product_len(), Some(4));
        budget.cancel_token().cancel();
        assert!(
            fx.expand_budgeted(&budget).unwrap().is_empty(),
            "a cancelled budget must stop the expansion immediately"
        );
        // Born-exhausted deadline: same contract through the repair API.
        let exhausted = Budget::new(cqa_exec::Limits {
            deadline_ms: Some(0),
            ..cqa_exec::Limits::default()
        });
        let out =
            crate::s_repairs_budgeted(&base, &sigma, &crate::RepairOptions::default(), &exhausted)
                .unwrap();
        assert!(out.is_truncated());
        assert!(out.value().is_empty());
    }

    #[test]
    fn zero_components_yield_the_trivial_repair() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        db.insert("T", tuple![1, 10]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        let base = Arc::new(db);
        let fx = factored_s_repairs_budgeted(&base, &sigma, &Budget::unlimited())
            .unwrap()
            .unwrap()
            .into_value();
        assert_eq!(fx.component_count(), 0);
        let deltas: Vec<_> = fx.deltas().collect();
        assert_eq!(deltas, vec![BTreeSet::new()]);
        assert_eq!(fx.expand().unwrap().len(), 1);
    }

    #[test]
    fn minimum_factorization_crosses_only_minima() {
        // Component 1: hub row in conflict with 3 others (min deletes the
        // hub, 1 way... actually min hitting set of a star of 3 pair-edges
        // is the hub alone). Component 2: plain pair (2 minima).
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        db.insert("T", tuple![1, 0]).unwrap(); // hub group: 4 rows
        db.insert("T", tuple![1, 1]).unwrap();
        db.insert("T", tuple![1, 2]).unwrap();
        db.insert("T", tuple![1, 3]).unwrap();
        db.insert("T", tuple![2, 0]).unwrap(); // pair group
        db.insert("T", tuple![2, 1]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        let base = Arc::new(db.clone());
        let fx = factored_c_repairs_budgeted(&base, &sigma, &Budget::unlimited())
            .unwrap()
            .unwrap()
            .into_value();
        // Key group of 4: minimum deletes 3 (4 choices); pair: deletes 1
        // (2 choices) → 8 C-repairs, each of delta size 4.
        assert_eq!(fx.product_len(), Some(8));
        let expanded = fx.expand().unwrap();
        let monolithic = crate::crepair::c_repairs(&db, &sigma).unwrap();
        assert_eq!(expanded.len(), monolithic.len());
        for (a, b) in expanded.iter().zip(&monolithic) {
            assert_eq!(a.delta(), b.delta());
        }
    }

    #[test]
    fn local_deleted_removes_other_components() {
        let (db, sigma) = two_group_db();
        let base = Arc::new(db);
        let fx = factored_s_repairs_budgeted(&base, &sigma, &Budget::unlimited())
            .unwrap()
            .unwrap()
            .into_value();
        let local: BTreeSet<Tid> = [Tid(1)].into();
        let deleted = fx.local_deleted(0, &local);
        // Component 0 = {1, 2}, component 1 = {3, 4}; view keeps tid 2 and
        // the frozen core (tid 5).
        assert_eq!(deleted, [Tid(1), Tid(3), Tid(4)].into());
        assert_eq!(fx.conflicted(), [Tid(1), Tid(2), Tid(3), Tid(4)].into());
    }

    #[test]
    fn non_denial_sigma_has_no_factorization() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("A", ["X"])).unwrap();
        db.create_relation(RelationSchema::new("B", ["X"])).unwrap();
        db.insert("A", tuple!["a"]).unwrap();
        let sigma =
            ConstraintSet::from_iter([cqa_constraints::Tgd::parse("t", "B(x) :- A(x)").unwrap()]);
        let base = Arc::new(db);
        assert!(
            factored_s_repairs_budgeted(&base, &sigma, &Budget::unlimited())
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn options_limit_is_not_used_here() {
        // Guard against silent contract drift: the factored path has no
        // `limit` notion, so `s_repairs` routes limited calls monolithically
        // (covered by srepair tests); this just pins the default.
        assert!(RepairOptions::default().limit.is_none());
    }
}
