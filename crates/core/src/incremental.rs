//! Incremental repairs under updates (§4.1 of the paper; Lopatenko–Bertossi
//! \[87\] "just started to scratch the surface in this direction").
//!
//! When a *consistent* instance receives new tuples, every fresh violation
//! of a denial-class Σ must involve at least one new tuple (denial bodies
//! are monotone). The incremental engine therefore builds the conflict
//! hyper-graph from the new violations only and repairs locally, instead of
//! re-enumerating from scratch. Results provably coincide with the full
//! engine (tested), but the work is proportional to the *update's* conflict
//! neighbourhood.

use crate::repair::Repair;
use cqa_constraints::{ConflictHypergraph, ConstraintSet};
use cqa_relation::{Database, RelationError, Tid, Tuple};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The result of an incremental repair round.
#[derive(Debug, Clone)]
pub struct IncrementalRepairs {
    /// The updated (possibly inconsistent) instance, shared as the base of
    /// the returned repairs (deref-coerces to `&Database`).
    pub updated: Arc<Database>,
    /// Tids assigned to the inserted tuples.
    pub new_tids: Vec<Tid>,
    /// The repairs of the updated instance.
    pub repairs: Vec<Repair>,
}

/// Insert `new_tuples` into consistent `db` and repair incrementally.
///
/// Requires `db ⊨ sigma` (errors otherwise) and denial-class Σ.
pub fn repairs_after_insert(
    db: &Database,
    sigma: &ConstraintSet,
    new_tuples: &[(String, Tuple)],
) -> Result<IncrementalRepairs, RelationError> {
    if !sigma.is_denial_class() {
        return Err(RelationError::Parse(
            "incremental repairs support denial-class constraints only".into(),
        ));
    }
    if !sigma.is_satisfied(db)? {
        return Err(RelationError::Parse(
            "incremental repairs start from a consistent instance".into(),
        ));
    }
    let (updated, new_tids) = db.with_changes(&BTreeSet::new(), new_tuples)?;
    let updated = Arc::new(updated);

    // All violations of the updated instance involve a new tuple; collect
    // them and assert the locality property in debug builds.
    let violations = sigma.denial_violations(&*updated)?;
    let new_set: BTreeSet<Tid> = new_tids.iter().copied().collect();
    debug_assert!(violations
        .iter()
        .all(|v| v.iter().any(|t| new_set.contains(t))));

    let graph = ConflictHypergraph::new(updated.tids(), violations);
    let mut repairs = Vec::new();
    for hs in graph.minimal_hitting_sets(None) {
        repairs.push(Repair::from_delta_arc(&updated, hs, Vec::new())?);
    }
    repairs.sort_by(|a, b| a.delta().cmp(b.delta()));
    Ok(IncrementalRepairs {
        updated,
        new_tids,
        repairs,
    })
}

/// Is the updated instance still consistent after inserting `new_tuples`
/// (no repair needed)?
pub fn insert_preserves_consistency(
    db: &Database,
    sigma: &ConstraintSet,
    new_tuples: &[(String, Tuple)],
) -> Result<bool, RelationError> {
    let (updated, _) = db.with_changes(&BTreeSet::new(), new_tuples)?;
    sigma.is_satisfied(&updated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::srepair::s_repairs;
    use cqa_constraints::KeyConstraint;
    use cqa_relation::{tuple, RelationSchema};

    fn base() -> (Database, ConstraintSet) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        db.insert("T", tuple![1, 10]).unwrap();
        db.insert("T", tuple![2, 20]).unwrap();
        db.insert("T", tuple![3, 30]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        (db, sigma)
    }

    #[test]
    fn conflicting_insert_produces_local_repairs() {
        let (db, sigma) = base();
        let inc = repairs_after_insert(&db, &sigma, &[("T".into(), tuple![1, 99])]).unwrap();
        assert_eq!(inc.repairs.len(), 2);
        // Each repair deletes exactly one of the conflicting pair; tuples
        // 2 and 3 are never touched.
        for r in &inc.repairs {
            assert_eq!(r.deleted.len(), 1);
            assert!(!r.deleted.contains(&Tid(2)));
            assert!(!r.deleted.contains(&Tid(3)));
            assert!(sigma.is_satisfied(r.db()).unwrap());
        }
    }

    #[test]
    fn incremental_agrees_with_full_engine() {
        let (db, sigma) = base();
        let new = vec![
            ("T".to_string(), tuple![1, 99]),
            ("T".to_string(), tuple![2, 88]),
        ];
        let inc = repairs_after_insert(&db, &sigma, &new).unwrap();
        let full = s_repairs(&inc.updated, &sigma).unwrap();
        let a: BTreeSet<BTreeSet<Tid>> = inc.repairs.iter().map(|r| r.deleted.clone()).collect();
        let b: BTreeSet<BTreeSet<Tid>> = full.iter().map(|r| r.deleted.clone()).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4); // 2 × 2 independent choices
    }

    #[test]
    fn clean_insert_yields_one_trivial_repair() {
        let (db, sigma) = base();
        assert!(insert_preserves_consistency(&db, &sigma, &[("T".into(), tuple![4, 40])]).unwrap());
        let inc = repairs_after_insert(&db, &sigma, &[("T".into(), tuple![4, 40])]).unwrap();
        assert_eq!(inc.repairs.len(), 1);
        assert_eq!(inc.repairs[0].delta_size(), 0);
    }

    #[test]
    fn inconsistent_start_is_rejected() {
        let (mut db, sigma) = base();
        db.insert("T", tuple![1, 11]).unwrap();
        assert!(repairs_after_insert(&db, &sigma, &[]).is_err());
    }

    #[test]
    fn duplicate_insert_is_a_noop() {
        let (db, sigma) = base();
        let inc = repairs_after_insert(&db, &sigma, &[("T".into(), tuple![1, 10])]).unwrap();
        assert_eq!(inc.updated.total_tuples(), 3); // set semantics
        assert_eq!(inc.repairs.len(), 1);
        assert_eq!(inc.repairs[0].delta_size(), 0);
    }
}
