//! Incremental repairs under updates (§4.1 of the paper; Lopatenko–Bertossi
//! \[87\] "just started to scratch the surface in this direction").
//!
//! When a *consistent* instance receives new tuples, every fresh violation
//! of a denial-class Σ must involve at least one new tuple (denial bodies
//! are monotone). The incremental engine therefore builds the conflict
//! hyper-graph from the new violations only and repairs locally, instead of
//! re-enumerating from scratch. Results provably coincide with the full
//! engine (tested), but the work is proportional to the *update's* conflict
//! neighbourhood.

use crate::repair::Repair;
use cqa_constraints::{ConflictHypergraph, ConstraintSet};
use cqa_relation::{Database, DeltaView, Facts, RelationError, Tid, Tuple};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The result of an incremental repair round.
#[derive(Debug, Clone)]
pub struct IncrementalRepairs {
    /// The updated (possibly inconsistent) instance, shared as the base of
    /// the returned repairs (deref-coerces to `&Database`).
    pub updated: Arc<Database>,
    /// Tids assigned to the inserted tuples.
    pub new_tids: Vec<Tid>,
    /// The repairs of the updated instance.
    pub repairs: Vec<Repair>,
}

/// Insert `new_tuples` into consistent `db` and repair incrementally.
///
/// Requires `db ⊨ sigma` (errors otherwise) and denial-class Σ.
pub fn repairs_after_insert(
    db: &Database,
    sigma: &ConstraintSet,
    new_tuples: &[(String, Tuple)],
) -> Result<IncrementalRepairs, RelationError> {
    if !sigma.is_denial_class() {
        return Err(RelationError::Parse(
            "incremental repairs support denial-class constraints only".into(),
        ));
    }
    if !sigma.is_satisfied(db)? {
        return Err(RelationError::Parse(
            "incremental repairs start from a consistent instance".into(),
        ));
    }
    let (updated, new_tids) = db.with_changes(&BTreeSet::new(), new_tuples)?;
    let updated = Arc::new(updated);

    // Every violation of the updated instance involves a new tuple (denial
    // bodies are monotone and `db` was consistent), so the delta join over
    // the new tids finds them all — no full rescan. Debug builds assert the
    // locality property against the reference scan.
    let new_set: BTreeSet<Tid> = new_tids.iter().copied().collect();
    let violations = sigma.denial_violations_delta(&*updated, &new_set)?;
    debug_assert_eq!(violations, sigma.denial_violations(&*updated)?);

    let graph = ConflictHypergraph::new(updated.tids(), violations);
    let mut repairs = Vec::new();
    for hs in graph.minimal_hitting_sets(None) {
        repairs.push(Repair::from_delta_arc(&updated, hs, Vec::new())?);
    }
    repairs.sort_by(|a, b| a.delta().cmp(b.delta()));
    Ok(IncrementalRepairs {
        updated,
        new_tids,
        repairs,
    })
}

/// Is the updated instance still consistent after inserting `new_tuples`
/// (no repair needed)?
///
/// For denial-class Σ nothing is materialized: the insertions are overlaid
/// as a [`DeltaView`] and only the delta join runs — by monotonicity the
/// updated instance satisfies Σ iff the base did and no new violation
/// touches an inserted tuple. Σ with tgds falls back to materializing.
pub fn insert_preserves_consistency(
    db: &Database,
    sigma: &ConstraintSet,
    new_tuples: &[(String, Tuple)],
) -> Result<bool, RelationError> {
    if sigma.is_denial_class() {
        if !sigma.is_satisfied(db)? {
            return Ok(false);
        }
        let deleted = BTreeSet::new();
        let view = DeltaView::new(db, &deleted, new_tuples);
        let touched: BTreeSet<Tid> = new_tuples
            .iter()
            .map(|(name, _)| name.as_str())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .flat_map(|name| view.overlay_rows(name).iter().map(|(tid, _)| *tid))
            .collect();
        return Ok(sigma.denial_violations_delta(&view, &touched)?.is_empty());
    }
    let (updated, _) = db.with_changes(&BTreeSet::new(), new_tuples)?;
    sigma.is_satisfied(&updated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::srepair::s_repairs;
    use cqa_constraints::KeyConstraint;
    use cqa_relation::{tuple, RelationSchema};

    fn base() -> (Database, ConstraintSet) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        db.insert("T", tuple![1, 10]).unwrap();
        db.insert("T", tuple![2, 20]).unwrap();
        db.insert("T", tuple![3, 30]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        (db, sigma)
    }

    #[test]
    fn conflicting_insert_produces_local_repairs() {
        let (db, sigma) = base();
        let inc = repairs_after_insert(&db, &sigma, &[("T".into(), tuple![1, 99])]).unwrap();
        assert_eq!(inc.repairs.len(), 2);
        // Each repair deletes exactly one of the conflicting pair; tuples
        // 2 and 3 are never touched.
        for r in &inc.repairs {
            assert_eq!(r.deleted.len(), 1);
            assert!(!r.deleted.contains(&Tid(2)));
            assert!(!r.deleted.contains(&Tid(3)));
            assert!(sigma.is_satisfied(r.db()).unwrap());
        }
    }

    #[test]
    fn incremental_agrees_with_full_engine() {
        let (db, sigma) = base();
        let new = vec![
            ("T".to_string(), tuple![1, 99]),
            ("T".to_string(), tuple![2, 88]),
        ];
        let inc = repairs_after_insert(&db, &sigma, &new).unwrap();
        let full = s_repairs(&inc.updated, &sigma).unwrap();
        let a: BTreeSet<BTreeSet<Tid>> = inc.repairs.iter().map(|r| r.deleted.clone()).collect();
        let b: BTreeSet<BTreeSet<Tid>> = full.iter().map(|r| r.deleted.clone()).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4); // 2 × 2 independent choices
    }

    #[test]
    fn clean_insert_yields_one_trivial_repair() {
        let (db, sigma) = base();
        assert!(insert_preserves_consistency(&db, &sigma, &[("T".into(), tuple![4, 40])]).unwrap());
        let inc = repairs_after_insert(&db, &sigma, &[("T".into(), tuple![4, 40])]).unwrap();
        assert_eq!(inc.repairs.len(), 1);
        assert_eq!(inc.repairs[0].delta_size(), 0);
    }

    #[test]
    fn inconsistent_start_is_rejected() {
        let (mut db, sigma) = base();
        db.insert("T", tuple![1, 11]).unwrap();
        assert!(repairs_after_insert(&db, &sigma, &[]).is_err());
    }

    #[test]
    fn consistency_check_runs_on_the_view_without_materializing() {
        let (db, sigma) = base();
        // Conflicting insert: detected by the delta join over the overlay.
        assert!(
            !insert_preserves_consistency(&db, &sigma, &[("T".into(), tuple![1, 99])]).unwrap()
        );
        // An inconsistent base never becomes consistent by inserting.
        let (mut dirty, _) = base();
        dirty.insert("T", tuple![1, 11]).unwrap();
        assert!(
            !insert_preserves_consistency(&dirty, &sigma, &[("T".into(), tuple![9, 9])]).unwrap()
        );
        // Σ with a tgd takes the materializing fallback.
        let mut with_tgd = sigma.clone();
        with_tgd.push(cqa_constraints::Tgd::parse("t", "T(v, v) :- T(k, v)").unwrap());
        assert!(
            !insert_preserves_consistency(&db, &with_tgd, &[("T".into(), tuple![4, 40])]).unwrap()
        );
    }

    #[test]
    fn duplicate_insert_is_a_noop() {
        let (db, sigma) = base();
        let inc = repairs_after_insert(&db, &sigma, &[("T".into(), tuple![1, 10])]).unwrap();
        assert_eq!(inc.updated.total_tuples(), 3); // set semantics
        assert_eq!(inc.repairs.len(), 1);
        assert_eq!(inc.repairs[0].delta_size(), 0);
    }
}
