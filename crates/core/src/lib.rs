#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqa-core
//!
//! The paper's primary contribution: **database repairs and consistent query
//! answering** (Arenas–Bertossi–Chomicki, PODS'99, as surveyed in Bertossi,
//! PODS'19).
//!
//! * [`srepair`] — S-repairs (⊆-minimal symmetric difference) for denial
//!   constraints, FDs/keys/CFDs and tgds, with deletions and null-padded
//!   insertions (§3.1, §4.2).
//! * [`crepair`] — cardinality repairs (§4.1).
//! * [`attr_repair`] — attribute-based null repairs (§4.3).
//! * [`nullrepair`] — tuple-level null repairs for tgds (§4.2).
//! * [`cqa`] — certain/possible answers over a repair class; aggregate CQA
//!   with range semantics (§3.1–3.2).
//! * [`rewrite`] — first-order rewritings: the 1999 residue method and the
//!   Koutris–Wijsen attack-graph rewriting for keys (§2.2, §3.2).
//! * [`checking`] — repair checking and counting (§3.2).
//! * [`delta`] — delta-driven incremental maintenance of violations and the
//!   conflict hyper-graph under updates (incremental repair semantics, §7).
//! * [`measures`] — repair-based inconsistency degrees (§8).

pub mod attr_repair;
pub mod checking;
pub mod cqa;
pub mod crepair;
pub mod delta;
pub mod factored;
pub mod incremental;
pub mod measures;
pub mod nullrepair;
pub mod planner;
pub mod prioritized;
pub mod privacy;
pub mod repair;
pub mod rewrite;
pub mod session;
pub mod srepair;
pub mod tolerant;
pub mod update_repair;

pub use attr_repair::{attribute_repairs, AttributeRepair, CellChange};
pub use checking::{
    count_key_repairs, count_s_repairs, is_c_repair, is_repair, is_s_repair, symmetric_difference,
    RepairSemantics,
};
pub use cqa::{
    aggregate_range_over, aggregate_ranges_over, certain_over, certainly_true, certainly_true_over,
    consistent_aggregate_range, consistent_aggregate_ranges, consistent_answers,
    consistent_answers_budgeted, consistent_answers_factored_budgeted, cqa_report,
    cqa_report_budgeted, possible_answers, possible_answers_budgeted,
    possible_answers_factored_budgeted, possible_over, repairs_of, CqaReport, FactoredAnswers,
    RepairClass,
};
pub use crepair::{
    c_repairs, c_repairs_arc, c_repairs_budgeted, c_repairs_with, c_repairs_with_arc,
    min_repair_distance,
};
pub use delta::{IncrementalState, MaintenanceDecision};
pub use factored::{
    factored_c_repairs_budgeted, factored_s_repairs_budgeted, FactoredRepairSet, Factorization,
    ProductDeltas,
};
pub use incremental::{insert_preserves_consistency, repairs_after_insert, IncrementalRepairs};
pub use measures::{core_gap, inconsistency_degree};
pub use nullrepair::{has_solution, null_tuple_repairs, NullTupleRepair, RepairStyle};
pub use planner::{
    answer_consistently, answer_consistently_budgeted, answer_consistently_incremental,
    plan_diagnostics, PlannedAnswer, Strategy,
};
pub use prioritized::{globally_optimal_repairs, pareto_optimal_repairs, PriorityRelation};
pub use privacy::SecrecyView;
pub use repair::{retain_subset_minimal, Change, Repair};
pub use rewrite::{attack_graph, residue_rewrite, rewrite_key_query, KeyRewriteError};
pub use session::CqaSession;
pub use srepair::{
    consistent_core, s_repairs, s_repairs_arc, s_repairs_budgeted, s_repairs_with,
    s_repairs_with_arc, RepairOptions,
};
pub use tolerant::{ar_answers, iar_answers};
pub use update_repair::{min_change_update_repair, update_repairs, CellUpdate, UpdateRepair};
