//! Repair-based inconsistency measures (§8; Bertossi \[16, 17\]).
//!
//! The paper closes where it began: "measuring the degree of inconsistency of
//! a database … repairs can be used as a basis for such a task". The measure
//! implemented here is the cardinality-repair measure of \[17\]:
//!
//! `inc(D, Σ) = |D ∖ D'| / |D|` for any C-repair `D'` obtained by deletions —
//! i.e. the fraction of the database that must go to restore consistency.
//! We also expose the S-repair *core gap*: the fraction of tuples that fail
//! to persist in every S-repair.

use cqa_constraints::ConstraintSet;
use cqa_relation::{Database, RelationError};

/// The cardinality-repair inconsistency degree: minimum fraction of tuples
/// whose deletion restores consistency. `0.0` iff consistent; defined for
/// denial-class Σ (deletions always suffice there).
pub fn inconsistency_degree(db: &Database, sigma: &ConstraintSet) -> Result<f64, RelationError> {
    let n = db.total_tuples();
    if n == 0 {
        return Ok(0.0);
    }
    let graph = sigma.conflict_hypergraph(db)?;
    Ok(graph.minimum_hitting_set_size() as f64 / n as f64)
}

/// The core gap: fraction of tuples that do *not* persist across all
/// S-repairs (1 − |core| / |D|). Always ≥ the inconsistency degree.
pub fn core_gap(db: &Database, sigma: &ConstraintSet) -> Result<f64, RelationError> {
    let n = db.total_tuples();
    if n == 0 {
        return Ok(0.0);
    }
    let core = crate::srepair::consistent_core(db, sigma)?;
    Ok(1.0 - core.len() as f64 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::KeyConstraint;
    use cqa_relation::{tuple, RelationSchema};

    fn db_with_conflicts(pairs: usize, clean: usize) -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        for i in 0..pairs {
            db.insert("T", tuple![i as i64, 0]).unwrap();
            db.insert("T", tuple![i as i64, 1]).unwrap();
        }
        for i in 0..clean {
            db.insert("T", tuple![(1000 + i) as i64, 0]).unwrap();
        }
        db
    }

    #[test]
    fn consistent_db_measures_zero() {
        let db = db_with_conflicts(0, 5);
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        assert_eq!(inconsistency_degree(&db, &sigma).unwrap(), 0.0);
        assert_eq!(core_gap(&db, &sigma).unwrap(), 0.0);
    }

    #[test]
    fn degree_grows_with_conflicts() {
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        let low = inconsistency_degree(&db_with_conflicts(1, 8), &sigma).unwrap();
        let high = inconsistency_degree(&db_with_conflicts(4, 2), &sigma).unwrap();
        assert!(low < high);
        assert!((low - 0.1).abs() < 1e-9); // 1 deletion out of 10 tuples
        assert!((high - 0.4).abs() < 1e-9); // 4 deletions out of 10
    }

    #[test]
    fn core_gap_dominates_degree() {
        let db = db_with_conflicts(2, 3);
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        let deg = inconsistency_degree(&db, &sigma).unwrap();
        let gap = core_gap(&db, &sigma).unwrap();
        assert!(gap >= deg);
        // Both tuples of each conflicting pair fall out of the core.
        assert!((gap - 4.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_db_is_consistent() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        assert_eq!(inconsistency_degree(&db, &sigma).unwrap(), 0.0);
    }
}
