//! Tuple-level null-based repairs for tgds (§4.2 of the paper).
//!
//! An unsatisfied tgd `∀x̄(body → ∃v head)` can be repaired by deleting a
//! body tuple or by inserting the demanded head tuple with `NULL` at the
//! existential positions (the ⟨I3, NULL⟩ insertion of Example 4.3). This
//! module is a purposeful, documented view over the general S-repair engine:
//! it classifies each repair by the actions it used and exposes the
//! peer-data-exchange "solution" terminology of \[25\].

use crate::repair::Repair;
use crate::srepair::{s_repairs_with, RepairOptions};
use cqa_constraints::ConstraintSet;
use cqa_relation::{Database, RelationError};

/// How a null-based tuple repair restored consistency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStyle {
    /// The instance was already consistent.
    Unchanged,
    /// Only deletions were applied.
    DeletionOnly,
    /// Only (null-padded) insertions were applied.
    InsertionOnly,
    /// A mix of deletions and insertions.
    Mixed,
}

/// A tuple-level null repair with its classification.
#[derive(Debug, Clone)]
pub struct NullTupleRepair {
    /// The underlying repair.
    pub repair: Repair,
    /// How consistency was restored.
    pub style: RepairStyle,
}

/// Enumerate the tuple-level null-based repairs of `db` w.r.t. `sigma`
/// (tgds repaired by deletion or null-insertion; denial-class members of
/// `sigma` repaired by deletion).
pub fn null_tuple_repairs(
    db: &Database,
    sigma: &ConstraintSet,
) -> Result<Vec<NullTupleRepair>, RelationError> {
    let repairs = s_repairs_with(db, sigma, &RepairOptions::default())?;
    Ok(repairs
        .into_iter()
        .map(|repair| {
            let style = match (repair.deleted.is_empty(), repair.inserted.is_empty()) {
                (true, true) => RepairStyle::Unchanged,
                (false, true) => RepairStyle::DeletionOnly,
                (true, false) => RepairStyle::InsertionOnly,
                (false, false) => RepairStyle::Mixed,
            };
            NullTupleRepair { repair, style }
        })
        .collect())
}

/// In peer-data-exchange terms \[25\]: does the instance admit a *solution*,
/// i.e. at least one repair? (Always true here: deleting every body witness
/// is available; the function exists to mirror the vocabulary and to guard
/// future semantics that restrict deletions.)
pub fn has_solution(db: &Database, sigma: &ConstraintSet) -> Result<bool, RelationError> {
    Ok(!null_tuple_repairs(db, sigma)?.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::Tgd;
    use cqa_relation::{tuple, RelationSchema, Tid, Value};

    /// The modified Articles table of Example 4.3.
    fn example_4_3() -> (Database, ConstraintSet) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "Supply",
            ["Company", "Receiver", "Item"],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new("Articles", ["Item", "Cost"]))
            .unwrap();
        db.insert("Supply", tuple!["C1", "R1", "I1"]).unwrap();
        db.insert("Supply", tuple!["C2", "R2", "I2"]).unwrap();
        db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap(); // ι3
        db.insert("Articles", tuple!["I1", 50]).unwrap();
        db.insert("Articles", tuple!["I2", 30]).unwrap();
        let sigma =
            ConstraintSet::from_iter([
                Tgd::parse("ID'", "Articles(z, v) :- Supply(x, y, z)").unwrap()
            ]);
        (db, sigma)
    }

    #[test]
    fn example_4_3_two_repairs() {
        let (db, sigma) = example_4_3();
        let repairs = null_tuple_repairs(&db, &sigma).unwrap();
        assert_eq!(repairs.len(), 2);
        let del = repairs
            .iter()
            .find(|r| r.style == RepairStyle::DeletionOnly)
            .expect("deletion repair");
        assert_eq!(del.repair.deleted, [Tid(3)].into());
        let ins = repairs
            .iter()
            .find(|r| r.style == RepairStyle::InsertionOnly)
            .expect("insertion repair");
        let (rel, t) = &ins.repair.inserted[0];
        assert_eq!(rel, "Articles");
        assert_eq!(t.at(0), &Value::str("I3"));
        assert!(t.at(1).is_null());
    }

    #[test]
    fn null_insertion_restores_consistency_under_sql_semantics() {
        let (db, sigma) = example_4_3();
        for r in null_tuple_repairs(&db, &sigma).unwrap() {
            assert!(sigma.is_satisfied(r.repair.db()).unwrap());
        }
    }

    #[test]
    fn consistent_instance_is_unchanged() {
        let (mut db, sigma) = example_4_3();
        db.delete(Tid(3)).unwrap();
        let repairs = null_tuple_repairs(&db, &sigma).unwrap();
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].style, RepairStyle::Unchanged);
        assert!(has_solution(&db, &sigma).unwrap());
    }

    #[test]
    fn solutions_always_exist_for_acyclic_tgds() {
        let (db, sigma) = example_4_3();
        assert!(has_solution(&db, &sigma).unwrap());
    }
}
