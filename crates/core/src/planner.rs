//! A ConsEx-style consistency extractor (§3.3 of the paper, \[43\]): one
//! entry point that *plans* how to answer a query consistently, choosing
//! the cheapest sound-and-complete strategy available:
//!
//! 1. **FO rewriting** (attack graph) when Σ is a set of primary keys and
//!    the query is a self-join-free CQ with an acyclic attack graph —
//!    evaluated directly on the inconsistent instance, no repairs;
//! 2. **repair enumeration** otherwise (the reference semantics).
//!
//! The chosen strategy is reported so callers can log/inspect it, mirroring
//! how ConsEx surfaced its magic-set rewriting decisions.

use crate::cqa::{consistent_answers_budgeted, factored_certain_with, RepairClass};
use crate::delta::IncrementalState;
use crate::factored::Factorization;
use crate::rewrite::keys::{rewrite_key_query, KeyPositions, KeyRewriteError};
use cqa_analysis::{lint_constraints, lint_query, DiagCode, Diagnostic};
use cqa_constraints::{ConflictHypergraph, Constraint, ConstraintSet};
use cqa_exec::{Budget, Outcome};
use cqa_query::{eval_fo, NullSemantics, UnionQuery};
use cqa_relation::{Database, RelationError, Tuple};
use std::collections::BTreeSet;

/// How the planner answered the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strategy {
    /// Evaluated a certain FO rewriting on the inconsistent instance.
    FoRewriting,
    /// Enumerated repairs and intersected answers.
    RepairEnumeration {
        /// Why rewriting was not used.
        reason: String,
    },
    /// Enumerated repairs **per conflict component** and folded
    /// component-locally (or over the lazy cross-product when a query
    /// witness spans components) — never materializing the product.
    FactoredEnumeration {
        /// Why rewriting was not used.
        reason: String,
        /// The factorization shape (component count, product size avoided…).
        factorization: Factorization,
    },
    /// The instance was consistent: plain evaluation.
    DirectEvaluation,
}

/// The planner's result.
#[derive(Debug, Clone)]
pub struct PlannedAnswer {
    /// The consistent answers.
    pub answers: BTreeSet<Tuple>,
    /// The strategy used.
    pub strategy: Strategy,
    /// Static-analysis findings for Σ and the query (strategy-independent;
    /// see `cqa-analysis` for the code catalog).
    pub diagnostics: Vec<Diagnostic>,
}

/// Lint Σ (against the live schemas) and every disjunct of the query.
pub fn plan_diagnostics(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
) -> Vec<Diagnostic> {
    let mut out = lint_constraints(sigma, Some(db));
    for cq in &query.disjuncts {
        out.extend(lint_query(cq));
    }
    out
}

/// Extract the key positions from Σ if Σ consists solely of key constraints
/// (at most one per relation).
fn keys_only(db: &Database, sigma: &ConstraintSet) -> Option<KeyPositions> {
    let mut keys = KeyPositions::new();
    for c in &sigma.constraints {
        let Constraint::Key(k) = c else {
            return None;
        };
        let schema = db.relation(&k.relation)?.schema().clone();
        let positions = schema.positions_of(k.key.iter().map(String::as_str)).ok()?;
        if keys.insert(k.relation.clone(), positions).is_some() {
            return None; // two keys on one relation: out of the dichotomy
        }
    }
    Some(keys)
}

/// Answer `query` consistently with the best available strategy.
pub fn answer_consistently(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
) -> Result<PlannedAnswer, RelationError> {
    Ok(answer_consistently_budgeted(db, sigma, query, &Budget::unlimited())?.into_value())
}

/// Budget-aware [`answer_consistently`]. The polynomial strategies (direct
/// evaluation on a consistent instance, FO rewriting) always produce an
/// [`Outcome::Exact`] answer — a budget never degrades them. Only the
/// repair-enumeration fallback is metered; on truncation it reports the
/// sound under-approximation of
/// [`consistent_answers_budgeted`].
pub fn answer_consistently_budgeted(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    budget: &Budget,
) -> Result<Outcome<PlannedAnswer>, RelationError> {
    let diagnostics = plan_diagnostics(db, sigma, query);
    let consistent = sigma.is_satisfied(db)?;
    plan_with(db, sigma, query, budget, consistent, None, diagnostics)
}

/// [`answer_consistently_budgeted`] against a delta-maintained
/// [`IncrementalState`]: the state is refreshed (incrementally when the
/// change log permits, from scratch otherwise), the maintained hyper-graph
/// is handed to the repair fallback instead of being rebuilt, and the
/// refresh decision is reported as the A007 `incremental-maintenance`
/// diagnostic. Answers are identical to [`answer_consistently_budgeted`]
/// on the same instance — only the work to get there changes.
pub fn answer_consistently_incremental(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    state: &mut IncrementalState,
    budget: &Budget,
) -> Result<Outcome<PlannedAnswer>, RelationError> {
    let decision = state.refresh_budgeted(db, sigma, budget)?.clone();
    let mut diagnostics = plan_diagnostics(db, sigma, query);
    diagnostics.push(incremental_diagnostic(&decision));
    // Σ is denial-class (IncrementalState::new enforces it), so the
    // instance is consistent exactly when the maintained graph is edgeless.
    let consistent = state.is_consistent();
    plan_with(
        db,
        sigma,
        query,
        budget,
        consistent,
        Some(state.graph()),
        diagnostics,
    )
}

/// The shared planning core: strategy selection given an already-settled
/// consistency verdict and, optionally, a prebuilt conflict hyper-graph for
/// the repair fallback (the incremental path supplies its maintained one).
fn plan_with(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    budget: &Budget,
    consistent: bool,
    prebuilt: Option<&ConflictHypergraph>,
    diagnostics: Vec<Diagnostic>,
) -> Result<Outcome<PlannedAnswer>, RelationError> {
    // Consistent instance: certain answers are the plain answers.
    if consistent {
        return Ok(Outcome::Exact(PlannedAnswer {
            answers: cqa_query::eval_ucq(db, query, NullSemantics::Sql)
                .into_iter()
                .filter(|t| !t.has_null())
                .collect(),
            strategy: Strategy::DirectEvaluation,
            diagnostics,
        }));
    }

    // Rewriting path: keys-only Σ, single self-join-free CQ.
    if let Some(keys) = keys_only(db, sigma) {
        if let [cq] = &query.disjuncts[..] {
            match rewrite_key_query(cq, &keys) {
                Ok(fo) => {
                    return Ok(Outcome::Exact(PlannedAnswer {
                        answers: eval_fo(db, &fo, NullSemantics::Structural),
                        strategy: Strategy::FoRewriting,
                        diagnostics,
                    }));
                }
                Err(KeyRewriteError::CyclicAttackGraph { witness }) => {
                    let reason = format!(
                        "attack graph cyclic at atoms {} and {}: CQA is coNP-complete",
                        witness.0, witness.1
                    );
                    return fallback(db, sigma, query, reason, diagnostics, budget, prebuilt);
                }
                Err(e) => {
                    return fallback(
                        db,
                        sigma,
                        query,
                        e.to_string(),
                        diagnostics,
                        budget,
                        prebuilt,
                    );
                }
            }
        }
        return fallback(
            db,
            sigma,
            query,
            "query is a union, not a single CQ".into(),
            diagnostics,
            budget,
            prebuilt,
        );
    }
    // Non-key Σ: say *why* in terms of what the lints recognized.
    let mut reason = "Σ is not a set of primary keys".to_string();
    if diagnostics.iter().any(|d| d.code == DiagCode::FdIsKey) {
        reason.push_str(
            "; some FDs cover their whole schema (C004 fd-is-key): \
             declaring them as keys would open the FO-rewriting path",
        );
    }
    if diagnostics
        .iter()
        .any(|d| d.code == DiagCode::SubsumedConstraint || d.code == DiagCode::DuplicateConstraint)
    {
        reason.push_str("; Σ contains redundant constraints (C001/C003)");
    }
    fallback(db, sigma, query, reason, diagnostics, budget, prebuilt)
}

#[allow(clippy::too_many_arguments)]
fn fallback(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
    reason: String,
    mut diagnostics: Vec<Diagnostic>,
    budget: &Budget,
    prebuilt: Option<&ConflictHypergraph>,
) -> Result<Outcome<PlannedAnswer>, RelationError> {
    // Both enumeration strategies quantify the query over a repair family;
    // the subplan cache shares per-view answer sets across that fold.
    // Snapshot the counters here so A008 reports this fold's delta.
    let cache_on = cqa_exec::plan_cache_enabled();
    let cache_before = cqa_query::plan_cache_stats();
    let reason = if cache_on {
        format!("{reason}; repair-family subplan sharing on")
    } else {
        reason
    };
    // Factored path: with ≥ 2 conflict components the repair family is a
    // cross-product of independent per-component families, so enumeration
    // and the certain fold run per component (see `cqa-core::factored`).
    // Single-component instances keep the monolithic path — the
    // factorization would be the identity.
    if sigma.is_denial_class() {
        let owned;
        let graph = match prebuilt {
            Some(g) => g,
            None => {
                owned = sigma.conflict_hypergraph(db)?;
                &owned
            }
        };
        if graph.components().components.len() >= 2 {
            let base = std::sync::Arc::new(db.clone());
            let out = factored_certain_with(&base, graph, query, &RepairClass::Subset, budget)?;
            return Ok(out.map(|(answers, factorization)| {
                diagnostics.push(factorization_diagnostic(&factorization));
                diagnostics.push(plan_cache_diagnostic(cache_on, &cache_before));
                PlannedAnswer {
                    answers,
                    strategy: Strategy::FactoredEnumeration {
                        reason,
                        factorization,
                    },
                    diagnostics,
                }
            }));
        }
    }
    let answers = consistent_answers_budgeted(db, sigma, query, &RepairClass::Subset, budget)?;
    Ok(answers.map(|answers| {
        diagnostics.push(plan_cache_diagnostic(cache_on, &cache_before));
        PlannedAnswer {
            answers,
            strategy: Strategy::RepairEnumeration { reason },
            diagnostics,
        }
    }))
}

/// The A008 informational finding describing how the subplan cache behaved
/// during the repair fold (hits/misses accrued between the pre-fold
/// snapshot and now; counters are process-wide, so concurrent folds may
/// contribute).
fn plan_cache_diagnostic(enabled: bool, before: &cqa_query::PlanCacheStats) -> Diagnostic {
    let message = if enabled {
        let after = cqa_query::plan_cache_stats();
        format!(
            "subplan cache over the repair fold: {} hits, {} misses, {} resident entries",
            after.hits.saturating_sub(before.hits),
            after.misses.saturating_sub(before.misses),
            after.entries,
        )
    } else {
        "subplan sharing disabled for this run: every repair re-evaluated the query".to_string()
    };
    Diagnostic::new(DiagCode::PlanCache, message)
}

/// The A007 informational finding describing how the incremental planner
/// revalidated its cached conflict state.
fn incremental_diagnostic(decision: &crate::delta::MaintenanceDecision) -> Diagnostic {
    Diagnostic::new(DiagCode::IncrementalMaintenance, decision.describe())
}

/// The A006 informational finding describing a factorized run.
fn factorization_diagnostic(f: &Factorization) -> Diagnostic {
    let product = match f.product_repairs {
        Some(p) => p.to_string(),
        None => "> usize::MAX".to_string(),
    };
    Diagnostic::new(
        DiagCode::ConflictComponents,
        format!(
            "conflict hyper-graph has {} independent components (largest: {} tuples): \
             folded {} component-local repairs instead of a product of {}{}",
            f.components,
            f.largest,
            f.factored_repairs,
            product,
            if f.spanning {
                "; a query witness spans components, so answers were folded \
                 over the lazy cross-product"
            } else {
                ""
            },
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{DenialConstraint, KeyConstraint};
    use cqa_query::parse_query;
    use cqa_relation::{tuple, RelationSchema};

    fn employee() -> (Database, ConstraintSet) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        db.insert("Employee", tuple!["page", 5000]).unwrap();
        db.insert("Employee", tuple!["page", 8000]).unwrap();
        db.insert("Employee", tuple!["smith", 3000]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("Employee", ["Name"])]);
        (db, sigma)
    }

    #[test]
    fn rewritable_query_uses_rewriting() {
        let (db, sigma) = employee();
        let q = UnionQuery::single(parse_query("Q(x, y) :- Employee(x, y)").unwrap());
        let planned = answer_consistently(&db, &sigma, &q).unwrap();
        assert_eq!(planned.strategy, Strategy::FoRewriting);
        assert_eq!(planned.answers, [tuple!["smith", 3000]].into());
        // And it agrees with the reference semantics.
        let reference =
            crate::cqa::consistent_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap();
        assert_eq!(planned.answers, reference);
    }

    #[test]
    fn cyclic_query_falls_back() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["A", "B"]))
            .unwrap();
        db.insert("R", tuple![1, 2]).unwrap();
        db.insert("R", tuple![1, 3]).unwrap();
        db.insert("S", tuple![2, 1]).unwrap();
        let sigma = ConstraintSet::from_iter([
            KeyConstraint::new("R", ["A"]),
            KeyConstraint::new("S", ["A"]),
        ]);
        let q = UnionQuery::single(parse_query("Q() :- R(x, y), S(y, x)").unwrap());
        let planned = answer_consistently(&db, &sigma, &q).unwrap();
        match &planned.strategy {
            Strategy::RepairEnumeration { reason } => {
                assert!(reason.contains("coNP"), "reason: {reason}");
            }
            other => panic!("expected fallback, got {other:?}"),
        }
    }

    #[test]
    fn non_key_constraints_fall_back() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        db.insert("S", tuple!["a"]).unwrap();
        db.insert("S", tuple!["b"]).unwrap();
        let sigma =
            ConstraintSet::from_iter([DenialConstraint::parse("d", "S(x), S(y), x != y").unwrap()]);
        let q = UnionQuery::single(parse_query("Q(x) :- S(x)").unwrap());
        let planned = answer_consistently(&db, &sigma, &q).unwrap();
        assert!(matches!(
            planned.strategy,
            Strategy::RepairEnumeration { .. }
        ));
        assert!(planned.answers.is_empty()); // each singleton repair differs
    }

    #[test]
    fn consistent_instance_short_circuits() {
        let (mut db, sigma) = employee();
        db.delete(cqa_relation::Tid(2)).unwrap();
        let q = UnionQuery::single(parse_query("Q(x) :- Employee(x, y)").unwrap());
        let planned = answer_consistently(&db, &sigma, &q).unwrap();
        assert_eq!(planned.strategy, Strategy::DirectEvaluation);
        assert_eq!(planned.answers.len(), 2);
    }

    #[test]
    fn fd_covering_schema_enriches_the_reason() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        db.insert("Employee", tuple!["page", 5000]).unwrap();
        db.insert("Employee", tuple!["page", 8000]).unwrap();
        // The same key, but declared as an FD: outside the keys-only fast
        // path, yet the analysis recognizes it (C004).
        let fd = cqa_constraints::FunctionalDependency::new("Employee", ["Name"], ["Salary"]);
        let sigma = ConstraintSet::from_iter([fd]);
        let q = UnionQuery::single(parse_query("Q(x) :- Employee(x, y)").unwrap());
        let planned = answer_consistently(&db, &sigma, &q).unwrap();
        match &planned.strategy {
            Strategy::RepairEnumeration { reason } => {
                assert!(reason.contains("fd-is-key"), "reason: {reason}");
            }
            other => panic!("expected fallback, got {other:?}"),
        }
        assert!(planned
            .diagnostics
            .iter()
            .any(|d| d.code == cqa_analysis::DiagCode::FdIsKey));
    }

    #[test]
    fn planner_reports_query_lints() {
        let (db, sigma) = employee();
        let q = UnionQuery::single(parse_query("Q() :- Employee(x, y), Employee(u, w)").unwrap());
        let planned = answer_consistently(&db, &sigma, &q).unwrap();
        assert!(planned
            .diagnostics
            .iter()
            .any(|d| d.code == cqa_analysis::DiagCode::CartesianProduct));
    }

    #[test]
    fn union_queries_fall_back_with_reason() {
        let (db, sigma) = employee();
        let q = cqa_query::parse_ucq("Q(x) :- Employee(x, y)\nQ(x) :- Employee(x, 3000)").unwrap();
        let planned = answer_consistently(&db, &sigma, &q).unwrap();
        match &planned.strategy {
            Strategy::RepairEnumeration { reason } => assert!(reason.contains("union")),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn incremental_planner_matches_batch_and_reports_a007() {
        let (mut db, sigma) = employee();
        let mut state = IncrementalState::new(&db, &sigma).unwrap();
        let q = cqa_query::parse_ucq("Q(x) :- Employee(x, y)\nQ(x) :- Employee(x, 3000)").unwrap();
        // Mutate: a second conflicting name group appears.
        db.insert("Employee", tuple!["smith", 3500]).unwrap();
        let budget = Budget::unlimited();
        let incr = answer_consistently_incremental(&db, &sigma, &q, &mut state, &budget)
            .unwrap()
            .into_value();
        let batch = answer_consistently(&db, &sigma, &q).unwrap();
        assert_eq!(incr.answers, batch.answers);
        assert_eq!(incr.strategy, batch.strategy);
        let a007 = incr
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::IncrementalMaintenance)
            .expect("A007 diagnostic");
        assert!(a007.message.contains("incrementally"), "{}", a007.message);
        // A second call with no new mutations reports a fresh cache.
        let again = answer_consistently_incremental(&db, &sigma, &q, &mut state, &budget)
            .unwrap()
            .into_value();
        assert_eq!(again.answers, batch.answers);
        assert!(again
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::IncrementalMaintenance && d.message.contains("current")));
        // Consistent after removing the conflicts: direct evaluation.
        db.delete(cqa_relation::Tid(2)).unwrap();
        db.delete(cqa_relation::Tid(4)).unwrap();
        let direct = answer_consistently_incremental(&db, &sigma, &q, &mut state, &budget)
            .unwrap()
            .into_value();
        assert_eq!(direct.strategy, Strategy::DirectEvaluation);
    }

    #[test]
    fn multi_component_fallback_uses_factored_enumeration() {
        let (mut db, sigma) = employee();
        // A second violating name group: two conflict components.
        db.insert("Employee", tuple!["smith", 3500]).unwrap();
        let q = cqa_query::parse_ucq("Q(x) :- Employee(x, y)\nQ(x) :- Employee(x, 3000)").unwrap();
        let planned = answer_consistently(&db, &sigma, &q).unwrap();
        match &planned.strategy {
            Strategy::FactoredEnumeration {
                reason,
                factorization,
            } => {
                assert!(reason.contains("union"), "reason: {reason}");
                assert_eq!(factorization.components, 2);
                assert_eq!(factorization.product_repairs, Some(4));
                assert_eq!(factorization.factored_repairs, 4);
            }
            other => panic!("expected factored fallback, got {other:?}"),
        }
        // The A006 finding rides along in the diagnostics.
        assert!(planned
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::ConflictComponents));
        // And the answers agree with the reference semantics.
        let reference =
            crate::cqa::consistent_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap();
        assert_eq!(planned.answers, reference);
    }
}
